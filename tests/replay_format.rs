//! Golden-format tests for the versioned `DepStream` serialization that
//! feeds the trace-replay fast path.
//!
//! The fixture at `tests/fixtures/depstream_v1.json` is the checked-in
//! byte-exact output of `DepStream::to_json` for a small hand-built
//! stream. Any change to the event schema, the column order, or the JSON
//! shape makes `golden_fixture_matches_serializer` fail — at which point
//! `DEPSTREAM_FORMAT_VERSION` must be bumped and the fixture regenerated
//! (`REGEN_FIXTURES=1 cargo test --test replay_format`). Tampered
//! version/schema documents must always be rejected loudly: silently
//! replaying a stream recorded under a different schema would produce
//! confidently wrong cycle counts.

use hw_profile::FuKind;
use salam_obs::{DepMeta, DepStream, OpKind};
use salam_replay::{replay, ReplayConfig};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/depstream_v1.json"
);

/// A small but representative stream: two groups, a control transfer,
/// loads/stores with address metadata, and FU-classed compute ops —
/// every column of the on-disk schema carries a nonzero value somewhere.
fn golden_stream() -> DepStream {
    let mut s = DepStream::new();
    let m = DepMeta::default;
    // Entry group: load -> add -> terminator.
    s.record_meta(
        1,
        "ld.a",
        "load",
        0,
        2,
        vec![],
        DepMeta {
            kind: OpKind::Load,
            latency: 1,
            inst: 0,
            addr: 64,
            size: 4,
            ..m()
        },
    );
    s.record_meta(
        2,
        "add.acc",
        "int_adder",
        2,
        3,
        vec![1],
        DepMeta {
            latency: 1,
            inst: 1,
            ..m()
        },
    );
    s.record_meta(
        3,
        "br.loop",
        "control",
        3,
        3,
        vec![2],
        DepMeta { inst: 2, ..m() },
    );
    // Second group, fetched by the terminator: load -> fmul -> store.
    s.record_meta(
        4,
        "ld.b",
        "load",
        4,
        6,
        vec![],
        DepMeta {
            kind: OpKind::Load,
            latency: 1,
            inst: 3,
            group: 1,
            ctrl: 3,
            addr_dep: 2,
            addr: 128,
            size: 8,
        },
    );
    s.record_meta(
        5,
        "fmul.c",
        "fp_mul_dp",
        6,
        10,
        vec![4, 2],
        DepMeta {
            latency: 4,
            inst: 4,
            group: 1,
            ctrl: 3,
            ..m()
        },
    );
    s.record_meta(
        6,
        "st.c",
        "store",
        10,
        12,
        vec![5],
        DepMeta {
            kind: OpKind::Store,
            latency: 1,
            inst: 5,
            group: 1,
            ctrl: 3,
            addr: 256,
            size: 8,
            ..m()
        },
    );
    s
}

fn golden_text() -> String {
    std::fs::read_to_string(FIXTURE).expect(
        "golden fixture exists — regenerate with REGEN_FIXTURES=1 cargo test --test replay_format",
    )
}

/// The serializer's output is byte-identical to the checked-in fixture:
/// any schema or formatting drift fails here first.
#[test]
fn golden_fixture_matches_serializer() {
    let text = golden_stream().to_json();
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        std::fs::write(FIXTURE, &text).expect("write fixture");
        return;
    }
    assert_eq!(
        text,
        golden_text(),
        "DepStream::to_json output drifted from the golden fixture — if the \
         event schema changed on purpose, bump DEPSTREAM_FORMAT_VERSION and \
         regenerate with REGEN_FIXTURES=1 cargo test --test replay_format"
    );
}

/// Fixture -> DepStream -> JSON round-trips byte-identically, and the
/// parsed stream preserves every op, dep edge, and metadata field.
#[test]
fn golden_fixture_round_trips() {
    let golden = golden_text();
    let parsed = DepStream::from_json(&golden).expect("golden fixture parses");
    assert_eq!(parsed.to_json(), golden, "round-trip must be byte-exact");

    let built = golden_stream();
    assert_eq!(parsed.len(), built.len());
    for (p, b) in parsed.ops().iter().zip(built.ops()) {
        assert_eq!(p.uid, b.uid);
        assert_eq!(parsed.name(p.name), built.name(b.name));
        assert_eq!(parsed.class(p.class), built.class(b.class));
        assert_eq!((p.issue, p.commit), (b.issue, b.commit));
        assert_eq!(p.deps, b.deps);
        assert_eq!(p.meta, b.meta);
    }
}

/// A deserialized stream is directly replayable: the fixture drives the
/// analytical scheduler end to end and yields a plausible schedule.
#[test]
fn golden_fixture_is_replayable() {
    let stream = DepStream::from_json(&golden_text()).expect("parses");
    let cfg = ReplayConfig {
        // Replay requires a pool entry for every FU class the stream uses.
        fu_pool: [(FuKind::IntAdder, 1), (FuKind::FpMulF64, 1)]
            .into_iter()
            .collect(),
        ..ReplayConfig::default()
    };
    let out = replay(&stream, &cfg).expect("replays");
    assert!(out.cycles > 0);
    assert_eq!(out.attribution.total(), out.cycles);
    let retimed = out.retimed.expect("retimed stream is on by default");
    assert_eq!(retimed.len(), stream.len());
}

/// A stream stamped with a different format version is refused with an
/// error naming both versions — never silently replayed.
#[test]
fn format_version_tamper_fails_loudly() {
    let tampered = golden_text().replace("\"format_version\": 1", "\"format_version\": 2");
    assert_ne!(tampered, golden_text(), "tamper must hit the version field");
    let err = DepStream::from_json(&tampered).expect_err("version mismatch must be an error");
    assert!(
        err.contains("format_version 2") && err.contains("refusing"),
        "error must name the offending version: {err}"
    );
}

/// A renamed column is a schema change even under the same version number
/// and must be refused too.
#[test]
fn column_schema_tamper_fails_loudly() {
    let tampered = golden_text().replace("\"addr_dep\"", "\"addr_producer\"");
    assert_ne!(tampered, golden_text(), "tamper must hit the column list");
    let err = DepStream::from_json(&tampered).expect_err("schema mismatch must be an error");
    assert!(
        err.contains("column schema") && err.contains("refusing"),
        "error must call out the schema difference: {err}"
    );
}

/// Malformed rows (wrong arity) are rejected with the row index.
#[test]
fn short_row_fails_loudly() {
    let golden = golden_text();
    // Drop the trailing deps array from the first op row.
    let tampered = golden.replace(",[]]", "]");
    assert_ne!(tampered, golden);
    let err = DepStream::from_json(&tampered).expect_err("short row must be an error");
    assert!(
        err.contains("op row"),
        "error must locate the bad row: {err}"
    );
}
