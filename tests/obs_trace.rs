//! Golden tests for the observability subsystem: traced engine runs must
//! export well-formed Chrome trace_event JSON, the metrics registry must
//! agree with the raw engine counters, and tracing must be deterministic.

use std::collections::HashMap;

use salam::standalone::{run_kernel, run_kernel_traced, StandaloneConfig};
use salam_bench::runners::run_kernel_observed;
use salam_obs::{export_chrome_json, json, MetricsRegistry, SharedTrace};

fn gemm() -> machsuite::BuiltKernel {
    machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 })
}

fn traced_gemm() -> (salam::RunReport, String) {
    let trace = SharedTrace::enabled();
    let report = run_kernel_traced(&gemm(), &StandaloneConfig::default(), &trace);
    let text = trace
        .with_recorder(export_chrome_json)
        .expect("trace enabled");
    (report, text)
}

/// Walks the exported JSON and checks the structural invariants of the
/// trace_event format: every event carries ph/pid/tid, each thread's B/E
/// stream is balanced and properly nested, and timestamps never go
/// backwards within a thread.
fn validate_chrome_json(text: &str) -> usize {
    let root = json::parse(text).expect("exported trace parses as JSON");
    assert_eq!(
        root.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns")
    );
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must not be empty");

    // tid -> stack of open span names; tid -> last B/E timestamp.
    let mut open: HashMap<i64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<i64, f64> = HashMap::new();
    let mut begins = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph present");
        let tid = ev.get("tid").and_then(|v| v.as_f64()).expect("tid present") as i64;
        assert!(ev.get("pid").is_some(), "pid present");
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .expect("name present");
        if ph == "M" {
            continue; // metadata has no timestamp
        }
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts present");
        assert!(ts.is_finite() && ts >= 0.0, "timestamps are non-negative");
        match ph {
            "B" => {
                let prev = last_ts.entry(tid).or_insert(ts);
                assert!(ts >= *prev, "B at {ts} after {prev} on tid {tid}");
                *prev = ts;
                open.entry(tid).or_default().push(name.to_string());
                begins += 1;
            }
            "E" => {
                let prev = last_ts.entry(tid).or_insert(ts);
                assert!(ts >= *prev, "E at {ts} after {prev} on tid {tid}");
                *prev = ts;
                let top = open
                    .get_mut(&tid)
                    .and_then(|s| s.pop())
                    .unwrap_or_else(|| panic!("E without matching B on tid {tid}"));
                assert_eq!(top, name, "E name matches the innermost open B");
            }
            "i" | "C" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &open {
        assert!(
            stack.is_empty(),
            "tid {tid} left {} spans open",
            stack.len()
        );
    }
    begins
}

#[test]
fn traced_run_exports_wellformed_chrome_json() {
    let (report, text) = traced_gemm();
    let begins = validate_chrome_json(&text);
    // Every issued op opened exactly one span.
    assert_eq!(begins as u64, report.stats.total_issued());
    // The engine's tracks are present and named for the kernel's function.
    let func = gemm().func.name.clone();
    assert!(
        text.contains(&format!("engine.{func}.ops")),
        "ops track named after the kernel"
    );
    assert!(
        text.contains(&format!("engine.{func}.sched")),
        "scheduler track present"
    );
    // Stall instants and per-cycle counters made it through.
    if report.stats.stall_cycles > 0 {
        assert!(
            text.contains("stall:"),
            "stalled run must carry stall instants"
        );
    }
    assert!(text.contains("reservation_depth"));
}

#[test]
fn registry_totals_match_engine_stats() {
    let (report, _) = traced_gemm();
    let mut reg = MetricsRegistry::new();
    report.export_metrics(&mut reg, "accel.gemm");
    let st = &report.stats;
    assert_eq!(reg.get("accel.gemm.engine.cycles"), Some(st.cycles as f64));
    assert_eq!(
        reg.get("accel.gemm.engine.stall_cycles"),
        Some(st.stall_cycles as f64)
    );
    assert_eq!(
        reg.get("accel.gemm.engine.issued.total"),
        Some(st.total_issued() as f64)
    );
    assert_eq!(
        reg.get("accel.gemm.engine.mem.loads"),
        Some(st.loads as f64)
    );
    assert_eq!(
        reg.get("accel.gemm.engine.mem.stores"),
        Some(st.stores as f64)
    );
    assert_eq!(reg.get("accel.gemm.cycles"), Some(report.cycles as f64));
    for (label, n) in &st.stall_breakdown {
        assert_eq!(
            reg.get(&format!("accel.gemm.engine.stall.{label}")),
            Some(*n as f64)
        );
    }
    // The registry dump round-trips through its own JSON export.
    let dumped = json::parse(&reg.to_json()).expect("registry JSON parses");
    assert_eq!(
        dumped
            .get("accel.gemm.engine.cycles")
            .and_then(|v| v.as_f64()),
        Some(st.cycles as f64)
    );
}

#[test]
fn tracing_does_not_change_simulation_results() {
    let (traced, _) = traced_gemm();
    let plain = run_kernel(&gemm(), &StandaloneConfig::default());
    assert_eq!(
        traced.cycles, plain.cycles,
        "tracing must not perturb timing"
    );
    assert!(traced.verified && plain.verified);
    assert_eq!(traced.stats.stall_cycles, plain.stats.stall_cycles);
    assert_eq!(traced.stats.total_issued(), plain.stats.total_issued());
}

#[test]
fn identical_traced_runs_produce_identical_traces() {
    let (ra, ta) = traced_gemm();
    let (rb, tb) = traced_gemm();
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ta, tb, "seeded runs must trace byte-identically");
}

#[test]
fn observed_runner_writes_a_validated_trace_file() {
    let path = std::env::temp_dir().join(format!("salam_obs_test_{}.json", std::process::id()));
    let kernel = gemm();
    let (report, reg) = run_kernel_observed(&kernel, &StandaloneConfig::default(), Some(&path));
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let begins = validate_chrome_json(&text);
    assert_eq!(begins as u64, report.stats.total_issued());
    assert_eq!(
        reg.get(&format!("accel.{}.engine.cycles", kernel.name)),
        Some(report.cycles as f64)
    );
}

#[test]
fn traced_cluster_run_covers_memsys_components() {
    use hw_profile::HardwareProfile;
    use memsys::{DmaCmd, MemMsg, MemReq, ScratchpadConfig};
    use salam::{AcceleratorConfig, ClusterBuilder, ClusterConfig, MemoryStyle};
    use salam_ir::{FunctionBuilder, Type};
    use sim_core::Simulation;

    let mut fb = FunctionBuilder::new("incr", &[("p", Type::Ptr), ("n", Type::I64)]);
    let (p, n) = (fb.arg(0), fb.arg(1));
    let zero = fb.i64c(0);
    fb.counted_loop("i", zero, n, |fb, iv| {
        let g = fb.gep1(Type::I64, p, iv, "g");
        let x = fb.load(Type::I64, g, "x");
        let one = fb.i64c(1);
        let y = fb.add(x, one, "y");
        fb.store(y, g);
    });
    fb.ret();
    let func = fb.finish();

    let mut sim: Simulation<MemMsg> = Simulation::new();
    let mut b = ClusterBuilder::new(ClusterConfig::default(), HardwareProfile::default_40nm());
    b.add_accelerator(
        AcceleratorConfig::new("incr0"),
        func,
        MemoryStyle::PrivateSpm {
            base: 0x1000_0000,
            size: 0x1000,
            spm: ScratchpadConfig::default().with_ports(2, 2),
        },
        0x4000_0000,
        None,
    );
    let (cluster, dram, _gx) = salam::build_system(&mut sim, b, 0x8000_0000, 1 << 20);
    sim.component_as_mut::<memsys::Dram>(dram).unwrap().poke(
        0x8000_0000,
        &[3i64.to_le_bytes(), 4i64.to_le_bytes()].concat(),
    );

    let trace = SharedTrace::enabled();
    cluster.set_trace(&mut sim, &trace);

    let h = cluster.accels[0];
    let col = sim.add_component(memsys::test_util::Collector::new());
    // Stage inputs into the private SPM via the cluster DMA, then program
    // and kick the accelerator.
    sim.post(
        cluster.dma,
        0,
        MemMsg::DmaStart(DmaCmd::new(1, 0x8000_0000, 0x1000_0000, 16, col)),
    );
    for (reg, v) in [(2u64, 0x1000_0000u64), (3, 2)] {
        sim.post(
            cluster.local_xbar,
            100_000,
            MemMsg::Req(MemReq::write(
                reg,
                h.mmr_base + reg * 8,
                v.to_le_bytes().to_vec(),
                col,
            )),
        );
    }
    sim.post(
        cluster.local_xbar,
        200_000,
        MemMsg::Req(MemReq::write(
            9,
            h.mmr_base,
            1u64.to_le_bytes().to_vec(),
            col,
        )),
    );
    sim.run();

    let text = trace.with_recorder(export_chrome_json).expect("enabled");
    validate_chrome_json(&text);
    // Engine, DMA and fabric all contributed tracks.
    assert!(text.contains("engine.incr.ops"));
    assert!(
        text.contains("dma.cluster.dma"),
        "DMA transfer track present"
    );
    assert!(text.contains("\"xfer"), "DMA transfer span present");
    assert!(text.contains("xbar.cluster.local_xbar"));
    assert!(text.contains("spm."), "scratchpad track present");

    // And the unified registry picks up every component's stats.
    let mut reg = MetricsRegistry::new();
    cluster.export_metrics(&sim, &mut reg, "system");
    assert_eq!(reg.get("system.cluster.dma.bytes_moved"), Some(16.0));
    assert!(reg.get("system.incr0.cycles").unwrap_or(0.0) > 0.0);
}
