//! Full-stack integration: every MachSuite benchmark, every execution model.

use gem5_salam_repro::run_verified;
use hw_profile::HardwareProfile;
use machsuite::Bench;
use salam::standalone::{run_kernel, StandaloneConfig};
use salam_aladdin::{derive_datapath, generate_trace, simulate_trace, AladdinMemModel};
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_hls::HlsConfig;
use salam_ir::interp::SparseMemory;

#[test]
fn all_benchmarks_verify_on_the_engine() {
    for bench in Bench::ALL {
        let r = run_verified(bench);
        assert!(r.cycles > 0);
        assert!(r.power.total_mw() > 0.0);
        assert!(r.datapath_area_um2 > 0.0);
    }
}

#[test]
fn engine_cycle_counts_are_reproducible() {
    for bench in [Bench::GemmNcubed, Bench::SpmvCrs, Bench::Bfs] {
        let a = run_verified(bench).cycles;
        let b = run_verified(bench).cycles;
        assert_eq!(a, b, "{bench:?} must be deterministic");
    }
}

#[test]
fn all_three_models_run_every_benchmark() {
    let profile = HardwareProfile::default_40nm();
    for bench in Bench::ALL {
        let k = bench.build_standard();
        // Engine.
        let engine = run_kernel(&k, &StandaloneConfig::default());
        assert!(engine.verified, "{bench:?} engine run wrong");
        // Aladdin trace flow.
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        let trace = generate_trace(&k.func, &k.args, &mut mem);
        let dp = derive_datapath(&k.func, &trace, &profile, &AladdinMemModel::default_spm());
        let ala_cycles = simulate_trace(
            &k.func,
            &trace,
            &dp,
            &profile,
            &AladdinMemModel::default_spm(),
        );
        assert!(ala_cycles > 0, "{bench:?} aladdin produced zero cycles");
        // HLS static schedule (BFS's data-dependent while-loop is excluded,
        // as in the paper's Fig. 10).
        if bench != Bench::Bfs {
            let hls = salam_bench::runners::hls_cycles(
                &k,
                &FuConstraints::unconstrained(),
                &HlsConfig::default(),
            );
            assert!(hls.cycles > 0, "{bench:?} HLS estimate empty");
        }
    }
}

#[test]
fn salam_and_hls_agree_within_a_factor() {
    // Coarse bound on the Fig. 10 relationship for fast CI: the two models
    // must land within 2x of each other on every benchmark.
    for bench in Bench::ALL.into_iter().filter(|b| *b != Bench::Bfs) {
        let k = bench.build_standard();
        let cfg = salam_bench::runners::tuned_standalone(bench);
        let salam = run_kernel(&k, &cfg);
        let hls = salam_bench::runners::hls_cycles_with(
            &k,
            &FuConstraints::unconstrained(),
            &HlsConfig {
                engine_window: cfg.engine.reservation_entries,
                ..HlsConfig::default()
            },
        );
        let ratio = salam.cycles as f64 / hls.cycles as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{bench:?}: SALAM {} vs HLS {} (ratio {ratio:.2})",
            salam.cycles,
            hls.cycles
        );
    }
}

#[test]
fn datapath_constraints_compose_across_the_stack() {
    use hw_profile::FuKind;
    let k = machsuite::md_knn::build(&machsuite::md_knn::Params::default());
    let profile = HardwareProfile::default_40nm();
    // Enforcing FU reuse shrinks area monotonically and never breaks
    // correctness.
    let mut last_area = f64::INFINITY;
    for limit in [16u32, 4, 1] {
        let constraints = FuConstraints::unconstrained()
            .with_limit(FuKind::FpMulF64, limit)
            .with_limit(FuKind::FpAddF64, limit);
        let cdfg = StaticCdfg::elaborate(&k.func, &profile, &constraints);
        let area = cdfg.area_report(&profile).total_um2;
        assert!(area <= last_area);
        last_area = area;
        let r = run_kernel(
            &k,
            &StandaloneConfig::default().with_constraints(constraints),
        );
        assert!(r.verified, "limit {limit} broke correctness");
    }
}

#[test]
fn ir_level_unrolling_is_a_real_dse_knob() {
    // The paper's workflow: apply `#pragma unroll`-style transforms to the
    // IR and watch the datapath widen and the cycle count drop. Here the
    // *pass* does the unrolling on the rolled kernel.
    let rolled = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
    let mut unrolled_func = rolled.func.clone();
    let report = salam_ir::passes::unroll_loops_by(&mut unrolled_func, 4, 1024);
    assert!(report.unrolled >= 1, "the inner k-loop must unroll");
    salam_ir::verify_function(&unrolled_func).unwrap();

    let profile = HardwareProfile::default_40nm();
    let narrow = StaticCdfg::elaborate(&rolled.func, &profile, &FuConstraints::unconstrained());
    let wide = StaticCdfg::elaborate(&unrolled_func, &profile, &FuConstraints::unconstrained());
    assert!(
        wide.fu_count(hw_profile::FuKind::FpMulF64) > narrow.fu_count(hw_profile::FuKind::FpMulF64),
        "unrolling must widen the datapath"
    );

    // Cycle win on the engine with ample bandwidth.
    let cfg = StandaloneConfig::default().with_ports(8);
    let base = run_kernel(&rolled, &cfg);
    assert!(base.verified);
    let unrolled_kernel = machsuite::BuiltKernel::new(
        "gemm-pass-unrolled",
        unrolled_func,
        rolled.args.clone(),
        rolled.init.clone(),
        Box::new(|_| Ok(())), // cycle comparison only; correctness is checked below
    );
    let faster = run_kernel(&unrolled_kernel, &cfg);
    assert!(
        faster.cycles < base.cycles,
        "unrolled {} vs rolled {}",
        faster.cycles,
        base.cycles
    );

    // And the unrolled function still computes the right matrix.
    let mut mem = salam_ir::interp::SparseMemory::new();
    rolled.load_into(&mut mem);
    salam_ir::interp::run_function(
        &unrolled_kernel.func,
        &unrolled_kernel.args,
        &mut mem,
        &mut salam_ir::interp::NullObserver,
        100_000_000,
    )
    .unwrap();
    rolled.check(&mut mem).unwrap();
}
