//! Full-system integration: clusters, hosts, DMAs and multi-accelerator
//! pipelines working together.

use machsuite::Bench;
use salam_bench::fig16::{run_scenario, Scenario};
use salam_bench::table3::simulate_system;

#[test]
fn end_to_end_system_runs_verify_in_dram() {
    // Host DMAs data in, programs the accelerator over MMRs, waits for the
    // done notification, DMAs results back — and DRAM holds correct output.
    for bench in [Bench::GemmNcubed, Bench::Stencil2d, Bench::Nw] {
        let k = bench.build_standard();
        let (e2e, verified) = simulate_system(&k);
        assert!(verified, "{bench:?}: wrong results in DRAM");
        assert!(e2e.compute_us > 0.0 && e2e.xfer_us > 0.0);
        assert!(e2e.total_us >= e2e.compute_us + e2e.xfer_us * 0.5);
    }
}

#[test]
fn cnn_scenarios_are_correct_and_ordered() {
    let a = run_scenario(Scenario::PrivateSpm);
    let b = run_scenario(Scenario::SharedSpm);
    let c = run_scenario(Scenario::Stream);
    assert!(a.verified && b.verified && c.verified);
    // The paper's Fig. 16 ordering: baseline slowest, streams fastest.
    assert!(
        b.total_ns < a.total_ns,
        "shared SPM should beat private+DMA"
    );
    assert!(c.total_ns < b.total_ns, "streams should beat shared SPM");
}

#[test]
fn stream_pipeline_overlaps_stages() {
    let a = run_scenario(Scenario::PrivateSpm);
    let c = run_scenario(Scenario::Stream);
    // In the host-sequenced baseline the busy spans are disjoint, so their
    // sum is less than the total; in the stream pipeline the consumers run
    // for (almost) the whole producer span — their spans overlap.
    let sum_a: f64 = a.accel_spans_ns.iter().map(|(_, s)| s).sum();
    let sum_c: f64 = c.accel_spans_ns.iter().map(|(_, s)| s).sum();
    assert!(sum_a < a.total_ns, "baseline stages are serialized");
    assert!(
        sum_c > c.total_ns,
        "stream stages must overlap: spans {sum_c:.0} ns vs total {:.0} ns",
        c.total_ns
    );
}

#[test]
fn system_timing_is_deterministic() {
    let a = run_scenario(Scenario::Stream);
    let b = run_scenario(Scenario::Stream);
    assert_eq!(a.total_ns.to_bits(), b.total_ns.to_bits());
}

#[test]
fn stream_dma_feeds_an_accelerator_directly() {
    // The paper's stream-input interface: a stream DMA pulls data from DRAM
    // and pushes beats into a FIFO that the accelerator consumes with plain
    // loads — no scratchpad staging for the input at all.
    use memsys::{
        DmaCmd, MemMsg, MemReq, ScratchpadConfig, StreamBuffer, StreamBufferConfig, StreamDma,
        StreamDmaConfig,
    };
    use salam_bench::cnn;
    use sim_core::Simulation;

    let n = cnn::CONV_DIM * cnn::CONV_DIM;
    let mut rng = machsuite::data::rng(77);
    let input = machsuite::data::f32_vec(&mut rng, n, -2.0, 2.0);

    let mut sim: Simulation<MemMsg> = Simulation::new();
    let dram = sim.add_component(memsys::Dram::new(
        "dram",
        memsys::DramConfig::default(),
        0x8000_0000,
        1 << 20,
    ));
    sim.component_as_mut::<memsys::Dram>(dram)
        .unwrap()
        .poke(0x8000_0000, &machsuite::data::f32_bytes(&input));

    let fifo_cfg = StreamBufferConfig {
        capacity_beats: 16,
        beat_bytes: 4,
        ..Default::default()
    };
    let fifo = sim.add_component(StreamBuffer::new("in_stream", fifo_cfg));
    let sdma = sim.add_component(StreamDma::new(
        "sdma",
        StreamDmaConfig {
            port: dram,
            beat_bytes: 4,
            stream_target: Some(fifo),
            initial_credits: fifo_cfg.capacity_beats,
        },
    ));

    // ReLU accelerator: stream in (loads from the FIFO address), indexed
    // writes to a private SPM.
    let spm = sim.add_component(memsys::Scratchpad::new(
        "out_spm",
        ScratchpadConfig::default().with_ports(2, 2),
        0x1000_0000,
        0x4000,
    ));
    let func = cnn::relu_kernel(true, false);
    let cu = salam::ComputeUnit::new(
        salam::AcceleratorConfig::new("relu"),
        salam::CommConfig {
            local_range: (0x1000_0000, 0x1000_4000),
            local_target: Some(spm),
            global_target: Some(fifo),
            ..Default::default()
        },
        func,
        hw_profile::HardwareProfile::default_40nm(),
    );
    let stream_addr = 0x3000_0000u64;
    let out_addr = 0x1000_0000u64;
    let cu_id = sim.add_component(cu);
    let mmr = sim.add_component(memsys::MmrBlock::new("mmr", 0x7000_0000, 8, Some(cu_id)));
    sim.component_as_mut::<salam::ComputeUnit>(cu_id)
        .unwrap()
        .set_mmr(mmr, 0x7000_0000);

    let col = sim.add_component(memsys::test_util::Collector::new());
    for (reg, v) in [(2u64, stream_addr), (3, out_addr)] {
        sim.post(
            mmr,
            0,
            MemMsg::Req(MemReq::write(
                reg,
                0x7000_0000 + reg * 8,
                v.to_le_bytes().to_vec(),
                col,
            )),
        );
    }
    // Kick the stream DMA and the accelerator concurrently: backpressure
    // synchronizes them.
    sim.post(
        sdma,
        10_000,
        MemMsg::DmaStart(DmaCmd::new(1, 0x8000_0000, 0, (n * 4) as u64, col)),
    );
    sim.post(
        mmr,
        20_000,
        MemMsg::Req(MemReq::write(
            9,
            0x7000_0000,
            1u64.to_le_bytes().to_vec(),
            col,
        )),
    );
    sim.run();

    let s = sim.component_as::<memsys::Scratchpad>(spm).unwrap();
    let got: Vec<f32> = s
        .peek(out_addr, n * 4)
        .chunks(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    for (i, &v) in got.iter().enumerate() {
        assert_eq!(v, input[i].max(0.0), "element {i}");
    }
    let f = sim.component_as::<StreamBuffer>(fifo).unwrap();
    assert_eq!(f.beats_in() as usize, n);
    assert_eq!(f.beats_out() as usize, n);
}
