//! Property-based cross-model tests: the reference interpreter, the
//! optimization passes, the textual round-trip, and the cycle-accurate
//! runtime engine must all agree on randomly generated kernels.
//!
//! Randomness comes from the in-tree seeded-case harness
//! (`salam_obs::det`), so the cases are identical on every platform and
//! the suite needs no crates.io dependencies.

use salam_obs::det::{check_cases, SplitMix64};

use hw_profile::HardwareProfile;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::{run_function, NullObserver, RtVal, SparseMemory};
use salam_ir::{
    parse_module, FloatPredicate, Function, FunctionBuilder, IntPredicate, Module, Type,
};
use salam_runtime::{Engine, EngineConfig, SimpleMem};

/// One step of a random straight-line computation over two value pools.
#[derive(Debug, Clone)]
enum Op {
    IAdd(usize, usize),
    ISub(usize, usize),
    IMul(usize, usize),
    IMin(usize, usize),
    Shl(usize, u8),
    FAdd(usize, usize),
    FSub(usize, usize),
    FMul(usize, usize),
    FMax(usize, usize),
}

fn gen_op(g: &mut SplitMix64) -> Op {
    let a = g.range_usize(0, 64);
    let b = g.range_usize(0, 64);
    match g.range_usize(0, 9) {
        0 => Op::IAdd(a, b),
        1 => Op::ISub(a, b),
        2 => Op::IMul(a, b),
        3 => Op::IMin(a, b),
        4 => Op::Shl(a, g.range_u64(0, 6) as u8),
        5 => Op::FAdd(a, b),
        6 => Op::FSub(a, b),
        7 => Op::FMul(a, b),
        _ => Op::FMax(a, b),
    }
}

fn gen_ops(g: &mut SplitMix64, lo: usize, hi: usize) -> Vec<Op> {
    let n = g.range_usize(lo, hi);
    (0..n).map(|_| gen_op(g)).collect()
}

fn gen_ints(g: &mut SplitMix64) -> [i64; 4] {
    std::array::from_fn(|_| g.range_i64(-1000, 1000))
}

fn gen_floats(g: &mut SplitMix64) -> [f64; 4] {
    std::array::from_fn(|_| g.range_f64(-100.0, 100.0))
}

/// Builds a kernel that loads 4 ints and 4 floats, applies `ops`, and
/// stores the final pools back.
fn build_kernel(ops: &[Op]) -> Function {
    let mut fb = FunctionBuilder::new("rand_kernel", &[("iv", Type::Ptr), ("fv", Type::Ptr)]);
    let ivp = fb.arg(0);
    let fvp = fb.arg(1);
    let mut ints = Vec::new();
    let mut floats = Vec::new();
    for i in 0..4i64 {
        let idx = fb.i64c(i);
        let p = fb.gep1(Type::I64, ivp, idx, "pi");
        ints.push(fb.load(Type::I64, p, "iv"));
        let pf = fb.gep1(Type::F64, fvp, idx, "pf");
        floats.push(fb.load(Type::F64, pf, "fvv"));
    }
    for op in ops {
        match *op {
            Op::IAdd(a, b) => {
                let (x, y) = (ints[a % ints.len()], ints[b % ints.len()]);
                let v = fb.add(x, y, "v");
                ints.push(v);
            }
            Op::ISub(a, b) => {
                let (x, y) = (ints[a % ints.len()], ints[b % ints.len()]);
                let v = fb.sub(x, y, "v");
                ints.push(v);
            }
            Op::IMul(a, b) => {
                let (x, y) = (ints[a % ints.len()], ints[b % ints.len()]);
                let v = fb.mul(x, y, "v");
                ints.push(v);
            }
            Op::IMin(a, b) => {
                let (x, y) = (ints[a % ints.len()], ints[b % ints.len()]);
                let c = fb.icmp(IntPredicate::Slt, x, y, "c");
                let v = fb.select(c, x, y, "v");
                ints.push(v);
            }
            Op::Shl(a, s) => {
                let x = ints[a % ints.len()];
                let sh = fb.i64c(s as i64);
                let v = fb.shl(x, sh, "v");
                ints.push(v);
            }
            Op::FAdd(a, b) => {
                let (x, y) = (floats[a % floats.len()], floats[b % floats.len()]);
                let v = fb.fadd(x, y, "v");
                floats.push(v);
            }
            Op::FSub(a, b) => {
                let (x, y) = (floats[a % floats.len()], floats[b % floats.len()]);
                let v = fb.fsub(x, y, "v");
                floats.push(v);
            }
            Op::FMul(a, b) => {
                let (x, y) = (floats[a % floats.len()], floats[b % floats.len()]);
                let v = fb.fmul(x, y, "v");
                floats.push(v);
            }
            Op::FMax(a, b) => {
                let (x, y) = (floats[a % floats.len()], floats[b % floats.len()]);
                let c = fb.fcmp(FloatPredicate::Ogt, x, y, "c");
                let v = fb.select(c, x, y, "v");
                floats.push(v);
            }
        }
    }
    // Store the last 4 of each pool.
    for i in 0..4usize {
        let idx = fb.i64c((4 + i) as i64);
        let p = fb.gep1(Type::I64, ivp, idx, "po");
        let v = ints[ints.len() - 1 - i];
        fb.store(v, p);
        let pf = fb.gep1(Type::F64, fvp, idx, "pfo");
        let fvv = floats[floats.len() - 1 - i];
        fb.store(fvv, pf);
    }
    fb.ret();
    fb.finish()
}

fn interp_outputs(f: &Function, ints: &[i64; 4], floats: &[f64; 4]) -> (Vec<i64>, Vec<f64>) {
    let mut mem = SparseMemory::new();
    mem.write_i64_slice(0x1000, ints);
    mem.write_f64_slice(0x2000, floats);
    run_function(
        f,
        &[RtVal::P(0x1000), RtVal::P(0x2000)],
        &mut mem,
        &mut NullObserver,
        1_000_000,
    )
    .expect("interpreter run");
    (mem.read_i64_slice(0x1020, 4), mem.read_f64_slice(0x2020, 4))
}

fn engine_outputs(f: &Function, ints: &[i64; 4], floats: &[f64; 4]) -> (Vec<i64>, Vec<f64>, u64) {
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(f, &profile, &FuConstraints::unconstrained());
    let mut mem = SimpleMem::new(1, 2, 2);
    mem.memory_mut().write_i64_slice(0x1000, ints);
    mem.memory_mut().write_f64_slice(0x2000, floats);
    let mut e = Engine::new(
        f.clone(),
        cdfg,
        profile,
        EngineConfig::default(),
        vec![RtVal::P(0x1000), RtVal::P(0x2000)],
    );
    let cycles = e.run_to_completion(&mut mem);
    (
        mem.memory_mut().read_i64_slice(0x1020, 4),
        mem.memory_mut().read_f64_slice(0x2020, 4),
        cycles,
    )
}

fn floats_eq(a: &[f64], b: &[f64]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| (x == y) || (x.is_nan() && y.is_nan()))
}

/// The cycle-accurate engine computes exactly what the interpreter does.
#[test]
fn engine_matches_interpreter() {
    check_cases("engine_matches_interpreter", 48, 0xE1, |g| {
        let ops = gen_ops(g, 1, 40);
        let ints = gen_ints(g);
        let floats = gen_floats(g);
        let f = build_kernel(&ops);
        salam_ir::verify_function(&f).unwrap();
        let (wi, wf) = interp_outputs(&f, &ints, &floats);
        let (gi, gf, cycles) = engine_outputs(&f, &ints, &floats);
        assert_eq!(wi, gi);
        assert!(floats_eq(&wf, &gf));
        assert!(cycles > 0);
    });
}

/// Constant folding + DCE never change observable behaviour.
#[test]
fn passes_preserve_semantics() {
    check_cases("passes_preserve_semantics", 48, 0xE2, |g| {
        let ops = gen_ops(g, 1, 40);
        let ints = gen_ints(g);
        let floats = gen_floats(g);
        let f = build_kernel(&ops);
        let (wi, wf) = interp_outputs(&f, &ints, &floats);
        let mut opt = f.clone();
        salam_ir::passes::run_default_pipeline(&mut opt);
        salam_ir::verify_function(&opt).unwrap();
        let (oi, of) = interp_outputs(&opt, &ints, &floats);
        assert_eq!(wi, oi);
        assert!(floats_eq(&wf, &of));
    });
}

/// Textual printing and parsing round-trip to a fixed point.
#[test]
fn print_parse_roundtrip() {
    check_cases("print_parse_roundtrip", 48, 0xE3, |g| {
        let ops = gen_ops(g, 1, 30);
        let f = build_kernel(&ops);
        let mut m = Module::new("m");
        m.add_function(f);
        let text = m.to_string();
        let parsed = parse_module(&text).unwrap();
        assert_eq!(parsed.to_string(), text);
    });
}

/// The engine is deterministic: identical inputs give identical cycle
/// counts and results.
#[test]
fn engine_is_deterministic() {
    check_cases("engine_is_deterministic", 48, 0xE4, |g| {
        let ops = gen_ops(g, 1, 25);
        let ints = gen_ints(g);
        let floats = gen_floats(g);
        let f = build_kernel(&ops);
        let a = engine_outputs(&f, &ints, &floats);
        let b = engine_outputs(&f, &ints, &floats);
        assert_eq!(a.0, b.0);
        assert!(floats_eq(&a.1, &b.1));
        assert_eq!(a.2, b.2);
    });
}
