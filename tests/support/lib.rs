//! Shared helpers for the workspace-level integration tests and examples.
//!
//! The substantial public API lives in the member crates; this root crate
//! exists so the top-level `tests/` and `examples/` directories can span
//! all of them, and re-exports the pieces those targets use most.

pub use hw_profile::{FuKind, HardwareProfile};
pub use machsuite::{Bench, BuiltKernel};
pub use salam::standalone::{run_kernel, StandaloneConfig};
pub use salam_cdfg::{FuConstraints, StaticCdfg};

/// Runs a benchmark at its standard size and asserts bit-correct output.
pub fn run_verified(bench: Bench) -> salam::RunReport {
    let kernel = bench.build_standard();
    let report = run_kernel(&kernel, &StandaloneConfig::default());
    assert!(report.verified, "{} failed verification", kernel.name);
    report
}
