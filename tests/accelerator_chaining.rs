//! Accelerator-to-accelerator control: one accelerator programs and starts
//! a peer through the peer's memory-mapped registers, with no host
//! involvement between stages — the paper's "accelerators can communicate
//! directly with each other and self-synchronize" claim (§III-D2/D3).

use memsys::{MemMsg, MemReq, Scratchpad};
use salam::{AcceleratorConfig, ClusterBuilder, ClusterConfig, ComputeUnit, MemoryStyle};
use salam_ir::{Function, FunctionBuilder, Type};
use sim_core::Simulation;

const SHARED: u64 = 0x2000_0000;
const B_MMR: u64 = 0x4000_1000;

/// Stage A: doubles 8 values in the shared SPM, flushes (re-loads what it
/// wrote, so the kick is data-dependent on every store having committed),
/// then *starts accelerator B* by storing 1 to B's control register —
/// chaining through the fabric with a software fence, exactly as a
/// bare-metal producer would.
fn stage_a() -> Function {
    let mut fb = FunctionBuilder::new("stage_a", &[("data", Type::Ptr), ("peer_ctrl", Type::Ptr)]);
    let data = fb.arg(0);
    let peer = fb.arg(1);
    let zero = fb.i64c(0);
    let n = fb.i64c(8);
    fb.counted_loop("i", zero, n, |fb, i| {
        let p = fb.gep1(Type::I64, data, i, "p");
        let x = fb.load(Type::I64, p, "x");
        let two = fb.i64c(2);
        let y = fb.mul(x, two, "y");
        fb.store(y, p);
    });
    // Flush barrier: read back everything written; these loads cannot issue
    // until the overlapping stores commit, and the kick value depends on
    // them, so the doorbell orders after the data.
    let fence = fb.counted_loop_accs("flush", zero, n, 1, &[(Type::I64, zero)], |fb, i, accs| {
        let p = fb.gep1(Type::I64, data, i, "p");
        let x = fb.load(Type::I64, p, "x");
        let acc = fb.or(accs[0], x, "acc");
        vec![acc]
    });
    // kick = 1 | (fence & 0): value 1, dependent on the flush.
    let zero64 = fb.i64c(0);
    let masked = fb.and(fence[0], zero64, "masked");
    let one = fb.i64c(1);
    let kick = fb.or(masked, one, "kick");
    fb.store(kick, peer);
    fb.ret();
    fb.finish()
}

/// Stage B: adds 100 to each value (runs only after A starts it).
fn stage_b() -> Function {
    let mut fb = FunctionBuilder::new("stage_b", &[("data", Type::Ptr)]);
    let data = fb.arg(0);
    let zero = fb.i64c(0);
    let n = fb.i64c(8);
    fb.counted_loop("i", zero, n, |fb, i| {
        let p = fb.gep1(Type::I64, data, i, "p");
        let x = fb.load(Type::I64, p, "x");
        let hundred = fb.i64c(100);
        let y = fb.add(x, hundred, "y");
        fb.store(y, p);
    });
    fb.ret();
    fb.finish()
}

#[test]
fn accelerator_starts_its_peer_through_mmrs() {
    let mut sim: Simulation<MemMsg> = Simulation::new();
    let mut b = ClusterBuilder::new(
        ClusterConfig::default(),
        hw_profile::HardwareProfile::default_40nm(),
    );
    b.add_accelerator(
        AcceleratorConfig::new("stage_a"),
        stage_a(),
        MemoryStyle::GlobalOnly,
        0x4000_0000,
        None,
    );
    b.add_accelerator(
        AcceleratorConfig::new("stage_b"),
        stage_b(),
        MemoryStyle::GlobalOnly,
        B_MMR,
        None,
    );
    let (cluster, _dram, _gx) = salam::build_system(&mut sim, b, 0x8000_0000, 1 << 20);
    let a = cluster.accels[0];
    let bh = cluster.accels[1];
    let shared = cluster.shared_spm.unwrap();
    sim.component_as_mut::<Scratchpad>(shared).unwrap().poke(
        SHARED,
        &(1..=8i64)
            .flat_map(|v| v.to_le_bytes())
            .collect::<Vec<u8>>(),
    );

    // Program both argument sets up front, then start only A. B must be
    // started by A itself.
    let col = sim.add_component(memsys::test_util::Collector::new());
    let writes = [
        (a.mmr_base + 16, SHARED),  // A.arg0 = data
        (a.mmr_base + 24, B_MMR),   // A.arg1 = peer control register
        (bh.mmr_base + 16, SHARED), // B.arg0 = data
    ];
    for (i, (addr, v)) in writes.iter().enumerate() {
        sim.post(
            cluster.local_xbar,
            i as u64,
            MemMsg::Req(MemReq::write(
                i as u64,
                *addr,
                v.to_le_bytes().to_vec(),
                col,
            )),
        );
    }
    sim.post(
        cluster.local_xbar,
        50_000,
        MemMsg::Req(MemReq::write(
            99,
            a.mmr_base,
            1u64.to_le_bytes().to_vec(),
            col,
        )),
    );
    sim.run();

    // Both stages ran, in order, and B's effect landed after A's.
    let cu_a = sim.component_as::<ComputeUnit>(a.unit).unwrap();
    let cu_b = sim.component_as::<ComputeUnit>(bh.unit).unwrap();
    assert_eq!(cu_a.invocations(), 1, "A must run");
    assert_eq!(
        cu_b.invocations(),
        1,
        "B must be started by A, not the host"
    );
    let (_, a_end) = cu_a.span();
    let (b_start, _) = cu_b.span();
    assert!(
        b_start.unwrap() >= a_end.unwrap_or(0).saturating_sub(100_000),
        "B starts at A's tail, not before"
    );

    let s = sim.component_as::<Scratchpad>(shared).unwrap();
    let got: Vec<i64> = s
        .peek(SHARED, 64)
        .chunks(8)
        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let want: Vec<i64> = (1..=8).map(|v| v * 2 + 100).collect();
    assert_eq!(got, want, "pipeline result: (x*2)+100");
}
