//! Kernels written as textual LLVM-like IR run through the whole stack —
//! the paper's "takes unmodified LLVM code generated from any language"
//! claim, minus clang.

use hw_profile::HardwareProfile;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::RtVal;
use salam_ir::parse_module;
use salam_runtime::{Engine, EngineConfig, SimpleMem};

/// A SAXPY kernel as it would come out of `clang -O1 -S -emit-llvm`.
const SAXPY_LL: &str = r#"
define void @saxpy(ptr %x, ptr %y, double %unused, i64 %n) {
entry:
  br label %loop.header
loop.header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop.body ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %loop.body, label %exit
loop.body:
  %px = getelementptr double, ptr %x, i64 %i
  %xv = load double, ptr %px
  %py = getelementptr double, ptr %y, i64 %i
  %yv = load double, ptr %py
  %ax = fmul double %xv, 2.0
  %s = fadd double %ax, %yv
  store double %s, ptr %py
  %i.next = add i64 %i, 1
  br label %loop.header
exit:
  ret void
}
"#;

#[test]
fn textual_kernel_runs_on_the_engine() {
    let module = parse_module(SAXPY_LL).expect("valid IR");
    let f = module.function("saxpy").expect("function present");
    salam_ir::verify_function(f).unwrap();

    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(f, &profile, &FuConstraints::unconstrained());
    assert_eq!(cdfg.fu_count(hw_profile::FuKind::FpMulF64), 1);
    assert_eq!(cdfg.fu_count(hw_profile::FuKind::FpAddF64), 1);

    let mut mem = SimpleMem::new(1, 2, 2);
    let xs: Vec<f64> = (0..16).map(|i| i as f64).collect();
    let ys: Vec<f64> = (0..16).map(|i| 100.0 + i as f64).collect();
    mem.memory_mut().write_f64_slice(0x1000, &xs);
    mem.memory_mut().write_f64_slice(0x2000, &ys);
    let mut engine = Engine::new(
        f.clone(),
        cdfg,
        profile,
        EngineConfig::default(),
        vec![
            RtVal::P(0x1000),
            RtVal::P(0x2000),
            RtVal::F(0.0),
            RtVal::I(16),
        ],
    );
    let cycles = engine.run_to_completion(&mut mem);
    assert!(
        cycles > 16,
        "a 16-element saxpy takes more than one cycle each"
    );

    let got = mem.memory_mut().read_f64_slice(0x2000, 16);
    for (i, &v) in got.iter().enumerate() {
        assert_eq!(v, 2.0 * xs[i] + (100.0 + i as f64));
    }
}

#[test]
fn textual_kernel_roundtrips_through_the_printer() {
    let module = parse_module(SAXPY_LL).unwrap();
    let printed = module.to_string();
    let reparsed = parse_module(&printed).unwrap();
    assert_eq!(reparsed.to_string(), printed);
}

#[test]
fn parse_errors_are_actionable() {
    let err =
        parse_module("define void @broken() {\nentry:\n  %x = frobnicate i32 1\n}\n").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.to_string().contains("frobnicate"));
}
