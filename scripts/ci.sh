#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has zero external dependencies, so every step runs with
# --offline and never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

run() { echo "+ $*"; "$@"; }

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline

# DSE smoke sweep: 2 kernels x 4 points on 2 workers, twice against a
# scratch cache. The first run simulates everything; the second must be
# served entirely from the cache.
dse_cache="$(mktemp -d)"
trap 'rm -rf "$dse_cache"' EXIT
smoke() {
  SALAM_JOBS=2 SALAM_DSE_CACHE="$dse_cache" \
    cargo run --release -q --offline -p salam-bench --bin dse_smoke
}
echo "+ dse_smoke (cold cache)"
smoke | tail -n 1
echo "+ dse_smoke (warm cache)"
warm="$(smoke | tail -n 1)"
echo "$warm"
case "$warm" in
  *"hits=8 misses=0 corrupt=0"*) ;;
  *) echo "ci: DSE cache re-run was not fully served from cache" >&2; exit 1 ;;
esac

# Bottleneck-report smoke: one MachSuite kernel with profiling on. The
# binary self-checks the accounting invariant (attribution buckets sum
# exactly to total cycles, critical path fits in the run) and prints a
# stable marker line on success.
echo "+ salam_report gemm (invariant smoke)"
prof="$(cargo run --release -q --offline -p salam-bench --bin salam_report -- gemm)"
echo "$prof" | tail -n 1
case "$prof" in
  *"invariant: attribution==cycles ok"*) ;;
  *) echo "ci: salam_report invariant marker missing" >&2; exit 1 ;;
esac

echo "ci: all checks passed"
