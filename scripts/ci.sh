#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has zero external dependencies, so every step runs with
# --offline and never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

run() { echo "+ $*"; "$@"; }

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline

# DSE smoke sweep: 2 kernels x 4 points on 2 workers, twice against a
# scratch cache. The first run simulates everything; the second must be
# served entirely from the cache.
dse_cache="$(mktemp -d)"
trap 'rm -rf "$dse_cache"' EXIT
smoke() {
  SALAM_JOBS=2 SALAM_DSE_CACHE="$dse_cache" \
    cargo run --release -q --offline -p salam-bench --bin dse_smoke
}
echo "+ dse_smoke (cold cache)"
smoke | tail -n 1
echo "+ dse_smoke (warm cache)"
warm="$(smoke | tail -n 1)"
echo "$warm"
case "$warm" in
  *"hits=8 misses=0 corrupt=0"*) ;;
  *) echo "ci: DSE cache re-run was not fully served from cache" >&2; exit 1 ;;
esac

# Panic isolation: one deliberately-panicking design point must not kill
# the sweep — it becomes a failed row, counted in the summary, and is
# never cached (a fresh cache dir keeps this independent of the run
# above).
echo "+ dse_smoke --inject-panic (panic isolation)"
panic_cache="$(mktemp -d)"
panicked="$(SALAM_JOBS=2 SALAM_DSE_CACHE="$panic_cache" \
  cargo run --release -q --offline -p salam-bench --bin dse_smoke -- --inject-panic \
  2>/dev/null | tail -n 1)"
rm -rf "$panic_cache"
echo "$panicked"
case "$panicked" in
  *"failed=1"*) ;;
  *) echo "ci: panicking job did not surface as failed=1" >&2; exit 1 ;;
esac

# Static screening: one design point with a statically invalid config
# (zero SPM read ports) must be rejected pre-flight as an invalid row,
# counted in the summary, and never handed a simulation slot or a cache
# entry.
echo "+ dse_smoke --inject-invalid (static screening)"
invalid_cache="$(mktemp -d)"
screened="$(SALAM_JOBS=2 SALAM_DSE_CACHE="$invalid_cache" \
  cargo run --release -q --offline -p salam-bench --bin dse_smoke -- --inject-invalid \
  | tail -n 1)"
rm -rf "$invalid_cache"
echo "$screened"
case "$screened" in
  *"failed=0 invalid=1"*) ;;
  *) echo "ci: invalid point did not surface as invalid=1" >&2; exit 1 ;;
esac

# Lint smoke: the checked-in textual-IR fixtures must parse, verify and
# stay free of diagnostics — salam_lint exits non-zero on any error (or,
# with --deny warnings, on any warning).
echo "+ salam_lint examples/ir (deny warnings)"
lint="$(cargo run --release -q --offline -p salam-bench --bin salam_lint -- \
  examples/ir/gemm.ll examples/ir/spmv.ll examples/ir/nw.ll --deny warnings)"
echo "$lint" | tail -n 1
case "$lint" in
  *"lint: targets=3"*"errors=0"*) ;;
  *) echo "ci: salam_lint marker line missing" >&2; exit 1 ;;
esac

# Fault-injection smoke: a seeded campaign over two kernels. The outcome
# table and counts are a pure function of the seeds, so two runs must be
# byte-identical and the marker line must show the expected mix of
# outcome classes.
echo "+ fault_smoke (seeded campaign, twice)"
fault_a="$(cargo run --release -q --offline -p salam-bench --bin fault_smoke)"
fault_b="$(cargo run --release -q --offline -p salam-bench --bin fault_smoke)"
echo "$fault_a" | tail -n 1
if [ "$fault_a" != "$fault_b" ]; then
  echo "ci: fault campaign is not reproducible across runs" >&2; exit 1
fi
case "$fault_a" in
  *"fault_smoke: kernels=2 seeds=12"*) ;;
  *) echo "ci: fault_smoke marker line missing" >&2; exit 1 ;;
esac
case "$fault_a" in
  *"masked=0"*|*"sdc=0"*|*"deadlock=0"*)
    echo "ci: fault campaign must exercise masked, sdc and deadlock outcomes" >&2
    exit 1 ;;
esac

# Bottleneck-report smoke: one MachSuite kernel with profiling on. The
# binary self-checks the accounting invariant (attribution buckets sum
# exactly to total cycles, critical path fits in the run) and prints a
# stable marker line on success.
echo "+ salam_report gemm (invariant smoke)"
prof="$(cargo run --release -q --offline -p salam-bench --bin salam_report -- gemm)"
echo "$prof" | tail -n 1
case "$prof" in
  *"invariant: attribution==cycles ok"*) ;;
  *) echo "ci: salam_report invariant marker missing" >&2; exit 1 ;;
esac

echo "ci: all checks passed"
