#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has zero external dependencies, so every step runs with
# --offline and never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

run() { echo "+ $*"; "$@"; }

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline

# DSE smoke sweep: 2 kernels x 4 points on 2 workers, twice against a
# scratch cache. The first run simulates everything; the second must be
# served entirely from the cache.
dse_cache="$(mktemp -d)"
trap 'rm -rf "$dse_cache"' EXIT
smoke() {
  SALAM_JOBS=2 SALAM_DSE_CACHE="$dse_cache" \
    cargo run --release -q --offline -p salam-bench --bin dse_smoke
}
echo "+ dse_smoke (cold cache)"
smoke | tail -n 1
echo "+ dse_smoke (warm cache)"
warm="$(smoke | tail -n 1)"
echo "$warm"
case "$warm" in
  *"hits=8 misses=0 corrupt=0"*) ;;
  *) echo "ci: DSE cache re-run was not fully served from cache" >&2; exit 1 ;;
esac

# Panic isolation: one deliberately-panicking design point must not kill
# the sweep — it becomes a failed row, counted in the summary, and is
# never cached (a fresh cache dir keeps this independent of the run
# above).
echo "+ dse_smoke --inject-panic (panic isolation)"
panic_cache="$(mktemp -d)"
panicked="$(SALAM_JOBS=2 SALAM_DSE_CACHE="$panic_cache" \
  cargo run --release -q --offline -p salam-bench --bin dse_smoke -- --inject-panic \
  2>/dev/null | tail -n 1)"
rm -rf "$panic_cache"
echo "$panicked"
case "$panicked" in
  *"failed=1"*) ;;
  *) echo "ci: panicking job did not surface as failed=1" >&2; exit 1 ;;
esac

# Static screening: one design point with a statically invalid config
# (zero SPM read ports) must be rejected pre-flight as an invalid row,
# counted in the summary, and never handed a simulation slot or a cache
# entry.
echo "+ dse_smoke --inject-invalid (static screening)"
invalid_cache="$(mktemp -d)"
screened="$(SALAM_JOBS=2 SALAM_DSE_CACHE="$invalid_cache" \
  cargo run --release -q --offline -p salam-bench --bin dse_smoke -- --inject-invalid \
  | tail -n 1)"
rm -rf "$invalid_cache"
echo "$screened"
case "$screened" in
  *"failed=0 invalid=1"*) ;;
  *) echo "ci: invalid point did not surface as invalid=1" >&2; exit 1 ;;
esac

# Flow-based pruning: dominated design points must be screened out as
# pruned rows without simulating; the probe itself re-simulates each
# pruned point once and asserts the dominance chain held (a pruned row
# was provably never a winner).
echo "+ dse_smoke --prune (flow-based pruning)"
prune_cache="$(mktemp -d)"
pruned="$(SALAM_JOBS=2 SALAM_DSE_CACHE="$prune_cache" \
  cargo run --release -q --offline -p salam-bench --bin dse_smoke -- --prune \
  2>/dev/null | tail -n 1)"
rm -rf "$prune_cache"
echo "$pruned"
case "$pruned" in
  *"pruned=0"*) echo "ci: prune probe pruned nothing" >&2; exit 1 ;;
  *"pruned="*) ;;
  *) echo "ci: prune probe reported no pruned= summary" >&2; exit 1 ;;
esac

# Lint smoke: the checked-in textual-IR fixtures must parse, verify and
# stay free of diagnostics — salam_lint exits non-zero on any error (or,
# with --deny warnings, on any warning).
echo "+ salam_lint examples/ir (deny warnings)"
lint="$(cargo run --release -q --offline -p salam-bench --bin salam_lint -- \
  examples/ir/gemm.ll examples/ir/spmv.ll examples/ir/nw.ll --deny warnings)"
echo "$lint" | tail -n 1
case "$lint" in
  *"lint: targets=3"*"errors=0"*) ;;
  *) echo "ci: salam_lint marker line missing" >&2; exit 1 ;;
esac

# Dataflow report determinism: the flow facts (ranges, trips, bound
# decomposition) are a pure function of the kernel — byte-identical
# regardless of the worker-pool environment.
echo "+ salam_lint --flow determinism (SALAM_JOBS=1 vs 8)"
flow_1="$(SALAM_JOBS=1 cargo run --release -q --offline -p salam-bench --bin salam_lint -- \
  gemm nw md-grid --flow)"
flow_8="$(SALAM_JOBS=8 cargo run --release -q --offline -p salam-bench --bin salam_lint -- \
  gemm nw md-grid --flow)"
if [ "$flow_1" != "$flow_8" ]; then
  echo "ci: flow facts differ across SALAM_JOBS settings" >&2; exit 1
fi
case "$flow_1" in
  *"flow: "*"bound base="*) ;;
  *) echo "ci: salam_lint --flow emitted no bound decomposition" >&2; exit 1 ;;
esac

# Fault-injection smoke: a seeded campaign over two kernels. The outcome
# table and counts are a pure function of the seeds, so two runs must be
# byte-identical and the marker line must show the expected mix of
# outcome classes.
echo "+ fault_smoke (seeded campaign, twice)"
fault_a="$(cargo run --release -q --offline -p salam-bench --bin fault_smoke)"
fault_b="$(cargo run --release -q --offline -p salam-bench --bin fault_smoke)"
echo "$fault_a" | tail -n 1
if [ "$fault_a" != "$fault_b" ]; then
  echo "ci: fault campaign is not reproducible across runs" >&2; exit 1
fi
case "$fault_a" in
  *"fault_smoke: kernels=2 seeds=12"*) ;;
  *) echo "ci: fault_smoke marker line missing" >&2; exit 1 ;;
esac
case "$fault_a" in
  *"masked=0"*|*"sdc=0"*|*"deadlock=0"*)
    echo "ci: fault campaign must exercise masked, sdc and deadlock outcomes" >&2
    exit 1 ;;
esac

# Bottleneck-report smoke: one MachSuite kernel with profiling on. The
# binary self-checks the accounting invariant (attribution buckets sum
# exactly to total cycles, critical path fits in the run) and prints a
# stable marker line on success.
echo "+ salam_report gemm (invariant smoke)"
prof="$(cargo run --release -q --offline -p salam-bench --bin salam_report -- gemm)"
echo "$prof" | tail -n 1
case "$prof" in
  *"invariant: attribution==cycles ok"*) ;;
  *) echo "ci: salam_report invariant marker missing" >&2; exit 1 ;;
esac

# Trace-replay smoke: every MachSuite kernel over a replay-safe grid in
# check mode — each eligible point is both replayed and fully simulated,
# so the ≤2% error and >1x median-speedup gates are measured, not
# projected; a replayed point undercutting the static lower bound counts
# as a fallback and fails the binary. The benchmark JSON lands in
# REPLAY_BENCH_OUT when set (the workflow uploads it as an artifact).
echo "+ replay_smoke (trace-replay accuracy/speedup gate)"
replay_tmp="$(mktemp -d)"
replay_json="${REPLAY_BENCH_OUT:-$replay_tmp/BENCH_replay.json}"
replayed="$(cargo run --release -q --offline -p salam-bench --bin replay_smoke -- \
  --out "$replay_json")"
rm -rf "$replay_tmp"
echo "$replayed" | tail -n 1
case "$replayed" in
  *"replay: kernels=9"*"fallbacks=0"*" ok"*) ;;
  *) echo "ci: replay_smoke marker line missing or not ok" >&2; exit 1 ;;
esac

# Telemetry smoke: every MachSuite kernel simulated with the flight
# recorder off and on — the RunReport JSON must be byte-identical in both
# modes (telemetry must never perturb simulated time) and the enabled
# pass must stay within the wall-clock overhead gate.
echo "+ telemetry_smoke (non-perturbation + overhead gate)"
telem="$(cargo run --release -q --offline -p salam-bench --bin telemetry_smoke)"
echo "$telem" | tail -n 1
case "$telem" in
  *"telemetry: kernels=9 identical=9/9"*" ok"*) ;;
  *) echo "ci: telemetry_smoke marker line missing or not ok" >&2; exit 1 ;;
esac

# Serve smoke: boot the multi-tenant job server on an ephemeral port and
# drive the whole wire surface with salam_client — two tenants submit a
# kernel run and a sweep, a statically invalid config is rejected with a
# typed code before it ever becomes a job, a forced-deadlock job leaves a
# flight-recorder post-mortem, the Prometheus exposition and per-job span
# trace are scraped, and the server drains and shuts down cleanly via the
# wire op. The final metrics snapshot lands in SERVE_METRICS_OUT and the
# per-class latency percentiles in BENCH_SERVE_OUT when set (the workflow
# uploads both as artifacts).
echo "+ salam_serve / salam_client (serve smoke)"
serve_tmp="$(mktemp -d)"
serve_metrics="${SERVE_METRICS_OUT:-$serve_tmp/serve-metrics.json}"
serve_bench="${BENCH_SERVE_OUT:-$serve_tmp/BENCH_serve.json}"
serve_pid=""
trap 'rm -rf "$dse_cache" "$serve_tmp"; { [ -n "$serve_pid" ] && kill "$serve_pid"; } 2>/dev/null || true' EXIT
cargo run --release -q --offline -p salam-bench --bin salam_serve -- \
  --addr 127.0.0.1:0 --cache-dir "$serve_tmp/cache" --metrics-out "$serve_metrics" \
  --bench-out "$serve_bench" \
  >"$serve_tmp/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 200); do
  addr="$(sed -n 's/^salam_serve: listening on //p' "$serve_tmp/serve.log")"
  if [ -n "$addr" ]; then break; fi
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "ci: salam_serve never reported its address" >&2
  cat "$serve_tmp/serve.log" >&2
  exit 1
fi
client() {
  cargo run --release -q --offline -p salam-bench --bin salam_client -- "$addr" "$@"
}
client submit alice '{"type":"kernel","bench":"gemm","knobs":{"ports":2}}'
client submit bob '{"type":"sweep","name":"ports","kernels":["spmv"],"axes":[{"knob":"ports","values":[1,2]}]}'
# salam_client exits 1 on a rejection by design; the typed code is the check.
rejected="$(client submit alice '{"type":"kernel","bench":"gemm","knobs":{"ports":0}}' || true)"
echo "$rejected"
case "$rejected" in
  *'"code": "invalid-config"'*) ;;
  *) echo "ci: invalid config was not rejected with a typed code" >&2; exit 1 ;;
esac
for id in 1 2; do
  finished="$(client wait "$id")"
  case "$finished" in
    *'"state": "done"'*) ;;
    *) echo "ci: job $id did not finish: $finished" >&2; exit 1 ;;
  esac
done
sweep_csv="$(client result 2 csv)"
case "$sweep_csv" in
  *"points=2 ok=2 failed=0 invalid=0"*) ;;
  *) echo "ci: sweep summary row missing from the csv artifact" >&2; exit 1 ;;
esac

# A certain deadlock (100% response drops) is caught by the dataflow gate
# before a cycle runs: typed flow-deadlock rejection carrying the F004
# prediction.
predicted="$(client submit alice '{"type":"faulted","bench":"gemm","knobs":{"deadlock-cycles":200},"plan":{"seed":3,"mem_drop_rate":1.0}}' || true)"
case "$predicted" in
  *'"code": "flow-deadlock"'*'F004'*) ;;
  *) echo "ci: certain-deadlock plan was not rejected by the flow gate: $predicted" >&2; exit 1 ;;
esac

# A near-certain deadlock (aggressive watchdog + 99.9% response drops) is
# only `Possible` statically, so it is admitted — and must then fail the
# job dynamically and leave a post-mortem artifact carrying the watchdog
# snapshot and the flight-recorder tail.
client submit alice '{"type":"faulted","bench":"gemm","knobs":{"deadlock-cycles":200},"plan":{"seed":3,"mem_drop_rate":0.999}}'
deadlocked="$(client wait 3)"
case "$deadlocked" in
  *'"state": "failed"'*) ;;
  *) echo "ci: forced-deadlock job did not fail: $deadlocked" >&2; exit 1 ;;
esac
postmortem="$(client result 3 postmortem)"
case "$postmortem" in
  *'deadlock'*) ;;
  *) echo "ci: post-mortem does not name the deadlock" >&2; exit 1 ;;
esac
case "$postmortem" in
  *'last_progress_cycle'*) ;;
  *) echo "ci: post-mortem is missing the watchdog snapshot" >&2; exit 1 ;;
esac

# Prometheus exposition: histogram families with cumulative buckets.
prom="$(client prom)"
for needle in '# TYPE serve_latency_e2e_us histogram' \
              'serve_latency_e2e_us_bucket' 'le="+Inf"' \
              'serve_latency_e2e_us_sum' 'serve_latency_e2e_us_count'; do
  case "$prom" in
    *"$needle"*) ;;
    *) echo "ci: prometheus exposition missing '$needle'" >&2; exit 1 ;;
  esac
done

# Per-job span trace over the HTTP shim, rendered as a latency table:
# an untraced kernel job carries exactly its three lifecycle spans.
serve_host="${addr%:*}"; serve_port="${addr##*:}"
exec 3<>"/dev/tcp/$serve_host/$serve_port"
printf 'GET /trace?id=1 HTTP/1.1\r\nHost: ci\r\n\r\n' >&3
timeout 10 cat <&3 >"$serve_tmp/trace.http" || true
exec 3>&- 3<&-
awk 'body{print} /^\r?$/{body=1}' "$serve_tmp/trace.http" >"$serve_tmp/job1-trace.json"
spans="$(cargo run --release -q --offline -p salam-bench --bin salam_report -- \
  --spans "$serve_tmp/job1-trace.json")"
echo "$spans" | tail -n 1
case "$spans" in
  *"spans: 3 spans"*) ;;
  *) echo "ci: span table did not recover the job's lifecycle spans" >&2; exit 1 ;;
esac

client shutdown
wait "$serve_pid"
serve_pid=""
serve_final="$(tail -n 1 "$serve_tmp/serve.log")"
echo "$serve_final"
case "$serve_final" in
  *"jobs=3 done=2 failed=1 rejected=2"*) ;;
  *) echo "ci: serve final stats line unexpected" >&2; exit 1 ;;
esac
case "$serve_final" in
  *"e2e_p50_ms="*) ;;
  *) echo "ci: serve stats line is missing latency percentiles" >&2; exit 1 ;;
esac
grep -q '"serve.jobs.done": 2' "$serve_metrics" || {
  echo "ci: serve metrics snapshot missing or wrong" >&2; exit 1
}
grep -q '"p99_us"' "$serve_bench" || {
  echo "ci: serve latency summary (BENCH_serve.json) missing percentiles" >&2; exit 1
}

# Chaos / resilience gate (PR 9): in-process fault drills — a deadline
# that expires mid-run fails typed `timeout`, queued and running jobs are
# cancelled cooperatively, injected worker panics trip the circuit
# breaker open -> half-open -> closed with a transition log that must be
# byte-identical at 1 and 8 workers, a full accept queue sheds with a
# retry hint, queue pressure degrades a sweep to the replay engine, and
# eviction is a typed condition — plus the crash-recovery drill: a
# journaled salam_serve is SIGKILLed mid-flight and restarted, and every
# open job must complete exactly once with byte-identical artifacts
# (lost=0 dup=0 identical=1 on the marker line). CHAOS_OUT captures the
# drill facts as a JSON artifact when set (the workflow uploads it).
echo "+ chaos_smoke (resilience + crash-recovery gate)"
chaos="$(CHAOS_OUT="${CHAOS_OUT:-$serve_tmp/chaos.json}" \
  cargo run --release -q --offline -p salam-bench --bin chaos_smoke)"
echo "$chaos" | tail -n 1
case "$chaos" in
  *"chaos: "*"lost=0 dup=0 identical=1"*" ok") ;;
  *) echo "ci: chaos_smoke invariants not satisfied" >&2; exit 1 ;;
esac

echo "ci: all checks passed"
