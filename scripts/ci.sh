#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has zero external dependencies, so every step runs with
# --offline and never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

run() { echo "+ $*"; "$@"; }

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline

echo "ci: all checks passed"
