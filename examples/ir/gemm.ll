define void @gemm_ncubed(ptr %a, ptr %b, ptr %c) {
entry:
  br label %i.header
i.header:
  %i.iv = phi i64 [ 0, %entry ], [ %i.iv.next, %j.exit ]
  %i.cond = icmp slt i64 %i.iv, 16
  br i1 %i.cond, label %i.body, label %i.exit
i.body:
  br label %j.header
i.exit:
  ret void
j.header:
  %j.iv = phi i64 [ 0, %i.body ], [ %j.iv.next, %k.exit ]
  %j.cond = icmp slt i64 %j.iv, 16
  br i1 %j.cond, label %j.body, label %j.exit
j.body:
  br label %k.header
j.exit:
  %i.iv.next = add i64 %i.iv, 1
  br label %i.header
k.header:
  %k.iv = phi i64 [ 0, %j.body ], [ %k.iv.next, %k.body ]
  %k.acc0 = phi double [ 0.0, %j.body ], [ %sum, %k.body ]
  %k.cond = icmp slt i64 %k.iv, 16
  br i1 %k.cond, label %k.body, label %k.exit
k.body:
  %row = mul i64 %i.iv, 16
  %ku = add i64 %k.iv, 0
  %ai = add i64 %row, %ku
  %pa = getelementptr double, ptr %a, i64 %ai
  %av = load double, ptr %pa
  %brow = mul i64 %ku, 16
  %bi = add i64 %brow, %j.iv
  %pb = getelementptr double, ptr %b, i64 %bi
  %bv = load double, ptr %pb
  %prod = fmul double %av, %bv
  %sum = fadd double %k.acc0, %prod
  %k.iv.next = add i64 %k.iv, 1
  br label %k.header
k.exit:
  %crow = mul i64 %i.iv, 16
  %ci = add i64 %crow, %j.iv
  %pc = getelementptr double, ptr %c, i64 %ci
  store double %k.acc0, ptr %pc
  %j.iv.next = add i64 %j.iv, 1
  br label %j.header
}
