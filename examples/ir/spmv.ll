define void @spmv_crs(ptr %vals, ptr %cols, ptr %rowstr, ptr %vec, ptr %out, ptr %flags) {
entry:
  br label %r.header
r.header:
  %r.iv = phi i64 [ 0, %entry ], [ %r.iv.next, %j.exit ]
  %r.cond = icmp slt i64 %r.iv, 32
  br i1 %r.cond, label %r.body, label %r.exit
r.body:
  %ps = getelementptr i64, ptr %rowstr, i64 %r.iv
  %start = load i64, ptr %ps
  %r1 = add i64 %r.iv, 1
  %pe = getelementptr i64, ptr %rowstr, i64 %r1
  %end = load i64, ptr %pe
  br label %j.header
r.exit:
  ret void
j.header:
  %j.iv = phi i64 [ %start, %r.body ], [ %j.iv.next, %skip ]
  %j.acc0 = phi double [ 0.0, %r.body ], [ %sum, %skip ]
  %j.acc1 = phi i64 [ 0, %r.body ], [ %flag, %skip ]
  %j.cond = icmp slt i64 %j.iv, %end
  br i1 %j.cond, label %j.body, label %j.exit
j.body:
  %pv = getelementptr double, ptr %vals, i64 %j.iv
  %v = load double, ptr %pv
  %pc = getelementptr i64, ptr %cols, i64 %j.iv
  %col = load i64, ptr %pc
  %px = getelementptr double, ptr %vec, i64 %col
  %x = load double, ptr %px
  %prod = fmul double %v, %x
  %sum = fadd double %j.acc0, %prod
  %cgt = fcmp ogt double %v, 4.5e-1
  %clt = fcmp olt double %v, 5.5e-1
  %both = and i1 %cgt, %clt
  br i1 %both, label %shift, label %skip
j.exit:
  %po = getelementptr double, ptr %out, i64 %r.iv
  store double %j.acc0, ptr %po
  %pf = getelementptr i64, ptr %flags, i64 %r.iv
  store i64 %j.acc1, ptr %pf
  %r.iv.next = add i64 %r.iv, 1
  br label %r.header
shift:
  %incd = add i64 %j.acc1, 1
  %shifted = shl i64 %incd, 1
  br label %skip
skip:
  %flag = phi i64 [ %j.acc1, %j.body ], [ %shifted, %shift ]
  %j.iv.next = add i64 %j.iv, 1
  br label %j.header
}
