define void @nw(ptr %seqa, ptr %seqb, ptr %m) {
entry:
  br label %initrow.header
initrow.header:
  %initrow.iv = phi i64 [ 0, %entry ], [ %initrow.iv.next, %initrow.body ]
  %initrow.cond = icmp slt i64 %initrow.iv, 25
  br i1 %initrow.cond, label %initrow.body, label %initrow.exit
initrow.body:
  %jt = trunc i64 %initrow.iv to i32
  %v = mul i32 %jt, -1
  %pm = getelementptr i32, ptr %m, i64 %initrow.iv
  store i32 %v, ptr %pm
  %initrow.iv.next = add i64 %initrow.iv, 1
  br label %initrow.header
initrow.exit:
  br label %initcol.header
initcol.header:
  %initcol.iv = phi i64 [ 0, %initrow.exit ], [ %initcol.iv.next, %initcol.body ]
  %initcol.cond = icmp slt i64 %initcol.iv, 25
  br i1 %initcol.cond, label %initcol.body, label %initcol.exit
initcol.body:
  %it = trunc i64 %initcol.iv to i32
  %v.1 = mul i32 %it, -1
  %idx = mul i64 %initcol.iv, 25
  %pm.1 = getelementptr i32, ptr %m, i64 %idx
  store i32 %v.1, ptr %pm.1
  %initcol.iv.next = add i64 %initcol.iv, 1
  br label %initcol.header
initcol.exit:
  br label %i.header
i.header:
  %i.iv = phi i64 [ 1, %initcol.exit ], [ %i.iv.next, %j.exit ]
  %i.cond = icmp slt i64 %i.iv, 25
  br i1 %i.cond, label %i.body, label %i.exit
i.body:
  br label %j.header
i.exit:
  ret void
j.header:
  %j.iv = phi i64 [ 1, %i.body ], [ %j.iv.next, %j.body ]
  %j.cond = icmp slt i64 %j.iv, 25
  br i1 %j.cond, label %j.body, label %j.exit
j.body:
  %jm1 = sub i64 %j.iv, 1
  %im1 = sub i64 %i.iv, 1
  %pa = getelementptr i32, ptr %seqa, i64 %jm1
  %av = load i32, ptr %pa
  %pb = getelementptr i32, ptr %seqb, i64 %im1
  %bv = load i32, ptr %pb
  %eq = icmp eq i32 %av, %bv
  %score = select i1 %eq, i32 1, i32 -1
  %rowoff = mul i64 %i.iv, 25
  %prevrow = mul i64 %im1, 25
  %di = add i64 %prevrow, %jm1
  %pd = getelementptr i32, ptr %m, i64 %di
  %diag0 = load i32, ptr %pd
  %diag = add i32 %diag0, %score
  %ui = add i64 %prevrow, %j.iv
  %pu = getelementptr i32, ptr %m, i64 %ui
  %up0 = load i32, ptr %pu
  %up = add i32 %up0, -1
  %li = add i64 %rowoff, %jm1
  %pl = getelementptr i32, ptr %m, i64 %li
  %left0 = load i32, ptr %pl
  %left = add i32 %left0, -1
  %c1 = icmp sgt i32 %diag, %up
  %mx1 = select i1 %c1, i32 %diag, i32 %up
  %c2 = icmp sgt i32 %mx1, %left
  %mx2 = select i1 %c2, i32 %mx1, i32 %left
  %oi = add i64 %rowoff, %j.iv
  %po = getelementptr i32, ptr %m, i64 %oi
  store i32 %mx2, ptr %po
  %j.iv.next = add i64 %j.iv, 1
  br label %j.header
j.exit:
  %i.iv.next = add i64 %i.iv, 1
  br label %i.header
}
