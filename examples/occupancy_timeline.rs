//! Cycle-granularity occupancy profiling: the paper's §IV-D2 workflow of
//! "examining functional unit occupancy at a cycle granularity" to find
//! over-allocated units.
//!
//! Run with: `cargo run --release --example occupancy_timeline`

use hw_profile::{FuKind, HardwareProfile};
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_runtime::{Engine, EngineConfig, SimpleMem};

fn main() {
    let kernel = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 8 });
    let profile = HardwareProfile::default_40nm();
    let constraints = FuConstraints::unconstrained()
        .with_limit(FuKind::FpMulF64, 4)
        .with_limit(FuKind::FpAddF64, 4);
    let cdfg = StaticCdfg::elaborate(&kernel.func, &profile, &constraints);

    let mut mem = SimpleMem::new(1, 8, 8);
    kernel.load_into(mem.memory_mut());
    let mut engine = Engine::new(
        kernel.func.clone(),
        cdfg,
        profile,
        EngineConfig {
            record_timeline: true,
            reservation_entries: 512,
            ..EngineConfig::default()
        },
        kernel.args.clone(),
    );
    let cycles = engine.run_to_completion(&mut mem);
    kernel.check(mem.memory_mut()).expect("verified");

    let st = engine.stats();
    println!("GEMM 8x8 (8x unrolled), 4 FMUL / 4 FADD units, {cycles} cycles\n");

    // A bucketized occupancy strip chart: each column is a slice of the run,
    // each row a functional-unit kind; glyphs show average busy units.
    let buckets = 64usize.min(st.timeline.len());
    let per = st.timeline.len().div_ceil(buckets);
    let kinds = [FuKind::FpMulF64, FuKind::FpAddF64, FuKind::IntAdder];
    for kind in kinds {
        let pool = st.fu_pool.get(&kind).copied().unwrap_or(0).max(1) as f64;
        let mut line = String::new();
        for b in 0..buckets {
            let lo = (b * per).min(st.timeline.len().saturating_sub(1));
            let hi = ((b + 1) * per).min(st.timeline.len());
            let avg: f64 = st.timeline[lo..hi]
                .iter()
                .map(|r| r.fu_busy.get(&kind).copied().unwrap_or(0) as f64)
                .sum::<f64>()
                / (hi - lo).max(1) as f64;
            let frac = avg / pool;
            line.push(match frac {
                f if f > 0.75 => '#',
                f if f > 0.5 => '+',
                f if f > 0.25 => '-',
                f if f > 0.0 => '.',
                _ => ' ',
            });
        }
        println!(
            "{:>14} |{line}|  avg occupancy {:>5.1}%",
            kind.name(),
            st.fu_occupancy(kind) * 100.0
        );
    }
    let stall_strip: String = (0..buckets)
        .map(|b| {
            let lo = (b * per).min(st.timeline.len().saturating_sub(1));
            let hi = ((b + 1) * per).min(st.timeline.len());
            let frac = st.timeline[lo..hi].iter().filter(|r| r.stalled).count() as f64
                / (hi - lo).max(1) as f64;
            if frac > 0.5 {
                '!'
            } else if frac > 0.0 {
                ','
            } else {
                ' '
            }
        })
        .collect();
    println!(
        "{:>14} |{stall_strip}|  ({} stalled cycles)",
        "stalls", st.stall_cycles
    );
    println!(
        "\nLegend: '#' >75% of the pool busy, '+' >50%, '-' >25%, '.' active.\n\
         An adder row much emptier than the multiplier row is the paper's cue\n\
         to shrink the FADD pool — occupancy-guided co-design."
    );
}
