//! Design-space exploration of a GEMM accelerator: sweep unrolling,
//! functional-unit budgets and scratchpad bandwidth, and print the
//! time/power/area trade-off for each point — the paper's §IV-D workflow.
//!
//! Run with: `cargo run --release --example gemm_dse`

use hw_profile::FuKind;
use salam::standalone::{run_kernel, StandaloneConfig};
use salam_cdfg::FuConstraints;

fn main() {
    println!(
        "{:>7} {:>5} {:>6} {:>10} {:>10} {:>12} {:>8}",
        "unroll", "fmul", "ports", "cycles", "time(us)", "power(mW)", "area(mm2)"
    );
    let mut best: Option<(f64, String)> = None;
    for unroll in [1usize, 4, 8, 16] {
        let kernel = machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll });
        for fmul in [2u32, 8, 16] {
            for ports in [2u32, 8, 32] {
                let mut cfg = StandaloneConfig::default()
                    .with_ports(ports)
                    .with_constraints(
                        FuConstraints::unconstrained()
                            .with_limit(FuKind::FpMulF64, fmul)
                            .with_limit(FuKind::FpAddF64, fmul),
                    );
                cfg.engine.reservation_entries = 512;
                let r = run_kernel(&kernel, &cfg);
                assert!(r.verified, "DSE point produced wrong results");
                let time_us = r.runtime_ns / 1000.0;
                let power = r.power.total_mw();
                let area_mm2 = r.total_area_um2() / 1e6;
                println!(
                    "{unroll:>7} {fmul:>5} {ports:>6} {:>10} {time_us:>10.2} {power:>12.2} {area_mm2:>8.3}",
                    r.cycles
                );
                // Energy-delay product as a simple co-design objective.
                let edp = time_us * time_us * power;
                let label = format!(
                    "unroll={unroll} fmul={fmul} ports={ports} ({time_us:.1} us, {power:.1} mW)"
                );
                if best.as_ref().map(|(b, _)| edp < *b).unwrap_or(true) {
                    best = Some((edp, label));
                }
            }
        }
    }
    let (edp, label) = best.expect("swept at least one point");
    println!("\nbest energy-delay-squared point: {label} (ED^2P {edp:.1})");
}
