//! Quickstart: build a custom accelerator kernel, simulate it cycle-
//! accurately on the SALAM runtime engine with a private scratchpad, and
//! read back performance, power and area.
//!
//! Run with: `cargo run --release --example quickstart`

use hw_profile::{FuKind, HardwareProfile};
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::RtVal;
use salam_ir::{FunctionBuilder, Type};
use salam_runtime::{Engine, EngineConfig, SimpleMem};

fn main() {
    // 1. Write the accelerator kernel as IR (the stand-in for compiling a
    //    C function with clang): out[i] = a[i] * b[i] + bias.
    let mut fb = FunctionBuilder::new(
        "madd",
        &[
            ("a", Type::Ptr),
            ("b", Type::Ptr),
            ("out", Type::Ptr),
            ("n", Type::I64),
        ],
    );
    let (a, b, out, n) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3));
    let zero = fb.i64c(0);
    fb.counted_loop("i", zero, n, |fb, i| {
        let pa = fb.gep1(Type::F64, a, i, "pa");
        let pb = fb.gep1(Type::F64, b, i, "pb");
        let po = fb.gep1(Type::F64, out, i, "po");
        let x = fb.load(Type::F64, pa, "x");
        let y = fb.load(Type::F64, pb, "y");
        let m = fb.fmul(x, y, "m");
        let bias = fb.f64c(0.5);
        let s = fb.fadd(m, bias, "s");
        fb.store(s, po);
    });
    fb.ret();
    let func = fb.finish();
    salam_ir::verify_function(&func).expect("well-formed kernel");
    println!("kernel IR:\n{func}");

    // 2. Static elaboration: map instructions to functional units. Constrain
    //    the datapath to one double-precision multiplier to see reuse.
    let profile = HardwareProfile::default_40nm();
    let constraints = FuConstraints::unconstrained().with_limit(FuKind::FpMulF64, 1);
    let cdfg = StaticCdfg::elaborate(&func, &profile, &constraints);
    println!("datapath allocation:");
    for (kind, count) in cdfg.fu_counts() {
        println!("  {kind}: {count}");
    }
    let area = cdfg.area_report(&profile);
    println!("datapath area: {:.0} um^2\n", area.total_um2);

    // 3. Load inputs into a private scratchpad and run the dynamic engine.
    let mut mem = SimpleMem::new(1, 2, 2);
    let xs: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let ys: Vec<f64> = (0..32).map(|i| (i * 2) as f64).collect();
    mem.memory_mut().write_f64_slice(0x1000, &xs);
    mem.memory_mut().write_f64_slice(0x2000, &ys);

    let mut engine = Engine::new(
        func,
        cdfg,
        profile,
        EngineConfig::default(),
        vec![
            RtVal::P(0x1000),
            RtVal::P(0x2000),
            RtVal::P(0x3000),
            RtVal::I(32),
        ],
    );
    let cycles = engine.run_to_completion(&mut mem);

    // 4. Results: correctness and the cycle-level profile.
    let got = mem.memory_mut().read_f64_slice(0x3000, 32);
    assert!(got
        .iter()
        .enumerate()
        .all(|(i, &v)| (v - (xs[i] * ys[i] + 0.5)).abs() < 1e-12));
    let st = engine.stats();
    println!(
        "simulated {cycles} cycles ({} issued ops)",
        st.total_issued()
    );
    println!(
        "  loads {} / stores {} / stall cycles {}",
        st.loads, st.stores, st.stall_cycles
    );
    println!(
        "  FP multiplier occupancy: {:.0}%",
        st.fu_occupancy(FuKind::FpMulF64) * 100.0
    );
    println!(
        "  dynamic datapath energy: {:.1} pJ",
        st.dynamic_datapath_pj()
    );
    println!("\nresults verified: out[i] = a[i]*b[i] + 0.5 for all 32 elements");
}
