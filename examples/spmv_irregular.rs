//! Data-dependent execution: why execute-in-execute simulation matters.
//!
//! Runs SpMV-CRS (with its guarded bit-shift) under both execution models —
//! the SALAM runtime engine and the Aladdin-style trace flow — on two
//! datasets that differ only in whether they trigger the guard, reproducing
//! the paper's Table I argument interactively.
//!
//! Run with: `cargo run --release --example spmv_irregular`

use hw_profile::{FuKind, HardwareProfile};
use salam::standalone::{run_kernel, StandaloneConfig};
use salam_aladdin::{derive_datapath, generate_trace, AladdinMemModel};
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::SparseMemory;

fn main() {
    let profile = HardwareProfile::default_40nm();
    println!("SpMV-CRS with a guarded shift: same source, two datasets\n");

    for (label, trigger) in [("quiet dataset", false), ("triggering dataset", true)] {
        let kernel = machsuite::spmv::build(&machsuite::spmv::Params {
            dataset_triggers_shift: trigger,
            ..machsuite::spmv::Params::default()
        });

        // Trace-based flow: datapath reverse-engineered from this run.
        let mut mem = SparseMemory::new();
        kernel.load_into(&mut mem);
        let trace = generate_trace(&kernel.func, &kernel.args, &mut mem);
        let aladdin = derive_datapath(
            &kernel.func,
            &trace,
            &profile,
            &AladdinMemModel::default_spm(),
        );

        // Execute-in-execute flow: datapath fixed by static elaboration.
        let salam = StaticCdfg::elaborate(&kernel.func, &profile, &FuConstraints::unconstrained());
        let run = run_kernel(&kernel, &StandaloneConfig::default());
        assert!(run.verified);

        println!("{label}:");
        println!(
            "  Aladdin datapath:    {} FMUL, {} FADD, {} shifters  <- depends on the data",
            aladdin.fu_count(FuKind::FpMulF64),
            aladdin.fu_count(FuKind::FpAddF64),
            aladdin.fu_count(FuKind::Shifter),
        );
        println!(
            "  gem5-SALAM datapath: {} FMUL, {} FADD, {} shifters  <- fixed by the source",
            salam.fu_count(FuKind::FpMulF64),
            salam.fu_count(FuKind::FpAddF64),
            salam.fu_count(FuKind::Shifter),
        );
        println!(
            "  gem5-SALAM timing:   {} cycles (shift path {}taken at runtime)\n",
            run.cycles,
            if trigger { "" } else { "never " }
        );
    }
    println!(
        "The shifter exists in the kernel whether or not any input exercises\n\
         it; only the execute-in-execute model keeps the datapath stable while\n\
         still charging the dynamic cost only when the path actually runs."
    );
}
