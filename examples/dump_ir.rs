//! Prints a MachSuite kernel as textual IR.
//!
//! This is the generator behind the `examples/ir/*.ll` fixtures that CI
//! feeds to `salam_lint`: regenerate one with
//!
//! ```text
//! cargo run --example dump_ir -- gemm > examples/ir/gemm.ll
//! ```
//!
//! The printed text round-trips through `salam_ir::parse_module`, so the
//! fixtures stay loadable by anything that consumes textual IR.

use machsuite::Bench;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gemm".into());
    let Some(bench) = Bench::ALL
        .into_iter()
        .find(|b| b.label().eq_ignore_ascii_case(&name))
    else {
        eprintln!(
            "dump_ir: unknown kernel '{name}'; one of: {}",
            Bench::ALL
                .map(|b| b.label().to_ascii_lowercase())
                .join(", ")
        );
        std::process::exit(2)
    };
    let k = bench.build_standard();
    let mut m = salam_ir::Module::new(&k.name);
    m.add_function(k.func);
    print!("{m}");
}
