//! Multi-accelerator full-system simulation: the CNN layer-1 pipeline
//! (convolution → ReLU → max-pool) in the three integration styles of the
//! paper's Fig. 16 — host-orchestrated private scratchpads, a shared
//! cluster scratchpad, and self-synchronizing stream buffers.
//!
//! Run with: `cargo run --release --example cnn_pipeline`

use salam_bench::fig16::{run_scenario, Scenario};

fn main() {
    println!("CNN layer-1 pipeline (conv 3x3 -> ReLU -> maxpool 2x2)\n");
    let mut baseline = None;
    for scenario in Scenario::ALL {
        let r = run_scenario(scenario);
        assert!(r.verified, "{}: wrong output in DRAM", scenario.label());
        let base = *baseline.get_or_insert(r.total_ns);
        println!(
            "{:>16}: {:8.2} us end-to-end  ({:.2}x vs baseline)",
            scenario.label(),
            r.total_ns / 1000.0,
            base / r.total_ns
        );
        for (name, ns) in &r.accel_spans_ns {
            println!("{:>16}    {name} busy {:7.2} us", "", ns / 1000.0);
        }
    }
    println!(
        "\nIn the streaming configuration the three accelerators overlap\n\
         (their busy spans cover the same wall-clock interval) and no host\n\
         synchronization happens between stages — the integration style the\n\
         paper shows trace-based simulators cannot model."
    );
}
