//! `salam-fault` — typed simulation errors and deterministic, seed-driven
//! fault injection.
//!
//! Two concerns live here because they share one contract: *a simulation
//! never aborts the process on a modeled failure*.
//!
//! * [`SimError`] is the error taxonomy for everything that can go wrong
//!   *inside the model*: nonsense configuration knobs ([`ConfigError`]),
//!   a wedged design ([`SimError::Deadlock`] carrying a
//!   [`WatchdogSnapshot`] of the engine's queues at detection time), and
//!   runtime faults in the modeled kernel (division by zero, undef use —
//!   [`SimError::KernelFault`]). Library code returns these; thin
//!   panicking wrappers keep the old call sites working.
//! * [`FaultPlan`] describes a seeded soft-error campaign: transient bit
//!   flips in FU results and memory lines, delayed/dropped responses,
//!   busy storms, DMA stalls and FU latency jitter. Every injection site
//!   derives its own decorrelated [`SiteRng`] stream from the plan seed,
//!   so a campaign replays bit-for-bit regardless of worker count or
//!   cross-component interleaving.
//!
//! Everything is std-only (SplitMix64 comes from `salam-obs`), so the
//! workspace stays offline-buildable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use salam_obs::SplitMix64;

/// FNV-1a over a byte string; used to derive per-site seeds.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---- error taxonomy --------------------------------------------------------

/// A rejected configuration knob: which component, which field, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The component whose config was rejected (`engine`, `spm`, `dma`, …).
    pub component: String,
    /// The offending field.
    pub field: String,
    /// Human-readable constraint that was violated.
    pub detail: String,
}

impl ConfigError {
    /// A new error naming the offending component, field, and constraint.
    pub fn new(
        component: impl Into<String>,
        field: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        ConfigError {
            component: component.into(),
            field: field.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} config: {}: {}",
            self.component, self.field, self.detail
        )
    }
}

/// What the deadlock watchdog saw when it fired: the engine's queue
/// occupancies and progress history, so a hung design is diagnosable from
/// the error value alone.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WatchdogSnapshot {
    /// The kernel (function) that was executing.
    pub kernel: String,
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Last cycle on which any queue made progress.
    pub last_progress_cycle: u64,
    /// Dynamic instructions waiting in the reservation queue.
    pub reservation_occupancy: usize,
    /// Operations in flight in the compute queue.
    pub compute_occupancy: usize,
    /// Memory operations issued but not yet completed.
    pub mem_outstanding: usize,
    /// Basic blocks fetched but not yet imported.
    pub pending_blocks: usize,
    /// The most frequent memory-port reject cause so far, if any — usually
    /// the first thing to look at for a wedged memory system.
    pub dominant_reject_cause: Option<String>,
}

impl WatchdogSnapshot {
    /// The snapshot as a standalone JSON object, for post-mortem
    /// artifacts and machine-readable failure reports.
    pub fn to_json(&self) -> String {
        use salam_obs::json::escape;
        let cause = match &self.dominant_reject_cause {
            Some(c) => format!("\"{}\"", escape(c)),
            None => "null".to_string(),
        };
        format!(
            "{{\"kernel\": \"{}\", \"cycle\": {}, \"last_progress_cycle\": {}, \
             \"reservation_occupancy\": {}, \"compute_occupancy\": {}, \
             \"mem_outstanding\": {}, \"pending_blocks\": {}, \
             \"dominant_reject_cause\": {}}}",
            escape(&self.kernel),
            self.cycle,
            self.last_progress_cycle,
            self.reservation_occupancy,
            self.compute_occupancy,
            self.mem_outstanding,
            self.pending_blocks,
            cause,
        )
    }
}

impl fmt::Display for WatchdogSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no progress since cycle {} (now {}): {} reservation entries, \
             {} compute, {} mem outstanding, {} blocks pending fetch",
            self.last_progress_cycle,
            self.cycle,
            self.reservation_occupancy,
            self.compute_occupancy,
            self.mem_outstanding,
            self.pending_blocks,
        )?;
        if let Some(cause) = &self.dominant_reject_cause {
            write!(f, ", dominant reject cause {cause}")?;
        }
        Ok(())
    }
}

/// Everything that can go wrong inside a simulation, as a value.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration knob failed validation before the run started.
    Config(ConfigError),
    /// The engine made no progress for the configured threshold.
    Deadlock(WatchdogSnapshot),
    /// The modeled kernel itself faulted (division by zero, undef use, or
    /// an injected fault tripping the interpreter).
    KernelFault {
        /// The kernel (function) that faulted.
        kernel: String,
        /// Cycle of the fault.
        cycle: u64,
        /// The underlying interpreter error.
        detail: String,
    },
    /// Static verification rejected the input before the run started
    /// (error-severity `salam-verify` diagnostics).
    Verify(Vec<salam_verify::Diagnostic>),
    /// The run was cooperatively stopped at a cycle-batch boundary — an
    /// explicit cancel request or an expired job deadline.
    Cancelled {
        /// The kernel (function) that was running.
        kernel: String,
        /// Cycle at which the stop was observed.
        cycle: u64,
        /// `true` when the stop was an expired deadline rather than an
        /// explicit cancel.
        timeout: bool,
    },
}

impl SimError {
    /// Shorthand constructor for a [`ConfigError`].
    pub fn config(
        component: impl Into<String>,
        field: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        SimError::Config(ConfigError::new(component, field, detail))
    }

    /// `true` for [`SimError::Deadlock`].
    pub fn is_deadlock(&self) -> bool {
        matches!(self, SimError::Deadlock(_))
    }

    /// A short stable label for outcome classification and failed-row
    /// reporting: `config` / `deadlock` / `kernel-fault` / `verify` /
    /// `timeout` / `cancelled`.
    pub fn label(&self) -> &'static str {
        match self {
            SimError::Config(_) => "config",
            SimError::Deadlock(_) => "deadlock",
            SimError::KernelFault { .. } => "kernel-fault",
            SimError::Verify(_) => "verify",
            SimError::Cancelled { timeout: true, .. } => "timeout",
            SimError::Cancelled { timeout: false, .. } => "cancelled",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
            SimError::Deadlock(snap) => {
                write!(f, "engine deadlock in @{}: {snap}", snap.kernel)
            }
            SimError::KernelFault {
                kernel,
                cycle,
                detail,
            } => {
                write!(f, "runtime fault in @{kernel} at cycle {cycle}: {detail}")
            }
            SimError::Verify(diags) => {
                let first = diags
                    .first()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "no diagnostics".to_string());
                write!(
                    f,
                    "static verification rejected the input ({} error(s)): {first}",
                    diags.len()
                )
            }
            SimError::Cancelled {
                kernel,
                cycle,
                timeout,
            } => {
                let what = if *timeout {
                    "deadline exceeded"
                } else {
                    "run cancelled"
                };
                write!(f, "{what} in @{kernel} at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for SimError {}

// ---- fault plans -----------------------------------------------------------

/// A seeded fault-injection campaign description. All rates are per-event
/// probabilities in `[0, 1]`; the all-zero default plan is observationally
/// free (it installs the hooks but never fires).
///
/// The plan is `canonical_repr`-fingerprintable, so design points that
/// include a fault plan stay sound under the DSE result cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Campaign seed; every injection site derives its own stream from it.
    pub seed: u64,
    /// Probability of flipping one bit in an FU result at issue.
    pub fu_bitflip_rate: f64,
    /// Flip integer/pointer FU results too. Off by default: integer flips
    /// can corrupt loop counters into practically-infinite loops that the
    /// no-progress watchdog never sees, so the default restricts flips to
    /// floating-point results (datapath data, never control).
    pub fu_flip_any: bool,
    /// Probability of adding latency jitter to an FU operation at issue.
    pub fu_jitter_rate: f64,
    /// Extra cycles added when jitter fires.
    pub fu_jitter_cycles: u32,
    /// Probability of flipping one bit in a memory response's data.
    pub mem_bitflip_rate: f64,
    /// Probability of delaying a memory response.
    pub mem_delay_rate: f64,
    /// Extra cycles a delayed response is held.
    pub mem_delay_cycles: u64,
    /// Probability of dropping a memory response outright (the request is
    /// never completed — a detectable hang).
    pub mem_drop_rate: f64,
    /// Probability of a spurious busy reject on issue (busy storms).
    pub port_busy_rate: f64,
    /// Probability of stalling a DMA burst issue.
    pub dma_stall_rate: f64,
    /// Extra cycles a stalled DMA burst waits.
    pub dma_stall_cycles: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    /// The zero-rate plan for `seed`: hooks installed, nothing ever fires.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            fu_bitflip_rate: 0.0,
            fu_flip_any: false,
            fu_jitter_rate: 0.0,
            fu_jitter_cycles: 0,
            mem_bitflip_rate: 0.0,
            mem_delay_rate: 0.0,
            mem_delay_cycles: 0,
            mem_drop_rate: 0.0,
            port_busy_rate: 0.0,
            dma_stall_rate: 0.0,
            dma_stall_cycles: 0,
        }
    }

    /// `true` when no fault can ever fire under this plan.
    pub fn is_zero(&self) -> bool {
        self.fu_bitflip_rate == 0.0
            && self.fu_jitter_rate == 0.0
            && self.mem_bitflip_rate == 0.0
            && self.mem_delay_rate == 0.0
            && self.mem_drop_rate == 0.0
            && self.port_busy_rate == 0.0
            && self.dma_stall_rate == 0.0
    }

    /// A canonical `key=value` line covering every field that can change
    /// simulated behaviour. Equal plans always produce equal strings — DSE
    /// cache identities for faulted points key on this.
    pub fn canonical_repr(&self) -> String {
        format!(
            "seed={};fu_bitflip_rate={:?};fu_flip_any={};fu_jitter_rate={:?};\
             fu_jitter_cycles={};mem_bitflip_rate={:?};mem_delay_rate={:?};\
             mem_delay_cycles={};mem_drop_rate={:?};port_busy_rate={:?};\
             dma_stall_rate={:?};dma_stall_cycles={}",
            self.seed,
            self.fu_bitflip_rate,
            self.fu_flip_any,
            self.fu_jitter_rate,
            self.fu_jitter_cycles,
            self.mem_bitflip_rate,
            self.mem_delay_rate,
            self.mem_delay_cycles,
            self.mem_drop_rate,
            self.port_busy_rate,
            self.dma_stall_rate,
            self.dma_stall_cycles,
        )
    }

    /// The decorrelated decision stream for one injection site. Each site
    /// (e.g. `engine.fu_bitflip`, `spm.bitflip`) consumes only its own
    /// stream, so injection decisions are independent of how components
    /// interleave — the schedule replays identically across runs and
    /// across `SALAM_JOBS` worker counts.
    pub fn site_rng(&self, site: &str) -> SiteRng {
        SiteRng::new(self.seed, site)
    }
}

/// One injection site's private decision stream.
#[derive(Debug, Clone)]
pub struct SiteRng {
    rng: SplitMix64,
}

impl SiteRng {
    /// A stream derived from `seed` and the site name.
    pub fn new(seed: u64, site: &str) -> Self {
        SiteRng {
            rng: SplitMix64::new(seed ^ fnv1a64(site.as_bytes())),
        }
    }

    /// `true` with probability `rate`. A zero (or negative) rate never
    /// fires and consumes no stream state, so zero-rate plans are free.
    pub fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        self.rng.next_f64() < rate
    }

    /// A uniformly chosen bit index in `[0, width)`.
    pub fn bit(&mut self, width: u32) -> u32 {
        self.rng.range_u64(0, width.max(1) as u64) as u32
    }

    /// A uniformly chosen index in `[0, len)`.
    pub fn index(&mut self, len: usize) -> usize {
        self.rng.range_usize(0, len.max(1))
    }
}

/// Per-kind fault counters, merged from every hooked component into
/// `EngineStats::fault_counts` / run summaries.
pub type FaultCounts = BTreeMap<String, u64>;

/// Bumps `counts[kind]` by one.
pub fn count_fault(counts: &mut FaultCounts, kind: &str) {
    *counts.entry(kind.to_string()).or_insert(0) += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_mentions_deadlock_and_snapshot() {
        let e = SimError::Deadlock(WatchdogSnapshot {
            kernel: "gemm".into(),
            cycle: 5000,
            last_progress_cycle: 42,
            reservation_occupancy: 3,
            compute_occupancy: 1,
            mem_outstanding: 7,
            pending_blocks: 2,
            dominant_reject_cause: Some("read_ports".into()),
        });
        let msg = e.to_string();
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("@gemm"), "{msg}");
        assert!(msg.contains("7 mem outstanding"), "{msg}");
        assert!(msg.contains("read_ports"), "{msg}");
        assert_eq!(e.label(), "deadlock");
        assert!(e.is_deadlock());
    }

    #[test]
    fn kernel_fault_display_mentions_runtime_fault() {
        let e = SimError::KernelFault {
            kernel: "fft".into(),
            cycle: 9,
            detail: "division by zero".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("runtime fault in @fft at cycle 9"), "{msg}");
        assert!(msg.contains("division by zero"), "{msg}");
        assert_eq!(e.label(), "kernel-fault");
    }

    #[test]
    fn config_error_display() {
        let e = SimError::config("engine", "deadlock_cycles", "must be nonzero");
        assert_eq!(
            e.to_string(),
            "invalid engine config: deadlock_cycles: must be nonzero"
        );
        assert_eq!(e.label(), "config");
    }

    #[test]
    fn verify_error_carries_diagnostics() {
        use salam_verify::{codes, Diagnostic, Span};
        let e = SimError::Verify(vec![Diagnostic::error(
            codes::V001,
            Span::block("gemm", "body"),
            "use before def",
        )]);
        let msg = e.to_string();
        assert!(msg.contains("static verification rejected"), "{msg}");
        assert!(msg.contains("V001"), "{msg}");
        assert_eq!(e.label(), "verify");
    }

    #[test]
    fn site_streams_are_deterministic_and_decorrelated() {
        let plan = FaultPlan {
            mem_bitflip_rate: 0.5,
            ..FaultPlan::seeded(77)
        };
        let draw = |site: &str| -> Vec<bool> {
            let mut rng = plan.site_rng(site);
            (0..64).map(|_| rng.roll(0.5)).collect()
        };
        assert_eq!(draw("spm.bitflip"), draw("spm.bitflip"));
        assert_ne!(draw("spm.bitflip"), draw("dram.bitflip"));
        // A different seed changes every site's stream.
        let mut other = FaultPlan::seeded(78).site_rng("spm.bitflip");
        let other: Vec<bool> = (0..64).map(|_| other.roll(0.5)).collect();
        assert_ne!(draw("spm.bitflip"), other);
    }

    #[test]
    fn zero_rate_never_fires_and_consumes_nothing() {
        let mut rng = SiteRng::new(1, "x");
        for _ in 0..100 {
            assert!(!rng.roll(0.0));
        }
        // The stream was untouched: it now equals a fresh one.
        let mut fresh = SiteRng::new(1, "x");
        assert_eq!(rng.rng.next_u64(), fresh.rng.next_u64());
    }

    #[test]
    fn zero_plan_is_zero_and_canonical_reprs_distinguish() {
        assert!(FaultPlan::default().is_zero());
        assert!(FaultPlan::seeded(9).is_zero());
        let a = FaultPlan::seeded(1);
        let b = FaultPlan {
            mem_drop_rate: 0.001,
            ..a
        };
        assert!(!b.is_zero());
        assert_ne!(a.canonical_repr(), b.canonical_repr());
        assert_ne!(
            FaultPlan::seeded(1).canonical_repr(),
            FaultPlan::seeded(2).canonical_repr()
        );
        assert_eq!(a.canonical_repr(), FaultPlan::seeded(1).canonical_repr());
    }

    #[test]
    fn bit_and_index_stay_in_range() {
        let mut rng = SiteRng::new(3, "range");
        for _ in 0..200 {
            assert!(rng.bit(64) < 64);
            assert!(rng.index(10) < 10);
        }
    }

    #[test]
    fn watchdog_snapshot_serializes_to_valid_json() {
        let snap = WatchdogSnapshot {
            kernel: "gemm".into(),
            cycle: 1200,
            last_progress_cycle: 200,
            reservation_occupancy: 4,
            compute_occupancy: 1,
            mem_outstanding: 3,
            pending_blocks: 0,
            dominant_reject_cause: Some("contended:2".into()),
        };
        let parsed = salam_obs::json::parse(&snap.to_json()).unwrap();
        assert_eq!(parsed.get("kernel").and_then(|v| v.as_str()), Some("gemm"));
        assert_eq!(parsed.get("cycle").and_then(|v| v.as_f64()), Some(1200.0));
        assert_eq!(
            parsed.get("last_progress_cycle").and_then(|v| v.as_f64()),
            Some(200.0)
        );
        assert_eq!(
            parsed.get("dominant_reject_cause").and_then(|v| v.as_str()),
            Some("contended:2")
        );
        let none = WatchdogSnapshot::default().to_json();
        let parsed = salam_obs::json::parse(&none).unwrap();
        assert_eq!(
            parsed.get("dominant_reject_cause"),
            Some(&salam_obs::json::Value::Null)
        );
    }

    #[test]
    fn count_fault_accumulates() {
        let mut counts = FaultCounts::new();
        count_fault(&mut counts, "fu_bitflip");
        count_fault(&mut counts, "fu_bitflip");
        count_fault(&mut counts, "mem_drop");
        assert_eq!(counts["fu_bitflip"], 2);
        assert_eq!(counts["mem_drop"], 1);
    }
}
