//! Per-cycle statistics collected by the runtime engine.
//!
//! These counters feed the paper's profiling figures directly: stall/new-
//! execution splits (Fig. 14a), stall-source breakdowns (Fig. 14b),
//! scheduling mixes and FU occupancy (Fig. 15), and the dynamic-energy terms
//! of the power model (Fig. 4, Fig. 11).

use std::collections::BTreeMap;

use hw_profile::FuKind;

/// Classification of issued operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IssueClass {
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Floating-point compute.
    Float,
    /// Integer / address compute.
    Int,
    /// Control, phi, casts and other wiring.
    Other,
}

impl IssueClass {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            IssueClass::Load => "load",
            IssueClass::Store => "store",
            IssueClass::Float => "float",
            IssueClass::Int => "int",
            IssueClass::Other => "other",
        }
    }
}

/// Which kinds of unfinished work were pending during a stalled cycle —
/// the paper breaks GEMM stalls down exactly this way (Fig. 14b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct StallMix {
    /// An outstanding load was pending.
    pub load: bool,
    /// An outstanding store was pending.
    pub store: bool,
    /// An outstanding (or blocked) compute op was pending.
    pub compute: bool,
}

impl StallMix {
    /// Canonical label like `"load+compute"`.
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        if self.load {
            parts.push("load");
        }
        if self.store {
            parts.push("store");
        }
        if self.compute {
            parts.push("compute");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// One cycle's activity snapshot (recorded when
/// [`crate::EngineConfig::record_timeline`] is set) — the paper's per-cycle
/// scheduling log that drives fine-grained occupancy exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleRecord {
    /// Operations issued this cycle, per class label.
    pub issued: BTreeMap<&'static str, u32>,
    /// Busy functional units, per kind.
    pub fu_busy: BTreeMap<FuKind, u32>,
    /// Outstanding memory operations at cycle end.
    pub mem_outstanding: u32,
    /// Whether a ready operation was blocked this cycle (a stall).
    pub stalled: bool,
}

/// Aggregate statistics for one engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Total engine cycles.
    pub cycles: u64,
    /// Cycles in which at least one new operation issued.
    pub new_exec_cycles: u64,
    /// Cycles with pending work but no issue.
    pub stall_cycles: u64,
    /// Stalled cycles keyed by the pending-work mix label.
    pub stall_breakdown: BTreeMap<String, u64>,
    /// Issued operations per class.
    pub issued: BTreeMap<&'static str, u64>,
    /// Cycles in which each class issued at least once.
    pub class_active_cycles: BTreeMap<&'static str, u64>,
    /// Memory scheduling mix: cycles in which only loads issued (`"load"`),
    /// only stores (`"store"`), or both (`"load+store"`) — Fig. 15b's
    /// memory-parallelism view.
    pub mem_mix_cycles: BTreeMap<&'static str, u64>,
    /// Sum over cycles of busy units, per FU kind (occupancy numerator).
    pub fu_busy_cycle_sum: BTreeMap<FuKind, u64>,
    /// Allocated pool size per FU kind (occupancy denominator).
    pub fu_pool: BTreeMap<FuKind, u32>,
    /// Dynamic functional-unit energy in picojoules.
    pub fu_dynamic_pj: f64,
    /// Dynamic internal-register read energy in picojoules.
    pub reg_read_pj: f64,
    /// Dynamic internal-register write energy in picojoules.
    pub reg_write_pj: f64,
    /// Loads issued to the memory port.
    pub loads: u64,
    /// Stores issued to the memory port.
    pub stores: u64,
    /// Bytes loaded.
    pub load_bytes: u64,
    /// Bytes stored.
    pub store_bytes: u64,
    /// Cycles in which a ready memory op was refused by the port
    /// (bandwidth saturation).
    pub port_reject_cycles: u64,
    /// Per-cycle attribution: every engine cycle charged to exactly one
    /// [`salam_obs::CycleClass`]. `attribution.total() == cycles` always.
    pub attribution: salam_obs::Attribution,
    /// Port rejections by [`crate::RejectCause`] label — one count per
    /// rejected access (an op can be rejected on many cycles).
    pub reject_causes: BTreeMap<String, u64>,
    /// Injected faults by kind (`fu_bitflip`, `mem_drop`, …), merged from
    /// the engine's own hooks and any [`crate::FaultyPort`] wrapping the
    /// memory path. Empty for clean runs — including runs with a zero-rate
    /// [`salam_fault::FaultPlan`] attached, which are observationally free.
    pub fault_counts: BTreeMap<String, u64>,
    /// The producer→consumer dependency stream (only populated when
    /// [`crate::EngineConfig::record_depstream`] is enabled); input to
    /// [`salam_obs::critpath::analyze`].
    pub depstream: Option<salam_obs::DepStream>,
    /// Per-cycle activity log (only populated when
    /// [`crate::EngineConfig::record_timeline`] is enabled).
    pub timeline: Vec<CycleRecord>,
}

impl EngineStats {
    /// Average occupancy (0..1) of the pool for `kind` over the whole run.
    pub fn fu_occupancy(&self, kind: FuKind) -> f64 {
        let busy = self.fu_busy_cycle_sum.get(&kind).copied().unwrap_or(0) as f64;
        let pool = self.fu_pool.get(&kind).copied().unwrap_or(0) as f64;
        if pool == 0.0 || self.cycles == 0 {
            0.0
        } else {
            busy / (pool * self.cycles as f64)
        }
    }

    /// Fraction of cycles that stalled.
    pub fn stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Total issued operations across classes.
    pub fn total_issued(&self) -> u64 {
        self.issued.values().sum()
    }

    /// Issued count for one class.
    pub fn issued_class(&self, class: IssueClass) -> u64 {
        self.issued.get(class.label()).copied().unwrap_or(0)
    }

    /// Total dynamic datapath energy (FUs + registers) in picojoules.
    pub fn dynamic_datapath_pj(&self) -> f64 {
        self.fu_dynamic_pj + self.reg_read_pj + self.reg_write_pj
    }

    /// Publish every counter into a [`salam_obs::MetricsRegistry`] under
    /// `prefix` (dotted-path convention, e.g. `accel.gemm.engine`).
    pub fn export_metrics(&self, reg: &mut salam_obs::MetricsRegistry, prefix: &str) {
        let p = |s: &str| format!("{prefix}.{s}");
        reg.set(&p("cycles"), self.cycles as f64);
        reg.set(&p("new_exec_cycles"), self.new_exec_cycles as f64);
        reg.set(&p("stall_cycles"), self.stall_cycles as f64);
        reg.set(&p("stall_fraction"), self.stall_fraction());
        for (label, n) in &self.stall_breakdown {
            reg.set(&p(&format!("stall.{label}")), *n as f64);
        }
        for (label, n) in &self.issued {
            reg.set(&p(&format!("issued.{label}")), *n as f64);
        }
        reg.set(&p("issued.total"), self.total_issued() as f64);
        for (label, n) in &self.class_active_cycles {
            reg.set(&p(&format!("active_cycles.{label}")), *n as f64);
        }
        for (label, n) in &self.mem_mix_cycles {
            reg.set(&p(&format!("mem_mix.{label}")), *n as f64);
        }
        for kind in self.fu_pool.keys() {
            reg.set(
                &p(&format!("fu_occupancy.{kind:?}")),
                self.fu_occupancy(*kind),
            );
        }
        reg.set(&p("energy.fu_dynamic_pj"), self.fu_dynamic_pj);
        reg.set(&p("energy.reg_read_pj"), self.reg_read_pj);
        reg.set(&p("energy.reg_write_pj"), self.reg_write_pj);
        reg.set(&p("mem.loads"), self.loads as f64);
        reg.set(&p("mem.stores"), self.stores as f64);
        reg.set(&p("mem.load_bytes"), self.load_bytes as f64);
        reg.set(&p("mem.store_bytes"), self.store_bytes as f64);
        reg.set(&p("mem.port_reject_cycles"), self.port_reject_cycles as f64);
        for (class, n) in self.attribution.iter() {
            reg.set(&p(&format!("attribution.{}", class.label())), n as f64);
        }
        for (cause, n) in &self.reject_causes {
            reg.set(&p(&format!("reject.{cause}")), *n as f64);
        }
        for (kind, n) in &self.fault_counts {
            reg.set(&p(&format!("fault.{kind}")), *n as f64);
        }
    }

    /// Total injected faults across kinds.
    pub fn total_faults(&self) -> u64 {
        self.fault_counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_mix_labels() {
        assert_eq!(StallMix::default().label(), "none");
        assert_eq!(
            StallMix {
                load: true,
                store: false,
                compute: true
            }
            .label(),
            "load+compute"
        );
        assert_eq!(
            StallMix {
                load: true,
                store: true,
                compute: true
            }
            .label(),
            "load+store+compute"
        );
    }

    #[test]
    fn occupancy_math() {
        let mut s = EngineStats {
            cycles: 10,
            ..Default::default()
        };
        s.fu_pool.insert(FuKind::FpAddF64, 4);
        s.fu_busy_cycle_sum.insert(FuKind::FpAddF64, 20);
        assert!((s.fu_occupancy(FuKind::FpAddF64) - 0.5).abs() < 1e-12);
        assert_eq!(s.fu_occupancy(FuKind::Mux), 0.0);
    }

    #[test]
    fn fractions_guard_zero() {
        let s = EngineStats::default();
        assert_eq!(s.stall_fraction(), 0.0);
        assert_eq!(s.total_issued(), 0);
    }
}
