//! # salam-runtime
//!
//! The dynamic LLVM runtime engine — the "execute-in-execute" core of
//! gem5-SALAM (paper §III-B).
//!
//! The engine instantiates a *dynamic* CDFG at runtime from the static CDFG
//! elaborated by [`salam_cdfg`]:
//!
//! * a **reservation queue** imports instructions basic block by basic
//!   block, creating per-instance dynamic dependencies by searching earlier
//!   instances (RAW through SSA operands, WAW/WAR through destination
//!   registers, and address-based ordering through memory);
//! * a **compute queue** holds issued compute operations until their
//!   functional-unit latency elapses, enforcing user-imposed FU pool limits
//!   (reuse) and accounting dynamic energy per active unit;
//! * asynchronous **read/write queues** push memory operations into a
//!   [`MemPort`] (a scratchpad, cache hierarchy, or stream interface) and
//!   commit them when completions return — possibly between compute cycles.
//!
//! Because instructions execute with live values, control flow is resolved
//! *during* simulation: data-dependent branches take the path the data
//! dictates, which is exactly what trace-based simulators cannot re-create
//! (Table I of the paper).
//!
//! # Example
//!
//! ```
//! use hw_profile::HardwareProfile;
//! use salam_cdfg::{FuConstraints, StaticCdfg};
//! use salam_ir::{FunctionBuilder, Type, interp::RtVal};
//! use salam_runtime::{Engine, EngineConfig, SimpleMem};
//!
//! // a[i] *= 2 over 8 elements.
//! let mut fb = FunctionBuilder::new("scale", &[("a", Type::Ptr), ("n", Type::I64)]);
//! let (a, n) = (fb.arg(0), fb.arg(1));
//! let zero = fb.i64c(0);
//! fb.counted_loop("i", zero, n, |fb, iv| {
//!     let p = fb.gep1(Type::I64, a, iv, "p");
//!     let x = fb.load(Type::I64, p, "x");
//!     let two = fb.i64c(2);
//!     let y = fb.mul(x, two, "y");
//!     fb.store(y, p);
//! });
//! fb.ret();
//! let f = fb.finish();
//!
//! let profile = HardwareProfile::default_40nm();
//! let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
//! let mut mem = SimpleMem::new(2, 2, 2);
//! mem.memory_mut().write_i64_slice(0x1000, &[1, 2, 3, 4, 5, 6, 7, 8]);
//! let mut engine = Engine::new(f, cdfg, profile, EngineConfig::default(),
//!                              vec![RtVal::P(0x1000), RtVal::I(8)]);
//! while !engine.step(&mut mem) {}
//! assert_eq!(mem.memory_mut().read_i64_slice(0x1000, 8), vec![2, 4, 6, 8, 10, 12, 14, 16]);
//! assert!(engine.stats().cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod port;
mod stats;

pub use engine::{Engine, EngineConfig, CANCEL_BATCH};
pub use port::{FaultyPort, MemAccess, MemCompletion, MemPort, RejectCause, Rejection, SimpleMem};
pub use salam_fault::{ConfigError, FaultPlan, SimError, WatchdogSnapshot};
pub use stats::{CycleRecord, EngineStats, IssueClass, StallMix};
