//! The runtime scheduler: reservation, compute and memory queues.

use std::collections::{HashMap, HashSet, VecDeque};

use hw_profile::{FuKind, HardwareProfile};
use salam_cdfg::StaticCdfg;
use salam_fault::{FaultPlan, SimError, SiteRng, WatchdogSnapshot};
use salam_ir::interp::{eval_pure, InterpError, RtVal};
use salam_ir::{BlockId, Function, InstId, Opcode, Type, ValueKind};
use salam_obs::{SharedTrace, SpanId, TrackId};
use salam_resilience::CancelToken;
use salam_telemetry::FlightRecorder;

use crate::port::{MemAccess, MemPort};
use crate::stats::{EngineStats, IssueClass, StallMix};

/// Cycles between cooperative-cancellation polls (power of two; the poll
/// also fires at cycle 0). A cancel or expired deadline therefore stops a
/// run within one cycle batch of being requested.
pub const CANCEL_BATCH: u64 = 1024;

/// Tunables of the runtime engine (the paper's "device config" scheduler
/// options).
///
/// Memory note: the engine's value tables grow with the number of dynamic
/// instructions executed (~26 bytes each). The *scheduling* state is bounded
/// by `reservation_entries`, but a single invocation running billions of
/// dynamic instructions will accumulate gigabytes of value history; split
/// such workloads into multiple invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Accelerator clock period in picoseconds (energy accounting).
    pub clock_period_ps: u64,
    /// Reservation-queue capacity in dynamic instructions.
    pub reservation_entries: usize,
    /// Maximum outstanding reads in the read queue.
    pub max_outstanding_reads: usize,
    /// Maximum outstanding writes in the write queue.
    pub max_outstanding_writes: usize,
    /// Cycles without progress before the engine declares a deadlock.
    pub deadlock_cycles: u64,
    /// Model functional units as fully pipelined (initiation interval 1):
    /// a unit accepts a new operation the cycle after issue instead of
    /// staying busy until commit. gem5-SALAM's default (and ours) is
    /// unpipelined occupancy; this knob exists for ablation studies.
    pub pipelined_fus: bool,
    /// Record a per-cycle activity log in [`EngineStats::timeline`] — the
    /// paper's cycle-granularity scheduling log. Off by default (it grows
    /// with runtime).
    pub record_timeline: bool,
    /// Record the producer→consumer dependency stream in
    /// [`EngineStats::depstream`] for critical-path analysis. Off by
    /// default (one record per dynamic op); observability-only, never
    /// changes the schedule.
    pub record_depstream: bool,
    /// Enforce strict WAR/WAW register hazards between dynamic instances of
    /// the same instruction. The paper's reservation queue only requires
    /// previous instances and readers to be "in-flight or completed", and
    /// each dynamic instance carries its own operand context (implicit
    /// renaming), so the default is off; enabling this models a datapath
    /// without pipeline registers (ablation knob).
    pub strict_register_hazards: bool,
}

impl Default for EngineConfig {
    /// 1 GHz clock, 128-entry reservation window (the paper's runtime keeps
    /// small queues), 64 outstanding reads and writes.
    fn default() -> Self {
        EngineConfig {
            clock_period_ps: 1000,
            reservation_entries: 128,
            max_outstanding_reads: 64,
            max_outstanding_writes: 64,
            deadlock_cycles: 1_000_000,
            pipelined_fus: false,
            record_timeline: false,
            record_depstream: false,
            strict_register_hazards: false,
        }
    }
}

impl EngineConfig {
    /// A canonical `key=value` line covering every knob that can change
    /// simulated behaviour. Equal configs always produce equal strings —
    /// the design-space-exploration cache keys on this. `record_timeline`
    /// and `record_depstream` are deliberately excluded: they only add
    /// logging, never change the schedule.
    pub fn canonical_repr(&self) -> String {
        format!(
            "clock_period_ps={};reservation_entries={};max_outstanding_reads={};\
             max_outstanding_writes={};deadlock_cycles={};pipelined_fus={};\
             strict_register_hazards={}",
            self.clock_period_ps,
            self.reservation_entries,
            self.max_outstanding_reads,
            self.max_outstanding_writes,
            self.deadlock_cycles,
            self.pipelined_fus,
            self.strict_register_hazards,
        )
    }

    /// Rejects nonsense knob settings before they turn into deep-in-the-run
    /// panics or silent infinite loops: a zero-entry reservation window can
    /// never import a block, zero outstanding-op limits wedge every memory
    /// op, a zero deadlock threshold cannot distinguish a stall from a
    /// hang, and a zero clock period breaks energy accounting.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |field: &str, detail: &str| Err(SimError::config("engine", field, detail));
        if self.clock_period_ps == 0 {
            return bad("clock_period_ps", "must be nonzero");
        }
        if self.reservation_entries == 0 {
            return bad("reservation_entries", "must be nonzero");
        }
        if self.max_outstanding_reads == 0 {
            return bad("max_outstanding_reads", "must be nonzero");
        }
        if self.max_outstanding_writes == 0 {
            return bad("max_outstanding_writes", "must be nonzero");
        }
        if self.deadlock_cycles == 0 {
            return bad("deadlock_cycles", "must be nonzero");
        }
        Ok(())
    }
}

/// The engine's own injection state: per-site decision streams for FU
/// result flips and latency jitter.
#[derive(Debug)]
struct EngineFault {
    plan: FaultPlan,
    flip: SiteRng,
    jitter: SiteRng,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepKind {
    /// Producer must have committed (RAW, WAW).
    Commit,
    /// Reader must have issued (WAR on register overwrite).
    Issue,
}

#[derive(Debug, Clone, Copy)]
struct Dep {
    uid: u64,
    kind: DepKind,
}

#[derive(Debug, Clone)]
enum Operand {
    Imm(RtVal),
    Inst(u64),
}

#[derive(Debug, Clone)]
struct DynInst {
    uid: u64,
    inst: InstId,
    class: IssueClass,
    fu: Option<FuKind>,
    latency: u32,
    bits: u32,
    operands: Vec<Operand>,
    deps: Vec<Dep>,
    /// For phis: index of the chosen incoming edge (operands reduced to one).
    is_store: bool,
    is_load: bool,
    is_term: bool,
    /// Memory ops: whether this op's address was published to the window.
    span_resolved: bool,
    /// Cached `(addr, size)` once resolved.
    span: Option<(u64, u32)>,
    /// Open trace span (issue → retire), invalid when tracing is off.
    tspan: SpanId,
    /// Cycle this op issued (depstream timestamp; 0 until issue).
    issue_cycle: u64,
    /// Resource class for attribution: the FU name for compute ops, the
    /// issue-class label for everything else.
    res_class: &'static str,
    /// Producer uids captured at import, *before* dependency pruning
    /// (only filled when `record_depstream` is on).
    all_deps: Vec<u64>,
    /// Block-import sequence number this op arrived with (depstream
    /// metadata: ops of one `import_block` call share a group).
    group: u32,
    /// Uid of the terminator whose issue imported this op's block (0 for
    /// the entry block) — the control dependence the replay layer needs.
    ctrl: u64,
    /// Memory ops: uid of the pointer-operand producer (0 when the
    /// address comes from an immediate or argument).
    addr_dep: u64,
}

/// Trace tracks the engine emits onto, registered once at `set_trace`.
#[derive(Debug, Clone, Copy)]
struct TraceTracks {
    /// One span per dynamic op, issue → retire.
    ops: TrackId,
    /// Scheduler events: stall/port-reject instants, queue-depth counters.
    sched: TrackId,
}

#[derive(Debug)]
struct MemRec {
    uid: u64,
    is_store: bool,
    /// `(addr, size)` once the address operand is resolvable.
    span: Option<(u64, u32)>,
}

/// The dynamic LLVM runtime engine. See the [crate docs](crate) for an
/// end-to-end example.
#[derive(Debug)]
pub struct Engine {
    func: Function,
    cdfg: StaticCdfg,
    profile: HardwareProfile,
    cfg: EngineConfig,
    args: Vec<RtVal>,

    reservation: VecDeque<DynInst>,
    compute_q: Vec<(DynInst, u64, u64)>, // (op, commit cycle, fu release cycle)
    mem_wait: HashMap<u64, DynInst>,     // token -> op
    mem_window: Vec<MemRec>,

    // Value/state tables indexed by uid (uids are dense and monotonic).
    values: Vec<Option<RtVal>>,
    committed: Vec<bool>,
    issued: Vec<bool>,
    last_instance: Vec<Option<u64>>, // indexed by InstId
    readers_of: HashMap<u64, Vec<u64>>,

    /// Blocks awaiting import: `(block, taken predecessor, uid of the
    /// terminator that scheduled the fetch — 0 for the entry block)`.
    pending_fetch: VecDeque<(BlockId, Option<BlockId>, u64)>,
    fetch_stopped: bool,
    ret_value: Option<RtVal>,

    fu_busy: HashMap<FuKind, u32>,
    uid_next: u64,
    import_seq: u32,
    token_next: u64,
    outstanding_reads: usize,
    outstanding_writes: usize,

    cycle: u64,
    last_progress: u64,
    stats: EngineStats,
    done: bool,

    trace: SharedTrace,
    trace_tracks: Option<TraceTracks>,
    trace_offset_ps: u64,

    flight: FlightRecorder,
    flight_trace_id: u64,

    fault: Option<EngineFault>,

    cancel: CancelToken,
}

impl Engine {
    /// Creates an engine for one invocation of `func` with the given MMR-
    /// programmed arguments.
    ///
    /// # Panics
    ///
    /// Panics if the argument count does not match the function signature.
    pub fn new(
        func: Function,
        cdfg: StaticCdfg,
        profile: HardwareProfile,
        cfg: EngineConfig,
        args: Vec<RtVal>,
    ) -> Self {
        assert_eq!(args.len(), func.params.len(), "argument count mismatch");
        let mut stats = EngineStats::default();
        for (k, n) in cdfg.fu_counts() {
            stats.fu_pool.insert(k, n);
        }
        stats.depstream = cfg.record_depstream.then(salam_obs::DepStream::new);
        let entry = func.entry();
        let mut e = Engine {
            func,
            cdfg,
            profile,
            cfg,
            args,
            reservation: VecDeque::new(),
            compute_q: Vec::new(),
            mem_wait: HashMap::new(),
            mem_window: Vec::new(),
            values: vec![None],
            committed: vec![false],
            issued: vec![false],
            last_instance: Vec::new(),
            readers_of: HashMap::new(),
            pending_fetch: VecDeque::new(),
            fetch_stopped: false,
            ret_value: None,
            fu_busy: HashMap::new(),
            uid_next: 1,
            import_seq: 0,
            token_next: 1,
            outstanding_reads: 0,
            outstanding_writes: 0,
            cycle: 0,
            last_progress: 0,
            stats,
            done: false,
            trace: SharedTrace::disabled(),
            trace_tracks: None,
            trace_offset_ps: 0,
            flight: FlightRecorder::disabled(),
            flight_trace_id: 0,
            fault: None,
            cancel: CancelToken::none(),
        };
        e.last_instance = vec![None; e.func.num_insts()];
        e.pending_fetch.push_back((entry, None, 0));
        e
    }

    /// Attaches a trace sink. Each dynamic op becomes a span (issue →
    /// retire) on the `engine.<func>.ops` track; stalls, port rejects and
    /// queue-depth samples go to `engine.<func>.sched`. A disabled handle
    /// (the default) keeps every hook down to a single branch.
    pub fn set_trace(&mut self, trace: SharedTrace) {
        self.trace_tracks = trace.is_enabled().then(|| TraceTracks {
            ops: trace.track(&format!("engine.{}.ops", self.func.name)),
            sched: trace.track(&format!("engine.{}.sched", self.func.name)),
        });
        self.trace = trace;
    }

    /// Offsets trace timestamps by `offset` picoseconds, so an engine
    /// embedded in a full-system simulation stamps absolute sim time.
    pub fn set_trace_offset_ps(&mut self, offset: u64) {
        self.trace_offset_ps = offset;
    }

    /// Attaches the serving layer's flight recorder; run starts/ends,
    /// errors and a coarse heartbeat land in the shared ring tagged with
    /// `trace_id`. A disabled recorder (the default) keeps every hook down
    /// to a single branch — the recorder never observes or perturbs
    /// simulation state.
    pub fn set_flight(&mut self, flight: FlightRecorder, trace_id: u64) {
        self.flight = flight;
        self.flight_trace_id = trace_id;
    }

    /// Attaches a cooperative cancel/deadline token. The engine polls it
    /// every [`CANCEL_BATCH`] cycles (and at cycle 0) and stops with
    /// [`SimError::Cancelled`] when it fires, so a wedged or over-deadline
    /// run releases its worker within one cycle batch. The disabled token
    /// (the default) keeps the poll down to a single branch.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Attaches a fault-injection plan. The engine draws from per-site
    /// streams derived from the plan seed (`engine.fu_bitflip`,
    /// `engine.fu_jitter`), so the injection schedule is a pure function
    /// of the plan and the executed instruction stream. A zero-rate plan
    /// installs the hooks but never fires and never consumes stream state.
    pub fn set_fault(&mut self, plan: &FaultPlan) {
        self.fault = Some(EngineFault {
            plan: *plan,
            flip: plan.site_rng("engine.fu_bitflip"),
            jitter: plan.site_rng("engine.fu_jitter"),
        });
    }

    /// Merges fault counters from an external component (e.g. a
    /// [`crate::FaultyPort`] wrapped around this engine's memory port) into
    /// the engine's stats, so one report carries the whole campaign.
    pub fn merge_fault_counts(&mut self, counts: &salam_fault::FaultCounts) {
        for (kind, n) in counts {
            *self.stats.fault_counts.entry(kind.clone()).or_insert(0) += n;
        }
    }

    /// Counts one injected fault and emits a `fault:<kind>` trace instant.
    fn note_fault(&mut self, kind: &str, cycle: u64) {
        *self.stats.fault_counts.entry(kind.to_string()).or_insert(0) += 1;
        if let Some(t) = &self.trace_tracks {
            self.trace
                .instant(t.sched, &format!("fault:{kind}"), self.trace_ts(cycle));
        }
    }

    /// The watchdog's view of the engine at deadlock-detection time.
    fn watchdog_snapshot(&self) -> WatchdogSnapshot {
        WatchdogSnapshot {
            kernel: self.func.name.clone(),
            cycle: self.cycle,
            last_progress_cycle: self.last_progress,
            reservation_occupancy: self.reservation.len(),
            compute_occupancy: self.compute_q.len(),
            mem_outstanding: self.mem_wait.len(),
            pending_blocks: self.pending_fetch.len(),
            dominant_reject_cause: self
                .stats
                .reject_causes
                .iter()
                .max_by(|(ka, va), (kb, vb)| va.cmp(vb).then_with(|| kb.cmp(ka)))
                .map(|(k, _)| k.clone()),
        }
    }

    #[inline]
    fn trace_ts(&self, cycle: u64) -> u64 {
        self.trace_offset_ps + cycle * self.cfg.clock_period_ps
    }

    /// The engine's statistics so far (or final, once done).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Cycles elapsed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether the invocation has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The value returned by `ret`, if the function returned one.
    pub fn result(&self) -> Option<RtVal> {
        self.ret_value
    }

    /// Runs the engine to completion against `port`; returns final cycles.
    ///
    /// Thin panicking wrapper over [`Engine::try_run_to_completion`] for
    /// callers that treat a hung or faulting design as a test failure.
    ///
    /// # Panics
    ///
    /// Panics if the engine deadlocks (no progress for the configured
    /// threshold), on a runtime fault in the modeled kernel, or on an
    /// invalid [`EngineConfig`].
    pub fn run_to_completion(&mut self, port: &mut dyn MemPort) -> u64 {
        match self.try_run_to_completion(port) {
            Ok(cycles) => cycles,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the engine to completion against `port`; returns final cycles.
    ///
    /// # Errors
    ///
    /// * [`SimError::Config`] if the [`EngineConfig`] fails validation.
    /// * [`SimError::Deadlock`] with a [`WatchdogSnapshot`] if no queue
    ///   makes progress for `deadlock_cycles`.
    /// * [`SimError::KernelFault`] if the modeled kernel faults (division
    ///   by zero, undef use, …).
    pub fn try_run_to_completion(&mut self, port: &mut dyn MemPort) -> Result<u64, SimError> {
        self.cfg.validate()?;
        if self.flight.is_enabled() {
            self.flight.record(
                self.flight_trace_id,
                "engine",
                format!("run-start kernel={}", self.func.name),
            );
        }
        loop {
            match self.try_step(port) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => {
                    if self.flight.is_enabled() {
                        self.flight.record(
                            self.flight_trace_id,
                            "engine",
                            format!(
                                "run-error kernel={} cycle={} kind={}: {e}",
                                self.func.name,
                                self.cycle,
                                e.label()
                            ),
                        );
                    }
                    return Err(e);
                }
            }
        }
        if self.flight.is_enabled() {
            self.flight.record(
                self.flight_trace_id,
                "engine",
                format!("run-end kernel={} cycles={}", self.func.name, self.cycle),
            );
        }
        Ok(self.cycle)
    }

    // ---- import ------------------------------------------------------------

    fn operand_of(&mut self, uid: u64, v: salam_ir::ValueId) -> Operand {
        match self.func.value_kind(v) {
            ValueKind::Arg(i) => Operand::Imm(self.args[*i as usize]),
            ValueKind::Const(c) => Operand::Imm(const_rt(c)),
            ValueKind::Inst(def) => {
                let def_uid = self.last_instance[def.index()]
                    .unwrap_or_else(|| panic!("use of value with no dynamic instance"));
                if self.cfg.strict_register_hazards {
                    self.readers_of.entry(def_uid).or_default().push(uid);
                }
                Operand::Inst(def_uid)
            }
        }
    }

    fn import_block(&mut self, block: BlockId, pred: Option<BlockId>, ctrl: u64) {
        let group = self.import_seq;
        self.import_seq += 1;
        let inst_ids = self.func.block(block).insts.clone();
        for iid in inst_ids {
            let inst = self.func.inst(iid);
            let (inst_op_is_phi, inst_has_result, inst_is_term) = (
                inst.op == Opcode::Phi,
                inst.has_result(),
                inst.op.is_terminator(),
            );
            let uid = self.uid_next;
            self.uid_next += 1;
            self.values.push(None);
            self.committed.push(false);
            self.issued.push(false);
            let sop = self.cdfg.op(iid).clone();

            // Resolve operands; phis keep only the chosen incoming edge.
            let static_ops: Vec<salam_ir::ValueId> = if inst_op_is_phi {
                let pred = pred.expect("phi requires a predecessor");
                let k = inst
                    .block_refs
                    .iter()
                    .position(|&b| b == pred)
                    .expect("phi has an edge for the taken predecessor");
                vec![inst.operands[k]]
            } else {
                inst.operands.clone()
            };
            let mut operands = Vec::with_capacity(static_ops.len());
            let mut deps: Vec<Dep> = Vec::new();
            for &v in &static_ops {
                let op = self.operand_of(uid, v);
                if let Operand::Inst(def_uid) = op {
                    if !self.committed[def_uid as usize] {
                        deps.push(Dep {
                            uid: def_uid,
                            kind: DepKind::Commit,
                        });
                    }
                }
                operands.push(op);
            }

            // Optional strict hazards: WAW (previous dynamic instance of this
            // instruction must have committed) and WAR (everything reading
            // the old value must have issued before the overwrite).
            if inst_has_result {
                if self.cfg.strict_register_hazards {
                    if let Some(prev) = self.last_instance[iid.index()] {
                        if !self.committed[prev as usize] {
                            deps.push(Dep {
                                uid: prev,
                                kind: DepKind::Commit,
                            });
                        }
                        if let Some(readers) = self.readers_of.get(&prev) {
                            for &r in readers {
                                if r != uid && !self.issued[r as usize] {
                                    deps.push(Dep {
                                        uid: r,
                                        kind: DepKind::Issue,
                                    });
                                }
                            }
                        }
                    }
                }
                self.last_instance[iid.index()] = Some(uid);
            }

            let mut all_deps: Vec<u64> = Vec::new();
            if self.cfg.record_depstream {
                for op in &operands {
                    if let Operand::Inst(def_uid) = op {
                        all_deps.push(*def_uid);
                    }
                }
                for dep in &deps {
                    all_deps.push(dep.uid);
                }
                all_deps.sort_unstable();
                all_deps.dedup();
            }

            let inst = self.func.inst(iid);
            let is_load = inst.op == Opcode::Load;
            let is_store = inst.op == Opcode::Store;
            let class = classify(&inst.op);
            let res_class = sop.fu.map(FuKind::name).unwrap_or(class.label());
            // The pointer-operand producer of a memory op gates when its
            // address can be published to the ordering window — recorded so
            // replay can mirror publication timing.
            let addr_dep = if is_load || is_store {
                let ptr_idx = if is_store { 1 } else { 0 };
                match operands.get(ptr_idx) {
                    Some(Operand::Inst(def_uid)) => *def_uid,
                    _ => 0,
                }
            } else {
                0
            };
            let d = DynInst {
                uid,
                inst: iid,
                class,
                fu: sop.fu,
                latency: sop.latency,
                bits: sop.bits,
                operands,
                deps,
                is_store,
                is_load,
                is_term: inst_is_term,
                span_resolved: false,
                span: None,
                tspan: SpanId::INVALID,
                issue_cycle: 0,
                res_class,
                all_deps,
                group,
                ctrl,
                addr_dep,
            };
            if is_load || is_store {
                self.mem_window.push(MemRec {
                    uid,
                    is_store,
                    span: None,
                });
            }
            self.reservation.push_back(d);
        }
    }

    // ---- value plumbing ------------------------------------------------------

    fn operand_value(&self, op: &Operand) -> Option<RtVal> {
        match op {
            Operand::Imm(v) => Some(*v),
            Operand::Inst(uid) => {
                if self.committed[*uid as usize] {
                    self.values[*uid as usize]
                } else {
                    None
                }
            }
        }
    }

    /// `(addr, size)` of a ready memory op, if its pointer is resolvable.
    fn mem_span(&self, d: &DynInst) -> Option<(u64, u32)> {
        let inst = self.func.inst(d.inst);
        let (ptr_idx, size) = if d.is_store {
            (
                1,
                self.func.value_type(inst.operands[0]).size_bytes() as u32,
            )
        } else {
            (0, inst.ty.size_bytes() as u32)
        };
        let ptr = self.operand_value(&d.operands[ptr_idx])?;
        Some((ptr.as_p(), size))
    }

    /// Memory ordering: an op may issue only when every older conflicting
    /// (or unresolved) access in the window has committed.
    fn mem_order_ok(&self, d: &DynInst) -> bool {
        let Some((addr, size)) = d.span.or_else(|| self.mem_span(d)) else {
            return false;
        };
        for rec in &self.mem_window {
            if rec.uid >= d.uid {
                break;
            }
            // Only store→load, load→store and store→store order; loads
            // never conflict with loads.
            if !(rec.is_store || d.is_store) {
                continue;
            }
            match rec.span {
                None => return false, // older access with unknown address
                Some((a, s)) => {
                    let overlap = addr < a + s as u64 && a < addr + size as u64;
                    if overlap {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn store_bytes(&self, d: &DynInst) -> Vec<u8> {
        let inst = self.func.inst(d.inst);
        let ty = self.func.value_type(inst.operands[0]);
        let v = self
            .operand_value(&d.operands[0])
            .expect("store value ready");
        encode_scalar(&ty, v)
    }

    fn eval_compute(&self, d: &DynInst) -> Result<Option<RtVal>, InterpError> {
        let inst = self.func.inst(d.inst);
        match inst.op {
            Opcode::Phi => Ok(Some(
                self.operand_value(&d.operands[0]).expect("phi value ready"),
            )),
            Opcode::Br | Opcode::CondBr => Ok(None),
            Opcode::Ret => Ok(inst
                .operands
                .first()
                .map(|_| self.operand_value(&d.operands[0]).expect("ret value ready"))),
            _ => {
                // Map static operand ids to this instance's values.
                let static_ops = &inst.operands;
                let vals: Vec<RtVal> = d
                    .operands
                    .iter()
                    .map(|o| self.operand_value(o).expect("operand ready"))
                    .collect();
                let get = |v: salam_ir::ValueId| -> Result<RtVal, InterpError> {
                    let k = static_ops
                        .iter()
                        .position(|&s| s == v)
                        .expect("operand belongs to instruction");
                    Ok(vals[k])
                };
                eval_pure(&self.func, &inst.op, &inst.ty, static_ops, get).map(Some)
            }
        }
    }

    // ---- the cycle loop -------------------------------------------------------

    /// Advances one accelerator cycle. Returns `true` once the invocation
    /// has fully drained. Thin panicking wrapper over [`Engine::try_step`].
    ///
    /// # Panics
    ///
    /// Panics on deadlock or on a runtime fault in the modeled kernel
    /// (e.g. division by zero).
    pub fn step(&mut self, port: &mut dyn MemPort) -> bool {
        match self.try_step(port) {
            Ok(done) => done,
            Err(e) => panic!("{e}"),
        }
    }

    /// Advances one accelerator cycle. Returns `Ok(true)` once the
    /// invocation has fully drained.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] (with a populated [`WatchdogSnapshot`]) when
    /// no queue has progressed for `deadlock_cycles`; [`SimError::KernelFault`]
    /// when the modeled kernel faults (e.g. division by zero). After an
    /// error the engine is wedged: further steps keep returning errors.
    pub fn try_step(&mut self, port: &mut dyn MemPort) -> Result<bool, SimError> {
        if self.done {
            return Ok(true);
        }
        port.begin_cycle();
        let mut progressed = false;

        // 1. Memory completions commit first (the asynchronous memory
        //    queues of the paper).
        for completion in port.poll() {
            let mut d = self
                .mem_wait
                .remove(&completion.token)
                .expect("completion for unknown token");
            if d.is_store {
                self.outstanding_writes -= 1;
            } else {
                self.outstanding_reads -= 1;
            }
            let value = if d.is_load {
                let inst = self.func.inst(d.inst);
                let bytes = completion.data.expect("load completion carries data");
                Some(decode_scalar(&inst.ty, &bytes))
            } else {
                None
            };
            if value.is_some() {
                self.stats.reg_write_pj +=
                    self.profile.register.write_energy_pj_per_bit * d.bits as f64;
            }
            self.values[d.uid as usize] = value;
            self.committed[d.uid as usize] = true;
            self.mem_window.retain(|r| r.uid != d.uid);
            if let Some(ds) = self.stats.depstream.as_mut() {
                ds.record_meta(
                    d.uid,
                    self.func.inst(d.inst).op.mnemonic(),
                    d.res_class,
                    d.issue_cycle,
                    self.cycle,
                    std::mem::take(&mut d.all_deps),
                    dep_meta(&d),
                );
            }
            self.trace.end_span(d.tspan, self.trace_ts(self.cycle));
            progressed = true;
        }

        // 2. Compute commits.
        let cycle = self.cycle;
        let commit_ts = self.trace_ts(cycle);
        let mut still_busy = Vec::new();
        for (mut d, commit_at, fu_release_at) in self.compute_q.drain(..) {
            if fu_release_at <= cycle {
                if let Some(k) = d.fu.take() {
                    *self.fu_busy.get_mut(&k).expect("fu pool exists") -= 1;
                }
            }
            if commit_at <= cycle {
                debug_assert!(d.fu.is_none(), "FU released no later than commit");
                self.committed[d.uid as usize] = true;
                if self.func.inst(d.inst).has_result() {
                    self.stats.reg_write_pj +=
                        self.profile.register.write_energy_pj_per_bit * d.bits as f64;
                }
                if let Some(ds) = self.stats.depstream.as_mut() {
                    ds.record_meta(
                        d.uid,
                        self.func.inst(d.inst).op.mnemonic(),
                        d.res_class,
                        d.issue_cycle,
                        cycle,
                        std::mem::take(&mut d.all_deps),
                        dep_meta(&d),
                    );
                }
                self.trace.end_span(d.tspan, commit_ts);
                progressed = true;
            } else {
                still_busy.push((d, commit_at, fu_release_at));
            }
        }
        self.compute_q = still_busy;

        // 3. Import the next basic block(s) while there is room. A block
        //    larger than the whole window is admitted into an empty queue
        //    (blocks cannot be split).
        while let Some(&(block, pred, ctrl)) = self.pending_fetch.front() {
            let room = self.cfg.reservation_entries
                - self.reservation.len().min(self.cfg.reservation_entries);
            if self.func.block(block).insts.len() > room && !self.reservation.is_empty() {
                break;
            }
            self.pending_fetch.pop_front();
            self.import_block(block, pred, ctrl);
            progressed = true;
        }

        // 4a. Publish memory addresses as soon as pointer operands resolve,
        //     independent of data readiness — a store whose value is still
        //     in flight must not hide its (known) address from younger loads.
        for i in 0..self.reservation.len() {
            let needs = (self.reservation[i].is_load || self.reservation[i].is_store)
                && !self.reservation[i].span_resolved;
            if needs {
                if let Some(span) = self.mem_span(&self.reservation[i]) {
                    let uid = self.reservation[i].uid;
                    self.reservation[i].span_resolved = true;
                    self.reservation[i].span = Some(span);
                    if let Some(rec) = self.mem_window.iter_mut().find(|r| r.uid == uid) {
                        rec.span = Some(span);
                    }
                }
            }
        }

        // 4b. Issue ready operations from the reservation queue.
        let mut issued_this_cycle = 0u64;
        let mut classes_this_cycle: HashSet<&'static str> = HashSet::new();
        // Ready (dependency-free) ops that could not launch this cycle —
        // the paper's notion of a stall.
        let mut blocked_mix = StallMix::default();
        let mut blocked_any = false;
        let mut port_rejected = false;
        // Attribution causes: a ready op hit an FU pool limit / a memory
        // limit (outstanding cap or port reject) this cycle.
        let mut fu_blocked = false;
        let mut mem_limit_blocked = false;
        let mut idx = 0;
        while idx < self.reservation.len() {
            let ready = {
                // Prune satisfied dependencies so later cycles re-check only
                // the outstanding ones.
                let committed = &self.committed;
                let issued = &self.issued;
                let d = &mut self.reservation[idx];
                d.deps.retain(|dep| match dep.kind {
                    DepKind::Commit => !committed[dep.uid as usize],
                    DepKind::Issue => !(issued[dep.uid as usize] || committed[dep.uid as usize]),
                });
                d.deps.is_empty()
            };
            if !ready {
                idx += 1;
                continue;
            }
            let d = &self.reservation[idx];
            // Functional-unit pool availability (user-enforced reuse).
            if let Some(k) = d.fu {
                let pool = self.stats.fu_pool.get(&k).copied().unwrap_or(0);
                let busy = self.fu_busy.get(&k).copied().unwrap_or(0);
                if busy >= pool {
                    blocked_any = true;
                    blocked_mix.compute = true;
                    fu_blocked = true;
                    idx += 1;
                    continue;
                }
            }
            if d.is_load || d.is_store {
                if !self.mem_order_ok(d) {
                    blocked_any = true;
                    if d.is_store {
                        blocked_mix.store = true;
                    } else {
                        blocked_mix.load = true;
                    }
                    idx += 1;
                    continue;
                }
                let limit_ok = if d.is_store {
                    self.outstanding_writes < self.cfg.max_outstanding_writes
                } else {
                    self.outstanding_reads < self.cfg.max_outstanding_reads
                };
                if !limit_ok {
                    blocked_any = true;
                    mem_limit_blocked = true;
                    if d.is_store {
                        blocked_mix.store = true;
                    } else {
                        blocked_mix.load = true;
                    }
                    idx += 1;
                    continue;
                }
                let (addr, size) = d.span.or_else(|| self.mem_span(d)).expect("span resolved");
                let token = self.token_next;
                let data = d.is_store.then(|| self.store_bytes(d));
                let access = MemAccess {
                    token,
                    addr,
                    size,
                    is_write: d.is_store,
                    data,
                };
                match port.try_issue(access) {
                    Ok(()) => {
                        self.token_next += 1;
                        let mut d = self.reservation.remove(idx).expect("index valid");
                        d.issue_cycle = cycle;
                        // Cache the span so the depstream completion record
                        // carries the touched address even when the op
                        // issued before its window publication.
                        d.span = Some((addr, size));
                        d.tspan = self.register_issue(&d, &mut classes_this_cycle);
                        if d.is_store {
                            self.outstanding_writes += 1;
                            self.stats.stores += 1;
                            self.stats.store_bytes += size as u64;
                        } else {
                            self.outstanding_reads += 1;
                            self.stats.loads += 1;
                            self.stats.load_bytes += size as u64;
                        }
                        self.mem_wait.insert(token, d);
                        issued_this_cycle += 1;
                    }
                    Err(rejected) => {
                        *self
                            .stats
                            .reject_causes
                            .entry(rejected.cause.label().to_string())
                            .or_insert(0) += 1;
                        port_rejected = true;
                        mem_limit_blocked = true;
                        blocked_any = true;
                        if d.is_store {
                            blocked_mix.store = true;
                        } else {
                            blocked_mix.load = true;
                        }
                        idx += 1;
                    }
                }
                continue;
            }

            // Compute / control issue.
            let mut d = self.reservation.remove(idx).expect("index valid");
            d.issue_cycle = cycle;
            let mut value = match self.eval_compute(&d) {
                Ok(v) => v,
                Err(e) => {
                    return Err(SimError::KernelFault {
                        kernel: self.func.name.clone(),
                        cycle,
                        detail: e.to_string(),
                    })
                }
            };
            // Fault hooks: transient single-bit flips in the FU result and
            // latency jitter, each from its own seeded site stream. Flips
            // default to float results only — integer flips can corrupt
            // loop counters into hangs the watchdog never sees.
            let (mut flipped, mut jittered) = (false, false);
            if let Some(f) = self.fault.as_mut() {
                match value {
                    Some(RtVal::F(x)) if f.flip.roll(f.plan.fu_bitflip_rate) => {
                        let bit = f.flip.bit(64);
                        value = Some(RtVal::F(f64::from_bits(x.to_bits() ^ (1u64 << bit))));
                        flipped = true;
                    }
                    Some(RtVal::I(x))
                        if f.plan.fu_flip_any && f.flip.roll(f.plan.fu_bitflip_rate) =>
                    {
                        value = Some(RtVal::I(x ^ (1i64 << f.flip.bit(64))));
                        flipped = true;
                    }
                    _ => {}
                }
                if d.latency > 0 && f.jitter.roll(f.plan.fu_jitter_rate) {
                    d.latency += f.plan.fu_jitter_cycles;
                    jittered = true;
                }
            }
            if flipped {
                self.note_fault("fu_bitflip", cycle);
            }
            if jittered {
                self.note_fault("fu_jitter", cycle);
            }
            d.tspan = self.register_issue(&d, &mut classes_this_cycle);
            issued_this_cycle += 1;
            if d.is_term {
                self.handle_terminator(&d);
                // "Terminators trigger the reservation queue to load the
                // next basic block immediately after evaluation" — import
                // inline so the new block can begin issuing this cycle.
                while let Some(&(block, pred, ctrl)) = self.pending_fetch.front() {
                    let used = self.reservation.len().min(self.cfg.reservation_entries);
                    let room = self.cfg.reservation_entries - used;
                    if self.func.block(block).insts.len() > room && !self.reservation.is_empty() {
                        break;
                    }
                    self.pending_fetch.pop_front();
                    self.import_block(block, pred, ctrl);
                }
            }
            if let Some(k) = d.fu {
                if d.latency > 0 {
                    *self.fu_busy.entry(k).or_insert(0) += 1;
                }
                self.stats.fu_dynamic_pj += self
                    .profile
                    .spec(k)
                    .dynamic_energy_pj(self.cfg.clock_period_ps);
            }
            self.values[d.uid as usize] = value;
            if d.latency == 0 {
                // Chainable op (mux, comparator, wiring): completes within
                // this cycle, so dependents later in the queue can issue in
                // the same cycle — HLS operator chaining.
                if let Some(k) = d.fu {
                    *self.stats.fu_busy_cycle_sum.entry(k).or_insert(0) += 1;
                }
                if self.func.inst(d.inst).has_result() {
                    self.stats.reg_write_pj +=
                        self.profile.register.write_energy_pj_per_bit * d.bits as f64;
                }
                self.committed[d.uid as usize] = true;
                if let Some(ds) = self.stats.depstream.as_mut() {
                    ds.record_meta(
                        d.uid,
                        self.func.inst(d.inst).op.mnemonic(),
                        d.res_class,
                        d.issue_cycle,
                        cycle,
                        std::mem::take(&mut d.all_deps),
                        dep_meta(&d),
                    );
                }
                // Chained op: a zero-duration span at the issue cycle.
                self.trace.end_span(d.tspan, self.trace_ts(cycle));
            } else {
                // The value becomes architecturally visible to dependents
                // when the op commits after its FU latency.
                let commit_at = cycle + d.latency as u64;
                let fu_release_at = if self.cfg.pipelined_fus {
                    cycle + 1
                } else {
                    commit_at
                };
                self.compute_q.push((d, commit_at, fu_release_at));
            }
        }

        // 5. Cycle bookkeeping.
        if self.cfg.record_timeline {
            let mut rec = crate::stats::CycleRecord {
                mem_outstanding: (self.outstanding_reads + self.outstanding_writes) as u32,
                stalled: blocked_any,
                ..Default::default()
            };
            for c in &classes_this_cycle {
                *rec.issued.entry(c).or_insert(0) += 1;
            }
            for (&k, &busy) in &self.fu_busy {
                if busy > 0 {
                    rec.fu_busy.insert(k, busy);
                }
            }
            self.stats.timeline.push(rec);
        }
        self.stats.cycles += 1;
        // Cycle attribution: charge this cycle to exactly one class, by
        // strict priority — progress beats any stall cause, resource limits
        // beat waiting, waiting beats dependence, dependence beats drain.
        // One charge per step keeps `attribution.total() == cycles` exact.
        let cycle_class = if issued_this_cycle > 0 {
            salam_obs::CycleClass::Compute
        } else if fu_blocked {
            salam_obs::CycleClass::FuLimit
        } else if port_rejected || mem_limit_blocked {
            salam_obs::CycleClass::MemPort
        } else if !self.mem_wait.is_empty() {
            salam_obs::CycleClass::DmaWait
        } else if !self.reservation.is_empty() || !self.compute_q.is_empty() {
            salam_obs::CycleClass::DepStall
        } else {
            salam_obs::CycleClass::Control
        };
        self.stats.attribution.charge(cycle_class);
        for (&k, &busy) in &self.fu_busy {
            if busy > 0 {
                *self.stats.fu_busy_cycle_sum.entry(k).or_insert(0) += busy as u64;
            }
        }
        if issued_this_cycle > 0 {
            let ld = classes_this_cycle.contains("load");
            let st = classes_this_cycle.contains("store");
            match (ld, st) {
                (true, true) => *self.stats.mem_mix_cycles.entry("load+store").or_insert(0) += 1,
                (true, false) => *self.stats.mem_mix_cycles.entry("load").or_insert(0) += 1,
                (false, true) => *self.stats.mem_mix_cycles.entry("store").or_insert(0) += 1,
                (false, false) => {}
            }
            for c in classes_this_cycle {
                *self.stats.class_active_cycles.entry(c).or_insert(0) += 1;
            }
            progressed = true;
        }
        // A cycle counts as *stalled* (the paper's Fig. 14 definition) when
        // a dependency-free operation could not launch — resource or
        // bandwidth pressure — regardless of whether other ops issued.
        if blocked_any {
            self.stats.stall_cycles += 1;
            let mut mix = blocked_mix;
            if !self.compute_q.is_empty() {
                mix.compute = true;
            }
            for dd in self.mem_wait.values() {
                if dd.is_store {
                    mix.store = true;
                } else {
                    mix.load = true;
                }
            }
            let label = mix.label();
            if let Some(t) = &self.trace_tracks {
                self.trace
                    .instant(t.sched, &format!("stall:{label}"), self.trace_ts(cycle));
            }
            *self.stats.stall_breakdown.entry(label).or_insert(0) += 1;
        } else if issued_this_cycle > 0 {
            self.stats.new_exec_cycles += 1;
        }
        if port_rejected {
            self.stats.port_reject_cycles += 1;
            if let Some(t) = &self.trace_tracks {
                self.trace
                    .instant(t.sched, "port_reject", self.trace_ts(cycle));
            }
        }
        if let Some(t) = &self.trace_tracks {
            let ts = self.trace_ts(cycle);
            self.trace.counter(
                t.sched,
                "reservation_depth",
                ts,
                self.reservation.len() as f64,
            );
            self.trace.counter(
                t.sched,
                "mem_outstanding",
                ts,
                (self.outstanding_reads + self.outstanding_writes) as f64,
            );
        }

        if progressed {
            self.last_progress = self.cycle;
        } else if self.cycle - self.last_progress > self.cfg.deadlock_cycles {
            return Err(SimError::Deadlock(self.watchdog_snapshot()));
        }

        // Cooperative cancellation, polled once per cycle batch (including
        // cycle 0, so an already-expired deadline stops before any real
        // work). The disabled token keeps this to a single branch.
        if self.cancel.is_enabled() && self.cycle & (CANCEL_BATCH - 1) == 0 {
            if let Some(reason) = self.cancel.poll() {
                return Err(SimError::Cancelled {
                    kernel: self.func.name.clone(),
                    cycle: self.cycle,
                    timeout: reason.is_timeout(),
                });
            }
        }

        // Coarse liveness heartbeat for the flight recorder: one event per
        // 65536 cycles, so even a wedged-but-not-yet-deadlocked run leaves
        // a recent-history trail. The enabled check keeps the disabled
        // path to a single branch.
        if self.flight.is_enabled() && self.cycle & 0xFFFF == 0 && self.cycle > 0 {
            self.flight.record(
                self.flight_trace_id,
                "engine",
                format!(
                    "heartbeat kernel={} cycle={} resv={} compute={} mem={}",
                    self.func.name,
                    self.cycle,
                    self.reservation.len(),
                    self.compute_q.len(),
                    self.outstanding_reads + self.outstanding_writes
                ),
            );
        }

        self.cycle += 1;
        if self.fetch_stopped
            && self.pending_fetch.is_empty()
            && self.reservation.is_empty()
            && self.compute_q.is_empty()
            && self.mem_wait.is_empty()
        {
            self.done = true;
        }
        Ok(self.done)
    }

    fn register_issue(&mut self, d: &DynInst, classes: &mut HashSet<&'static str>) -> SpanId {
        self.issued[d.uid as usize] = true;
        *self.stats.issued.entry(d.class.label()).or_insert(0) += 1;
        classes.insert(d.class.label());
        // Register-file read energy for non-immediate operands.
        for o in &d.operands {
            if matches!(o, Operand::Inst(_)) {
                self.stats.reg_read_pj +=
                    self.profile.register.read_energy_pj_per_bit * d.bits as f64;
            }
        }
        match &self.trace_tracks {
            Some(t) => self.trace.begin_span(
                t.ops,
                self.func.inst(d.inst).op.mnemonic(),
                self.trace_ts(self.cycle),
            ),
            None => SpanId::INVALID,
        }
    }

    fn handle_terminator(&mut self, d: &DynInst) {
        let inst = self.func.inst(d.inst);
        match inst.op {
            Opcode::Br => {
                let target = inst.block_refs[0];
                self.pending_fetch
                    .push_back((target, Some(self.cdfg.op(d.inst).block), d.uid));
            }
            Opcode::CondBr => {
                let c = self
                    .operand_value(&d.operands[0])
                    .expect("cond ready")
                    .as_i();
                let target = if c != 0 {
                    inst.block_refs[0]
                } else {
                    inst.block_refs[1]
                };
                self.pending_fetch
                    .push_back((target, Some(self.cdfg.op(d.inst).block), d.uid));
            }
            Opcode::Ret => {
                self.fetch_stopped = true;
                self.ret_value = inst
                    .operands
                    .first()
                    .map(|_| self.operand_value(&d.operands[0]).expect("ret value ready"));
            }
            _ => unreachable!("not a terminator"),
        }
    }
}

/// The replay metadata of a dynamic op at record time (see
/// [`salam_obs::DepMeta`]).
fn dep_meta(d: &DynInst) -> salam_obs::DepMeta {
    let (addr, size) = d.span.unwrap_or((0, 0));
    salam_obs::DepMeta {
        kind: if d.is_store {
            salam_obs::OpKind::Store
        } else if d.is_load {
            salam_obs::OpKind::Load
        } else {
            salam_obs::OpKind::Compute
        },
        latency: d.latency,
        inst: d.inst.index() as u32,
        group: d.group,
        ctrl: d.ctrl,
        addr_dep: d.addr_dep,
        addr,
        size,
    }
}

fn classify(op: &Opcode) -> IssueClass {
    match op {
        Opcode::Load => IssueClass::Load,
        Opcode::Store => IssueClass::Store,
        o if o.is_float_arith() => IssueClass::Float,
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::UDiv
        | Opcode::SDiv
        | Opcode::URem
        | Opcode::SRem
        | Opcode::Shl
        | Opcode::LShr
        | Opcode::AShr
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::ICmp(_)
        | Opcode::Gep { .. } => IssueClass::Int,
        _ => IssueClass::Other,
    }
}

fn const_rt(c: &salam_ir::Constant) -> RtVal {
    match c {
        salam_ir::Constant::Int { value, .. } => RtVal::I(*value),
        salam_ir::Constant::Float { ty, value } => RtVal::F(if *ty == Type::F32 {
            *value as f32 as f64
        } else {
            *value
        }),
        salam_ir::Constant::NullPtr => RtVal::P(0),
        salam_ir::Constant::Undef(_) => panic!("use of undef at runtime"),
    }
}

fn encode_scalar(ty: &Type, v: RtVal) -> Vec<u8> {
    let n = ty.size_bytes() as usize;
    let raw: u64 = match (ty, v) {
        (Type::F32, RtVal::F(f)) => (f as f32).to_bits() as u64,
        (Type::F64, RtVal::F(f)) => f.to_bits(),
        (Type::Ptr, RtVal::P(p)) => p,
        (t, RtVal::I(i)) if t.is_int() => i as u64,
        (t, v) => panic!("cannot store {v:?} as {t}"),
    };
    raw.to_le_bytes()[..n].to_vec()
}

fn decode_scalar(ty: &Type, bytes: &[u8]) -> RtVal {
    let mut buf = [0u8; 8];
    let n = (ty.size_bytes() as usize).min(bytes.len());
    buf[..n].copy_from_slice(&bytes[..n]);
    let raw = u64::from_le_bytes(buf);
    match ty {
        Type::F32 => RtVal::F(f32::from_bits(raw as u32) as f64),
        Type::F64 => RtVal::F(f64::from_bits(raw)),
        Type::Ptr => RtVal::P(raw),
        t if t.is_int() => RtVal::I(salam_ir::interp::sign_extend(raw, t.bits())),
        other => panic!("cannot load {other}"),
    }
}
