//! The memory-port abstraction between the runtime engine and the memory
//! system, plus a self-contained scratchpad-like model for standalone runs.

use std::collections::VecDeque;

use salam_ir::interp::SparseMemory;

/// One memory operation leaving the engine's read/write queues.
#[derive(Debug, Clone, PartialEq)]
pub struct MemAccess {
    /// Engine-chosen token, echoed in the completion.
    pub token: u64,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u32,
    /// Whether this is a store.
    pub is_write: bool,
    /// Store payload.
    pub data: Option<Vec<u8>>,
}

/// A finished memory operation.
#[derive(Debug, Clone, PartialEq)]
pub struct MemCompletion {
    /// Echo of [`MemAccess::token`].
    pub token: u64,
    /// Loaded bytes for reads.
    pub data: Option<Vec<u8>>,
}

/// Why a port refused an access this cycle. Ports attach the cause that
/// *originated* the refusal, so the engine's cycle accounting can attribute
/// contention to the component that caused it rather than the one that
/// observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectCause {
    /// Per-cycle read-port budget exhausted.
    ReadPorts,
    /// Per-cycle write-port budget exhausted.
    WritePorts,
    /// Downstream component busy (DMA in flight, MSHRs full).
    Busy,
    /// Interconnect width serialization (crossbar beat conflict).
    Width,
    /// Unspecified downstream backpressure.
    Downstream,
}

impl RejectCause {
    /// Stable label used in stats maps and reports.
    pub fn label(self) -> &'static str {
        match self {
            RejectCause::ReadPorts => "read_ports",
            RejectCause::WritePorts => "write_ports",
            RejectCause::Busy => "busy",
            RejectCause::Width => "width",
            RejectCause::Downstream => "downstream",
        }
    }
}

/// A refused access plus its cause code, returned by
/// [`MemPort::try_issue`]. The access is handed back unchanged so the
/// caller can retry it next cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// The access the port refused.
    pub access: MemAccess,
    /// Why it was refused.
    pub cause: RejectCause,
}

impl Rejection {
    /// Pairs the refused access with its cause.
    pub fn new(access: MemAccess, cause: RejectCause) -> Self {
        Rejection { access, cause }
    }
}

/// What the engine plugs its memory queues into.
///
/// Implementations range from the bundled [`SimpleMem`] (a private
/// fixed-latency scratchpad) to the full `salam` communications interface
/// that forwards into the `memsys` crate. Interchangeability of this
/// interface is the paper's "decoupling of datapath and memory" claim made
/// concrete.
pub trait MemPort {
    /// Called once at the start of every engine cycle; refreshes per-cycle
    /// port budgets and advances internal time.
    fn begin_cycle(&mut self);

    /// Tries to accept one access this cycle. Returns the access back —
    /// wrapped in a [`Rejection`] carrying the cause — if the port is out
    /// of bandwidth or buffering.
    ///
    /// # Errors
    ///
    /// The rejected access is returned unchanged so the caller can retry it
    /// next cycle; the [`RejectCause`] feeds the engine's cycle accounting.
    fn try_issue(&mut self, access: MemAccess) -> Result<(), Rejection>;

    /// Drains completions that have arrived since the last poll.
    fn poll(&mut self) -> Vec<MemCompletion>;
}

/// A private scratchpad model with per-cycle read/write port budgets and a
/// fixed latency — enough to run an accelerator standalone (datapath + SPM),
/// the configuration the paper validates against HLS in Fig. 10.
#[derive(Debug)]
pub struct SimpleMem {
    mem: SparseMemory,
    latency_cycles: u64,
    read_ports: u32,
    write_ports: u32,
    reads_left: u32,
    writes_left: u32,
    cycle: u64,
    pending: VecDeque<(u64, MemCompletion)>, // (ready_cycle, completion)
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl SimpleMem {
    /// Creates a model with the given latency and port counts.
    pub fn new(latency_cycles: u64, read_ports: u32, write_ports: u32) -> Self {
        SimpleMem {
            mem: SparseMemory::new(),
            latency_cycles: latency_cycles.max(1),
            read_ports: read_ports.max(1),
            write_ports: write_ports.max(1),
            reads_left: read_ports.max(1),
            writes_left: write_ports.max(1),
            cycle: 0,
            pending: VecDeque::new(),
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// The backing functional memory (for pre-loading inputs and reading
    /// results).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Reads serviced.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Writes serviced.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Bytes read and written.
    pub fn bytes(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }
}

impl MemPort for SimpleMem {
    fn begin_cycle(&mut self) {
        self.cycle += 1;
        self.reads_left = self.read_ports;
        self.writes_left = self.write_ports;
    }

    fn try_issue(&mut self, access: MemAccess) -> Result<(), Rejection> {
        use salam_ir::interp::Memory as _;
        let (budget, cause) = if access.is_write {
            (&mut self.writes_left, RejectCause::WritePorts)
        } else {
            (&mut self.reads_left, RejectCause::ReadPorts)
        };
        if *budget == 0 {
            return Err(Rejection::new(access, cause));
        }
        *budget -= 1;
        let ready = self.cycle + self.latency_cycles;
        let completion = if access.is_write {
            self.writes += 1;
            self.bytes_written += access.size as u64;
            let data = access.data.as_deref().unwrap_or(&[]);
            self.mem.write(access.addr, data);
            MemCompletion {
                token: access.token,
                data: None,
            }
        } else {
            self.reads += 1;
            self.bytes_read += access.size as u64;
            let mut buf = vec![0u8; access.size as usize];
            self.mem.read(access.addr, &mut buf);
            MemCompletion {
                token: access.token,
                data: Some(buf),
            }
        };
        self.pending.push_back((ready, completion));
        Ok(())
    }

    fn poll(&mut self) -> Vec<MemCompletion> {
        let mut out = Vec::new();
        while let Some((ready, _)) = self.pending.front() {
            if *ready <= self.cycle {
                out.push(self.pending.pop_front().expect("nonempty").1);
            } else {
                break;
            }
        }
        out
    }
}

/// A fault-injecting wrapper around any [`MemPort`]: spurious busy
/// rejects on issue, and dropped / delayed / bit-flipped completions on
/// the return path, all drawn from per-site streams of a
/// [`salam_fault::FaultPlan`].
///
/// A dropped completion is never delivered — the engine's outstanding-op
/// count stays up and the run ends in a diagnosable
/// [`salam_fault::SimError::Deadlock`] rather than silent corruption.
/// Injection counts are kept per kind for merging into
/// [`crate::EngineStats::fault_counts`].
#[derive(Debug)]
pub struct FaultyPort<P> {
    inner: P,
    plan: salam_fault::FaultPlan,
    busy: salam_fault::SiteRng,
    resp: salam_fault::SiteRng,
    /// Delayed completions: `(cycles_left, completion)`.
    held: Vec<(u64, MemCompletion)>,
    counts: salam_fault::FaultCounts,
}

impl<P: MemPort> FaultyPort<P> {
    /// Wraps `inner` under `plan`. A zero-rate plan makes the wrapper a
    /// pure pass-through.
    pub fn new(inner: P, plan: &salam_fault::FaultPlan) -> Self {
        FaultyPort {
            inner,
            plan: *plan,
            busy: plan.site_rng("port.busy"),
            resp: plan.site_rng("port.response"),
            held: Vec::new(),
            counts: salam_fault::FaultCounts::new(),
        }
    }

    /// The wrapped port.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwraps, discarding fault state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Injected faults so far, by kind (`mem_busy`, `mem_drop`,
    /// `mem_bitflip`, `mem_delay`).
    pub fn fault_counts(&self) -> &salam_fault::FaultCounts {
        &self.counts
    }
}

impl<P: MemPort> MemPort for FaultyPort<P> {
    fn begin_cycle(&mut self) {
        self.inner.begin_cycle();
        for (left, _) in &mut self.held {
            *left = left.saturating_sub(1);
        }
    }

    fn try_issue(&mut self, access: MemAccess) -> Result<(), Rejection> {
        if self.busy.roll(self.plan.port_busy_rate) {
            salam_fault::count_fault(&mut self.counts, "mem_busy");
            return Err(Rejection::new(access, RejectCause::Busy));
        }
        self.inner.try_issue(access)
    }

    fn poll(&mut self) -> Vec<MemCompletion> {
        let mut out = Vec::new();
        let mut still_held = Vec::new();
        for (left, c) in self.held.drain(..) {
            if left == 0 {
                out.push(c);
            } else {
                still_held.push((left, c));
            }
        }
        self.held = still_held;
        for mut c in self.inner.poll() {
            if self.resp.roll(self.plan.mem_drop_rate) {
                salam_fault::count_fault(&mut self.counts, "mem_drop");
                continue;
            }
            if let Some(data) = c.data.as_mut() {
                if !data.is_empty() && self.resp.roll(self.plan.mem_bitflip_rate) {
                    let byte = self.resp.index(data.len());
                    data[byte] ^= 1 << self.resp.bit(8);
                    salam_fault::count_fault(&mut self.counts, "mem_bitflip");
                }
            }
            if self.plan.mem_delay_cycles > 0 && self.resp.roll(self.plan.mem_delay_rate) {
                salam_fault::count_fault(&mut self.counts, "mem_delay");
                self.held.push((self.plan.mem_delay_cycles, c));
                continue;
            }
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_port_budgets() {
        let mut m = SimpleMem::new(1, 2, 1);
        m.begin_cycle();
        assert!(m
            .try_issue(MemAccess {
                token: 1,
                addr: 0,
                size: 4,
                is_write: false,
                data: None
            })
            .is_ok());
        assert!(m
            .try_issue(MemAccess {
                token: 2,
                addr: 4,
                size: 4,
                is_write: false,
                data: None
            })
            .is_ok());
        assert!(m
            .try_issue(MemAccess {
                token: 3,
                addr: 8,
                size: 4,
                is_write: false,
                data: None
            })
            .is_err());
        // Write budget is independent.
        assert!(m
            .try_issue(MemAccess {
                token: 4,
                addr: 12,
                size: 4,
                is_write: true,
                data: Some(vec![0; 4])
            })
            .is_ok());
        m.begin_cycle();
        assert!(m
            .try_issue(MemAccess {
                token: 5,
                addr: 8,
                size: 4,
                is_write: false,
                data: None
            })
            .is_ok());
    }

    #[test]
    fn rejects_carry_a_cause_per_direction() {
        let mut m = SimpleMem::new(1, 1, 1);
        m.begin_cycle();
        let acc = |token: u64, is_write: bool| MemAccess {
            token,
            addr: 0,
            size: 4,
            is_write,
            data: is_write.then(|| vec![0; 4]),
        };
        m.try_issue(acc(1, false)).unwrap();
        m.try_issue(acc(2, true)).unwrap();
        let r = m.try_issue(acc(3, false)).unwrap_err();
        assert_eq!(r.cause, RejectCause::ReadPorts);
        assert_eq!(r.access.token, 3, "access handed back for retry");
        let w = m.try_issue(acc(4, true)).unwrap_err();
        assert_eq!(w.cause, RejectCause::WritePorts);
        assert_eq!(RejectCause::ReadPorts.label(), "read_ports");
    }

    #[test]
    fn completions_arrive_after_latency() {
        let mut m = SimpleMem::new(3, 1, 1);
        m.begin_cycle(); // cycle 1
        m.try_issue(MemAccess {
            token: 9,
            addr: 0,
            size: 4,
            is_write: false,
            data: None,
        })
        .unwrap();
        assert!(m.poll().is_empty());
        m.begin_cycle(); // 2
        m.begin_cycle(); // 3
        assert!(m.poll().is_empty());
        m.begin_cycle(); // 4 = 1 + 3
        let done = m.poll();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 9);
    }

    #[test]
    fn data_flows_through() {
        let mut m = SimpleMem::new(1, 1, 1);
        m.memory_mut().write_i32_slice(0x10, &[1234]);
        m.begin_cycle();
        m.try_issue(MemAccess {
            token: 1,
            addr: 0x10,
            size: 4,
            is_write: false,
            data: None,
        })
        .unwrap();
        m.begin_cycle();
        let c = m.poll();
        assert_eq!(c[0].data.as_deref(), Some(&1234i32.to_le_bytes()[..]));
    }

    fn read_acc(token: u64, addr: u64) -> MemAccess {
        MemAccess {
            token,
            addr,
            size: 4,
            is_write: false,
            data: None,
        }
    }

    #[test]
    fn zero_rate_faulty_port_is_a_pass_through() {
        let drive = |mut port: Box<dyn MemPort>| -> Vec<MemCompletion> {
            let mut out = Vec::new();
            for t in 0..8u64 {
                port.begin_cycle();
                port.try_issue(read_acc(t, 4 * t)).unwrap();
                out.extend(port.poll());
            }
            for _ in 0..4 {
                port.begin_cycle();
                out.extend(port.poll());
            }
            out
        };
        let mut plain = SimpleMem::new(2, 2, 2);
        plain.memory_mut().write_i32_slice(0, &[7; 8]);
        let mut wrapped = SimpleMem::new(2, 2, 2);
        wrapped.memory_mut().write_i32_slice(0, &[7; 8]);
        let faulty = FaultyPort::new(wrapped, &salam_fault::FaultPlan::seeded(123));
        let a = drive(Box::new(plain));
        let b = drive(Box::new(faulty));
        assert_eq!(a, b, "zero-rate plan must be observationally free");
    }

    #[test]
    fn dropped_completions_never_arrive_and_are_counted() {
        let mut mem = SimpleMem::new(1, 4, 4);
        mem.memory_mut().write_i32_slice(0, &[1; 16]);
        let plan = salam_fault::FaultPlan {
            mem_drop_rate: 1.0,
            ..salam_fault::FaultPlan::seeded(5)
        };
        let mut port = FaultyPort::new(mem, &plan);
        for t in 0..4u64 {
            port.begin_cycle();
            port.try_issue(read_acc(t, 4 * t)).unwrap();
        }
        for _ in 0..4 {
            port.begin_cycle();
            assert!(port.poll().is_empty());
        }
        assert_eq!(port.fault_counts()["mem_drop"], 4);
    }

    #[test]
    fn delayed_completions_arrive_late_and_intact() {
        let mut mem = SimpleMem::new(1, 4, 4);
        mem.memory_mut().write_i32_slice(0, &[42; 4]);
        let plan = salam_fault::FaultPlan {
            mem_delay_rate: 1.0,
            mem_delay_cycles: 3,
            ..salam_fault::FaultPlan::seeded(5)
        };
        let mut port = FaultyPort::new(mem, &plan);
        port.begin_cycle();
        port.try_issue(read_acc(1, 0)).unwrap();
        let mut arrived_after = 0u64;
        for i in 1..=8u64 {
            port.begin_cycle();
            let got = port.poll();
            if !got.is_empty() {
                assert_eq!(got[0].data.as_deref(), Some(&42i32.to_le_bytes()[..]));
                arrived_after = i;
                break;
            }
        }
        // 1 cycle SPM latency + 3 held cycles.
        assert_eq!(arrived_after, 4);
        assert_eq!(port.fault_counts()["mem_delay"], 1);
    }

    #[test]
    fn bitflips_change_exactly_one_bit_deterministically() {
        let run = || {
            let mut mem = SimpleMem::new(1, 4, 4);
            mem.memory_mut().write_i32_slice(0, &[0; 4]);
            let plan = salam_fault::FaultPlan {
                mem_bitflip_rate: 1.0,
                ..salam_fault::FaultPlan::seeded(9)
            };
            let mut port = FaultyPort::new(mem, &plan);
            port.begin_cycle();
            port.try_issue(read_acc(1, 0)).unwrap();
            port.begin_cycle();
            port.poll()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay the same flip");
        let bits: u32 = a[0]
            .data
            .as_deref()
            .unwrap()
            .iter()
            .map(|x| x.count_ones())
            .sum();
        assert_eq!(bits, 1, "exactly one bit flipped in an all-zero word");
    }

    #[test]
    fn busy_storms_reject_with_busy_cause() {
        let mem = SimpleMem::new(1, 4, 4);
        let plan = salam_fault::FaultPlan {
            port_busy_rate: 1.0,
            ..salam_fault::FaultPlan::seeded(2)
        };
        let mut port = FaultyPort::new(mem, &plan);
        port.begin_cycle();
        let r = port.try_issue(read_acc(1, 0)).unwrap_err();
        assert_eq!(r.cause, RejectCause::Busy);
        assert_eq!(r.access.token, 1);
        assert_eq!(port.fault_counts()["mem_busy"], 1);
    }
}
