//! The memory-port abstraction between the runtime engine and the memory
//! system, plus a self-contained scratchpad-like model for standalone runs.

use std::collections::VecDeque;

use salam_ir::interp::SparseMemory;

/// One memory operation leaving the engine's read/write queues.
#[derive(Debug, Clone, PartialEq)]
pub struct MemAccess {
    /// Engine-chosen token, echoed in the completion.
    pub token: u64,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u32,
    /// Whether this is a store.
    pub is_write: bool,
    /// Store payload.
    pub data: Option<Vec<u8>>,
}

/// A finished memory operation.
#[derive(Debug, Clone, PartialEq)]
pub struct MemCompletion {
    /// Echo of [`MemAccess::token`].
    pub token: u64,
    /// Loaded bytes for reads.
    pub data: Option<Vec<u8>>,
}

/// Why a port refused an access this cycle. Ports attach the cause that
/// *originated* the refusal, so the engine's cycle accounting can attribute
/// contention to the component that caused it rather than the one that
/// observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectCause {
    /// Per-cycle read-port budget exhausted.
    ReadPorts,
    /// Per-cycle write-port budget exhausted.
    WritePorts,
    /// Downstream component busy (DMA in flight, MSHRs full).
    Busy,
    /// Interconnect width serialization (crossbar beat conflict).
    Width,
    /// Unspecified downstream backpressure.
    Downstream,
}

impl RejectCause {
    /// Stable label used in stats maps and reports.
    pub fn label(self) -> &'static str {
        match self {
            RejectCause::ReadPorts => "read_ports",
            RejectCause::WritePorts => "write_ports",
            RejectCause::Busy => "busy",
            RejectCause::Width => "width",
            RejectCause::Downstream => "downstream",
        }
    }
}

/// A refused access plus its cause code, returned by
/// [`MemPort::try_issue`]. The access is handed back unchanged so the
/// caller can retry it next cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// The access the port refused.
    pub access: MemAccess,
    /// Why it was refused.
    pub cause: RejectCause,
}

impl Rejection {
    pub fn new(access: MemAccess, cause: RejectCause) -> Self {
        Rejection { access, cause }
    }
}

/// What the engine plugs its memory queues into.
///
/// Implementations range from the bundled [`SimpleMem`] (a private
/// fixed-latency scratchpad) to the full `salam` communications interface
/// that forwards into the `memsys` crate. Interchangeability of this
/// interface is the paper's "decoupling of datapath and memory" claim made
/// concrete.
pub trait MemPort {
    /// Called once at the start of every engine cycle; refreshes per-cycle
    /// port budgets and advances internal time.
    fn begin_cycle(&mut self);

    /// Tries to accept one access this cycle. Returns the access back —
    /// wrapped in a [`Rejection`] carrying the cause — if the port is out
    /// of bandwidth or buffering.
    ///
    /// # Errors
    ///
    /// The rejected access is returned unchanged so the caller can retry it
    /// next cycle; the [`RejectCause`] feeds the engine's cycle accounting.
    fn try_issue(&mut self, access: MemAccess) -> Result<(), Rejection>;

    /// Drains completions that have arrived since the last poll.
    fn poll(&mut self) -> Vec<MemCompletion>;
}

/// A private scratchpad model with per-cycle read/write port budgets and a
/// fixed latency — enough to run an accelerator standalone (datapath + SPM),
/// the configuration the paper validates against HLS in Fig. 10.
#[derive(Debug)]
pub struct SimpleMem {
    mem: SparseMemory,
    latency_cycles: u64,
    read_ports: u32,
    write_ports: u32,
    reads_left: u32,
    writes_left: u32,
    cycle: u64,
    pending: VecDeque<(u64, MemCompletion)>, // (ready_cycle, completion)
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl SimpleMem {
    /// Creates a model with the given latency and port counts.
    pub fn new(latency_cycles: u64, read_ports: u32, write_ports: u32) -> Self {
        SimpleMem {
            mem: SparseMemory::new(),
            latency_cycles: latency_cycles.max(1),
            read_ports: read_ports.max(1),
            write_ports: write_ports.max(1),
            reads_left: read_ports.max(1),
            writes_left: write_ports.max(1),
            cycle: 0,
            pending: VecDeque::new(),
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// The backing functional memory (for pre-loading inputs and reading
    /// results).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Reads serviced.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Writes serviced.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Bytes read and written.
    pub fn bytes(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }
}

impl MemPort for SimpleMem {
    fn begin_cycle(&mut self) {
        self.cycle += 1;
        self.reads_left = self.read_ports;
        self.writes_left = self.write_ports;
    }

    fn try_issue(&mut self, access: MemAccess) -> Result<(), Rejection> {
        use salam_ir::interp::Memory as _;
        let (budget, cause) = if access.is_write {
            (&mut self.writes_left, RejectCause::WritePorts)
        } else {
            (&mut self.reads_left, RejectCause::ReadPorts)
        };
        if *budget == 0 {
            return Err(Rejection::new(access, cause));
        }
        *budget -= 1;
        let ready = self.cycle + self.latency_cycles;
        let completion = if access.is_write {
            self.writes += 1;
            self.bytes_written += access.size as u64;
            let data = access.data.as_deref().unwrap_or(&[]);
            self.mem.write(access.addr, data);
            MemCompletion {
                token: access.token,
                data: None,
            }
        } else {
            self.reads += 1;
            self.bytes_read += access.size as u64;
            let mut buf = vec![0u8; access.size as usize];
            self.mem.read(access.addr, &mut buf);
            MemCompletion {
                token: access.token,
                data: Some(buf),
            }
        };
        self.pending.push_back((ready, completion));
        Ok(())
    }

    fn poll(&mut self) -> Vec<MemCompletion> {
        let mut out = Vec::new();
        while let Some((ready, _)) = self.pending.front() {
            if *ready <= self.cycle {
                out.push(self.pending.pop_front().expect("nonempty").1);
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_port_budgets() {
        let mut m = SimpleMem::new(1, 2, 1);
        m.begin_cycle();
        assert!(m
            .try_issue(MemAccess {
                token: 1,
                addr: 0,
                size: 4,
                is_write: false,
                data: None
            })
            .is_ok());
        assert!(m
            .try_issue(MemAccess {
                token: 2,
                addr: 4,
                size: 4,
                is_write: false,
                data: None
            })
            .is_ok());
        assert!(m
            .try_issue(MemAccess {
                token: 3,
                addr: 8,
                size: 4,
                is_write: false,
                data: None
            })
            .is_err());
        // Write budget is independent.
        assert!(m
            .try_issue(MemAccess {
                token: 4,
                addr: 12,
                size: 4,
                is_write: true,
                data: Some(vec![0; 4])
            })
            .is_ok());
        m.begin_cycle();
        assert!(m
            .try_issue(MemAccess {
                token: 5,
                addr: 8,
                size: 4,
                is_write: false,
                data: None
            })
            .is_ok());
    }

    #[test]
    fn rejects_carry_a_cause_per_direction() {
        let mut m = SimpleMem::new(1, 1, 1);
        m.begin_cycle();
        let acc = |token: u64, is_write: bool| MemAccess {
            token,
            addr: 0,
            size: 4,
            is_write,
            data: is_write.then(|| vec![0; 4]),
        };
        m.try_issue(acc(1, false)).unwrap();
        m.try_issue(acc(2, true)).unwrap();
        let r = m.try_issue(acc(3, false)).unwrap_err();
        assert_eq!(r.cause, RejectCause::ReadPorts);
        assert_eq!(r.access.token, 3, "access handed back for retry");
        let w = m.try_issue(acc(4, true)).unwrap_err();
        assert_eq!(w.cause, RejectCause::WritePorts);
        assert_eq!(RejectCause::ReadPorts.label(), "read_ports");
    }

    #[test]
    fn completions_arrive_after_latency() {
        let mut m = SimpleMem::new(3, 1, 1);
        m.begin_cycle(); // cycle 1
        m.try_issue(MemAccess {
            token: 9,
            addr: 0,
            size: 4,
            is_write: false,
            data: None,
        })
        .unwrap();
        assert!(m.poll().is_empty());
        m.begin_cycle(); // 2
        m.begin_cycle(); // 3
        assert!(m.poll().is_empty());
        m.begin_cycle(); // 4 = 1 + 3
        let done = m.poll();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 9);
    }

    #[test]
    fn data_flows_through() {
        let mut m = SimpleMem::new(1, 1, 1);
        m.memory_mut().write_i32_slice(0x10, &[1234]);
        m.begin_cycle();
        m.try_issue(MemAccess {
            token: 1,
            addr: 0x10,
            size: 4,
            is_write: false,
            data: None,
        })
        .unwrap();
        m.begin_cycle();
        let c = m.poll();
        assert_eq!(c[0].data.as_deref(), Some(&1234i32.to_le_bytes()[..]));
    }
}
