//! Behavioral tests for the dynamic runtime engine.

use hw_profile::{FuKind, HardwareProfile};
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::RtVal;
use salam_ir::{FloatPredicate, Function, FunctionBuilder, IntPredicate, Type};
use salam_runtime::{Engine, EngineConfig, SimpleMem};

fn engine_for(f: &Function, constraints: FuConstraints, args: Vec<RtVal>) -> Engine {
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(f, &profile, &constraints);
    Engine::new(f.clone(), cdfg, profile, EngineConfig::default(), args)
}

fn run(engine: &mut Engine, mem: &mut SimpleMem) -> u64 {
    engine.run_to_completion(mem)
}

/// `out[i] = a[i] * b[i] + c` with a loop.
fn fma_kernel() -> Function {
    let mut fb = FunctionBuilder::new(
        "fma",
        &[
            ("a", Type::Ptr),
            ("b", Type::Ptr),
            ("out", Type::Ptr),
            ("n", Type::I64),
        ],
    );
    let (a, b, out, n) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3));
    let zero = fb.i64c(0);
    fb.counted_loop("i", zero, n, |fb, iv| {
        let pa = fb.gep1(Type::F64, a, iv, "pa");
        let pb = fb.gep1(Type::F64, b, iv, "pb");
        let po = fb.gep1(Type::F64, out, iv, "po");
        let x = fb.load(Type::F64, pa, "x");
        let y = fb.load(Type::F64, pb, "y");
        let m = fb.fmul(x, y, "m");
        let one = fb.f64c(1.0);
        let s = fb.fadd(m, one, "s");
        fb.store(s, po);
    });
    fb.ret();
    fb.finish()
}

#[test]
fn computes_correct_results_through_memory() {
    let f = fma_kernel();
    let mut mem = SimpleMem::new(1, 2, 2);
    mem.memory_mut()
        .write_f64_slice(0x1000, &[1.0, 2.0, 3.0, 4.0]);
    mem.memory_mut()
        .write_f64_slice(0x2000, &[10.0, 20.0, 30.0, 40.0]);
    let mut e = engine_for(
        &f,
        FuConstraints::unconstrained(),
        vec![
            RtVal::P(0x1000),
            RtVal::P(0x2000),
            RtVal::P(0x3000),
            RtVal::I(4),
        ],
    );
    run(&mut e, &mut mem);
    assert_eq!(
        mem.memory_mut().read_f64_slice(0x3000, 4),
        vec![11.0, 41.0, 91.0, 161.0]
    );
    assert!(e.is_done());
    let st = e.stats();
    assert_eq!(st.loads, 8);
    assert_eq!(st.stores, 4);
    assert!(st.cycles > 0);
    assert!(st.new_exec_cycles + st.stall_cycles <= st.cycles);
}

#[test]
fn fu_constraints_slow_execution_down() {
    // 8 independent double multiplies: 1 multiplier must serialize them.
    let build = || {
        let mut fb = FunctionBuilder::new("mul8", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        for i in 0..8i64 {
            let idx = fb.i64c(i);
            let gep = fb.gep1(Type::F64, p, idx, "g");
            let x = fb.load(Type::F64, gep, "x");
            let y = fb.fmul(x, x, "y");
            fb.store(y, gep);
        }
        fb.ret();
        fb.finish()
    };
    let data: Vec<f64> = (1..=8).map(|v| v as f64).collect();

    let cycles_with = |constraints: FuConstraints| {
        let f = build();
        let mut mem = SimpleMem::new(1, 8, 8);
        mem.memory_mut().write_f64_slice(0, &data);
        let mut e = engine_for(&f, constraints, vec![RtVal::P(0)]);
        let c = run(&mut e, &mut mem);
        assert_eq!(
            mem.memory_mut().read_f64_slice(0, 8),
            data.iter().map(|v| v * v).collect::<Vec<_>>()
        );
        c
    };

    let unconstrained = cycles_with(FuConstraints::unconstrained());
    let constrained = cycles_with(FuConstraints::unconstrained().with_limit(FuKind::FpMulF64, 1));
    assert!(
        constrained > unconstrained,
        "1 multiplier ({constrained} cyc) must be slower than 8 ({unconstrained} cyc)"
    );
    // 8 serialized 3-cycle multiplies need at least 8 issue slots.
    assert!(constrained >= unconstrained + 7);
}

#[test]
fn data_dependent_branch_takes_data_path() {
    // if (x > 0) out = x else out = -x  — classic data-dependent control.
    let build = || {
        let mut fb = FunctionBuilder::new("absval", &[("pin", Type::Ptr), ("pout", Type::Ptr)]);
        let neg_b = fb.add_block("neg");
        let pos_b = fb.add_block("pos");
        let join = fb.add_block("join");
        let pin = fb.arg(0);
        let pout = fb.arg(1);
        let x = fb.load(Type::F64, pin, "x");
        let zero = fb.f64c(0.0);
        let c = fb.fcmp(FloatPredicate::Ogt, x, zero, "c");
        fb.cond_br(c, pos_b, neg_b);
        fb.position_at(pos_b);
        fb.br(join);
        fb.position_at(neg_b);
        let nx = fb.fneg(x, "nx");
        fb.br(join);
        fb.position_at(join);
        let (phi, v) = fb.phi(Type::F64, "v");
        fb.add_incoming(phi, x, pos_b);
        fb.add_incoming(phi, nx, neg_b);
        fb.store(v, pout);
        fb.ret();
        fb.finish()
    };

    for (input, expected) in [(5.0f64, 5.0f64), (-7.0, 7.0)] {
        let f = build();
        let mut mem = SimpleMem::new(1, 2, 2);
        mem.memory_mut().write_f64_slice(0x10, &[input]);
        let mut e = engine_for(
            &f,
            FuConstraints::unconstrained(),
            vec![RtVal::P(0x10), RtVal::P(0x20)],
        );
        run(&mut e, &mut mem);
        assert_eq!(mem.memory_mut().read_f64_slice(0x20, 1), vec![expected]);
    }
}

#[test]
fn store_to_load_ordering_respected() {
    // p[0] = 1.5; x = p[0]; p[1] = x * 2  — the load must see the store.
    let mut fb = FunctionBuilder::new("st_ld", &[("p", Type::Ptr)]);
    let p = fb.arg(0);
    let c = fb.f64c(1.5);
    fb.store(c, p);
    let x = fb.load(Type::F64, p, "x");
    let two = fb.f64c(2.0);
    let y = fb.fmul(x, two, "y");
    let one = fb.i64c(1);
    let p1 = fb.gep1(Type::F64, p, one, "p1");
    fb.store(y, p1);
    fb.ret();
    let f = fb.finish();

    let mut mem = SimpleMem::new(2, 4, 4);
    let mut e = engine_for(&f, FuConstraints::unconstrained(), vec![RtVal::P(0x100)]);
    run(&mut e, &mut mem);
    assert_eq!(mem.memory_mut().read_f64_slice(0x100, 2), vec![1.5, 3.0]);
}

#[test]
fn fewer_memory_ports_cause_stalls() {
    let f = fma_kernel();
    let run_ports = |ports: u32| {
        let mut mem = SimpleMem::new(1, ports, ports);
        mem.memory_mut().write_f64_slice(0x1000, &[1.0; 64]);
        mem.memory_mut().write_f64_slice(0x2000, &[2.0; 64]);
        let mut e = engine_for(
            &f,
            FuConstraints::unconstrained(),
            vec![
                RtVal::P(0x1000),
                RtVal::P(0x2000),
                RtVal::P(0x3000),
                RtVal::I(64),
            ],
        );
        let cycles = run(&mut e, &mut mem);
        (cycles, e.stats().clone())
    };
    let (fast_cycles, _) = run_ports(16);
    let (slow_cycles, slow_stats) = run_ports(1);
    assert!(slow_cycles > fast_cycles);
    assert!(
        slow_stats.port_reject_cycles > 0,
        "narrow port must saturate"
    );
}

#[test]
fn loop_iterations_pipeline() {
    // With plentiful resources, a 16-iteration loop with a 3-cycle FP op per
    // iteration must overlap iterations: total cycles well under the serial
    // bound of 16 * (latency chain).
    let f = fma_kernel();
    let mut mem = SimpleMem::new(1, 8, 8);
    mem.memory_mut().write_f64_slice(0x1000, &[1.0; 16]);
    mem.memory_mut().write_f64_slice(0x2000, &[2.0; 16]);
    let mut e = engine_for(
        &f,
        FuConstraints::unconstrained(),
        vec![
            RtVal::P(0x1000),
            RtVal::P(0x2000),
            RtVal::P(0x3000),
            RtVal::I(16),
        ],
    );
    let cycles = run(&mut e, &mut mem);
    // Fully serial execution is ~12 cycles per iteration (phi, compare,
    // branch, address, load, 3-cycle multiply, 3-cycle add, store). The
    // rolled datapath has a single multiplier/adder (1:1 static mapping), so
    // the steady state is bounded by the FP pipeline, ~5 cycles/iteration —
    // overlap must beat the serial bound by at least ~1.5x.
    assert!(cycles < 16 * 8, "no pipelining observed: {cycles} cycles");
    assert!(cycles > 16 * 3, "model too optimistic: {cycles} cycles");
}

#[test]
fn occupancy_and_issue_classes_tracked() {
    let f = fma_kernel();
    let mut mem = SimpleMem::new(1, 4, 4);
    mem.memory_mut().write_f64_slice(0x1000, &[1.0; 8]);
    mem.memory_mut().write_f64_slice(0x2000, &[2.0; 8]);
    let mut e = engine_for(
        &f,
        FuConstraints::unconstrained().with_limit(FuKind::FpMulF64, 1),
        vec![
            RtVal::P(0x1000),
            RtVal::P(0x2000),
            RtVal::P(0x3000),
            RtVal::I(8),
        ],
    );
    run(&mut e, &mut mem);
    let st = e.stats();
    assert!(st.fu_occupancy(FuKind::FpMulF64) > 0.0);
    assert!(st.fu_occupancy(FuKind::FpMulF64) <= 1.0);
    assert_eq!(st.issued_class(salam_runtime::IssueClass::Load), 16);
    assert_eq!(st.issued_class(salam_runtime::IssueClass::Store), 8);
    assert!(st.issued_class(salam_runtime::IssueClass::Float) >= 16);
    assert!(st.dynamic_datapath_pj() > 0.0);
}

#[test]
fn returns_scalar_result() {
    let mut fb = FunctionBuilder::new("pick", &[("x", Type::I64)]);
    let x = fb.arg(0);
    let ten = fb.i64c(10);
    let c = fb.icmp(IntPredicate::Slt, x, ten, "c");
    let r = fb.select(c, x, ten, "r");
    fb.ret_value(r);
    let f = fb.finish();
    let mut mem = SimpleMem::new(1, 1, 1);
    let mut e = engine_for(&f, FuConstraints::unconstrained(), vec![RtVal::I(3)]);
    run(&mut e, &mut mem);
    assert_eq!(e.result(), Some(RtVal::I(3)));
}

#[test]
fn engine_cycle_count_matches_interpreter_result() {
    // The engine and the reference interpreter must agree functionally on a
    // reduction with loop-carried dependences.
    let mut fb = FunctionBuilder::new(
        "dot",
        &[
            ("a", Type::Ptr),
            ("b", Type::Ptr),
            ("out", Type::Ptr),
            ("n", Type::I64),
        ],
    );
    let (a, b, out, n) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3));
    let header = fb.add_block("header");
    let body = fb.add_block("body");
    let exit = fb.add_block("exit");
    let zero = fb.i64c(0);
    let fzero = fb.f64c(0.0);
    let entry = fb.entry();
    fb.br(header);
    fb.position_at(header);
    let (iv_phi, iv) = fb.phi(Type::I64, "iv");
    let (acc_phi, acc) = fb.phi(Type::F64, "acc");
    fb.add_incoming(iv_phi, zero, entry);
    fb.add_incoming(acc_phi, fzero, entry);
    let c = fb.icmp(IntPredicate::Slt, iv, n, "c");
    fb.cond_br(c, body, exit);
    fb.position_at(body);
    let pa = fb.gep1(Type::F64, a, iv, "pa");
    let pb = fb.gep1(Type::F64, b, iv, "pb");
    let x = fb.load(Type::F64, pa, "x");
    let y = fb.load(Type::F64, pb, "y");
    let m = fb.fmul(x, y, "m");
    let acc2 = fb.fadd(acc, m, "acc2");
    let one = fb.i64c(1);
    let iv2 = fb.add(iv, one, "iv2");
    fb.br(header);
    fb.add_incoming(iv_phi, iv2, body);
    fb.add_incoming(acc_phi, acc2, body);
    fb.position_at(exit);
    fb.store(acc, out);
    fb.ret();
    let f = fb.finish();
    salam_ir::verify_function(&f).unwrap();

    let av = [1.0, 2.0, 3.0, 4.0];
    let bv = [5.0, 6.0, 7.0, 8.0];
    let mut mem = SimpleMem::new(1, 2, 2);
    mem.memory_mut().write_f64_slice(0x100, &av);
    mem.memory_mut().write_f64_slice(0x200, &bv);
    let mut e = engine_for(
        &f,
        FuConstraints::unconstrained(),
        vec![
            RtVal::P(0x100),
            RtVal::P(0x200),
            RtVal::P(0x300),
            RtVal::I(4),
        ],
    );
    run(&mut e, &mut mem);
    let expected: f64 = av.iter().zip(&bv).map(|(x, y)| x * y).sum();
    assert_eq!(mem.memory_mut().read_f64_slice(0x300, 1), vec![expected]);
}
