//! Direct tests of the engine's modeling knobs (ablation switches).

use hw_profile::{FuKind, HardwareProfile};
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::RtVal;
use salam_ir::{Function, FunctionBuilder, Type};
use salam_runtime::{Engine, EngineConfig, SimpleMem};

/// A chain of dependent double multiplies per iteration, 16 iterations.
fn serial_fmul_loop() -> Function {
    let mut fb = FunctionBuilder::new("serial", &[("a", Type::Ptr), ("n", Type::I64)]);
    let a = fb.arg(0);
    let n = fb.arg(1);
    let zero = fb.i64c(0);
    fb.counted_loop("i", zero, n, |fb, iv| {
        let p = fb.gep1(Type::F64, a, iv, "p");
        let x = fb.load(Type::F64, p, "x");
        let y = fb.fmul(x, x, "y");
        fb.store(y, p);
    });
    fb.ret();
    fb.finish()
}

fn run_cycles(f: &Function, cfg: EngineConfig, n: i64) -> u64 {
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(f, &profile, &FuConstraints::unconstrained());
    let mut mem = SimpleMem::new(1, 4, 4);
    mem.memory_mut()
        .write_f64_slice(0x1000, &vec![1.5; n as usize]);
    let mut e = Engine::new(
        f.clone(),
        cdfg,
        profile,
        cfg,
        vec![RtVal::P(0x1000), RtVal::I(n)],
    );
    let cycles = e.run_to_completion(&mut mem);
    // Correctness regardless of the knob settings.
    let got = mem.memory_mut().read_f64_slice(0x1000, n as usize);
    assert!(got.iter().all(|&v| v == 2.25));
    cycles
}

#[test]
fn pipelined_fus_speed_up_fu_bound_loops() {
    let f = serial_fmul_loop();
    let unpiped = run_cycles(&f, EngineConfig::default(), 32);
    let piped = run_cycles(
        &f,
        EngineConfig {
            pipelined_fus: true,
            ..EngineConfig::default()
        },
        32,
    );
    // One shared multiplier (1:1 static map → 1 unit) at 3 cycles: the
    // unpipelined engine serializes at ~3/iter; II=1 pipelining beats it.
    assert!(
        piped < unpiped,
        "pipelined {piped} vs unpipelined {unpiped}"
    );
}

#[test]
fn strict_hazards_never_faster_and_always_correct() {
    let f = serial_fmul_loop();
    let relaxed = run_cycles(&f, EngineConfig::default(), 32);
    let strict = run_cycles(
        &f,
        EngineConfig {
            strict_register_hazards: true,
            ..EngineConfig::default()
        },
        32,
    );
    assert!(strict >= relaxed);
}

#[test]
fn window_size_monotonically_helps_until_saturation() {
    let f = serial_fmul_loop();
    let mut last = u64::MAX;
    for window in [16usize, 64, 256] {
        let c = run_cycles(
            &f,
            EngineConfig {
                reservation_entries: window,
                ..EngineConfig::default()
            },
            64,
        );
        assert!(c <= last, "window {window} regressed: {c} > {last}");
        last = c;
    }
}

#[test]
fn outstanding_memory_limits_throttle() {
    let f = serial_fmul_loop();
    let wide = run_cycles(
        &f,
        EngineConfig {
            max_outstanding_reads: 64,
            ..EngineConfig::default()
        },
        64,
    );
    let narrow = run_cycles(
        &f,
        EngineConfig {
            max_outstanding_reads: 1,
            ..EngineConfig::default()
        },
        64,
    );
    assert!(narrow >= wide);
}

#[test]
fn fu_pool_stats_report_allocation() {
    let f = serial_fmul_loop();
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(
        &f,
        &profile,
        &FuConstraints::unconstrained().with_limit(FuKind::FpMulF64, 1),
    );
    let mut mem = SimpleMem::new(1, 2, 2);
    mem.memory_mut().write_f64_slice(0x1000, &[1.5; 8]);
    let mut e = Engine::new(
        f,
        cdfg,
        profile,
        EngineConfig::default(),
        vec![RtVal::P(0x1000), RtVal::I(8)],
    );
    e.run_to_completion(&mut mem);
    assert_eq!(e.stats().fu_pool[&FuKind::FpMulF64], 1);
    assert!(e.stats().fu_occupancy(FuKind::FpMulF64) > 0.0);
}

#[test]
fn timeline_records_every_cycle() {
    let f = serial_fmul_loop();
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
    let mut mem = SimpleMem::new(1, 2, 2);
    mem.memory_mut().write_f64_slice(0x1000, &[1.5; 16]);
    let mut e = Engine::new(
        f,
        cdfg,
        profile,
        EngineConfig {
            record_timeline: true,
            ..EngineConfig::default()
        },
        vec![RtVal::P(0x1000), RtVal::I(16)],
    );
    let cycles = e.run_to_completion(&mut mem);
    let st = e.stats();
    assert_eq!(st.timeline.len(), cycles as usize);
    // Every issued load appears somewhere in the log.
    let logged_loads: u32 = st
        .timeline
        .iter()
        .filter(|r| r.issued.contains_key("load"))
        .count() as u32;
    assert!(logged_loads > 0);
    // Multiplier busyness shows up in the middle of the run.
    assert!(st
        .timeline
        .iter()
        .any(|r| r.fu_busy.get(&FuKind::FpMulF64).copied().unwrap_or(0) > 0));
    // Off by default: a second run records nothing.
    let f2 = serial_fmul_loop();
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&f2, &profile, &FuConstraints::unconstrained());
    let mut mem2 = SimpleMem::new(1, 2, 2);
    mem2.memory_mut().write_f64_slice(0x1000, &[1.5; 16]);
    let mut e2 = Engine::new(
        f2,
        cdfg,
        profile,
        EngineConfig::default(),
        vec![RtVal::P(0x1000), RtVal::I(16)],
    );
    e2.run_to_completion(&mut mem2);
    assert!(e2.stats().timeline.is_empty());
}

#[test]
#[should_panic(expected = "argument count mismatch")]
fn wrong_arity_is_rejected_at_construction() {
    let f = serial_fmul_loop();
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
    let _ = Engine::new(f, cdfg, profile, EngineConfig::default(), vec![RtVal::I(1)]);
}

#[test]
fn deadlock_detection_returns_a_populated_snapshot() {
    // A port that never completes anything wedges the engine; the watchdog
    // must report it as a typed error carrying its queue snapshot instead
    // of spinning forever (or panicking).
    struct BlackHole;
    impl salam_runtime::MemPort for BlackHole {
        fn begin_cycle(&mut self) {}
        fn try_issue(
            &mut self,
            _a: salam_runtime::MemAccess,
        ) -> Result<(), salam_runtime::Rejection> {
            Ok(()) // accepted, never completed
        }
        fn poll(&mut self) -> Vec<salam_runtime::MemCompletion> {
            Vec::new()
        }
    }
    let f = serial_fmul_loop();
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
    let cfg = EngineConfig {
        deadlock_cycles: 2_000,
        ..EngineConfig::default()
    };
    let mut e = Engine::new(f, cdfg, profile, cfg, vec![RtVal::P(0), RtVal::I(4)]);
    let mut hole = BlackHole;
    let err = e
        .try_run_to_completion(&mut hole)
        .expect_err("a black-hole port must deadlock");
    let salam_runtime::SimError::Deadlock(snap) = &err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert_eq!(snap.kernel, "serial");
    assert!(snap.mem_outstanding > 0, "reads are stuck in flight");
    assert!(
        snap.cycle - snap.last_progress_cycle > cfg.deadlock_cycles,
        "watchdog fired at cycle {} with last progress at {}",
        snap.cycle,
        snap.last_progress_cycle
    );
    assert!(
        snap.reservation_occupancy > 0 || snap.compute_occupancy > 0 || snap.pending_blocks > 0,
        "a wedged engine still holds work"
    );
    let msg = err.to_string();
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("@serial"), "{msg}");
}

#[test]
fn nonsense_configs_are_rejected_before_the_run() {
    let f = serial_fmul_loop();
    let profile = HardwareProfile::default_40nm();
    for (label, cfg) in [
        (
            "deadlock_cycles",
            EngineConfig {
                deadlock_cycles: 0,
                ..EngineConfig::default()
            },
        ),
        (
            "reservation_entries",
            EngineConfig {
                reservation_entries: 0,
                ..EngineConfig::default()
            },
        ),
        (
            "max_outstanding_reads",
            EngineConfig {
                max_outstanding_reads: 0,
                ..EngineConfig::default()
            },
        ),
        (
            "clock_period_ps",
            EngineConfig {
                clock_period_ps: 0,
                ..EngineConfig::default()
            },
        ),
    ] {
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let mut mem = SimpleMem::new(1, 4, 4);
        let mut e = Engine::new(
            f.clone(),
            cdfg,
            profile.clone(),
            cfg,
            vec![RtVal::P(0x1000), RtVal::I(4)],
        );
        let err = e
            .try_run_to_completion(&mut mem)
            .expect_err("invalid config must be rejected");
        let salam_runtime::SimError::Config(c) = &err else {
            panic!("expected Config error for {label}, got {err:?}");
        };
        assert_eq!(c.field, label);
    }
}

#[test]
fn zero_rate_fault_plan_changes_nothing() {
    let f = serial_fmul_loop();
    let run = |with_plan: bool| -> (u64, u64) {
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let mut mem = SimpleMem::new(1, 4, 4);
        mem.memory_mut().write_f64_slice(0x1000, &[1.5; 16]);
        let mut e = Engine::new(
            f.clone(),
            cdfg,
            profile,
            EngineConfig::default(),
            vec![RtVal::P(0x1000), RtVal::I(16)],
        );
        if with_plan {
            e.set_fault(&salam_runtime::FaultPlan::seeded(99));
        }
        let cycles = e.run_to_completion(&mut mem);
        (cycles, e.stats().total_faults())
    };
    let (clean_cycles, clean_faults) = run(false);
    let (planned_cycles, planned_faults) = run(true);
    assert_eq!(clean_cycles, planned_cycles);
    assert_eq!(clean_faults, 0);
    assert_eq!(planned_faults, 0);
}

#[test]
fn fu_bitflips_fire_deterministically_and_are_counted() {
    let f = serial_fmul_loop();
    let run = |seed: u64| -> (u64, Vec<f64>) {
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let mut mem = SimpleMem::new(1, 4, 4);
        mem.memory_mut().write_f64_slice(0x1000, &[1.5; 16]);
        let mut e = Engine::new(
            f.clone(),
            cdfg,
            profile,
            EngineConfig::default(),
            vec![RtVal::P(0x1000), RtVal::I(16)],
        );
        e.set_fault(&salam_runtime::FaultPlan {
            fu_bitflip_rate: 0.5,
            ..salam_runtime::FaultPlan::seeded(seed)
        });
        e.run_to_completion(&mut mem);
        let flips = e
            .stats()
            .fault_counts
            .get("fu_bitflip")
            .copied()
            .unwrap_or(0);
        (flips, mem.memory_mut().read_f64_slice(0x1000, 16))
    };
    let (flips_a, data_a) = run(7);
    let (flips_b, data_b) = run(7);
    assert!(flips_a > 0, "a 50% rate over 16 fmuls must fire");
    assert_eq!(flips_a, flips_b, "same seed, same schedule");
    assert_eq!(data_a, data_b, "same seed, same corrupted output");
    let (_, data_c) = run(8);
    assert_ne!(data_a, data_c, "a different seed flips different bits");
}

#[test]
fn fu_jitter_slows_the_run_but_keeps_it_correct() {
    let f = serial_fmul_loop();
    let run = |rate: f64| -> u64 {
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let mut mem = SimpleMem::new(1, 4, 4);
        mem.memory_mut().write_f64_slice(0x1000, &[1.5; 32]);
        let mut e = Engine::new(
            f.clone(),
            cdfg,
            profile,
            EngineConfig::default(),
            vec![RtVal::P(0x1000), RtVal::I(32)],
        );
        e.set_fault(&salam_runtime::FaultPlan {
            fu_jitter_rate: rate,
            fu_jitter_cycles: 8,
            ..salam_runtime::FaultPlan::seeded(3)
        });
        let cycles = e.run_to_completion(&mut mem);
        let got = mem.memory_mut().read_f64_slice(0x1000, 32);
        assert!(got.iter().all(|&v| v == 2.25), "jitter is timing-only");
        cycles
    };
    assert!(run(1.0) > run(0.0));
}
