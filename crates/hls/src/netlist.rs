//! Gate-level-style area/power estimation — the Design Compiler stand-in.
//!
//! Where the SALAM-side estimates (in `salam-cdfg` / `salam-runtime`) are
//! driven by the hardware profile's per-unit constants, this model derives
//! everything from NAND2-equivalent gate counts and per-gate constants, with
//! activity factors taken from interpreter execution counts — an independent
//! methodology, as a synthesis-tool comparison should be.

use std::collections::HashMap;

use hw_profile::FuKind;
use salam_cdfg::StaticCdfg;
use salam_ir::interp::ProfileObserver;
use salam_ir::{Function, InstId, Opcode};

/// NAND2-equivalent gate count for one unit of `kind`.
///
/// These counts are derived from standard synthesis results for 40 nm-class
/// arithmetic units and are deliberately *not* computed from the hardware
/// profile's area numbers.
pub fn gate_count(kind: FuKind) -> f64 {
    match kind {
        FuKind::IntAdder => 310.0,
        FuKind::IntMultiplier => 1780.0,
        FuKind::IntDivider => 2300.0,
        FuKind::Shifter => 345.0,
        FuKind::Bitwise => 150.0,
        FuKind::IntComparator => 195.0,
        FuKind::FpAddF32 => 3700.0,
        FuKind::FpAddF64 => 7300.0,
        FuKind::FpMulF32 => 5050.0,
        FuKind::FpMulF64 => 10100.0,
        FuKind::FpDivF32 => 10900.0,
        FuKind::FpDivF64 => 21700.0,
        FuKind::FpComparator => 545.0,
        FuKind::Converter => 2000.0,
        FuKind::Mux => 100.0,
    }
}

/// Area of one NAND2-equivalent gate in square micrometres (40 nm).
pub const GATE_AREA_UM2: f64 = 0.93;
/// Leakage per gate in milliwatts.
pub const GATE_LEAKAGE_MW: f64 = 0.0000098;
/// Switching energy per gate toggle-event in picojoules (with the average
/// activity factor folded in).
pub const GATE_SWITCH_PJ: f64 = 0.00052;
/// Flip-flop cost per datapath register bit, in gate equivalents.
pub const FF_GATES_PER_BIT: f64 = 4.6;
/// Average register toggle events (write + operand reads) per operation.
pub const REG_ACTIVITY: f64 = 2.4;

/// Pipeline depth (cycles per operation) of one unit of `kind` — visible to
/// a synthesis tool as the RTL's register stages.
pub fn unit_cycles(kind: FuKind) -> u32 {
    match kind {
        FuKind::IntAdder | FuKind::Shifter | FuKind::Bitwise => 1,
        FuKind::IntComparator | FuKind::Mux => 0,
        FuKind::IntMultiplier
        | FuKind::FpAddF32
        | FuKind::FpAddF64
        | FuKind::FpMulF32
        | FuKind::FpMulF64 => 3,
        FuKind::FpComparator => 1,
        FuKind::Converter => 2,
        FuKind::IntDivider | FuKind::FpDivF32 | FuKind::FpDivF64 => 16,
    }
}

/// Switching-activity factor of a unit: deeper pipelines (and iterative
/// dividers) toggle their stages on every cycle an operation occupies them.
/// Linear in depth for short pipelines, sublinear for long iterative units
/// (only part of the divider datapath is active per step).
pub fn activity_factor(cycles: u32) -> f64 {
    let c = cycles as f64;
    if c <= 3.0 {
        0.6 + 0.23 * c
    } else {
        0.6 + 0.23 * 3.0 + 0.09 * (c - 3.0)
    }
}

/// The synthesis-style report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistReport {
    /// Total cell area in square micrometres.
    pub area_um2: f64,
    /// Static (leakage) power in milliwatts.
    pub leakage_mw: f64,
    /// Dynamic energy over the profiled execution in picojoules.
    pub dynamic_pj: f64,
    /// Average dynamic power over `runtime_ns`, in milliwatts.
    pub dynamic_mw: f64,
    /// Total power (leakage + dynamic average).
    pub total_mw: f64,
}

/// Produces a gate-level-style estimate for the datapath of `f`.
///
/// `activity` supplies dynamic instruction counts (from the reference
/// interpreter); `runtime_ns` is the execution time over which dynamic
/// energy is averaged into power.
pub fn estimate_netlist(
    f: &Function,
    cdfg: &StaticCdfg,
    activity: &ProfileObserver,
    runtime_ns: f64,
) -> NetlistReport {
    // Area and leakage from the allocated datapath.
    let mut gates = 0.0;
    for (kind, count) in cdfg.fu_counts() {
        gates += gate_count(kind) * count as f64;
    }
    gates += FF_GATES_PER_BIT * cdfg.register_bits() as f64;
    let area_um2 = gates * GATE_AREA_UM2;
    let leakage_mw = gates * GATE_LEAKAGE_MW;

    // Dynamic energy from executed-operation activity: executing an op
    // toggles the gates of one unit of its kind.
    let exec_counts = dynamic_op_counts(f, activity);
    let mut dynamic_pj = 0.0;
    for (iid, n) in exec_counts {
        let sop = cdfg.op(iid);
        if let Some(kind) = sop.fu {
            dynamic_pj +=
                gate_count(kind) * GATE_SWITCH_PJ * activity_factor(unit_cycles(kind)) * n as f64;
        }
        // Register activity for the produced value: one write plus the
        // average operand-read fanout per operation.
        dynamic_pj += sop.bits as f64 * FF_GATES_PER_BIT * GATE_SWITCH_PJ * REG_ACTIVITY * n as f64;
    }
    let dynamic_mw = if runtime_ns > 0.0 {
        dynamic_pj / runtime_ns
    } else {
        0.0
    };
    NetlistReport {
        area_um2,
        leakage_mw,
        dynamic_pj,
        dynamic_mw,
        total_mw: leakage_mw + dynamic_mw,
    }
}

/// Distributes per-block execution counts to the instructions inside them.
fn dynamic_op_counts(f: &Function, activity: &ProfileObserver) -> HashMap<InstId, u64> {
    let mut out = HashMap::new();
    for (bid, b) in f.blocks() {
        let trips = activity.block_entries.get(&bid).copied().unwrap_or(0);
        if trips == 0 {
            continue;
        }
        for &iid in &b.insts {
            if !matches!(f.inst(iid).op, Opcode::Br | Opcode::CondBr | Opcode::Ret) {
                out.insert(iid, trips);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_profile::HardwareProfile;
    use salam_cdfg::FuConstraints;
    use salam_ir::interp::{run_function, SparseMemory};

    fn setup(kernel: &machsuite::BuiltKernel) -> (StaticCdfg, ProfileObserver) {
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&kernel.func, &profile, &FuConstraints::unconstrained());
        let mut mem = SparseMemory::new();
        kernel.load_into(&mut mem);
        let mut obs = ProfileObserver::default();
        run_function(&kernel.func, &kernel.args, &mut mem, &mut obs, 200_000_000).unwrap();
        (cdfg, obs)
    }

    #[test]
    fn netlist_report_is_positive_and_consistent() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
        let (cdfg, obs) = setup(&k);
        let rep = estimate_netlist(&k.func, &cdfg, &obs, 10_000.0);
        assert!(rep.area_um2 > 0.0);
        assert!(rep.leakage_mw > 0.0);
        assert!(rep.dynamic_pj > 0.0);
        assert!((rep.total_mw - (rep.leakage_mw + rep.dynamic_mw)).abs() < 1e-12);
    }

    #[test]
    fn independent_model_lands_near_profile_model() {
        // The Fig. 11/12 premise: the two methodologies agree within several
        // percent on area for FP-dominated datapaths.
        let k = machsuite::md_knn::build(&machsuite::md_knn::Params::default());
        let profile = HardwareProfile::default_40nm();
        let (cdfg, obs) = setup(&k);
        let dc = estimate_netlist(&k.func, &cdfg, &obs, 10_000.0);
        let salam = cdfg.area_report(&profile);
        let err = (dc.area_um2 - salam.total_um2).abs() / dc.area_um2;
        assert!(
            err < 0.20,
            "area methodologies diverged by {:.1}%",
            err * 100.0
        );
    }

    #[test]
    fn more_activity_means_more_energy() {
        let small = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        let large = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
        let (cdfg_s, obs_s) = setup(&small);
        let (cdfg_l, obs_l) = setup(&large);
        let e_small = estimate_netlist(&small.func, &cdfg_s, &obs_s, 1.0).dynamic_pj;
        let e_large = estimate_netlist(&large.func, &cdfg_l, &obs_l, 1.0).dynamic_pj;
        assert!(e_large > 4.0 * e_small, "8x work should cost >>energy");
    }
}
