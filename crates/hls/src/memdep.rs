//! Loop-carried memory-dependence profiling.
//!
//! A static scheduler cannot see that `m[i][j]` written in one iteration is
//! read as `m[i][j-1]` in the next (Needleman–Wunsch's pattern), yet such
//! recurrences bound the initiation interval of both real HLS designs and
//! the SALAM runtime engine. This module detects them the way an HLS
//! co-simulation would: by profiling actual addresses and recording
//! store→load conflicts together with their iteration distance.

use std::collections::HashMap;

use salam_ir::analysis::{find_natural_loops, Cfg, DomTree};
use salam_ir::interp::{run_function, Memory, Observer, ProfileObserver, RtVal, SparseMemory};
use salam_ir::{BlockId, Function, InstId, Opcode};

/// Loop-carried RAW memory dependences, keyed by loop header: each entry is
/// `(load, store, iteration distance)` meaning the load at distance `d`
/// iterations after the store reads the store's address.
#[derive(Debug, Clone, Default)]
pub struct MemDeps {
    pub(crate) by_header: HashMap<BlockId, Vec<(InstId, InstId, u64)>>,
}

impl MemDeps {
    /// Dependences recorded for the loop headed at `header`.
    pub fn for_header(&self, header: BlockId) -> &[(InstId, InstId, u64)] {
        self.by_header
            .get(&header)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total recorded dependences.
    pub fn len(&self) -> usize {
        self.by_header.values().map(Vec::len).sum()
    }

    /// Whether any dependences were found.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All recorded distances (diagnostics).
    pub fn by_header_distances(&self) -> Vec<u64> {
        self.by_header
            .values()
            .flatten()
            .map(|&(_, _, d)| d)
            .collect()
    }
}

struct DepObserver {
    /// innermost loop header per instruction (if any).
    inst_loop: HashMap<InstId, BlockId>,
    /// iteration clock per header.
    header_clock: HashMap<BlockId, u64>,
    /// address -> (store inst, its loop header, header clock at store).
    last_store: HashMap<u64, (InstId, BlockId, u64)>,
    /// (header, load, store) -> min distance.
    found: HashMap<(BlockId, InstId, InstId), u64>,
    profile: ProfileObserver,
}

impl Observer for DepObserver {
    fn on_block_enter(&mut self, f: &Function, b: BlockId) {
        *self.header_clock.entry(b).or_insert(0) += 1;
        self.profile.on_block_enter(f, b);
    }

    fn on_inst(&mut self, f: &Function, id: InstId, result: Option<&RtVal>, mem_addr: Option<u64>) {
        self.profile.on_inst(f, id, result, mem_addr);
        let Some(addr) = mem_addr else { return };
        match f.inst(id).op {
            Opcode::Store => {
                if let Some(&header) = self.inst_loop.get(&id) {
                    let clock = self.header_clock.get(&header).copied().unwrap_or(0);
                    self.last_store.insert(addr, (id, header, clock));
                } else {
                    self.last_store.remove(&addr);
                }
            }
            Opcode::Load => {
                let Some(&(store, s_header, s_clock)) = self.last_store.get(&addr) else {
                    return;
                };
                let Some(&l_header) = self.inst_loop.get(&id) else {
                    return;
                };
                if l_header != s_header {
                    return;
                }
                let now = self.header_clock.get(&l_header).copied().unwrap_or(0);
                let distance = now.saturating_sub(s_clock);
                if distance >= 1 {
                    let e = self.found.entry((l_header, id, store)).or_insert(distance);
                    *e = (*e).min(distance);
                }
            }
            _ => {}
        }
    }
}

/// Profiles `f` and returns block trip counts plus loop-carried memory
/// dependences for its innermost loops.
///
/// # Panics
///
/// Panics if the reference execution faults.
pub fn profile_memdeps(
    f: &Function,
    args: &[RtVal],
    init: &[(u64, Vec<u8>)],
) -> (ProfileObserver, MemDeps) {
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let loops = find_natural_loops(f, &cfg, &dom);
    let innermost: Vec<_> = loops
        .iter()
        .filter(|l| {
            !loops
                .iter()
                .any(|o| o.header != l.header && l.blocks.contains(&o.header))
        })
        .collect();
    let mut inst_loop = HashMap::new();
    for l in &innermost {
        for &b in &l.blocks {
            for &i in &f.block(b).insts {
                inst_loop.insert(i, l.header);
            }
        }
    }
    let mut obs = DepObserver {
        inst_loop,
        header_clock: HashMap::new(),
        last_store: HashMap::new(),
        found: HashMap::new(),
        profile: ProfileObserver::default(),
    };
    let mut mem = SparseMemory::new();
    for (addr, bytes) in init {
        mem.write(*addr, bytes);
    }
    run_function(f, args, &mut mem, &mut obs, 500_000_000).expect("profiling run");

    let mut deps = MemDeps::default();
    for ((header, load, store), distance) in obs.found {
        deps.by_header
            .entry(header)
            .or_default()
            .push((load, store, distance));
    }
    (obs.profile, deps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nw_has_distance_one_recurrence() {
        let k = machsuite::nw::build(&machsuite::nw::Params { alen: 8, blen: 8 });
        let (_, deps) = profile_memdeps(&k.func, &k.args, &k.init);
        assert!(!deps.is_empty(), "NW's DP recurrence must be detected");
        let min_dist = deps
            .by_header
            .values()
            .flatten()
            .map(|&(_, _, d)| d)
            .min()
            .unwrap();
        assert_eq!(min_dist, 1, "m[i][j-1] is read one iteration later");
    }

    #[test]
    fn gemm_has_no_loop_carried_memory_raw() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        let (_, deps) = profile_memdeps(&k.func, &k.args, &k.init);
        assert!(deps.is_empty(), "GEMM reads A/B and writes C: {deps:?}");
    }

    #[test]
    fn fft_butterflies_do_not_conflict_across_iterations() {
        let k = machsuite::fft::build(&machsuite::fft::Params { n: 16 });
        let (_, deps) = profile_memdeps(&k.func, &k.args, &k.init);
        // Butterfly addresses within one stage are disjoint; the in-place
        // update conflicts only across *stages* (outer loop), giving large
        // or no distances inside the inner loop.
        let d1 = deps
            .by_header
            .values()
            .flatten()
            .filter(|&&(_, _, d)| d == 1)
            .count();
        assert_eq!(d1, 0, "no distance-1 recurrences inside a stage");
    }
}
