//! Loop-carried memory-dependence profiling.
//!
//! A static scheduler cannot see that `m[i][j]` written in one iteration is
//! read as `m[i][j-1]` in the next (Needleman–Wunsch's pattern), yet such
//! recurrences bound the initiation interval of both real HLS designs and
//! the SALAM runtime engine.
//!
//! The implementation lives in [`salam_verify::memdep`] so the HLS
//! scheduler and the static hazard lint agree on dependence edges by
//! construction; this module re-exports it under the historical path (the
//! scheduler's `estimate_cycles` keeps taking `Option<&MemDeps>`
//! unchanged).

pub use salam_verify::memdep::{profile_memdeps, MemDeps};
