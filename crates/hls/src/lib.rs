//! # salam-hls
//!
//! The validation references of the paper's §IV-A, rebuilt as independent
//! models:
//!
//! * [`scheduler`] — a static, resource-constrained list scheduler with
//!   innermost-loop pipelining, standing in for **Vivado HLS** as the timing
//!   reference (Fig. 10). It shares per-opcode latencies with the SALAM
//!   engine (the paper feeds both from the same device config) but computes
//!   cycles through an entirely *static* schedule, so agreement between the
//!   two is a genuine cross-model validation.
//! * [`netlist`] — a gate-level-style area/power estimator standing in for
//!   **Synopsys Design Compiler** (Figs. 11, 12). It derives area from
//!   NAND2-equivalent gate counts and power from activity counts observed by
//!   the reference interpreter — a different methodology from the profile-
//!   driven SALAM estimates it validates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memdep;
pub mod netlist;
pub mod scheduler;

pub use memdep::{profile_memdeps, MemDeps};
pub use netlist::{estimate_netlist, NetlistReport};
pub use scheduler::{estimate_cycles, BlockTrips, HlsConfig, HlsReport};
