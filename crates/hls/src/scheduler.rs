//! Static resource-constrained list scheduling with loop pipelining.

use std::collections::HashMap;

use salam_cdfg::StaticCdfg;
use salam_ir::analysis::{find_natural_loops, Cfg, DomTree};
use salam_ir::{BlockId, Function, InstId, Opcode, ValueKind};

/// Per-block dynamic execution counts, obtained by profiling the kernel with
/// the reference interpreter (the HLS analogue of a co-simulation run).
#[derive(Debug, Clone, Default)]
pub struct BlockTrips {
    counts: HashMap<BlockId, u64>,
}

impl BlockTrips {
    /// Builds from an interpreter profile.
    pub fn from_profile(p: &salam_ir::interp::ProfileObserver) -> Self {
        BlockTrips {
            counts: p.block_entries.clone(),
        }
    }

    /// Builds from raw counts.
    pub fn from_counts(counts: HashMap<BlockId, u64>) -> Self {
        BlockTrips { counts }
    }

    /// Executions of `b`.
    pub fn trips(&self, b: BlockId) -> u64 {
        self.counts.get(&b).copied().unwrap_or(0)
    }
}

/// Memory interface assumptions of the static schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HlsConfig {
    /// Reads per cycle.
    pub mem_read_ports: u32,
    /// Writes per cycle.
    pub mem_write_ports: u32,
    /// Load latency in cycles.
    pub mem_latency: u32,
    /// Pipeline innermost loops (HLS `#pragma pipeline`).
    pub pipeline_inner_loops: bool,
    /// Reservation-window size of the engine being modeled; bounds how far
    /// a recurrence-limited loop can defer unissued work before block fetch
    /// stalls and the pipeline drains at instance boundaries.
    pub engine_window: usize,
}

impl Default for HlsConfig {
    /// 2R/2W ports, 2-cycle loads, pipelining on.
    fn default() -> Self {
        HlsConfig {
            mem_read_ports: 2,
            mem_write_ports: 2,
            mem_latency: 2,
            pipeline_inner_loops: true,
            engine_window: 128,
        }
    }
}

/// The static schedule estimate.
#[derive(Debug, Clone, Default)]
pub struct HlsReport {
    /// Estimated total cycles.
    pub cycles: u64,
    /// Per innermost loop: `(header, initiation interval, depth)`.
    pub loops: Vec<(BlockId, u64, u64)>,
}

/// Estimates total cycles for `f` by statically scheduling each region.
///
/// Innermost loops are software-pipelined: one instance of a loop executing
/// `n` iterations costs `depth + (n - 1) * II`, where `II` bounds both
/// resource reuse (FU pools, memory ports) and loop-carried recurrences.
/// Blocks outside innermost loops contribute their list-schedule length per
/// execution.
pub fn estimate_cycles(
    f: &Function,
    cdfg: &StaticCdfg,
    cfg_hls: &HlsConfig,
    trips: &BlockTrips,
    memdeps: Option<&crate::memdep::MemDeps>,
) -> HlsReport {
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let loops = find_natural_loops(f, &cfg, &dom);

    // Innermost loops: no other loop's header inside their body.
    let innermost: Vec<_> = loops
        .iter()
        .filter(|l| {
            cfg_hls.pipeline_inner_loops
                && !loops
                    .iter()
                    .any(|other| other.header != l.header && l.blocks.contains(&other.header))
        })
        .collect();

    let mut covered: Vec<BlockId> = Vec::new();
    let mut report = HlsReport::default();

    for l in &innermost {
        let blocks: Vec<BlockId> = {
            let mut v: Vec<_> = l.blocks.iter().copied().collect();
            v.sort();
            v
        };
        let ops: Vec<InstId> = blocks
            .iter()
            .flat_map(|&b| f.block(b).insts.clone())
            .collect();
        let depth = schedule_length(f, cdfg, cfg_hls, &ops);
        let mut ii = initiation_interval(f, cdfg, cfg_hls, l.header, &ops);
        // Internal data-dependent branches serialize basic-block fetch in
        // the runtime engine: the next block cannot be imported before the
        // branch condition resolves, so II is bounded by the latency chain
        // to every conditional terminator inside the loop.
        ii = ii.max(branch_fetch_ii(f, cdfg, cfg_hls, &blocks, &ops));
        let iters = trips.trips(l.latch);
        let instances = trips.trips(l.header).saturating_sub(iters).max(1);
        let iters_per_instance = iters / instances.max(1);
        let mut refills = false;
        if let Some(md) = memdeps {
            let deps = md.for_header(l.header);
            let ii_mem = memory_recurrence_ii(f, cdfg, cfg_hls, &ops, deps);
            // When a memory recurrence (not resource pressure) bounds the
            // loop, unissued work backs up behind the serial chain; if one
            // instance's backlog exceeds the engine's reservation window,
            // block fetch stalls and the pipeline drains at every re-entry
            // (NW's row boundaries). Resource-bound loops keep pace and
            // flow across instances (FFT stages, GEMM).
            if ii_mem > ii {
                // One instance's in-flight footprint: every iteration's ops
                // queued behind the serial chain.
                let instance_footprint = iters_per_instance as usize * ops.len();
                refills = instance_footprint > cfg_hls.engine_window * 2;
                ii = ii_mem;
            }
        }
        if iters > 0 {
            if refills {
                report.cycles += instances * depth + iters.saturating_sub(instances) * ii;
            } else {
                report.cycles += depth + iters.saturating_sub(1) * ii;
            }
        }
        report.loops.push((l.header, ii, depth));
        covered.extend(blocks);
    }

    // Blocks of enclosing (non-innermost) loops execute concurrently with
    // the inner pipeline in the dataflow engine; they only consume the
    // memory bandwidth they actually use. Blocks outside all loops run at
    // their full schedule length.
    let in_some_loop: Vec<BlockId> = loops
        .iter()
        .flat_map(|l| l.blocks.iter().copied())
        .collect();
    for (bid, b) in f.blocks() {
        if covered.contains(&bid) || trips.trips(bid) == 0 {
            continue;
        }
        let cost = if cfg_hls.pipeline_inner_loops && in_some_loop.contains(&bid) {
            let loads = b
                .insts
                .iter()
                .filter(|&&i| f.inst(i).op == Opcode::Load)
                .count() as u64;
            let stores = b
                .insts
                .iter()
                .filter(|&&i| f.inst(i).op == Opcode::Store)
                .count() as u64;
            loads
                .div_ceil(cfg_hls.mem_read_ports as u64)
                .max(stores.div_ceil(cfg_hls.mem_write_ports as u64))
                .max(1)
        } else {
            schedule_length(f, cdfg, cfg_hls, &b.insts)
        };
        report.cycles += cost * trips.trips(bid);
    }
    report
}

/// Resource-constrained list-schedule length of an op sequence, honoring
/// intra-sequence SSA dependencies; operands defined outside are ready at 0.
fn schedule_length(f: &Function, cdfg: &StaticCdfg, cfg: &HlsConfig, ops: &[InstId]) -> u64 {
    let mut finish: HashMap<InstId, u64> = HashMap::new();
    // resource usage per cycle: (fu kind counts, mem ports)
    let mut fu_used: HashMap<(u64, hw_profile::FuKind), u32> = HashMap::new();
    let mut reads_used: HashMap<u64, u32> = HashMap::new();
    let mut writes_used: HashMap<u64, u32> = HashMap::new();
    let mut makespan = 0u64;

    for &iid in ops {
        let inst = f.inst(iid);
        let sop = cdfg.op(iid);
        let mut ready = 0u64;
        for &v in &inst.operands {
            if let ValueKind::Inst(def) = f.value_kind(v) {
                if let Some(&t) = finish.get(def) {
                    ready = ready.max(t);
                }
            }
        }
        let latency = match inst.op {
            Opcode::Load | Opcode::Store => cfg.mem_latency as u64,
            _ => sop.latency as u64,
        };
        // Find the earliest start >= ready with a free resource slot.
        let mut start = ready;
        loop {
            let ok = match inst.op {
                Opcode::Load => {
                    let u = reads_used.get(&start).copied().unwrap_or(0);
                    if u < cfg.mem_read_ports {
                        reads_used.insert(start, u + 1);
                        true
                    } else {
                        false
                    }
                }
                Opcode::Store => {
                    let u = writes_used.get(&start).copied().unwrap_or(0);
                    if u < cfg.mem_write_ports {
                        writes_used.insert(start, u + 1);
                        true
                    } else {
                        false
                    }
                }
                _ => match sop.fu {
                    Some(k) => {
                        let pool = cdfg.fu_count(k).max(1);
                        let u = fu_used.get(&(start, k)).copied().unwrap_or(0);
                        if u < pool {
                            fu_used.insert((start, k), u + 1);
                            true
                        } else {
                            false
                        }
                    }
                    None => true,
                },
            };
            if ok {
                break;
            }
            start += 1;
        }
        let t = start + latency;
        finish.insert(iid, t);
        makespan = makespan.max(t.max(start + 1));
    }
    makespan
}

/// Initiation interval: max of resource pressure and loop-carried recurrence.
fn initiation_interval(
    f: &Function,
    cdfg: &StaticCdfg,
    cfg: &HlsConfig,
    header: BlockId,
    ops: &[InstId],
) -> u64 {
    // Resource II with *non-pipelined* functional units (as in the runtime
    // engine, where a unit stays allocated until its result commits): a
    // kind with total busy-time B and pool P sustains one iteration per
    // ceil(B / P) cycles.
    let mut kind_busy: HashMap<hw_profile::FuKind, u64> = HashMap::new();
    let mut loads = 0u64;
    let mut stores = 0u64;
    for &iid in ops {
        match f.inst(iid).op {
            Opcode::Load => loads += 1,
            Opcode::Store => stores += 1,
            _ => {
                if let Some(k) = cdfg.op(iid).fu {
                    *kind_busy.entry(k).or_insert(0) += (cdfg.op(iid).latency as u64).max(1);
                }
            }
        }
    }
    let mut ii_res = 1u64;
    for (k, busy) in kind_busy {
        let pool = cdfg.fu_count(k).max(1) as u64;
        ii_res = ii_res.max(busy.div_ceil(pool));
    }
    ii_res = ii_res.max(loads.div_ceil(cfg.mem_read_ports as u64));
    ii_res = ii_res.max(stores.div_ceil(cfg.mem_write_ports as u64));

    // Recurrence II: the longest latency chain from a header phi back to its
    // latch-incoming value within one iteration.
    let mut ii_rec = 1u64;
    let phis: Vec<InstId> = f
        .block(header)
        .insts
        .iter()
        .copied()
        .filter(|&i| f.inst(i).op == Opcode::Phi)
        .collect();
    for &phi in &phis {
        let phi_v = f.inst_result(phi).expect("phi has result");
        // Longest path from phi value to each op, then check latch operands.
        let mut dist: HashMap<InstId, u64> = HashMap::new();
        for &iid in ops {
            let inst = f.inst(iid);
            let lat = match inst.op {
                Opcode::Load | Opcode::Store => cfg.mem_latency as u64,
                _ => cdfg.op(iid).latency as u64,
            };
            let mut best: Option<u64> = None;
            for &v in &inst.operands {
                match f.value_kind(v) {
                    ValueKind::Inst(def) if f.inst_result(*def) == Some(v) => {
                        if v == phi_v {
                            best = Some(best.unwrap_or(0));
                        } else if let Some(&d) = dist.get(def) {
                            best = Some(best.unwrap_or(0).max(d));
                        }
                    }
                    _ => {}
                }
            }
            if let Some(b) = best {
                dist.insert(iid, b + lat);
            }
        }
        // The phi's incoming value from inside the loop closes the cycle.
        let inst = f.inst(phi);
        for &v in &inst.operands {
            if let ValueKind::Inst(def) = f.value_kind(v) {
                if let Some(&d) = dist.get(def) {
                    ii_rec = ii_rec.max(d);
                }
            }
        }
    }
    ii_res.max(ii_rec)
}

/// Fetch-serialization bound: the longest latency chain from loop entry to
/// the condition of any conditional branch inside the loop body (excluding
/// the header's own exit test, whose inputs are ready at iteration start).
fn branch_fetch_ii(
    f: &Function,
    cdfg: &StaticCdfg,
    cfg: &HlsConfig,
    blocks: &[BlockId],
    ops: &[InstId],
) -> u64 {
    // Longest-path distances from iteration start over the op list.
    let mut dist: HashMap<InstId, u64> = HashMap::new();
    for &iid in ops {
        let inst = f.inst(iid);
        let lat = match inst.op {
            Opcode::Load | Opcode::Store => cfg.mem_latency as u64,
            _ => cdfg.op(iid).latency as u64,
        };
        let mut base = 0u64;
        for &v in &inst.operands {
            if let ValueKind::Inst(def) = f.value_kind(v) {
                if let Some(&d) = dist.get(def) {
                    base = base.max(d);
                }
            }
        }
        dist.insert(iid, base + lat);
    }
    let mut ii = 1u64;
    // Conditional branches in non-header blocks gate block fetch.
    for &b in blocks.iter().skip(1) {
        if let Some(term) = f.terminator(b) {
            if f.inst(term).op == Opcode::CondBr {
                if let Some(&d) = dist.get(&term) {
                    ii = ii.max(d + 1);
                }
            }
        }
    }
    ii
}

/// Initiation-interval bound from profiled loop-carried memory RAW
/// dependences: the path load → … → store plus both memory latencies, per
/// iteration of distance.
fn memory_recurrence_ii(
    f: &Function,
    cdfg: &StaticCdfg,
    cfg: &HlsConfig,
    ops: &[InstId],
    deps: &[(InstId, InstId, u64)],
) -> u64 {
    let mut ii = 1u64;
    for &(load, store, distance) in deps {
        // Longest latency path from `load` to `store` within one iteration.
        let mut dist: HashMap<InstId, u64> = HashMap::new();
        dist.insert(load, cfg.mem_latency as u64);
        for &iid in ops {
            let inst = f.inst(iid);
            let mut best: Option<u64> = None;
            for &v in &inst.operands {
                if let ValueKind::Inst(def) = f.value_kind(v) {
                    if let Some(&d) = dist.get(def) {
                        best = Some(best.unwrap_or(0).max(d));
                    }
                }
            }
            if let Some(b) = best {
                let lat = match inst.op {
                    Opcode::Load | Opcode::Store => cfg.mem_latency as u64,
                    _ => cdfg.op(iid).latency as u64,
                };
                dist.insert(iid, b + lat);
            }
            if iid == store {
                // dist[store] already includes the store's own commit
                // latency via the propagation step.
                if let Some(&d) = dist.get(&store) {
                    ii = ii.max(d.div_ceil(distance.max(1)));
                }
            }
        }
    }
    ii
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_profile::HardwareProfile;
    use salam_cdfg::FuConstraints;
    use salam_ir::interp::{run_function, ProfileObserver, SparseMemory};
    use salam_ir::{FunctionBuilder, Type};

    fn profile_trips(k: &machsuite::BuiltKernel) -> BlockTrips {
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        let mut obs = ProfileObserver::default();
        run_function(&k.func, &k.args, &mut mem, &mut obs, 200_000_000).unwrap();
        BlockTrips::from_profile(&obs)
    }

    #[test]
    fn straightline_schedule_length() {
        // load(2) -> fmul(3) -> store(2) with chaining-free ops: ~7 cycles.
        let mut fb = FunctionBuilder::new("f", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let x = fb.load(Type::F64, p, "x");
        let y = fb.fmul(x, x, "y");
        fb.store(y, p);
        fb.ret();
        let f = fb.finish();
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let mut trips = HashMap::new();
        trips.insert(f.entry(), 1);
        let rep = estimate_cycles(
            &f,
            &cdfg,
            &HlsConfig::default(),
            &BlockTrips::from_counts(trips),
            None,
        );
        assert_eq!(rep.cycles, 7);
    }

    #[test]
    fn port_limits_raise_ii() {
        // A loop with 4 loads per iteration at 2 read ports has II >= 2.
        let mut fb = FunctionBuilder::new("f", &[("p", Type::Ptr), ("n", Type::I64)]);
        let p = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let mut acc = fb.f64c(0.0);
            for j in 0..4i64 {
                let jc = fb.i64c(j);
                let idx = fb.add(iv, jc, "idx");
                let g = fb.gep1(Type::F64, p, idx, "g");
                let x = fb.load(Type::F64, g, "x");
                acc = fb.fadd(acc, x, "acc");
            }
            let out = fb.gep1(Type::F64, p, iv, "out");
            fb.store(acc, out);
        });
        fb.ret();
        let f = fb.finish();
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let mut counts = HashMap::new();
        let header = f.block_by_name("i.header").unwrap();
        let body = f.block_by_name("i.body").unwrap();
        counts.insert(f.entry(), 1);
        counts.insert(header, 11);
        counts.insert(body, 10);
        counts.insert(f.block_by_name("i.exit").unwrap(), 1);
        let rep = estimate_cycles(
            &f,
            &cdfg,
            &HlsConfig::default(),
            &BlockTrips::from_counts(counts),
            None,
        );
        let (_, ii, depth) = rep.loops[0];
        assert!(ii >= 2, "4 loads / 2 ports needs II>=2, got {ii}");
        assert!(depth > ii);
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&k.func, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&k);
        let piped = estimate_cycles(&k.func, &cdfg, &HlsConfig::default(), &trips, None);
        let serial = estimate_cycles(
            &k.func,
            &cdfg,
            &HlsConfig {
                pipeline_inner_loops: false,
                ..HlsConfig::default()
            },
            &trips,
            None,
        );
        assert!(piped.cycles < serial.cycles);
        assert!(piped.cycles > 0);
    }

    #[test]
    fn recurrence_limits_ii() {
        // A serial FP accumulation (acc = acc + x) carries a 3-cycle fadd:
        // II must be at least 3 even with infinite resources.
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&k.func, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&k);
        let rep = estimate_cycles(&k.func, &cdfg, &HlsConfig::default(), &trips, None);
        let inner = rep.loops.iter().map(|&(_, ii, _)| ii).max().unwrap();
        assert!(inner >= 3, "fadd recurrence should bound II, got {inner}");
    }
}
