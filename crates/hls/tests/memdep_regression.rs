//! Regression lock: moving the memory-dependence profiler into
//! `salam-verify` must not change the scheduler's output. The estimates
//! below were produced by the pre-move implementation; the re-exported
//! pass has to reproduce them exactly.

use hw_profile::HardwareProfile;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_hls::{estimate_cycles, profile_memdeps, BlockTrips, HlsConfig};

fn schedule(k: &machsuite::BuiltKernel) -> u64 {
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&k.func, &profile, &FuConstraints::unconstrained());
    let (prof, deps) = profile_memdeps(&k.func, &k.args, &k.init);
    let trips = BlockTrips::from_profile(&prof);
    estimate_cycles(&k.func, &cdfg, &HlsConfig::default(), &trips, Some(&deps)).cycles
}

#[test]
fn scheduler_output_is_unchanged_by_the_pass_move() {
    // Two kernels exercising both scheduler paths: NW's estimate is bound
    // by a memory recurrence found by the profiler, GEMM's by resources.
    let nw = machsuite::nw::build(&machsuite::nw::Params { alen: 8, blen: 8 });
    let gemm = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
    let (nw_cycles, gemm_cycles) = (schedule(&nw), schedule(&gemm));

    // Deterministic inputs + deterministic profiling: exact values, locked
    // at the commit that moved the pass.
    assert_eq!(nw_cycles, 432, "NW schedule drifted");
    assert_eq!(gemm_cycles, 270, "GEMM schedule drifted");
}
