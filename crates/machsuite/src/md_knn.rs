//! MD (k-NN): Lennard-Jones force accumulation over fixed neighbor lists.
//!
//! The floating-point-heaviest kernel in the set; the paper uses it to
//! validate SALAM's modeling of functional-unit *reuse*, constraining the
//! expensive FP units the way HLS resource directives would.

use salam_ir::interp::{RtVal, SparseMemory};
use salam_ir::{FunctionBuilder, Type};

use crate::data;
use crate::BuiltKernel;

/// Problem shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of atoms.
    pub n_atoms: usize,
    /// Neighbors per atom.
    pub k: usize,
}

impl Default for Params {
    /// 32 atoms, 8 neighbors each.
    fn default() -> Self {
        Params { n_atoms: 32, k: 8 }
    }
}

/// Lennard-Jones constants (MachSuite's lj1/lj2 folded).
pub const LJ1: f64 = 1.5;
/// Second LJ constant.
pub const LJ2: f64 = 2.0;

/// Memory layout `(x, y, z, fx, fy, fz, neighbors)`.
#[allow(clippy::type_complexity)]
pub fn layout(p: &Params) -> (u64, u64, u64, u64, u64, u64, u64) {
    let base = 0x4800_0000u64;
    let n8 = (p.n_atoms * 8) as u64;
    let x = base;
    let y = x + n8;
    let z = y + n8;
    let fx = z + n8;
    let fy = fx + n8;
    let fz = fy + n8;
    let nl = fz + n8;
    (x, y, z, fx, fy, fz, nl)
}

/// Golden force computation.
#[allow(clippy::too_many_arguments)]
pub fn golden(
    x: &[f64],
    y: &[f64],
    z: &[f64],
    nl: &[i64],
    p: &Params,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut fx = vec![0.0; p.n_atoms];
    let mut fy = vec![0.0; p.n_atoms];
    let mut fz = vec![0.0; p.n_atoms];
    for i in 0..p.n_atoms {
        let (mut sx, mut sy, mut sz) = (0.0, 0.0, 0.0);
        for kk in 0..p.k {
            let j = nl[i * p.k + kk] as usize;
            let delx = x[i] - x[j];
            let dely = y[i] - y[j];
            let delz = z[i] - z[j];
            let r2 = delx * delx + dely * dely + delz * delz;
            let r2inv = 1.0 / r2;
            let r6inv = r2inv * r2inv * r2inv;
            let potential = r6inv * (LJ1 * r6inv - LJ2);
            let force = r2inv * potential;
            sx += delx * force;
            sy += dely * force;
            sz += delz * force;
        }
        fx[i] = sx;
        fy[i] = sy;
        fz[i] = sz;
    }
    (fx, fy, fz)
}

/// Builds the MD-KNN kernel instance.
pub fn build(p: &Params) -> BuiltKernel {
    let (xa, ya, za, fxa, fya, fza, nla) = layout(p);
    let (n, k) = (p.n_atoms, p.k);

    let mut fb = FunctionBuilder::new(
        "md_knn",
        &[
            ("x", Type::Ptr),
            ("y", Type::Ptr),
            ("z", Type::Ptr),
            ("fx", Type::Ptr),
            ("fy", Type::Ptr),
            ("fz", Type::Ptr),
            ("nl", Type::Ptr),
        ],
    );
    let (x, y, z, fx, fy, fz, nl) = (
        fb.arg(0),
        fb.arg(1),
        fb.arg(2),
        fb.arg(3),
        fb.arg(4),
        fb.arg(5),
        fb.arg(6),
    );
    let zero = fb.i64c(0);
    let nv = fb.i64c(n as i64);
    fb.counted_loop("i", zero, nv, |fb, i| {
        let px = fb.gep1(Type::F64, x, i, "px");
        let xi = fb.load(Type::F64, px, "xi");
        let py = fb.gep1(Type::F64, y, i, "py");
        let yi = fb.load(Type::F64, py, "yi");
        let pz = fb.gep1(Type::F64, z, i, "pz");
        let zi = fb.load(Type::F64, pz, "zi");

        let zero = fb.i64c(0);
        let kv = fb.i64c(k as i64);
        let fzero = fb.f64c(0.0);
        let finals = fb.counted_loop_accs(
            "k",
            zero,
            kv,
            1,
            &[(Type::F64, fzero), (Type::F64, fzero), (Type::F64, fzero)],
            |fb, kk, accs| {
                let kc = fb.i64c(k as i64);
                let base = fb.mul(i, kc, "base");
                let ni = fb.add(base, kk, "ni");
                let pn = fb.gep1(Type::I64, nl, ni, "pn");
                let j = fb.load(Type::I64, pn, "j");
                let pxj = fb.gep1(Type::F64, x, j, "pxj");
                let xj = fb.load(Type::F64, pxj, "xj");
                let pyj = fb.gep1(Type::F64, y, j, "pyj");
                let yj = fb.load(Type::F64, pyj, "yj");
                let pzj = fb.gep1(Type::F64, z, j, "pzj");
                let zj = fb.load(Type::F64, pzj, "zj");
                let delx = fb.fsub(xi, xj, "delx");
                let dely = fb.fsub(yi, yj, "dely");
                let delz = fb.fsub(zi, zj, "delz");
                let dx2 = fb.fmul(delx, delx, "dx2");
                let dy2 = fb.fmul(dely, dely, "dy2");
                let dz2 = fb.fmul(delz, delz, "dz2");
                let s = fb.fadd(dx2, dy2, "s");
                let r2 = fb.fadd(s, dz2, "r2");
                let onef = fb.f64c(1.0);
                let r2inv = fb.fdiv(onef, r2, "r2inv");
                let r4 = fb.fmul(r2inv, r2inv, "r4");
                let r6inv = fb.fmul(r4, r2inv, "r6inv");
                let lj1 = fb.f64c(LJ1);
                let t1 = fb.fmul(lj1, r6inv, "t1");
                let lj2 = fb.f64c(LJ2);
                let t2 = fb.fsub(t1, lj2, "t2");
                let pot = fb.fmul(r6inv, t2, "pot");
                let force = fb.fmul(r2inv, pot, "force");
                let gx = fb.fmul(delx, force, "gx");
                let gy = fb.fmul(dely, force, "gy");
                let gz = fb.fmul(delz, force, "gz");
                let sx = fb.fadd(accs[0], gx, "sx");
                let sy = fb.fadd(accs[1], gy, "sy");
                let sz = fb.fadd(accs[2], gz, "sz");
                vec![sx, sy, sz]
            },
        );
        let pfx = fb.gep1(Type::F64, fx, i, "pfx");
        fb.store(finals[0], pfx);
        let pfy = fb.gep1(Type::F64, fy, i, "pfy");
        fb.store(finals[1], pfy);
        let pfz = fb.gep1(Type::F64, fz, i, "pfz");
        fb.store(finals[2], pfz);
    });
    fb.ret();
    let func = fb.finish();

    let mut rng = data::rng(0x4D4B);
    let xv = data::f64_vec(&mut rng, n, -5.0, 5.0);
    let yv = data::f64_vec(&mut rng, n, -5.0, 5.0);
    let zv = data::f64_vec(&mut rng, n, -5.0, 5.0);
    // Neighbor lists avoid self-reference (distance 0 would divide by zero).
    let nlv: Vec<i64> = (0..n * k)
        .map(|idx| {
            let i = idx / k;
            let mut j = data::i32_vec(&mut rng, 1, 0, n as i32)[0] as usize;
            if j == i {
                j = (j + 1) % n;
            }
            j as i64
        })
        .collect();
    let (wfx, wfy, wfz) = golden(&xv, &yv, &zv, &nlv, p);

    BuiltKernel::new(
        "md-knn",
        func,
        vec![
            RtVal::P(xa),
            RtVal::P(ya),
            RtVal::P(za),
            RtVal::P(fxa),
            RtVal::P(fya),
            RtVal::P(fza),
            RtVal::P(nla),
        ],
        vec![
            (xa, data::f64_bytes(&xv)),
            (ya, data::f64_bytes(&yv)),
            (za, data::f64_bytes(&zv)),
            (nla, data::i64_bytes(&nlv)),
        ],
        Box::new(move |mem: &mut SparseMemory| {
            data::check_f64_close("fx", &mem.read_f64_slice(fxa, n), &wfx, 1e-9)?;
            data::check_f64_close("fy", &mem.read_f64_slice(fya, n), &wfy, 1e-9)?;
            data::check_f64_close("fz", &mem.read_f64_slice(fza, n), &wfz, 1e-9)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    #[test]
    fn matches_golden() {
        let k = build(&Params { n_atoms: 8, k: 4 });
        salam_ir::verify_function(&k.func).unwrap();
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 50_000_000).unwrap();
        k.check(&mut mem).unwrap();
    }

    #[test]
    fn fp_heavy_datapath() {
        let k = build(&Params::default());
        let h = k.func.opcode_histogram();
        assert!(h["fmul"] >= 10, "MD-KNN is multiply-heavy: {h:?}");
        assert!(h.contains_key("fdiv"));
    }
}
