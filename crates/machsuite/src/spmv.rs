//! SpMV (CRS): sparse matrix-vector multiply on compact row storage.
//!
//! The paper's showcase for data-dependent execution (Table I): with
//! `guarded_shift` enabled, the kernel contains a bit-shift that only
//! executes when a matrix value falls inside a trigger range. gem5-SALAM's
//! static datapath always contains the shifter; a trace-based simulator only
//! discovers it when the input data happens to exercise it.

use salam_ir::interp::{RtVal, SparseMemory};
use salam_ir::{FloatPredicate, FunctionBuilder, Type};

use crate::data;
use crate::BuiltKernel;

/// Matrix shape and the Table I trigger knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Number of matrix rows.
    pub rows: usize,
    /// Nonzeros per row.
    pub nnz_per_row: usize,
    /// Include the guarded shift path in the kernel.
    pub guarded_shift: bool,
    /// Whether the generated dataset contains values inside the trigger
    /// range `(0.45, 0.55)`.
    pub dataset_triggers_shift: bool,
    /// RNG seed (varies the dataset).
    pub seed: u64,
}

impl Default for Params {
    /// 32 rows × 8 nonzeros, guarded shift present but untriggered.
    fn default() -> Self {
        Params {
            rows: 32,
            nnz_per_row: 8,
            guarded_shift: true,
            dataset_triggers_shift: false,
            seed: 0x59_4D56,
        }
    }
}

/// Trigger range for the guarded shift.
pub const TRIGGER_LO: f64 = 0.45;
/// Upper bound of the trigger range.
pub const TRIGGER_HI: f64 = 0.55;

/// Memory layout `(vals, cols, rowstr, vec, out, flags)`.
pub fn layout(rows: usize, nnz: usize) -> (u64, u64, u64, u64, u64, u64) {
    let base = 0x2000_0000u64;
    let vals = base;
    let cols = vals + (rows * nnz * 8) as u64;
    let rowstr = cols + (rows * nnz * 8) as u64;
    let vecb = rowstr + ((rows + 1) * 8) as u64;
    let out = vecb + (rows * 8) as u64;
    let flags = out + (rows * 8) as u64;
    (vals, cols, rowstr, vecb, out, flags)
}

/// CRS inputs.
#[derive(Debug, Clone)]
pub struct CrsData {
    /// Nonzero values.
    pub vals: Vec<f64>,
    /// Column index per nonzero.
    pub cols: Vec<i64>,
    /// Row start offsets (len `rows + 1`).
    pub rowstr: Vec<i64>,
    /// Dense input vector.
    pub vec: Vec<f64>,
}

/// Generates a CRS matrix; values trigger the shift range iff requested.
pub fn gen_data(p: &Params) -> CrsData {
    let mut rng = data::rng(p.seed);
    let n = p.rows * p.nnz_per_row;
    let mut vals = Vec::with_capacity(n);
    for i in 0..n {
        // Draw outside the trigger band, then optionally plant band values.
        let mut v: f64 = loop {
            let cand = data::f64_vec(&mut rng, 1, 0.0, 1.0)[0];
            if !(TRIGGER_LO..=TRIGGER_HI).contains(&cand) {
                break cand;
            }
        };
        if p.dataset_triggers_shift && i % 5 == 0 {
            v = 0.5; // squarely inside the trigger band
        }
        vals.push(v);
    }
    let cols: Vec<i64> = (0..n)
        .map(|_| data::i32_vec(&mut rng, 1, 0, p.rows as i32)[0] as i64)
        .collect();
    let rowstr: Vec<i64> = (0..=p.rows).map(|r| (r * p.nnz_per_row) as i64).collect();
    let vec = data::f64_vec(&mut rng, p.rows, -1.0, 1.0);
    CrsData {
        vals,
        cols,
        rowstr,
        vec,
    }
}

/// Golden model: `out[r] = Σ vals[j] * vec[cols[j]]`, plus the shift flag
/// word per row when the guarded path is present.
pub fn golden(d: &CrsData, rows: usize, guarded: bool) -> (Vec<f64>, Vec<i64>) {
    let mut out = vec![0.0; rows];
    let mut flags = vec![0i64; rows];
    for r in 0..rows {
        let (s, e) = (d.rowstr[r] as usize, d.rowstr[r + 1] as usize);
        let mut sum = 0.0;
        let mut flag: i64 = 0;
        for j in s..e {
            let v = d.vals[j];
            sum += v * d.vec[d.cols[j] as usize];
            if guarded && v > TRIGGER_LO && v < TRIGGER_HI {
                flag = (flag + 1) << 1;
            }
        }
        out[r] = sum;
        flags[r] = flag;
    }
    (out, flags)
}

/// Builds the SpMV kernel instance.
pub fn build(p: &Params) -> BuiltKernel {
    let rows = p.rows;
    let (vals_b, cols_b, rowstr_b, vec_b, out_b, flags_b) = layout(rows, p.nnz_per_row);

    let mut fb = FunctionBuilder::new(
        "spmv_crs",
        &[
            ("vals", Type::Ptr),
            ("cols", Type::Ptr),
            ("rowstr", Type::Ptr),
            ("vec", Type::Ptr),
            ("out", Type::Ptr),
            ("flags", Type::Ptr),
        ],
    );
    let (vals, cols, rowstr, vecp, out, flags) = (
        fb.arg(0),
        fb.arg(1),
        fb.arg(2),
        fb.arg(3),
        fb.arg(4),
        fb.arg(5),
    );
    let zero = fb.i64c(0);
    let nrows = fb.i64c(rows as i64);
    let guarded = p.guarded_shift;
    fb.counted_loop("r", zero, nrows, move |fb, r| {
        let ps = fb.gep1(Type::I64, rowstr, r, "ps");
        let start = fb.load(Type::I64, ps, "start");
        let one = fb.i64c(1);
        let r1 = fb.add(r, one, "r1");
        let pe = fb.gep1(Type::I64, rowstr, r1, "pe");
        let end = fb.load(Type::I64, pe, "end");
        let fzero = fb.f64c(0.0);
        let izero = fb.i64c(0);
        let finals = fb.counted_loop_accs(
            "j",
            start,
            end,
            1,
            &[(Type::F64, fzero), (Type::I64, izero)],
            |fb, j, accs| {
                let pv = fb.gep1(Type::F64, vals, j, "pv");
                let v = fb.load(Type::F64, pv, "v");
                let pc = fb.gep1(Type::I64, cols, j, "pc");
                let col = fb.load(Type::I64, pc, "col");
                let px = fb.gep1(Type::F64, vecp, col, "px");
                let x = fb.load(Type::F64, px, "x");
                let prod = fb.fmul(v, x, "prod");
                let sum = fb.fadd(accs[0], prod, "sum");
                let flag = if guarded {
                    // Data-dependent path: only values in the trigger band
                    // exercise the shifter.
                    let lo = fb.f64c(TRIGGER_LO);
                    let hi = fb.f64c(TRIGGER_HI);
                    let cgt = fb.fcmp(FloatPredicate::Ogt, v, lo, "cgt");
                    let clt = fb.fcmp(FloatPredicate::Olt, v, hi, "clt");
                    let both = fb.and(cgt, clt, "both");
                    let shift_b = fb.add_block("shift");
                    let skip_b = fb.add_block("skip");
                    let cur = fb.current_block();
                    fb.cond_br(both, shift_b, skip_b);
                    fb.position_at(shift_b);
                    let one = fb.i64c(1);
                    let incd = fb.add(accs[1], one, "incd");
                    let shifted = fb.shl(incd, one, "shifted");
                    fb.br(skip_b);
                    fb.position_at(skip_b);
                    let (phi, merged) = fb.phi(Type::I64, "flag");
                    fb.add_incoming(phi, accs[1], cur);
                    fb.add_incoming(phi, shifted, shift_b);
                    merged
                } else {
                    accs[1]
                };
                vec![sum, flag]
            },
        );
        let po = fb.gep1(Type::F64, out, r, "po");
        fb.store(finals[0], po);
        let pf = fb.gep1(Type::I64, flags, r, "pf");
        fb.store(finals[1], pf);
    });
    fb.ret();
    let func = fb.finish();

    let d = gen_data(p);
    let (want_out, want_flags) = golden(&d, rows, guarded);
    let init = vec![
        (vals_b, data::f64_bytes(&d.vals)),
        (cols_b, data::i64_bytes(&d.cols)),
        (rowstr_b, data::i64_bytes(&d.rowstr)),
        (vec_b, data::f64_bytes(&d.vec)),
    ];

    BuiltKernel::new(
        "spmv-crs",
        func,
        vec![
            RtVal::P(vals_b),
            RtVal::P(cols_b),
            RtVal::P(rowstr_b),
            RtVal::P(vec_b),
            RtVal::P(out_b),
            RtVal::P(flags_b),
        ],
        init,
        Box::new(move |mem: &mut SparseMemory| {
            let got = mem.read_f64_slice(out_b, rows);
            data::check_f64_close("out", &got, &want_out, 1e-9)?;
            let got_flags = mem.read_i64_slice(flags_b, rows);
            if got_flags != want_flags {
                return Err("flags mismatch".to_string());
            }
            Ok(())
        }),
    )
    .with_footprint(vals_b, flags_b + (rows * 8) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver, ProfileObserver};

    fn run_kernel(p: &Params) -> (BuiltKernel, SparseMemory) {
        let k = build(p);
        salam_ir::verify_function(&k.func).unwrap();
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 100_000_000).unwrap();
        k.check(&mut mem).unwrap();
        (k, mem)
    }

    #[test]
    fn untriggered_dataset_matches_golden() {
        run_kernel(&Params::default());
    }

    #[test]
    fn triggered_dataset_matches_golden() {
        run_kernel(&Params {
            dataset_triggers_shift: true,
            ..Params::default()
        });
    }

    #[test]
    fn static_datapath_contains_shifter_regardless_of_data() {
        // The Table I property: the shifter is in the *code*, so SALAM's
        // static CDFG has it whether or not the dataset triggers it.
        let k = build(&Params::default());
        assert!(k.func.opcode_histogram().contains_key("shl"));
        let k2 = build(&Params {
            guarded_shift: false,
            ..Params::default()
        });
        assert!(!k2.func.opcode_histogram().contains_key("shl"));
    }

    #[test]
    fn dynamic_shift_count_depends_on_data() {
        // Count executed shifts: zero for the quiet dataset, nonzero when
        // the dataset plants values in the trigger band.
        let count_shifts = |trigger: bool| {
            let k = build(&Params {
                dataset_triggers_shift: trigger,
                ..Params::default()
            });
            let mut mem = SparseMemory::new();
            k.load_into(&mut mem);
            let mut obs = ProfileObserver::default();
            run_function(&k.func, &k.args, &mut mem, &mut obs, 100_000_000).unwrap();
            let shift_block = k.func.block_by_name("shift").unwrap();
            obs.block_entries.get(&shift_block).copied().unwrap_or(0)
        };
        assert_eq!(count_shifts(false), 0);
        assert!(count_shifts(true) > 0);
    }
}
