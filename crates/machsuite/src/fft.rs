//! FFT (strided): in-place radix-2 butterflies over real/imag arrays, with
//! precomputed twiddle tables (the MachSuite `fft/strided` formulation).

use salam_ir::interp::{RtVal, SparseMemory};
use salam_ir::{FunctionBuilder, IntPredicate, Type};

use crate::data;
use crate::BuiltKernel;

/// Transform size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of points; must be a power of two.
    pub n: usize,
}

impl Default for Params {
    /// A 64-point transform.
    fn default() -> Self {
        Params { n: 64 }
    }
}

/// Memory layout `(real, imag, real_twid, imag_twid)`.
pub fn layout(n: usize) -> (u64, u64, u64, u64) {
    let base = 0x5800_0000u64;
    let real = base;
    let imag = real + (n * 8) as u64;
    let rt = imag + (n * 8) as u64;
    let it = rt + (n / 2 * 8) as u64;
    (real, imag, rt, it)
}

/// Twiddle tables `(real_twid, imag_twid)` for an `n`-point transform.
pub fn twiddles(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut rt = Vec::with_capacity(n / 2);
    let mut it = Vec::with_capacity(n / 2);
    for i in 0..n / 2 {
        let angle = -2.0 * std::f64::consts::PI * i as f64 / n as f64;
        rt.push(angle.cos());
        it.push(angle.sin());
    }
    (rt, it)
}

/// Golden model: the exact strided algorithm (output in bit-reversed order).
pub fn golden(real: &mut [f64], imag: &mut [f64], rt: &[f64], it: &[f64]) {
    let n = real.len();
    let mut log = 0u32;
    let mut span = n >> 1;
    while span != 0 {
        let mut odd = span;
        while odd < n {
            odd |= span;
            let even = odd ^ span;

            let temp = real[even] + real[odd];
            real[odd] = real[even] - real[odd];
            real[even] = temp;

            let temp = imag[even] + imag[odd];
            imag[odd] = imag[even] - imag[odd];
            imag[even] = temp;

            let rootindex = (even << log) & (n - 1);
            if rootindex != 0 {
                let temp = rt[rootindex] * real[odd] - it[rootindex] * imag[odd];
                imag[odd] = rt[rootindex] * imag[odd] + it[rootindex] * real[odd];
                real[odd] = temp;
            }
            odd += 1;
        }
        span >>= 1;
        log += 1;
    }
}

/// Builds the FFT kernel instance.
///
/// # Panics
///
/// Panics if `n` is not a power of two of at least 4.
pub fn build(p: &Params) -> BuiltKernel {
    let n = p.n;
    assert!(
        n >= 4 && n.is_power_of_two(),
        "FFT size must be a power of two"
    );
    let logn = n.trailing_zeros() as i64;
    let (real_b, imag_b, rt_b, it_b) = layout(n);

    let mut fb = FunctionBuilder::new(
        "fft_strided",
        &[
            ("real", Type::Ptr),
            ("imag", Type::Ptr),
            ("real_twid", Type::Ptr),
            ("imag_twid", Type::Ptr),
        ],
    );
    let (real, imag, rtw, itw) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3));

    // Stage loop: s in 0..log2(n); span = n >> (s+1), log = s.
    let zero = fb.i64c(0);
    let stages = fb.i64c(logn);
    fb.counted_loop("s", zero, stages, |fb, s| {
        let nv = fb.i64c(n as i64);
        let one = fb.i64c(1);
        let s1 = fb.add(s, one, "s1");
        let span = fb.lshr(nv, s1, "span");
        // Butterfly loop: t in 0..n/2 enumerates `odd` values that have the
        // span bit set, in ascending order:
        //   odd = (t / span) * 2*span + span + (t % span)
        let zero = fb.i64c(0);
        let half = fb.i64c((n / 2) as i64);
        fb.counted_loop("t", zero, half, |fb, t| {
            let one = fb.i64c(1);
            let spanm1 = fb.sub(span, one, "spanm1");
            let low = fb.and(t, spanm1, "low");
            // t / span where span = n >> (s+1)  =>  t >> (logn - 1 - s)
            let lnm1 = fb.i64c(logn - 1);
            let shift = fb.sub(lnm1, s, "shift");
            let high = fb.lshr(t, shift, "high");
            let h2 = fb.shl(high, one, "h2");
            let h21 = fb.or(h2, one, "h21");
            // h21 * span with span = 1 << shift  (strength-reduced multiply)
            let hs = fb.shl(h21, shift, "hs");
            let odd = fb.add(hs, low, "odd");
            let even = fb.xor(odd, span, "even");

            // real butterfly
            let pre = fb.gep1(Type::F64, real, even, "pre");
            let re = fb.load(Type::F64, pre, "re");
            let pro = fb.gep1(Type::F64, real, odd, "pro");
            let ro = fb.load(Type::F64, pro, "ro");
            let rsum = fb.fadd(re, ro, "rsum");
            let rdiff = fb.fsub(re, ro, "rdiff");
            fb.store(rsum, pre);

            // imag butterfly
            let pie = fb.gep1(Type::F64, imag, even, "pie");
            let ie = fb.load(Type::F64, pie, "ie");
            let pio = fb.gep1(Type::F64, imag, odd, "pio");
            let io = fb.load(Type::F64, pio, "io");
            let isum = fb.fadd(ie, io, "isum");
            let idiff = fb.fsub(ie, io, "idiff");
            fb.store(isum, pie);

            // Twiddle rotation, if-converted to selects (as clang -O2 does
            // for small guarded regions): rootindex 0 selects the identity
            // twiddle (cos 0, sin 0), so the unconditional path is exact.
            let shifted = fb.shl(even, s, "shifted");
            let nm1 = fb.i64c((n - 1) as i64);
            let rootindex = fb.and(shifted, nm1, "rootindex");
            let prt = fb.gep1(Type::F64, rtw, rootindex, "prt");
            let wr = fb.load(Type::F64, prt, "wr");
            let pit = fb.gep1(Type::F64, itw, rootindex, "pit");
            let wi = fb.load(Type::F64, pit, "wi");
            let t1 = fb.fmul(wr, rdiff, "t1");
            let t2 = fb.fmul(wi, idiff, "t2");
            let newr = fb.fsub(t1, t2, "newr");
            let t3 = fb.fmul(wr, idiff, "t3");
            let t4 = fb.fmul(wi, rdiff, "t4");
            let newi = fb.fadd(t3, t4, "newi");
            let zero = fb.i64c(0);
            let nz = fb.icmp(IntPredicate::Ne, rootindex, zero, "nz");
            let sel_r = fb.select(nz, newr, rdiff, "sel_r");
            let sel_i = fb.select(nz, newi, idiff, "sel_i");
            fb.store(sel_i, pio);
            fb.store(sel_r, pro);
        });
    });
    fb.ret();
    let func = fb.finish();

    let mut rng = data::rng(0xFF7);
    let rv = data::f64_vec(&mut rng, n, -1.0, 1.0);
    let iv = data::f64_vec(&mut rng, n, -1.0, 1.0);
    let (rt, it) = twiddles(n);
    let mut want_r = rv.clone();
    let mut want_i = iv.clone();
    golden(&mut want_r, &mut want_i, &rt, &it);

    BuiltKernel::new(
        "fft-strided",
        func,
        vec![
            RtVal::P(real_b),
            RtVal::P(imag_b),
            RtVal::P(rt_b),
            RtVal::P(it_b),
        ],
        vec![
            (real_b, data::f64_bytes(&rv)),
            (imag_b, data::f64_bytes(&iv)),
            (rt_b, data::f64_bytes(&rt)),
            (it_b, data::f64_bytes(&it)),
        ],
        Box::new(move |mem: &mut SparseMemory| {
            data::check_f64_close("real", &mem.read_f64_slice(real_b, n), &want_r, 1e-9)?;
            data::check_f64_close("imag", &mem.read_f64_slice(imag_b, n), &want_i, 1e-9)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    #[test]
    fn matches_golden() {
        let k = build(&Params { n: 16 });
        salam_ir::verify_function(&k.func).unwrap();
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 50_000_000).unwrap();
        k.check(&mut mem).unwrap();
    }

    #[test]
    fn golden_is_a_real_fft() {
        // Constant input -> impulse at DC (index 0 in bit-reversed order is
        // still bin 0).
        let n = 8;
        let (rt, it) = twiddles(n);
        let mut re = vec![1.0; n];
        let mut im = vec![0.0; n];
        golden(&mut re, &mut im, &rt, &it);
        assert!((re[0] - n as f64).abs() < 1e-9);
        assert!(re[1..].iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = build(&Params { n: 12 });
    }
}
