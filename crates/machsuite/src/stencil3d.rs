//! Stencil3D: 7-point stencil over a 3-D integer grid.

use salam_ir::interp::{RtVal, SparseMemory};
use salam_ir::{FunctionBuilder, Type};

use crate::data;
use crate::BuiltKernel;

/// Grid shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Height (z planes).
    pub height: usize,
    /// Rows per plane.
    pub rows: usize,
    /// Columns per row.
    pub cols: usize,
}

impl Default for Params {
    /// An 8×8×8 volume.
    fn default() -> Self {
        Params {
            height: 8,
            rows: 8,
            cols: 8,
        }
    }
}

/// Stencil coefficients (MachSuite's C0/C1).
pub const C0: i32 = 2;
/// Neighbor coefficient.
pub const C1: i32 = 1;

/// Memory layout `(input, output)`.
pub fn layout(p: &Params) -> (u64, u64) {
    let base = 0x3800_0000u64;
    let n = (p.height * p.rows * p.cols * 4) as u64;
    (base, base + n)
}

/// Golden model: boundary copied, interior 7-point.
pub fn golden(input: &[i32], p: &Params) -> Vec<i32> {
    let (h, r, c) = (p.height, p.rows, p.cols);
    let at = |i: usize, j: usize, k: usize| input[(i * r + j) * c + k];
    let mut out = input.to_vec();
    for i in 1..h - 1 {
        for j in 1..r - 1 {
            for k in 1..c - 1 {
                let sum0 = at(i, j, k);
                let sum1 = at(i + 1, j, k)
                    + at(i - 1, j, k)
                    + at(i, j + 1, k)
                    + at(i, j - 1, k)
                    + at(i, j, k + 1)
                    + at(i, j, k - 1);
                out[(i * r + j) * c + k] =
                    C0.wrapping_mul(sum0).wrapping_add(C1.wrapping_mul(sum1));
            }
        }
    }
    out
}

/// Builds the Stencil3D kernel instance.
pub fn build(p: &Params) -> BuiltKernel {
    let (h, r, c) = (p.height, p.rows, p.cols);
    let (in_b, out_b) = layout(p);

    let mut fb = FunctionBuilder::new("stencil3d", &[("input", Type::Ptr), ("output", Type::Ptr)]);
    let (input, output) = (fb.arg(0), fb.arg(1));

    // Boundary copy: out[idx] = in[idx] for the whole volume first (the
    // interior loop then overwrites); simpler control than MachSuite's six
    // boundary sweeps with identical memory behaviour per element.
    let zero = fb.i64c(0);
    let total = fb.i64c((h * r * c) as i64);
    fb.counted_loop("copy", zero, total, |fb, idx| {
        let pi = fb.gep1(Type::I32, input, idx, "pi");
        let v = fb.load(Type::I32, pi, "v");
        let po = fb.gep1(Type::I32, output, idx, "po");
        fb.store(v, po);
    });

    let one = fb.i64c(1);
    let hmax = fb.i64c((h - 1) as i64);
    fb.counted_loop("i", one, hmax, |fb, i| {
        let one = fb.i64c(1);
        let rmax = fb.i64c((r - 1) as i64);
        fb.counted_loop("j", one, rmax, |fb, j| {
            let one = fb.i64c(1);
            let cmax = fb.i64c((c - 1) as i64);
            fb.counted_loop("k", one, cmax, |fb, k| {
                let rv = fb.i64c(r as i64);
                let cv = fb.i64c(c as i64);
                let load_at = |fb: &mut FunctionBuilder, di: i64, dj: i64, dk: i64| {
                    let div = fb.i64c(di);
                    let ii = fb.add(i, div, "ii");
                    let djv = fb.i64c(dj);
                    let jj = fb.add(j, djv, "jj");
                    let dkv = fb.i64c(dk);
                    let kk = fb.add(k, dkv, "kk");
                    let t0 = fb.mul(ii, rv, "t0");
                    let t1 = fb.add(t0, jj, "t1");
                    let t2 = fb.mul(t1, cv, "t2");
                    let idx = fb.add(t2, kk, "idx");
                    let ptr = fb.gep1(Type::I32, input, idx, "ptr");
                    fb.load(Type::I32, ptr, "val")
                };
                let center = load_at(fb, 0, 0, 0);
                let xp = load_at(fb, 1, 0, 0);
                let xm = load_at(fb, -1, 0, 0);
                let yp = load_at(fb, 0, 1, 0);
                let ym = load_at(fb, 0, -1, 0);
                let zp = load_at(fb, 0, 0, 1);
                let zm = load_at(fb, 0, 0, -1);
                let s1 = fb.add(xp, xm, "s1");
                let s2 = fb.add(yp, ym, "s2");
                let s3 = fb.add(zp, zm, "s3");
                let s12 = fb.add(s1, s2, "s12");
                let sum1 = fb.add(s12, s3, "sum1");
                let c0 = fb.i32c(C0);
                let c1 = fb.i32c(C1);
                let t_center = fb.mul(c0, center, "t_center");
                let t_nb = fb.mul(c1, sum1, "t_nb");
                let val = fb.add(t_center, t_nb, "val");
                let t0 = fb.mul(i, rv, "o0");
                let t1 = fb.add(t0, j, "o1");
                let t2 = fb.mul(t1, cv, "o2");
                let oidx = fb.add(t2, k, "oidx");
                let po = fb.gep1(Type::I32, output, oidx, "po");
                fb.store(val, po);
            });
        });
    });
    fb.ret();
    let func = fb.finish();

    let mut rng = data::rng(0x57E3);
    let iv = data::i32_vec(&mut rng, h * r * c, -100, 100);
    let want = golden(&iv, p);

    BuiltKernel::new(
        "stencil3d",
        func,
        vec![RtVal::P(in_b), RtVal::P(out_b)],
        vec![(in_b, data::i32_bytes(&iv))],
        Box::new(move |mem: &mut SparseMemory| {
            let got = mem.read_i32_slice(out_b, h * r * c);
            data::check_i32_eq("out", &got, &want)
        }),
    )
    .with_footprint(in_b, out_b + (h * r * c * 4) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    #[test]
    fn matches_golden() {
        let p = Params {
            height: 4,
            rows: 5,
            cols: 6,
        };
        let k = build(&p);
        salam_ir::verify_function(&k.func).unwrap();
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 50_000_000).unwrap();
        k.check(&mut mem).unwrap();
    }

    #[test]
    fn integer_datapath() {
        let k = build(&Params::default());
        let h = k.func.opcode_histogram();
        assert!(!h.contains_key("fmul"), "stencil3d is integer-only");
        assert!(h["mul"] >= 2);
    }
}
