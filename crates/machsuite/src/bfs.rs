//! BFS (queue): breadth-first search over a CSR graph.
//!
//! The most irregular kernel in the set: a data-dependent `while` over a
//! work queue whose trip count no trace can predict — the kind of workload
//! where execute-in-execute simulation matters most.

use salam_ir::interp::{RtVal, SparseMemory};
use salam_ir::{FunctionBuilder, IntPredicate, Type};

use crate::data;
use crate::BuiltKernel;

/// Graph shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of nodes.
    pub nodes: usize,
    /// Average out-degree.
    pub degree: usize,
    /// BFS start node.
    pub start: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    /// 32 nodes of degree 4, rooted at node 0.
    fn default() -> Self {
        Params {
            nodes: 32,
            degree: 4,
            start: 0,
            seed: 0xBF5,
        }
    }
}

/// Memory layout `(edge_begin, edges, level, queue)`.
pub fn layout(p: &Params) -> (u64, u64, u64, u64) {
    let base = 0x6000_0000u64;
    let eb = base;
    let edges = eb + ((p.nodes + 1) * 8) as u64;
    let level = edges + (p.nodes * p.degree * 8) as u64;
    let queue = level + (p.nodes * 8) as u64;
    (eb, edges, level, queue)
}

/// A CSR graph.
#[derive(Debug, Clone)]
pub struct Graph {
    /// `edge_begin[i]..edge_begin[i+1]` indexes `edges`.
    pub edge_begin: Vec<i64>,
    /// Flattened adjacency.
    pub edges: Vec<i64>,
}

/// Generates a random graph with exactly `degree` edges per node.
pub fn gen_graph(p: &Params) -> Graph {
    let mut rng = data::rng(p.seed);
    let mut edges = Vec::with_capacity(p.nodes * p.degree);
    let mut edge_begin = Vec::with_capacity(p.nodes + 1);
    for i in 0..p.nodes {
        edge_begin.push((i * p.degree) as i64);
        for _ in 0..p.degree {
            edges.push(data::i32_vec(&mut rng, 1, 0, p.nodes as i32)[0] as i64);
        }
    }
    edge_begin.push((p.nodes * p.degree) as i64);
    Graph { edge_begin, edges }
}

/// Golden BFS with the same FIFO semantics.
pub fn golden(g: &Graph, p: &Params) -> Vec<i64> {
    let mut level = vec![-1i64; p.nodes];
    let mut queue = vec![0i64; p.nodes];
    level[p.start] = 0;
    queue[0] = p.start as i64;
    let (mut qf, mut qt) = (0usize, 1usize);
    while qf < qt {
        let n = queue[qf] as usize;
        qf += 1;
        let (s, e) = (g.edge_begin[n] as usize, g.edge_begin[n + 1] as usize);
        for &dst in &g.edges[s..e] {
            let d = dst as usize;
            if level[d] == -1 {
                level[d] = level[n] + 1;
                queue[qt] = dst;
                qt += 1;
            }
        }
    }
    level
}

/// Builds the BFS kernel instance.
pub fn build(p: &Params) -> BuiltKernel {
    let (eb_b, edges_b, level_b, queue_b) = layout(p);
    let nodes = p.nodes;

    let mut fb = FunctionBuilder::new(
        "bfs_queue",
        &[
            ("edge_begin", Type::Ptr),
            ("edges", Type::Ptr),
            ("level", Type::Ptr),
            ("queue", Type::Ptr),
        ],
    );
    let (ebeg, edges, level, queue) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3));

    // Outer while (qf < qt) with qf/qt as loop-carried phis.
    let header = fb.add_block("while.header");
    let body = fb.add_block("while.body");
    let exit = fb.add_block("while.exit");
    let entry = fb.entry();
    let zero = fb.i64c(0);
    let one = fb.i64c(1);
    fb.br(header);

    fb.position_at(header);
    let (qf_phi, qf) = fb.phi(Type::I64, "qf");
    let (qt_phi, qt) = fb.phi(Type::I64, "qt");
    fb.add_incoming(qf_phi, zero, entry);
    fb.add_incoming(qt_phi, one, entry);
    let more = fb.icmp(IntPredicate::Slt, qf, qt, "more");
    fb.cond_br(more, body, exit);

    fb.position_at(body);
    let pq = fb.gep1(Type::I64, queue, qf, "pq");
    let n = fb.load(Type::I64, pq, "n");
    let pl = fb.gep1(Type::I64, level, n, "pl");
    let ln = fb.load(Type::I64, pl, "ln");
    let pe0 = fb.gep1(Type::I64, ebeg, n, "pe0");
    let estart = fb.load(Type::I64, pe0, "estart");
    let n1 = fb.add(n, one, "n1");
    let pe1 = fb.gep1(Type::I64, ebeg, n1, "pe1");
    let eend = fb.load(Type::I64, pe1, "eend");

    let finals = fb.counted_loop_accs("e", estart, eend, 1, &[(Type::I64, qt)], |fb, e, accs| {
        let pd = fb.gep1(Type::I64, edges, e, "pd");
        let dst = fb.load(Type::I64, pd, "dst");
        let pld = fb.gep1(Type::I64, level, dst, "pld");
        let ld = fb.load(Type::I64, pld, "ld");
        let negone = fb.i64c(-1);
        let unseen = fb.icmp(IntPredicate::Eq, ld, negone, "unseen");
        let visit_b = fb.add_block("visit");
        let next_b = fb.add_block("next");
        let cur = fb.current_block();
        fb.cond_br(unseen, visit_b, next_b);
        fb.position_at(visit_b);
        let one = fb.i64c(1);
        let lv = fb.add(ln, one, "lv");
        fb.store(lv, pld);
        let pq2 = fb.gep1(Type::I64, queue, accs[0], "pq2");
        fb.store(dst, pq2);
        let qt1 = fb.add(accs[0], one, "qt1");
        fb.br(next_b);
        fb.position_at(next_b);
        let (phi, merged) = fb.phi(Type::I64, "qtm");
        fb.add_incoming(phi, accs[0], cur);
        fb.add_incoming(phi, qt1, visit_b);
        vec![merged]
    });
    let latch = fb.current_block();
    let qf1 = fb.add(qf, one, "qf1");
    fb.br(header);
    fb.add_incoming(qf_phi, qf1, latch);
    fb.add_incoming(qt_phi, finals[0], latch);

    fb.position_at(exit);
    fb.ret();
    let func = fb.finish();

    let g = gen_graph(p);
    let want = golden(&g, p);
    let mut level_init = vec![-1i64; nodes];
    level_init[p.start] = 0;
    let mut queue_init = vec![0i64; nodes];
    queue_init[0] = p.start as i64;

    BuiltKernel::new(
        "bfs-queue",
        func,
        vec![
            RtVal::P(eb_b),
            RtVal::P(edges_b),
            RtVal::P(level_b),
            RtVal::P(queue_b),
        ],
        vec![
            (eb_b, data::i64_bytes(&g.edge_begin)),
            (edges_b, data::i64_bytes(&g.edges)),
            (level_b, data::i64_bytes(&level_init)),
            (queue_b, data::i64_bytes(&queue_init)),
        ],
        Box::new(move |mem: &mut SparseMemory| {
            let got = mem.read_i64_slice(level_b, nodes);
            if got != want {
                let i = got.iter().zip(&want).position(|(g, w)| g != w).unwrap_or(0);
                return Err(format!("level[{i}]: got {}, want {}", got[i], want[i]));
            }
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    #[test]
    fn matches_golden() {
        let k = build(&Params::default());
        salam_ir::verify_function(&k.func).unwrap();
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 50_000_000).unwrap();
        k.check(&mut mem).unwrap();
    }

    #[test]
    fn different_seeds_give_different_traversals() {
        let a = golden(&gen_graph(&Params::default()), &Params::default());
        let p2 = Params {
            seed: 99,
            ..Params::default()
        };
        let b = golden(&gen_graph(&p2), &p2);
        assert_ne!(a, b, "seeded graphs should differ");
    }

    #[test]
    fn disconnected_nodes_stay_unvisited() {
        // With degree 1 on a larger graph some nodes are usually unreachable.
        let p = Params {
            nodes: 64,
            degree: 1,
            ..Params::default()
        };
        let lv = golden(&gen_graph(&p), &p);
        assert!(lv.contains(&-1));
    }
}
