//! Stencil2D: 3×3 convolution over a 2-D grid (single precision).

use salam_ir::interp::{RtVal, SparseMemory};
use salam_ir::{FunctionBuilder, Type};

use crate::data;
use crate::BuiltKernel;

/// Grid shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

impl Default for Params {
    /// A 16×16 grid.
    fn default() -> Self {
        Params { rows: 16, cols: 16 }
    }
}

/// Memory layout `(input, filter, output)`.
pub fn layout(rows: usize, cols: usize) -> (u64, u64, u64) {
    let base = 0x3000_0000u64;
    let input = base;
    let filter = input + (rows * cols * 4) as u64;
    let output = filter + 9 * 4;
    (input, filter, output)
}

/// Golden model, matching MachSuite's interior sweep.
pub fn golden(input: &[f32], filter: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows - 2 {
        for c in 0..cols - 2 {
            let mut acc = 0.0f32;
            for (k1, row_f) in filter.chunks(3).enumerate() {
                for (k2, f) in row_f.iter().enumerate() {
                    acc += f * input[(r + k1) * cols + (c + k2)];
                }
            }
            out[r * cols + c] = acc;
        }
    }
    out
}

/// Builds the Stencil2D kernel instance.
pub fn build(p: &Params) -> BuiltKernel {
    let (rows, cols) = (p.rows, p.cols);
    let (in_b, filt_b, out_b) = layout(rows, cols);

    let mut fb = FunctionBuilder::new(
        "stencil2d",
        &[
            ("input", Type::Ptr),
            ("filter", Type::Ptr),
            ("output", Type::Ptr),
        ],
    );
    let (input, filter, output) = (fb.arg(0), fb.arg(1), fb.arg(2));
    let zero = fb.i64c(0);
    let rmax = fb.i64c((rows - 2) as i64);
    fb.counted_loop("r", zero, rmax, |fb, r| {
        let zero = fb.i64c(0);
        let cmax = fb.i64c((cols - 2) as i64);
        fb.counted_loop("c", zero, cmax, |fb, c| {
            let colsv = fb.i64c(cols as i64);
            let mut acc = fb.f32c(0.0);
            // The 3x3 filter is fully unrolled, as clang would do.
            for k1 in 0..3i64 {
                for k2 in 0..3i64 {
                    let fidx = fb.i64c(k1 * 3 + k2);
                    let pf = fb.gep1(Type::F32, filter, fidx, "pf");
                    let fval = fb.load(Type::F32, pf, "fval");
                    let k1v = fb.i64c(k1);
                    let rr = fb.add(r, k1v, "rr");
                    let rowoff = fb.mul(rr, colsv, "rowoff");
                    let k2v = fb.i64c(k2);
                    let cc = fb.add(c, k2v, "cc");
                    let idx = fb.add(rowoff, cc, "idx");
                    let pi = fb.gep1(Type::F32, input, idx, "pi");
                    let ival = fb.load(Type::F32, pi, "ival");
                    let prod = fb.fmul(fval, ival, "prod");
                    acc = fb.fadd(acc, prod, "acc");
                }
            }
            let rowoff = fb.mul(r, colsv, "orow");
            let oidx = fb.add(rowoff, c, "oidx");
            let po = fb.gep1(Type::F32, output, oidx, "po");
            fb.store(acc, po);
        });
    });
    fb.ret();
    let func = fb.finish();

    let mut rng = data::rng(0x57E2);
    let iv = data::f32_vec(&mut rng, rows * cols, -1.0, 1.0);
    let fv = data::f32_vec(&mut rng, 9, -1.0, 1.0);
    let want = golden(&iv, &fv, rows, cols);

    BuiltKernel::new(
        "stencil2d",
        func,
        vec![RtVal::P(in_b), RtVal::P(filt_b), RtVal::P(out_b)],
        vec![(in_b, data::f32_bytes(&iv)), (filt_b, data::f32_bytes(&fv))],
        Box::new(move |mem: &mut SparseMemory| {
            let got = mem.read_f32_slice(out_b, rows * cols);
            data::check_f32_close("out", &got, &want, 1e-4)
        }),
    )
    .with_footprint(in_b, out_b + (rows * cols * 4) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    #[test]
    fn matches_golden() {
        let k = build(&Params { rows: 8, cols: 8 });
        salam_ir::verify_function(&k.func).unwrap();
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 10_000_000).unwrap();
        k.check(&mut mem).unwrap();
    }

    #[test]
    fn filter_is_fully_unrolled() {
        let k = build(&Params::default());
        let h = k.func.opcode_histogram();
        assert_eq!(h["fmul"], 9);
        assert_eq!(h["fadd"], 9);
    }
}
