//! Deterministic input generation and byte-marshalling helpers.

use salam_obs::SplitMix64;

/// A seeded RNG so every build of a benchmark sees identical inputs.
/// SplitMix64 keeps the stream platform- and dependency-independent.
pub fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}

/// Uniform `f64` values in `[lo, hi)`.
pub fn f64_vec(rng: &mut SplitMix64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.range_f64(lo, hi)).collect()
}

/// Uniform `f32` values in `[lo, hi)`.
pub fn f32_vec(rng: &mut SplitMix64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.range_f32(lo, hi)).collect()
}

/// Uniform `i32` values in `[lo, hi)`.
pub fn i32_vec(rng: &mut SplitMix64, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    (0..n)
        .map(|_| rng.range_i64(lo as i64, hi as i64) as i32)
        .collect()
}

/// Marshals `f64` values to little-endian bytes.
pub fn f64_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Marshals `f32` values to little-endian bytes.
pub fn f32_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Marshals `i32` values to little-endian bytes.
pub fn i32_bytes(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Marshals `i64` values to little-endian bytes.
pub fn i64_bytes(v: &[i64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Compares two `f64` slices within a relative tolerance, reporting the first
/// offending index.
pub fn check_f64_close(name: &str, got: &[f64], want: &[f64], rel: f64) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{name}: length {} != {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        if (g - w).abs() > rel * scale {
            return Err(format!("{name}[{i}]: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// Compares two `f32` slices within a relative tolerance.
pub fn check_f32_close(name: &str, got: &[f32], want: &[f32], rel: f32) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{name}: length {} != {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        if (g - w).abs() > rel * scale {
            return Err(format!("{name}[{i}]: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// Exact `i32` slice comparison.
pub fn check_i32_eq(name: &str, got: &[i32], want: &[i32]) -> Result<(), String> {
    if got != want {
        let i = got.iter().zip(want).position(|(g, w)| g != w).unwrap_or(0);
        return Err(format!(
            "{name}[{i}]: got {:?}, want {:?}",
            got.get(i),
            want.get(i)
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a = f64_vec(&mut rng(7), 16, 0.0, 1.0);
        let b = f64_vec(&mut rng(7), 16, 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn byte_roundtrip() {
        let v = vec![1.5f64, -2.25, 0.0];
        let bytes = f64_bytes(&v);
        let back: Vec<f64> = bytes
            .chunks(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(v, back);
    }

    #[test]
    fn close_check_catches_mismatch() {
        assert!(check_f64_close("x", &[1.0], &[1.0 + 1e-12], 1e-9).is_ok());
        assert!(check_f64_close("x", &[1.0], &[2.0], 1e-9).is_err());
        assert!(check_f64_close("x", &[1.0, 2.0], &[1.0], 1e-9).is_err());
    }
}
