//! Needleman–Wunsch sequence alignment (score matrix).
//!
//! Integer dynamic programming whose `max` selections lower to muxes — the
//! benchmark the paper credits with very low timing error because its
//! runtime control maps to multiplexers in both HLS and SALAM.

use salam_ir::interp::{RtVal, SparseMemory};
use salam_ir::{FunctionBuilder, IntPredicate, Type};

use crate::data;
use crate::BuiltKernel;

/// Sequence lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Length of sequence A.
    pub alen: usize,
    /// Length of sequence B.
    pub blen: usize,
}

impl Default for Params {
    /// 24×24 alignment.
    fn default() -> Self {
        Params { alen: 24, blen: 24 }
    }
}

/// Scoring constants (MachSuite's values).
pub const MATCH: i32 = 1;
/// Mismatch penalty.
pub const MISMATCH: i32 = -1;
/// Gap penalty.
pub const GAP: i32 = -1;

/// Memory layout `(seq_a, seq_b, matrix)`.
pub fn layout(p: &Params) -> (u64, u64, u64) {
    let base = 0x4000_0000u64;
    let a = base;
    let b = a + (p.alen * 4) as u64;
    let m = b + (p.blen * 4) as u64;
    (a, b, m)
}

/// Golden DP fill.
pub fn golden(a: &[i32], b: &[i32], p: &Params) -> Vec<i32> {
    let (rows, cols) = (p.blen + 1, p.alen + 1);
    let mut m = vec![0i32; rows * cols];
    for (j, cell) in m.iter_mut().take(cols).enumerate() {
        *cell = j as i32 * GAP;
    }
    for i in 0..rows {
        m[i * cols] = i as i32 * GAP;
    }
    for i in 1..rows {
        for j in 1..cols {
            let score = if a[j - 1] == b[i - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = m[(i - 1) * cols + (j - 1)] + score;
            let up = m[(i - 1) * cols + j] + GAP;
            let left = m[i * cols + (j - 1)] + GAP;
            m[i * cols + j] = diag.max(up).max(left);
        }
    }
    m
}

/// Builds the NW kernel instance.
pub fn build(p: &Params) -> BuiltKernel {
    let (alen, blen) = (p.alen, p.blen);
    let (rows, cols) = (blen + 1, alen + 1);
    let (a_b, b_b, m_b) = layout(p);

    let mut fb = FunctionBuilder::new(
        "nw",
        &[("seqa", Type::Ptr), ("seqb", Type::Ptr), ("m", Type::Ptr)],
    );
    let (seqa, seqb, m) = (fb.arg(0), fb.arg(1), fb.arg(2));

    // First row and column initialization.
    let zero = fb.i64c(0);
    let colsv = fb.i64c(cols as i64);
    fb.counted_loop("initrow", zero, colsv, |fb, j| {
        let jt = fb.trunc(j, Type::I32, "jt");
        let gap = fb.i32c(GAP);
        let v = fb.mul(jt, gap, "v");
        let pm = fb.gep1(Type::I32, m, j, "pm");
        fb.store(v, pm);
    });
    let zero = fb.i64c(0);
    let rowsv = fb.i64c(rows as i64);
    fb.counted_loop("initcol", zero, rowsv, |fb, i| {
        let it = fb.trunc(i, Type::I32, "it");
        let gap = fb.i32c(GAP);
        let v = fb.mul(it, gap, "v");
        let colsv = fb.i64c(cols as i64);
        let idx = fb.mul(i, colsv, "idx");
        let pm = fb.gep1(Type::I32, m, idx, "pm");
        fb.store(v, pm);
    });

    let one = fb.i64c(1);
    let rowsv = fb.i64c(rows as i64);
    fb.counted_loop("i", one, rowsv, |fb, i| {
        let one = fb.i64c(1);
        let colsv = fb.i64c(cols as i64);
        fb.counted_loop("j", one, colsv, |fb, j| {
            let onev = fb.i64c(1);
            let colsv = fb.i64c(cols as i64);
            let jm1 = fb.sub(j, onev, "jm1");
            let im1 = fb.sub(i, onev, "im1");
            let pa = fb.gep1(Type::I32, seqa, jm1, "pa");
            let av = fb.load(Type::I32, pa, "av");
            let pb = fb.gep1(Type::I32, seqb, im1, "pb");
            let bv = fb.load(Type::I32, pb, "bv");
            let eq = fb.icmp(IntPredicate::Eq, av, bv, "eq");
            let mval = fb.i32c(MATCH);
            let mm = fb.i32c(MISMATCH);
            let score = fb.select(eq, mval, mm, "score");

            let rowoff = fb.mul(i, colsv, "rowoff");
            let prevrow = fb.mul(im1, colsv, "prevrow");
            let di = fb.add(prevrow, jm1, "di");
            let pd = fb.gep1(Type::I32, m, di, "pd");
            let diag0 = fb.load(Type::I32, pd, "diag0");
            let diag = fb.add(diag0, score, "diag");

            let ui = fb.add(prevrow, j, "ui");
            let pu = fb.gep1(Type::I32, m, ui, "pu");
            let up0 = fb.load(Type::I32, pu, "up0");
            let gap = fb.i32c(GAP);
            let up = fb.add(up0, gap, "up");

            let li = fb.add(rowoff, jm1, "li");
            let pl = fb.gep1(Type::I32, m, li, "pl");
            let left0 = fb.load(Type::I32, pl, "left0");
            let left = fb.add(left0, gap, "left");

            // max(diag, up, left) through selects (muxes).
            let c1 = fb.icmp(IntPredicate::Sgt, diag, up, "c1");
            let mx1 = fb.select(c1, diag, up, "mx1");
            let c2 = fb.icmp(IntPredicate::Sgt, mx1, left, "c2");
            let mx2 = fb.select(c2, mx1, left, "mx2");

            let oi = fb.add(rowoff, j, "oi");
            let po = fb.gep1(Type::I32, m, oi, "po");
            fb.store(mx2, po);
        });
    });
    fb.ret();
    let func = fb.finish();

    let mut rng = data::rng(0x4E57);
    let av = data::i32_vec(&mut rng, alen, 0, 4); // ACTG alphabet
    let bv = data::i32_vec(&mut rng, blen, 0, 4);
    let want = golden(&av, &bv, p);

    BuiltKernel::new(
        "nw",
        func,
        vec![RtVal::P(a_b), RtVal::P(b_b), RtVal::P(m_b)],
        vec![(a_b, data::i32_bytes(&av)), (b_b, data::i32_bytes(&bv))],
        Box::new(move |mem: &mut SparseMemory| {
            let got = mem.read_i32_slice(m_b, rows * cols);
            data::check_i32_eq("matrix", &got, &want)
        }),
    )
    .with_footprint(a_b, m_b + (rows * cols * 4) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    #[test]
    fn matches_golden() {
        let k = build(&Params { alen: 10, blen: 12 });
        salam_ir::verify_function(&k.func).unwrap();
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 50_000_000).unwrap();
        k.check(&mut mem).unwrap();
    }

    #[test]
    fn selections_lower_to_muxes() {
        let k = build(&Params::default());
        let h = k.func.opcode_histogram();
        assert!(h["select"] >= 3);
        assert!(!h.contains_key("fadd"), "NW is integer DP");
    }
}
