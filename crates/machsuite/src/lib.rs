//! # machsuite
//!
//! The MachSuite [Reagen et al., IISWC'14] benchmark kernels the paper
//! evaluates on, reimplemented as IR builders with deterministic input
//! generators and golden Rust implementations.
//!
//! Each kernel produces a [`BuiltKernel`]: the accelerator function (as
//! `salam-ir`), the pointer/scalar arguments the host would program through
//! MMRs, an initial memory image, and a checker that validates simulated
//! memory against the golden result. The same artifact drives the reference
//! interpreter, the SALAM runtime engine, the HLS reference scheduler and the
//! Aladdin baseline, so all execution models are compared on identical
//! workloads.
//!
//! Kernels (matching the paper's §IV selection):
//!
//! | module | benchmark | character |
//! |---|---|---|
//! | [`bfs`] | BFS (queue) | irregular integer, data-dependent control |
//! | [`fft`] | FFT (strided) | double-precision butterflies |
//! | [`gemm`] | GEMM (n-cubed) | regular dense double-precision |
//! | [`md_grid`] | MD (grid) | 3-D cell neighborhood FP |
//! | [`md_knn`] | MD (k-NN) | heavy double-precision arithmetic |
//! | [`nw`] | Needleman–Wunsch | integer DP with muxes |
//! | [`spmv`] | SpMV (CRS) | data-dependent sparse FP |
//! | [`stencil2d`] | Stencil2D | regular 2-D f32 |
//! | [`stencil3d`] | Stencil3D | regular 3-D f32 |
//!
//! # Example
//!
//! ```
//! use machsuite::{gemm, BuiltKernel};
//!
//! let k = gemm::build(&gemm::Params { n: 4, unroll: 1 });
//! let mut mem = salam_ir::interp::SparseMemory::new();
//! k.load_into(&mut mem);
//! salam_ir::interp::run_function(
//!     &k.func, &k.args, &mut mem,
//!     &mut salam_ir::interp::NullObserver, 10_000_000,
//! ).unwrap();
//! k.check(&mut mem).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod data;
pub mod fft;
pub mod gemm;
pub mod md_grid;
pub mod md_knn;
pub mod nw;
pub mod spmv;
pub mod stencil2d;
pub mod stencil3d;

use salam_ir::interp::{Memory, RtVal, SparseMemory};
use salam_ir::Function;

/// Output-validation callback: checks simulated memory against the golden
/// result.
pub type Checker = Box<dyn Fn(&mut SparseMemory) -> Result<(), String> + Send + Sync>;

/// A ready-to-simulate benchmark instance.
pub struct BuiltKernel {
    /// Benchmark name (e.g. `"gemm-ncubed"`).
    pub name: String,
    /// The accelerator kernel.
    pub func: Function,
    /// Arguments as the host driver would program them.
    pub args: Vec<RtVal>,
    /// Initial memory image as `(address, bytes)` chunks.
    pub init: Vec<(u64, Vec<u8>)>,
    /// Full data footprint `[lo, hi)` including outputs (defaults to the
    /// initial image's span; kernels with outputs beyond it override this).
    pub footprint: (u64, u64),
    checker: Checker,
}

impl BuiltKernel {
    /// Builds from parts; `checker` validates output memory.
    pub fn new(
        name: &str,
        func: Function,
        args: Vec<RtVal>,
        init: Vec<(u64, Vec<u8>)>,
        checker: Checker,
    ) -> Self {
        let lo = init.iter().map(|(a, _)| *a).min().unwrap_or(0);
        let hi = init
            .iter()
            .map(|(a, b)| a + b.len() as u64)
            .max()
            .unwrap_or(0);
        BuiltKernel {
            name: name.to_string(),
            func,
            args,
            init,
            footprint: (lo, hi),
            checker,
        }
    }

    /// Overrides the data footprint (kernels whose outputs lie beyond the
    /// initial image).
    pub fn with_footprint(mut self, lo: u64, hi: u64) -> Self {
        self.footprint = (lo, hi);
        self
    }

    /// Writes the initial image into an interpreter memory.
    pub fn load_into(&self, mem: &mut SparseMemory) {
        for (addr, bytes) in &self.init {
            mem.write(*addr, bytes);
        }
    }

    /// Applies the initial image through a raw byte-writer (e.g. a memsys
    /// scratchpad or DRAM backdoor).
    pub fn load_with(&self, mut write: impl FnMut(u64, &[u8])) {
        for (addr, bytes) in &self.init {
            write(*addr, bytes);
        }
    }

    /// Validates the output in `mem` against the golden model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn check(&self, mem: &mut SparseMemory) -> Result<(), String> {
        (self.checker)(mem)
    }

    /// Span `[lo, hi)` of all addresses touched by the initial image.
    pub fn init_span(&self) -> (u64, u64) {
        let lo = self.init.iter().map(|(a, _)| *a).min().unwrap_or(0);
        let hi = self
            .init
            .iter()
            .map(|(a, b)| a + b.len() as u64)
            .max()
            .unwrap_or(0);
        (lo, hi)
    }
}

impl std::fmt::Debug for BuiltKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltKernel")
            .field("name", &self.name)
            .field("func", &self.func.name)
            .field("args", &self.args.len())
            .field("init_chunks", &self.init.len())
            .finish()
    }
}

/// The benchmarks of the paper's evaluation, for iteration in harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bench {
    /// Breadth-first search (queue variant).
    Bfs,
    /// Strided FFT.
    FftStrided,
    /// Dense matrix multiply (n-cubed variant).
    GemmNcubed,
    /// Molecular dynamics, grid variant.
    MdGrid,
    /// Molecular dynamics, k-nearest-neighbors variant.
    MdKnn,
    /// Needleman–Wunsch sequence alignment.
    Nw,
    /// Sparse matrix-vector multiply (CRS format).
    SpmvCrs,
    /// 2-D stencil.
    Stencil2d,
    /// 3-D stencil.
    Stencil3d,
}

impl Bench {
    /// All benchmarks in the paper's Table IV order.
    pub const ALL: [Bench; 9] = [
        Bench::Bfs,
        Bench::FftStrided,
        Bench::GemmNcubed,
        Bench::MdGrid,
        Bench::MdKnn,
        Bench::Nw,
        Bench::SpmvCrs,
        Bench::Stencil2d,
        Bench::Stencil3d,
    ];

    /// Display name as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Bench::Bfs => "BFS",
            Bench::FftStrided => "FFT",
            Bench::GemmNcubed => "GEMM",
            Bench::MdGrid => "MD-Grid",
            Bench::MdKnn => "MD-KNN",
            Bench::Nw => "NW",
            Bench::SpmvCrs => "SPMV",
            Bench::Stencil2d => "Stencil2D",
            Bench::Stencil3d => "Stencil3D",
        }
    }

    /// Builds the benchmark at its standard (simulation-friendly) size.
    pub fn build_standard(self) -> BuiltKernel {
        match self {
            Bench::Bfs => bfs::build(&bfs::Params::default()),
            Bench::FftStrided => fft::build(&fft::Params::default()),
            Bench::GemmNcubed => gemm::build(&gemm::Params::default()),
            Bench::MdGrid => md_grid::build(&md_grid::Params::default()),
            Bench::MdKnn => md_knn::build(&md_knn::Params::default()),
            Bench::Nw => nw::build(&nw::Params::default()),
            Bench::SpmvCrs => spmv::build(&spmv::Params::default()),
            Bench::Stencil2d => stencil2d::build(&stencil2d::Params::default()),
            Bench::Stencil3d => stencil3d::build(&stencil3d::Params::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    #[test]
    fn every_standard_benchmark_verifies_and_matches_golden() {
        for bench in Bench::ALL {
            let k = bench.build_standard();
            salam_ir::verify_function(&k.func).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let mut mem = SparseMemory::new();
            k.load_into(&mut mem);
            run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 200_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            k.check(&mut mem)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Bench::ALL.iter().map(|b| b.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), Bench::ALL.len());
    }

    #[test]
    fn init_span_is_sane() {
        let k = Bench::GemmNcubed.build_standard();
        let (lo, hi) = k.init_span();
        assert!(hi > lo);
    }
}

#[cfg(test)]
mod size_tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    fn run_check(k: &BuiltKernel) {
        salam_ir::verify_function(&k.func).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 500_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        k.check(&mut mem)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    }

    #[test]
    fn kernels_scale_beyond_standard_sizes() {
        run_check(&gemm::build(&gemm::Params { n: 24, unroll: 8 }));
        run_check(&spmv::build(&spmv::Params {
            rows: 64,
            nnz_per_row: 12,
            ..Default::default()
        }));
        run_check(&stencil2d::build(&stencil2d::Params { rows: 24, cols: 32 }));
        run_check(&stencil3d::build(&stencil3d::Params {
            height: 6,
            rows: 10,
            cols: 12,
        }));
        run_check(&nw::build(&nw::Params { alen: 40, blen: 32 }));
        run_check(&fft::build(&fft::Params { n: 128 }));
        run_check(&bfs::build(&bfs::Params {
            nodes: 96,
            degree: 3,
            start: 5,
            seed: 11,
        }));
        run_check(&md_knn::build(&md_knn::Params { n_atoms: 48, k: 12 }));
        run_check(&md_grid::build(&md_grid::Params {
            block_side: 3,
            density: 3,
        }));
    }

    #[test]
    fn all_kernels_roundtrip_through_textual_ir() {
        // Every generated kernel prints to valid `.ll`-style text that
        // reparses to a printing fixed point — broad parser/printer coverage
        // over real control-flow shapes.
        for bench in Bench::ALL {
            let k = bench.build_standard();
            let mut m = salam_ir::Module::new("m");
            m.add_function(k.func.clone());
            let text = m.to_string();
            let parsed =
                salam_ir::parse_module(&text).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert_eq!(parsed.to_string(), text, "{} not a fixed point", k.name);
            salam_ir::verify_function(&parsed.functions()[0])
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn reparsed_kernels_compute_identical_results() {
        for bench in [Bench::SpmvCrs, Bench::Nw, Bench::FftStrided] {
            let k = bench.build_standard();
            let mut m = salam_ir::Module::new("m");
            m.add_function(k.func.clone());
            let parsed = salam_ir::parse_module(&m.to_string()).unwrap();
            let mut mem = SparseMemory::new();
            k.load_into(&mut mem);
            run_function(
                &parsed.functions()[0],
                &k.args,
                &mut mem,
                &mut NullObserver,
                500_000_000,
            )
            .unwrap();
            k.check(&mut mem)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }
}
