//! GEMM (n-cubed): dense double-precision matrix multiply.
//!
//! The paper's central design-space-exploration workload (Table II,
//! Figs. 13–15). The `unroll` knob replicates the inner (k) loop body —
//! the IR-level equivalent of a `#pragma unroll` on the MachSuite source —
//! which widens the datapath SALAM elaborates.

use salam_ir::interp::{RtVal, SparseMemory};
use salam_ir::{FunctionBuilder, Type};

use crate::data;
use crate::BuiltKernel;

/// Matrix size and unroll factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Matrices are `n x n` doubles.
    pub n: usize,
    /// Inner-loop unroll factor (must divide `n`).
    pub unroll: usize,
}

impl Default for Params {
    /// 16×16 with no unrolling — small enough for fast cycle-accurate runs,
    /// large enough to show memory effects.
    fn default() -> Self {
        Params { n: 16, unroll: 1 }
    }
}

/// Base address of matrix A; B and C follow contiguously.
pub const A_BASE: u64 = 0x1000_0000;

/// Addresses `(a, b, c)` for the given size.
pub fn layout(n: usize) -> (u64, u64, u64) {
    let bytes = (n * n * 8) as u64;
    (A_BASE, A_BASE + bytes, A_BASE + 2 * bytes)
}

/// Golden model: row-major `C = A * B`.
pub fn golden(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0;
            for k in 0..n {
                sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
    c
}

/// Builds the GEMM kernel instance.
///
/// # Panics
///
/// Panics if `unroll` does not divide `n`.
pub fn build(p: &Params) -> BuiltKernel {
    assert!(
        p.unroll >= 1 && p.n.is_multiple_of(p.unroll),
        "unroll must divide n"
    );
    let n = p.n;
    let (a_base, b_base, c_base) = layout(n);

    let mut fb = FunctionBuilder::new(
        "gemm_ncubed",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr)],
    );
    let (a, b, c) = (fb.arg(0), fb.arg(1), fb.arg(2));
    let zero = fb.i64c(0);
    let nn = fb.i64c(n as i64);
    fb.counted_loop("i", zero, nn, |fb, i| {
        let zero = fb.i64c(0);
        let nn = fb.i64c(n as i64);
        fb.counted_loop("j", zero, nn, |fb, j| {
            let zero = fb.i64c(0);
            let nn = fb.i64c(n as i64);
            let fzero = fb.f64c(0.0);
            let finals = fb.counted_loop_accs(
                "k",
                zero,
                nn,
                p.unroll as i64,
                &[(Type::F64, fzero)],
                |fb, k, accs| {
                    let nconst = fb.i64c(n as i64);
                    let row = fb.mul(i, nconst, "row");
                    // Unrolled products reduce through a balanced tree (as
                    // HLS / clang's reassociating vectorizer would emit), so
                    // the loop-carried chain stays a single accumulate.
                    let mut terms = Vec::with_capacity(p.unroll);
                    for u in 0..p.unroll {
                        let uoff = fb.i64c(u as i64);
                        let ku = fb.add(k, uoff, "ku");
                        let ai = fb.add(row, ku, "ai");
                        let pa = fb.gep1(Type::F64, a, ai, "pa");
                        let av = fb.load(Type::F64, pa, "av");
                        let brow = fb.mul(ku, nconst, "brow");
                        let bi = fb.add(brow, j, "bi");
                        let pb = fb.gep1(Type::F64, b, bi, "pb");
                        let bv = fb.load(Type::F64, pb, "bv");
                        terms.push(fb.fmul(av, bv, "prod"));
                    }
                    while terms.len() > 1 {
                        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
                        for pair in terms.chunks(2) {
                            next.push(if pair.len() == 2 {
                                fb.fadd(pair[0], pair[1], "t")
                            } else {
                                pair[0]
                            });
                        }
                        terms = next;
                    }
                    let sum = fb.fadd(accs[0], terms[0], "sum");
                    vec![sum]
                },
            );
            let nconst = fb.i64c(n as i64);
            let row = fb.mul(i, nconst, "crow");
            let ci = fb.add(row, j, "ci");
            let pc = fb.gep1(Type::F64, c, ci, "pc");
            fb.store(finals[0], pc);
        });
    });
    fb.ret();
    let func = fb.finish();

    let mut rng = data::rng(0x6E44);
    let av = data::f64_vec(&mut rng, n * n, -1.0, 1.0);
    let bv = data::f64_vec(&mut rng, n * n, -1.0, 1.0);
    let want = golden(&av, &bv, n);

    BuiltKernel::new(
        "gemm-ncubed",
        func,
        vec![RtVal::P(a_base), RtVal::P(b_base), RtVal::P(c_base)],
        vec![
            (a_base, data::f64_bytes(&av)),
            (b_base, data::f64_bytes(&bv)),
        ],
        Box::new(move |mem: &mut SparseMemory| {
            let got = mem.read_f64_slice(c_base, n * n);
            data::check_f64_close("C", &got, &want, 1e-6)
        }),
    )
    .with_footprint(a_base, c_base + (n * n * 8) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    fn run_and_check(p: &Params) {
        let k = build(p);
        salam_ir::verify_function(&k.func).unwrap();
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 100_000_000).unwrap();
        k.check(&mut mem).unwrap();
    }

    #[test]
    fn rolled_matches_golden() {
        run_and_check(&Params { n: 8, unroll: 1 });
    }

    #[test]
    fn unrolled_matches_golden() {
        run_and_check(&Params { n: 8, unroll: 4 });
        run_and_check(&Params { n: 8, unroll: 8 });
    }

    #[test]
    fn unrolling_widens_the_datapath() {
        let rolled = build(&Params { n: 8, unroll: 1 });
        let unrolled = build(&Params { n: 8, unroll: 8 });
        let h1 = rolled.func.opcode_histogram();
        let h8 = unrolled.func.opcode_histogram();
        assert_eq!(h1["fmul"], 1);
        assert_eq!(h8["fmul"], 8);
        assert!(h8["fadd"] >= 8);
    }

    #[test]
    #[should_panic(expected = "unroll must divide n")]
    fn bad_unroll_rejected() {
        let _ = build(&Params { n: 8, unroll: 3 });
    }
}
