//! MD (grid): Lennard-Jones-style forces over a 3-D cell grid.
//!
//! Uses dynamically computed (clamped) neighbor-cell loop bounds and a
//! branch-free self-interaction guard — the kind of datapath the paper notes
//! contains custom structure that stresses area estimation.

use salam_ir::interp::{RtVal, SparseMemory};
use salam_ir::{FunctionBuilder, IntPredicate, Type};

use crate::data;
use crate::BuiltKernel;

/// Grid shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Cells per side (grid is `b^3` cells).
    pub block_side: usize,
    /// Atoms per cell.
    pub density: usize,
}

impl Default for Params {
    /// 2×2×2 cells of 4 atoms.
    fn default() -> Self {
        Params {
            block_side: 2,
            density: 4,
        }
    }
}

const LJ1: f64 = 1.5;
const LJ2: f64 = 2.0;

/// Memory layout `(positions, forces)`; both `[cell][atom][xyz]` f64.
pub fn layout(p: &Params) -> (u64, u64) {
    let base = 0x5000_0000u64;
    let cells = p.block_side.pow(3);
    let n = (cells * p.density * 3 * 8) as u64;
    (base, base + n)
}

fn idx(p: &Params, ci: usize, cj: usize, ck: usize, a: usize, d: usize) -> usize {
    (((ci * p.block_side + cj) * p.block_side + ck) * p.density + a) * 3 + d
}

/// Golden model with the same traversal order and guard.
pub fn golden(pos: &[f64], p: &Params) -> Vec<f64> {
    let b = p.block_side;
    let mut force = vec![0.0; pos.len()];
    for ci in 0..b {
        for cj in 0..b {
            for ck in 0..b {
                for ni in ci.saturating_sub(1)..(ci + 2).min(b) {
                    for nj in cj.saturating_sub(1)..(cj + 2).min(b) {
                        for nk in ck.saturating_sub(1)..(ck + 2).min(b) {
                            for q in 0..p.density {
                                for a in 0..p.density {
                                    let same = (ci, cj, ck) == (ni, nj, nk) && a == q;
                                    let dx = pos[idx(p, ci, cj, ck, a, 0)]
                                        - pos[idx(p, ni, nj, nk, q, 0)];
                                    let dy = pos[idx(p, ci, cj, ck, a, 1)]
                                        - pos[idx(p, ni, nj, nk, q, 1)];
                                    let dz = pos[idx(p, ci, cj, ck, a, 2)]
                                        - pos[idx(p, ni, nj, nk, q, 2)];
                                    let r2 = dx * dx + dy * dy + dz * dz;
                                    let r2s = if same { 1.0 } else { r2 };
                                    let r2inv = 1.0 / r2s;
                                    let r6inv = r2inv * r2inv * r2inv;
                                    let pot = r6inv * (LJ1 * r6inv - LJ2);
                                    let f = if same { 0.0 } else { r2inv * pot };
                                    force[idx(p, ci, cj, ck, a, 0)] += dx * f;
                                    force[idx(p, ci, cj, ck, a, 1)] += dy * f;
                                    force[idx(p, ci, cj, ck, a, 2)] += dz * f;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    force
}

/// Builds the MD-Grid kernel instance.
pub fn build(p: &Params) -> BuiltKernel {
    let (pos_b, force_b) = layout(p);
    let b = p.block_side as i64;
    let density = p.density as i64;

    let mut fb = FunctionBuilder::new("md_grid", &[("pos", Type::Ptr), ("force", Type::Ptr)]);
    let (pos, force) = (fb.arg(0), fb.arg(1));

    // Helper emitting `clamp` loop bounds: lo = max(c-1, 0), hi = min(c+2, b).
    let clamp = |fb: &mut FunctionBuilder, c: salam_ir::ValueId, bmax: i64| {
        let one = fb.i64c(1);
        let lo0 = fb.sub(c, one, "lo0");
        let zero = fb.i64c(0);
        let neg = fb.icmp(IntPredicate::Slt, lo0, zero, "neg");
        let lo = fb.select(neg, zero, lo0, "lo");
        let two = fb.i64c(2);
        let hi0 = fb.add(c, two, "hi0");
        let bv = fb.i64c(bmax);
        let over = fb.icmp(IntPredicate::Sgt, hi0, bv, "over");
        let hi = fb.select(over, bv, hi0, "hi");
        (lo, hi)
    };
    // Flat element index: (((ci*b + cj)*b + ck)*density + a)*3 + d.
    let flat = |fb: &mut FunctionBuilder,
                ci: salam_ir::ValueId,
                cj: salam_ir::ValueId,
                ck: salam_ir::ValueId,
                a: salam_ir::ValueId,
                d: i64| {
        let bv = fb.i64c(b);
        let t0 = fb.mul(ci, bv, "t0");
        let t1 = fb.add(t0, cj, "t1");
        let t2 = fb.mul(t1, bv, "t2");
        let t3 = fb.add(t2, ck, "t3");
        let dv = fb.i64c(density);
        let t4 = fb.mul(t3, dv, "t4");
        let t5 = fb.add(t4, a, "t5");
        let three = fb.i64c(3);
        let t6 = fb.mul(t5, three, "t6");
        let dc = fb.i64c(d);
        fb.add(t6, dc, "t7")
    };

    let zero = fb.i64c(0);
    let bv = fb.i64c(b);
    fb.counted_loop("ci", zero, bv, |fb, ci| {
        let zero = fb.i64c(0);
        let bv = fb.i64c(b);
        fb.counted_loop("cj", zero, bv, |fb, cj| {
            let zero = fb.i64c(0);
            let bv = fb.i64c(b);
            fb.counted_loop("ck", zero, bv, |fb, ck| {
                let (ilo, ihi) = clamp(fb, ci, b);
                fb.counted_loop("ni", ilo, ihi, |fb, ni| {
                    let (jlo, jhi) = clamp(fb, cj, b);
                    fb.counted_loop("nj", jlo, jhi, |fb, nj| {
                        let (klo, khi) = clamp(fb, ck, b);
                        fb.counted_loop("nk", klo, khi, |fb, nk| {
                            let zero = fb.i64c(0);
                            let dv = fb.i64c(density);
                            fb.counted_loop("q", zero, dv, |fb, q| {
                                let zero = fb.i64c(0);
                                let dv = fb.i64c(density);
                                fb.counted_loop("a", zero, dv, |fb, a| {
                                    // same-cell & same-atom guard (branch-free).
                                    let ei = fb.icmp(IntPredicate::Eq, ci, ni, "ei");
                                    let ej = fb.icmp(IntPredicate::Eq, cj, nj, "ej");
                                    let ek = fb.icmp(IntPredicate::Eq, ck, nk, "ek");
                                    let ea = fb.icmp(IntPredicate::Eq, a, q, "ea");
                                    let c0 = fb.and(ei, ej, "c0");
                                    let c1 = fb.and(c0, ek, "c1");
                                    let same = fb.and(c1, ea, "same");

                                    let mut del = Vec::new();
                                    for d in 0..3 {
                                        let pi = flat(fb, ci, cj, ck, a, d);
                                        let pp = fb.gep1(Type::F64, pos, pi, "pp");
                                        let pv = fb.load(Type::F64, pp, "pv");
                                        let qi = flat(fb, ni, nj, nk, q, d);
                                        let pq = fb.gep1(Type::F64, pos, qi, "pq");
                                        let qv = fb.load(Type::F64, pq, "qv");
                                        del.push(fb.fsub(pv, qv, "del"));
                                    }
                                    let dx2 = fb.fmul(del[0], del[0], "dx2");
                                    let dy2 = fb.fmul(del[1], del[1], "dy2");
                                    let dz2 = fb.fmul(del[2], del[2], "dz2");
                                    let s = fb.fadd(dx2, dy2, "s");
                                    let r2 = fb.fadd(s, dz2, "r2");
                                    let onef = fb.f64c(1.0);
                                    let r2safe = fb.select(same, onef, r2, "r2safe");
                                    let r2inv = fb.fdiv(onef, r2safe, "r2inv");
                                    let r4 = fb.fmul(r2inv, r2inv, "r4");
                                    let r6inv = fb.fmul(r4, r2inv, "r6inv");
                                    let lj1 = fb.f64c(LJ1);
                                    let t1 = fb.fmul(lj1, r6inv, "t1");
                                    let lj2 = fb.f64c(LJ2);
                                    let t2 = fb.fsub(t1, lj2, "t2");
                                    let pot = fb.fmul(r6inv, t2, "pot");
                                    let f0 = fb.fmul(r2inv, pot, "f0");
                                    let fzero = fb.f64c(0.0);
                                    let f = fb.select(same, fzero, f0, "f");
                                    for d in 0..3 {
                                        let contrib = fb.fmul(del[d as usize], f, "contrib");
                                        let fi = flat(fb, ci, cj, ck, a, d);
                                        let pf = fb.gep1(Type::F64, force, fi, "pf");
                                        let old = fb.load(Type::F64, pf, "old");
                                        let newv = fb.fadd(old, contrib, "newv");
                                        fb.store(newv, pf);
                                    }
                                });
                            });
                        });
                    });
                });
            });
        });
    });
    fb.ret();
    let func = fb.finish();

    let cells = p.block_side.pow(3);
    let mut rng = data::rng(0x4D47);
    let posv = data::f64_vec(&mut rng, cells * p.density * 3, -4.0, 4.0);
    let want = golden(&posv, p);
    let n = posv.len();

    BuiltKernel::new(
        "md-grid",
        func,
        vec![RtVal::P(pos_b), RtVal::P(force_b)],
        vec![(pos_b, data::f64_bytes(&posv))],
        Box::new(move |mem: &mut SparseMemory| {
            let got = mem.read_f64_slice(force_b, n);
            data::check_f64_close("force", &got, &want, 1e-7)
        }),
    )
    .with_footprint(pos_b, force_b + (n * 8) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver};

    #[test]
    fn matches_golden() {
        let k = build(&Params {
            block_side: 2,
            density: 2,
        });
        salam_ir::verify_function(&k.func).unwrap();
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        run_function(&k.func, &k.args, &mut mem, &mut NullObserver, 100_000_000).unwrap();
        k.check(&mut mem).unwrap();
    }

    #[test]
    fn guard_uses_selects_not_branches() {
        let k = build(&Params::default());
        let h = k.func.opcode_histogram();
        assert!(h["select"] >= 3);
        assert!(h.contains_key("fdiv"));
    }
}
