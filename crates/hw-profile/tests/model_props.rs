//! Property tests of the analytical SRAM model's shape guarantees.

use proptest::prelude::*;

use hw_profile::SramSpec;

proptest! {
    /// More capacity never shrinks area, leakage or access energy.
    #[test]
    fn sram_monotone_in_capacity(
        kb_small in 1u64..64,
        extra_kb in 1u64..64,
        word in prop::sample::select(vec![4u32, 8, 16]),
    ) {
        let small = SramSpec::new(kb_small * 1024, word);
        let big = SramSpec::new((kb_small + extra_kb) * 1024, word);
        prop_assert!(big.area_um2() > small.area_um2());
        prop_assert!(big.leakage_mw() > small.leakage_mw());
        prop_assert!(big.read_energy_pj() >= small.read_energy_pj());
        prop_assert!(big.write_energy_pj() >= small.write_energy_pj());
    }

    /// Ports multiply area/leakage but never change access energy.
    #[test]
    fn ports_cost_area_not_energy(
        kb in 1u64..128,
        r in 1u32..8,
        w in 1u32..8,
    ) {
        let base = SramSpec::new(kb * 1024, 8);
        let multi = base.with_ports(r + 1, w + 1);
        prop_assert!(multi.area_um2() >= base.area_um2());
        prop_assert!(multi.leakage_mw() >= base.leakage_mw());
        prop_assert_eq!(multi.read_energy_pj(), base.read_energy_pj());
    }

    /// Writes always cost at least as much as reads.
    #[test]
    fn writes_cost_at_least_reads(kb in 1u64..256, banks in 1u32..8) {
        let s = SramSpec::new(kb * 1024, 8).with_banks(banks);
        prop_assert!(s.write_energy_pj() >= s.read_energy_pj());
    }
}

#[test]
fn shipped_profile_file_parses_to_the_default() {
    // The repository ships the validated default profile as a text file
    // users can copy and edit (the paper's "hardware profile" input).
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../profiles/default_40nm.profile"),
    )
    .expect("profiles/default_40nm.profile present");
    let parsed = hw_profile::HardwareProfile::from_text(&text).unwrap();
    assert_eq!(parsed, hw_profile::HardwareProfile::default_40nm());
}
