//! Property tests of the analytical SRAM model's shape guarantees, driven
//! by the in-tree seeded-case harness.

use salam_obs::det::check_cases;

use hw_profile::SramSpec;

/// More capacity never shrinks area, leakage or access energy.
#[test]
fn sram_monotone_in_capacity() {
    check_cases("sram_monotone_in_capacity", 256, 0x71, |g| {
        let kb_small = g.range_u64(1, 64);
        let extra_kb = g.range_u64(1, 64);
        let word = *g.choose(&[4u32, 8, 16]);
        let small = SramSpec::new(kb_small * 1024, word);
        let big = SramSpec::new((kb_small + extra_kb) * 1024, word);
        assert!(big.area_um2() > small.area_um2());
        assert!(big.leakage_mw() > small.leakage_mw());
        assert!(big.read_energy_pj() >= small.read_energy_pj());
        assert!(big.write_energy_pj() >= small.write_energy_pj());
    });
}

/// Ports multiply area/leakage but never change access energy.
#[test]
fn ports_cost_area_not_energy() {
    check_cases("ports_cost_area_not_energy", 256, 0x72, |g| {
        let kb = g.range_u64(1, 128);
        let r = g.range_u64(1, 8) as u32;
        let w = g.range_u64(1, 8) as u32;
        let base = SramSpec::new(kb * 1024, 8);
        let multi = base.with_ports(r + 1, w + 1);
        assert!(multi.area_um2() >= base.area_um2());
        assert!(multi.leakage_mw() >= base.leakage_mw());
        assert_eq!(multi.read_energy_pj(), base.read_energy_pj());
    });
}

/// Writes always cost at least as much as reads.
#[test]
fn writes_cost_at_least_reads() {
    check_cases("writes_cost_at_least_reads", 256, 0x73, |g| {
        let kb = g.range_u64(1, 256);
        let banks = g.range_u64(1, 8) as u32;
        let s = SramSpec::new(kb * 1024, 8).with_banks(banks);
        assert!(s.write_energy_pj() >= s.read_energy_pj());
    });
}

#[test]
fn shipped_profile_file_parses_to_the_default() {
    // The repository ships the validated default profile as a text file
    // users can copy and edit (the paper's "hardware profile" input).
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../profiles/default_40nm.profile"),
    )
    .expect("profiles/default_40nm.profile present");
    let parsed = hw_profile::HardwareProfile::from_text(&text).unwrap();
    assert_eq!(parsed, hw_profile::HardwareProfile::default_40nm());
}
