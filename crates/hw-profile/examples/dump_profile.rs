fn main() {
    print!("{}", hw_profile::HardwareProfile::default_40nm().to_text());
}
