//! # hw-profile
//!
//! Hardware functional-unit profiles: per-FU latency, area, leakage and
//! dynamic energy, a single-bit register model, and an analytical SRAM model
//! in the spirit of McPAT's Cacti.
//!
//! The paper validates a default 40 nm hardware profile (functional-unit
//! power/area modeled after gem5-Aladdin's, SRAM modeled through Cacti)
//! against Synopsys Design Compiler. This crate provides that default
//! profile as [`HardwareProfile::default_40nm`] and lets users edit or
//! persist profiles as simple `key = value` text.
//!
//! # Example
//!
//! ```
//! use hw_profile::{FuKind, HardwareProfile};
//! use salam_ir::Opcode;
//!
//! let profile = HardwareProfile::default_40nm();
//! // Floating-point adders default to 3 pipeline stages, as in the paper.
//! assert_eq!(profile.spec(FuKind::FpAddF64).latency, 3);
//! // Every opcode maps to at most one functional-unit kind.
//! assert_eq!(hw_profile::fu_for_opcode(&Opcode::FAdd, 64), Some(FuKind::FpAddF64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cacti;
mod fu;
mod profile;

pub use cacti::SramSpec;
pub use fu::{fu_for_opcode, FuKind};
pub use profile::{FuSpec, HardwareProfile, ProfileParseError, RegisterSpec};
