//! Analytical SRAM model in the spirit of McPAT's Cacti.
//!
//! gem5-SALAM passes private scratchpad parameters and usage statistics to
//! Cacti to obtain SRAM power and area. This module reproduces the same
//! interface with a closed-form model: area, leakage, and per-access read /
//! write energies as smooth functions of capacity, word width, port count
//! and banking. The constants are fitted to 40 nm-class SRAM compiler
//! outputs; the experiments only rely on the scaling *shape* (energy growing
//! roughly with the square root of capacity, ports multiplying area).

/// Analytical SRAM (scratchpad / cache data array) characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramSpec {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Access word width in bytes.
    pub word_bytes: u32,
    /// Concurrent read ports.
    pub read_ports: u32,
    /// Concurrent write ports.
    pub write_ports: u32,
    /// Number of banks the capacity is split across.
    pub banks: u32,
}

impl SramSpec {
    /// Creates a single-bank, single-read/single-write-port SRAM.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` or `word_bytes` is zero.
    pub fn new(capacity_bytes: u64, word_bytes: u32) -> Self {
        assert!(
            capacity_bytes > 0 && word_bytes > 0,
            "SRAM dimensions must be nonzero"
        );
        SramSpec {
            capacity_bytes,
            word_bytes,
            read_ports: 1,
            write_ports: 1,
            banks: 1,
        }
    }

    /// Sets the port counts.
    pub fn with_ports(mut self, read: u32, write: u32) -> Self {
        self.read_ports = read.max(1);
        self.write_ports = write.max(1);
        self
    }

    /// Sets the bank count.
    pub fn with_banks(mut self, banks: u32) -> Self {
        self.banks = banks.max(1);
        self
    }

    fn bits(&self) -> f64 {
        self.capacity_bytes as f64 * 8.0
    }

    fn bank_bits(&self) -> f64 {
        self.bits() / self.banks as f64
    }

    /// Extra-port area/power multiplier: each port beyond 1R1W adds wordline
    /// and bitline overhead (~35% per port, the classic multi-port penalty).
    fn port_factor(&self) -> f64 {
        1.0 + 0.35 * ((self.read_ports + self.write_ports) as f64 - 2.0).max(0.0)
    }

    /// Macro area in square micrometres.
    pub fn area_um2(&self) -> f64 {
        // 0.45 um^2/bit cell + per-bank periphery.
        let cell = 0.45 * self.bits();
        let periphery =
            900.0 * self.banks as f64 + 6.0 * (self.bank_bits()).sqrt() * self.banks as f64;
        (cell + periphery) * self.port_factor()
    }

    /// Static leakage in milliwatts.
    pub fn leakage_mw(&self) -> f64 {
        (0.0000035 * self.bits() + 0.004 * self.banks as f64) * self.port_factor()
    }

    /// Energy per read access in picojoules.
    pub fn read_energy_pj(&self) -> f64 {
        // Bitline/sense energy scales with sqrt(bank bits); data energy with
        // the word width.
        let word_bits = self.word_bytes as f64 * 8.0;
        0.011 * self.bank_bits().sqrt() + 0.05 * word_bits
    }

    /// Energy per write access in picojoules.
    pub fn write_energy_pj(&self) -> f64 {
        let word_bits = self.word_bytes as f64 * 8.0;
        0.013 * self.bank_bits().sqrt() + 0.06 * word_bits
    }

    /// Suggested access latency in cycles at ~1 GHz: grows with capacity.
    pub fn access_latency_cycles(&self) -> u32 {
        let kb = self.capacity_bytes as f64 / 1024.0;
        if kb <= 32.0 {
            1
        } else if kb <= 256.0 {
            2
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_with_capacity() {
        let a = SramSpec::new(1024, 4).area_um2();
        let b = SramSpec::new(16 * 1024, 4).area_um2();
        assert!(
            b > 8.0 * a,
            "16x capacity should be ~16x cell area ({a} vs {b})"
        );
    }

    #[test]
    fn read_energy_sublinear_in_capacity() {
        let e1 = SramSpec::new(1024, 4).read_energy_pj();
        let e16 = SramSpec::new(16 * 1024, 4).read_energy_pj();
        assert!(e16 > e1);
        assert!(e16 < 16.0 * e1, "per-access energy must grow sublinearly");
    }

    #[test]
    fn ports_multiply_area() {
        let base = SramSpec::new(4096, 4);
        let multi = base.with_ports(4, 2);
        assert!(multi.area_um2() > 1.5 * base.area_um2());
        assert!(multi.leakage_mw() > base.leakage_mw());
    }

    #[test]
    fn banking_reduces_access_energy() {
        let flat = SramSpec::new(64 * 1024, 8);
        let banked = flat.with_banks(8);
        assert!(banked.read_energy_pj() < flat.read_energy_pj());
        assert!(
            banked.area_um2() > flat.area_um2(),
            "banking costs periphery area"
        );
    }

    #[test]
    fn write_costs_more_than_read() {
        let s = SramSpec::new(8192, 4);
        assert!(s.write_energy_pj() > s.read_energy_pj());
    }

    #[test]
    fn latency_tiers() {
        assert_eq!(SramSpec::new(1024, 4).access_latency_cycles(), 1);
        assert_eq!(SramSpec::new(128 * 1024, 4).access_latency_cycles(), 2);
        assert_eq!(SramSpec::new(1024 * 1024, 4).access_latency_cycles(), 3);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = SramSpec::new(0, 4);
    }
}
