//! Functional-unit kinds and the opcode → FU mapping.

use salam_ir::Opcode;

/// Kinds of virtual hardware functional units.
///
/// Mirrors the unit classes in gem5-SALAM's hardware profile (which in turn
/// follows gem5-Aladdin's power/area models): integer ALU pieces, separate
/// single/double-precision floating-point units, comparators, shifters,
/// converters and multiplexers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Integer adder/subtractor (also used for address arithmetic / GEP).
    IntAdder,
    /// Integer multiplier.
    IntMultiplier,
    /// Integer divider/remainder unit.
    IntDivider,
    /// Barrel shifter.
    Shifter,
    /// Bitwise logic unit (and/or/xor).
    Bitwise,
    /// Integer comparator.
    IntComparator,
    /// Single-precision floating-point adder/subtractor.
    FpAddF32,
    /// Double-precision floating-point adder/subtractor.
    FpAddF64,
    /// Single-precision floating-point multiplier.
    FpMulF32,
    /// Double-precision floating-point multiplier.
    FpMulF64,
    /// Single-precision floating-point divider.
    FpDivF32,
    /// Double-precision floating-point divider.
    FpDivF64,
    /// Floating-point comparator.
    FpComparator,
    /// Int/float converter.
    Converter,
    /// Multiplexer (phi / select lowering).
    Mux,
}

impl FuKind {
    /// All kinds, for iteration in reports and profiles.
    pub const ALL: [FuKind; 15] = [
        FuKind::IntAdder,
        FuKind::IntMultiplier,
        FuKind::IntDivider,
        FuKind::Shifter,
        FuKind::Bitwise,
        FuKind::IntComparator,
        FuKind::FpAddF32,
        FuKind::FpAddF64,
        FuKind::FpMulF32,
        FuKind::FpMulF64,
        FuKind::FpDivF32,
        FuKind::FpDivF64,
        FuKind::FpComparator,
        FuKind::Converter,
        FuKind::Mux,
    ];

    /// Stable lowercase name used in profile files and reports.
    pub fn name(self) -> &'static str {
        match self {
            FuKind::IntAdder => "int_adder",
            FuKind::IntMultiplier => "int_multiplier",
            FuKind::IntDivider => "int_divider",
            FuKind::Shifter => "shifter",
            FuKind::Bitwise => "bitwise",
            FuKind::IntComparator => "int_comparator",
            FuKind::FpAddF32 => "fp_add_sp",
            FuKind::FpAddF64 => "fp_add_dp",
            FuKind::FpMulF32 => "fp_mul_sp",
            FuKind::FpMulF64 => "fp_mul_dp",
            FuKind::FpDivF32 => "fp_div_sp",
            FuKind::FpDivF64 => "fp_div_dp",
            FuKind::FpComparator => "fp_comparator",
            FuKind::Converter => "converter",
            FuKind::Mux => "mux",
        }
    }

    /// Parses a stable name back to a kind.
    pub fn from_name(s: &str) -> Option<Self> {
        FuKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether this is a floating-point unit.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            FuKind::FpAddF32
                | FuKind::FpAddF64
                | FuKind::FpMulF32
                | FuKind::FpMulF64
                | FuKind::FpDivF32
                | FuKind::FpDivF64
                | FuKind::FpComparator
        )
    }
}

impl std::fmt::Display for FuKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps an opcode to the functional-unit kind that executes it, or `None`
/// for operations that are pure wiring (casts between integer widths,
/// bitcasts, branches, memory ops handled by the memory system).
///
/// `bits` is the operand width, used to pick single- vs double-precision
/// floating-point units.
pub fn fu_for_opcode(op: &Opcode, bits: u32) -> Option<FuKind> {
    let dp = bits > 32;
    Some(match op {
        Opcode::Add | Opcode::Sub => FuKind::IntAdder,
        // Address arithmetic synthesizes to integer adders.
        Opcode::Gep { .. } => FuKind::IntAdder,
        Opcode::Mul => FuKind::IntMultiplier,
        Opcode::UDiv | Opcode::SDiv | Opcode::URem | Opcode::SRem => FuKind::IntDivider,
        Opcode::Shl | Opcode::LShr | Opcode::AShr => FuKind::Shifter,
        Opcode::And | Opcode::Or | Opcode::Xor => FuKind::Bitwise,
        Opcode::ICmp(_) => FuKind::IntComparator,
        Opcode::FAdd | Opcode::FSub | Opcode::FNeg => {
            if dp {
                FuKind::FpAddF64
            } else {
                FuKind::FpAddF32
            }
        }
        Opcode::FMul => {
            if dp {
                FuKind::FpMulF64
            } else {
                FuKind::FpMulF32
            }
        }
        Opcode::FDiv => {
            if dp {
                FuKind::FpDivF64
            } else {
                FuKind::FpDivF32
            }
        }
        Opcode::FCmp(_) => FuKind::FpComparator,
        Opcode::FPToSI
        | Opcode::FPToUI
        | Opcode::SIToFP
        | Opcode::UIToFP
        | Opcode::FPTrunc
        | Opcode::FPExt => FuKind::Converter,
        Opcode::Phi | Opcode::Select => FuKind::Mux,
        // Width changes, pointer casts, control flow and memory operations
        // consume no datapath FU.
        Opcode::Trunc
        | Opcode::ZExt
        | Opcode::SExt
        | Opcode::BitCast
        | Opcode::PtrToInt
        | Opcode::IntToPtr
        | Opcode::Load
        | Opcode::Store
        | Opcode::Br
        | Opcode::CondBr
        | Opcode::Ret => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::{FloatPredicate, IntPredicate};

    #[test]
    fn names_roundtrip() {
        for k in FuKind::ALL {
            assert_eq!(FuKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FuKind::from_name("bogus"), None);
    }

    #[test]
    fn precision_selected_by_width() {
        assert_eq!(fu_for_opcode(&Opcode::FAdd, 32), Some(FuKind::FpAddF32));
        assert_eq!(fu_for_opcode(&Opcode::FAdd, 64), Some(FuKind::FpAddF64));
        assert_eq!(fu_for_opcode(&Opcode::FMul, 32), Some(FuKind::FpMulF32));
        assert_eq!(fu_for_opcode(&Opcode::FDiv, 64), Some(FuKind::FpDivF64));
    }

    #[test]
    fn wiring_ops_have_no_fu() {
        for op in [
            Opcode::ZExt,
            Opcode::SExt,
            Opcode::Trunc,
            Opcode::BitCast,
            Opcode::Load,
            Opcode::Store,
            Opcode::Br,
            Opcode::Ret,
        ] {
            assert_eq!(fu_for_opcode(&op, 32), None, "{op:?}");
        }
    }

    #[test]
    fn control_lowering_uses_muxes() {
        assert_eq!(fu_for_opcode(&Opcode::Phi, 64), Some(FuKind::Mux));
        assert_eq!(fu_for_opcode(&Opcode::Select, 32), Some(FuKind::Mux));
    }

    #[test]
    fn comparators_and_shifters() {
        assert_eq!(
            fu_for_opcode(&Opcode::ICmp(IntPredicate::Slt), 32),
            Some(FuKind::IntComparator)
        );
        assert_eq!(
            fu_for_opcode(&Opcode::FCmp(FloatPredicate::Ogt), 64),
            Some(FuKind::FpComparator)
        );
        assert_eq!(fu_for_opcode(&Opcode::Shl, 32), Some(FuKind::Shifter));
    }

    #[test]
    fn float_classification() {
        assert!(FuKind::FpAddF32.is_float());
        assert!(!FuKind::IntAdder.is_float());
    }
}
