//! The hardware profile: per-FU specs, register model, persistence.

use std::collections::BTreeMap;

use crate::fu::FuKind;

/// Latency, area and power characteristics of one functional-unit kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuSpec {
    /// Cycles from issue to commit (pipeline depth).
    pub latency: u32,
    /// Cell area in square micrometres.
    pub area_um2: f64,
    /// Static leakage power in milliwatts.
    pub leakage_mw: f64,
    /// Switching energy per operation in picojoules.
    pub switch_energy_pj: f64,
    /// Internal (clock/pipeline) power in milliwatts while active.
    pub internal_power_mw: f64,
}

impl FuSpec {
    /// Dynamic energy for one activation at the given clock period.
    ///
    /// Combines per-operation switching energy with internal power dissipated
    /// over the cycles the unit is busy — the same split the paper describes
    /// for its dynamic power model.
    pub fn dynamic_energy_pj(&self, clock_period_ps: u64) -> f64 {
        let busy_ns = (self.latency as f64 * clock_period_ps as f64) / 1000.0;
        self.switch_energy_pj + self.internal_power_mw * busy_ns
    }
}

/// Single-bit register characteristics (the internal register file / pipeline
/// register model of the datapath).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegisterSpec {
    /// Area per bit in square micrometres.
    pub area_um2_per_bit: f64,
    /// Leakage per bit in milliwatts.
    pub leakage_mw_per_bit: f64,
    /// Energy per bit read in picojoules.
    pub read_energy_pj_per_bit: f64,
    /// Energy per bit written in picojoules.
    pub write_energy_pj_per_bit: f64,
}

/// A complete hardware profile: the power/area/latency basis for the whole
/// simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    specs: BTreeMap<FuKind, FuSpec>,
    /// Register-bit model.
    pub register: RegisterSpec,
}

impl HardwareProfile {
    /// The validated default 40 nm-class profile.
    ///
    /// Latencies follow the paper's defaults (3-stage floating-point adders
    /// and multipliers); area/power magnitudes follow the 40 nm functional-
    /// unit models the paper inherits from gem5-Aladdin.
    pub fn default_40nm() -> Self {
        use FuKind::*;
        let mut specs = BTreeMap::new();
        let mut put = |k: FuKind, latency: u32, area: f64, leak: f64, sw: f64, int_p: f64| {
            specs.insert(
                k,
                FuSpec {
                    latency,
                    area_um2: area,
                    leakage_mw: leak,
                    switch_energy_pj: sw,
                    internal_power_mw: int_p,
                },
            );
        };
        //            kind           lat   area(um2) leak(mW)  sw(pJ)  int(mW)
        put(IntAdder, 1, 280.0, 0.0030, 0.10, 0.012);
        put(IntMultiplier, 3, 1650.0, 0.0180, 0.95, 0.085);
        put(IntDivider, 16, 2100.0, 0.0230, 1.30, 0.110);
        put(Shifter, 1, 310.0, 0.0034, 0.11, 0.013);
        put(Bitwise, 1, 140.0, 0.0015, 0.05, 0.006);
        put(IntComparator, 0, 180.0, 0.0019, 0.06, 0.008);
        put(FpAddF32, 3, 3450.0, 0.0380, 1.80, 0.160);
        put(FpAddF64, 3, 6900.0, 0.0760, 3.60, 0.320);
        put(FpMulF32, 3, 4750.0, 0.0520, 2.60, 0.230);
        put(FpMulF64, 3, 9500.0, 0.1040, 5.20, 0.460);
        put(FpDivF32, 16, 10200.0, 0.1120, 7.80, 0.500);
        put(FpDivF64, 16, 20400.0, 0.2240, 15.6, 1.000);
        put(FpComparator, 1, 520.0, 0.0057, 0.21, 0.024);
        put(Converter, 2, 1900.0, 0.0210, 0.90, 0.090);
        put(Mux, 0, 95.0, 0.0010, 0.03, 0.004);
        HardwareProfile {
            specs,
            register: RegisterSpec {
                area_um2_per_bit: 4.2,
                leakage_mw_per_bit: 0.000045,
                read_energy_pj_per_bit: 0.0022,
                write_energy_pj_per_bit: 0.0031,
            },
        }
    }

    /// The spec for a functional-unit kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` was removed from the profile; the default profile
    /// covers all kinds.
    pub fn spec(&self, kind: FuKind) -> FuSpec {
        self.specs[&kind]
    }

    /// Overrides a spec (e.g. to model a deeper-pipelined FPU).
    pub fn set_spec(&mut self, kind: FuKind, spec: FuSpec) {
        self.specs.insert(kind, spec);
    }

    /// Issue-to-commit latency in cycles for an opcode of the given width.
    ///
    /// Chainable units (muxes, comparators) and pure wiring ops (casts,
    /// branches) have latency 0: they complete within the cycle they issue,
    /// modeling HLS operator chaining — this is the per-opcode cycle tuning
    /// the paper validates against Vivado HLS. Memory latency comes from the
    /// memory system, not this table.
    pub fn opcode_latency(&self, op: &salam_ir::Opcode, bits: u32) -> u32 {
        match crate::fu::fu_for_opcode(op, bits) {
            Some(k) => self.spec(k).latency,
            None => 0,
        }
    }

    /// Serializes the profile to a `key = value` text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, s) in &self.specs {
            out.push_str(&format!(
                "{k}.latency = {}\n{k}.area_um2 = {}\n{k}.leakage_mw = {}\n{k}.switch_energy_pj = {}\n{k}.internal_power_mw = {}\n",
                s.latency, s.area_um2, s.leakage_mw, s.switch_energy_pj, s.internal_power_mw
            ));
        }
        out.push_str(&format!(
            "register.area_um2_per_bit = {}\nregister.leakage_mw_per_bit = {}\nregister.read_energy_pj_per_bit = {}\nregister.write_energy_pj_per_bit = {}\n",
            self.register.area_um2_per_bit,
            self.register.leakage_mw_per_bit,
            self.register.read_energy_pj_per_bit,
            self.register.write_energy_pj_per_bit
        ));
        out
    }

    /// Parses a profile from the text form, starting from the default and
    /// applying overrides line by line.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileParseError`] on malformed lines or unknown keys.
    pub fn from_text(text: &str) -> Result<Self, ProfileParseError> {
        let mut p = HardwareProfile::default_40nm();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: String| ProfileParseError {
                line: ln + 1,
                message: msg,
            };
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected 'key = value'".to_string()))?;
            let key = key.trim();
            let value = value.trim();
            let (unit, field) = key
                .split_once('.')
                .ok_or_else(|| err(format!("expected 'unit.field', got '{key}'")))?;
            let num: f64 = value
                .parse()
                .map_err(|_| err(format!("bad number '{value}'")))?;
            if unit == "register" {
                match field {
                    "area_um2_per_bit" => p.register.area_um2_per_bit = num,
                    "leakage_mw_per_bit" => p.register.leakage_mw_per_bit = num,
                    "read_energy_pj_per_bit" => p.register.read_energy_pj_per_bit = num,
                    "write_energy_pj_per_bit" => p.register.write_energy_pj_per_bit = num,
                    other => return Err(err(format!("unknown register field '{other}'"))),
                }
                continue;
            }
            let kind = FuKind::from_name(unit)
                .ok_or_else(|| err(format!("unknown functional unit '{unit}'")))?;
            let spec = p.specs.get_mut(&kind).expect("default covers all kinds");
            match field {
                "latency" => spec.latency = num as u32,
                "area_um2" => spec.area_um2 = num,
                "leakage_mw" => spec.leakage_mw = num,
                "switch_energy_pj" => spec.switch_energy_pj = num,
                "internal_power_mw" => spec.internal_power_mw = num,
                other => return Err(err(format!("unknown field '{other}'"))),
            }
        }
        Ok(p)
    }
}

impl Default for HardwareProfile {
    fn default() -> Self {
        HardwareProfile::default_40nm()
    }
}

/// An error from [`HardwareProfile::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "profile parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ProfileParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::Opcode;

    #[test]
    fn default_covers_all_kinds() {
        let p = HardwareProfile::default_40nm();
        for k in FuKind::ALL {
            let s = p.spec(k);
            assert!(s.area_um2 > 0.0, "{k}");
        }
    }

    #[test]
    fn paper_default_latencies() {
        let p = HardwareProfile::default_40nm();
        assert_eq!(p.spec(FuKind::FpAddF32).latency, 3);
        assert_eq!(p.spec(FuKind::FpMulF64).latency, 3);
        assert_eq!(p.spec(FuKind::IntAdder).latency, 1);
        assert_eq!(p.opcode_latency(&Opcode::FAdd, 64), 3);
        assert_eq!(p.opcode_latency(&Opcode::Br, 32), 0);
        assert_eq!(p.opcode_latency(&Opcode::Phi, 64), 0);
    }

    #[test]
    fn double_precision_costs_more() {
        let p = HardwareProfile::default_40nm();
        assert!(p.spec(FuKind::FpAddF64).area_um2 > p.spec(FuKind::FpAddF32).area_um2);
        assert!(
            p.spec(FuKind::FpMulF64).switch_energy_pj > p.spec(FuKind::FpMulF32).switch_energy_pj
        );
    }

    #[test]
    fn dynamic_energy_grows_with_period() {
        let p = HardwareProfile::default_40nm();
        let s = p.spec(FuKind::FpMulF64);
        assert!(s.dynamic_energy_pj(2000) > s.dynamic_energy_pj(1000));
    }

    #[test]
    fn text_roundtrip() {
        let p = HardwareProfile::default_40nm();
        let text = p.to_text();
        let q = HardwareProfile::from_text(&text).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn text_overrides_apply() {
        let q = HardwareProfile::from_text("fp_add_dp.latency = 5\n# comment\n").unwrap();
        assert_eq!(q.spec(FuKind::FpAddF64).latency, 5);
        assert_eq!(q.spec(FuKind::FpAddF32).latency, 3);
    }

    #[test]
    fn parse_errors_carry_line() {
        let e = HardwareProfile::from_text("fp_add_dp.latency = 5\nnonsense\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = HardwareProfile::from_text("warp_core.latency = 5\n").unwrap_err();
        assert!(e.message.contains("unknown functional unit"));
    }
}
