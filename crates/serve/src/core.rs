//! The running server: worker threads over the pure scheduler, admission
//! control, fingerprint coalescing, the shared result cache, and metrics.
//!
//! [`ServeCore`] is deliberately transport-free — the TCP/HTTP layer in
//! [`crate::server`] is a thin shell around it, and the integration tests
//! drive it directly. Every mutable thing lives in one `Mutex<State>` with
//! a `Condvar`; workers hold the lock only to pick up and record work, and
//! simulate unlocked.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use salam::standalone::{try_run_kernel_controlled, StandaloneConfig};
use salam_dse::{
    run_replay_sweep, run_sweep, CacheId, DseOptions, EngineKind, KernelSpec, Lookup, PointOutcome,
    ReplayOptions, ResultCache, StandalonePoint, SweepJob, SweepSpec, SweepTable,
};
use salam_fault::FaultPlan;
use salam_obs::{MetricsRegistry, SpanId, TraceRecorder};
use salam_resilience::{
    BackoffPolicy, BreakerConfig, BreakerDecision, BreakerSet, CancelToken, Journal, StopReason,
};
use salam_telemetry::{flight, labeled, FlightRecorder, Histogram, JobTrace, Telemetry, TraceCtx};
use salam_verify::{errors_only, to_json as diags_to_json, verify_ir, warning_count};

use crate::job::{
    config_from_knobs, JobId, JobLookupError, JobOutcome, JobRequest, JobState, JobStatus,
    Rejection,
};
use crate::quota::TenantQuota;
use crate::sched::{Class, Dispatched, Scheduler, Task};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total concurrent simulation slots (worker threads).
    pub slots: usize,
    /// Points per sweep chunk — the scheduling granularity of batch work.
    /// Smaller chunks mean interactive jobs wait less behind a sweep.
    pub sweep_chunk: usize,
    /// The quota applied to every tenant.
    pub quota: TenantQuota,
    /// Result-cache directory; `None` uses the `salam-dse` default
    /// (`SALAM_DSE_CACHE` / `target/dse-cache`).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Disables the shared result cache.
    pub no_cache: bool,
    /// Cache size cap; `None` reads `SALAM_DSE_CACHE_MAX_BYTES`.
    pub cache_max_bytes: Option<u64>,
    /// Run `salam-verify` as a pre-admission gate (IR errors reject the
    /// job; warnings become its lint artifact).
    pub verify: bool,
    /// Terminal job records (and their report/trace/CSV artifacts) kept
    /// per tenant. Older terminal jobs are evicted oldest-completed-first,
    /// after which their status/artifacts read as "no such job" — without
    /// a cap a long-running server grows memory without bound.
    pub retain_terminal: usize,
    /// Request-scoped telemetry: per-job span trees, latency histograms,
    /// and the always-on flight recorder feeding post-mortem artifacts.
    /// On by default; disabling it removes every per-job recorder (the
    /// non-perturbation baseline the bench suite compares against).
    pub telemetry: bool,
    /// Re-runs after a worker panic before the job fails for good. The
    /// panic is already contained by `catch_unwind`; a retry buys through
    /// transient environmental failures at the cost of one more run.
    pub retries: u32,
    /// Backoff between panic retries: seeded full-jitter exponential
    /// delays, a pure function of `(seed, site, attempt)` so schedules are
    /// identical across worker counts.
    pub backoff: BackoffPolicy,
    /// Per-fingerprint circuit breaker: after repeated deadlocks/panics on
    /// the same configuration, submissions of that configuration fast-fail
    /// (`circuit-open`) until a half-open probe succeeds. `None` disables.
    pub breaker: Option<BreakerConfig>,
    /// Scheduler-queue depth above which new submissions are shed with an
    /// `overloaded` rejection and a retry hint. Sweeps shed at half this
    /// depth (batch work yields to interactive work first). `0` disables.
    pub max_pending: usize,
    /// Queue depth above which newly admitted sweeps are downgraded to the
    /// trace-replay fast path (PR 7) — graceful degradation: cheaper,
    /// slightly coarser answers instead of refusals. `0` disables.
    pub degrade_pressure: usize,
    /// Append-only job journal path. When set, every admission and
    /// terminal transition is journaled so a restarted server re-admits
    /// interrupted jobs exactly once. `None` disables crash recovery.
    pub journal: Option<std::path::PathBuf>,
    /// Socket read/write timeout for the wire layer, milliseconds
    /// (`0` disables). A stalled client cannot pin a connection thread
    /// forever.
    pub io_timeout_ms: u64,
    /// Longest accepted request line / HTTP header line, bytes. Overflow
    /// is answered with a typed `bad-request` instead of buffering an
    /// unbounded line in memory.
    pub max_line_bytes: usize,
    /// Enables the chaos hooks (the `__chaos-panic` benchmark and the
    /// injected-panic budget) used by `chaos_smoke` and the resilience
    /// tests. Off in production configurations.
    pub chaos: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slots: 2,
            sweep_chunk: 16,
            quota: TenantQuota::default(),
            cache_dir: None,
            no_cache: false,
            cache_max_bytes: None,
            verify: true,
            retain_terminal: 256,
            telemetry: true,
            retries: 1,
            backoff: BackoffPolicy::default(),
            breaker: Some(BreakerConfig::default()),
            max_pending: 512,
            degrade_pressure: 128,
            journal: None,
            io_timeout_ms: 30_000,
            max_line_bytes: 1 << 20,
            chaos: false,
        }
    }
}

/// Per-submission options beyond the request payload itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOpts {
    /// End-to-end deadline, milliseconds from admission. Queue wait
    /// counts; an expired deadline cancels the job cooperatively at the
    /// next engine cycle-batch (or chunk) boundary with a `timeout`
    /// outcome.
    pub deadline_ms: Option<u64>,
}

/// What a job actually executes. Shared immutably with workers.
#[derive(Debug)]
enum Work {
    Single {
        point: Box<StandalonePoint>,
        plan: Option<FaultPlan>,
        trace: bool,
        /// Chaos-mode job: the worker panics instead of simulating while
        /// the injected-panic budget lasts (see [`ServeCore::inject_panics`]).
        chaos: bool,
    },
    Sweep {
        name: String,
        points: Vec<StandalonePoint>,
        /// `[start, end)` point ranges, one per chunk task.
        chunks: Vec<(usize, usize)>,
        /// Route chunks through the trace-replay fast path; rows gain an
        /// `engine` column.
        replay: bool,
    },
}

/// One sweep point's finished row.
#[derive(Debug, Clone)]
struct PointRow {
    label: String,
    cycles: String,
    status: String,
    /// Engine label (`sim` / `replay` / `sim-fallback`); empty for
    /// non-replay sweeps.
    engine: String,
    ok: bool,
    invalid: bool,
}

#[derive(Debug)]
struct JobRecord {
    tenant: String,
    kind: &'static str,
    state: JobState,
    submit_seq: u64,
    complete_seq: Option<u64>,
    work: Arc<Work>,
    outcome: Option<JobOutcome>,
    lint_json: Option<String>,
    /// Sweep bookkeeping: chunks not yet finished, per-point rows.
    pending_chunks: usize,
    rows: Vec<Option<PointRow>>,
    /// Single-run fingerprint (for coalescing bookkeeping).
    fingerprint: Option<String>,
    /// Jobs coalesced onto this one; completed together with it.
    followers: Vec<JobId>,
    /// Lifecycle span tree (`None` when telemetry is off).
    trace: Option<JobTrace>,
    /// The end-to-end request span, open from submit to terminal.
    job_span: SpanId,
    /// The scheduler-queue span, open from admission to first dispatch.
    queued_span: SpanId,
    /// The worker-slot span, open from first dispatch to terminal.
    run_span: SpanId,
    /// Server-epoch-relative submit time (nanoseconds).
    submitted_ns: u64,
    /// Server-epoch-relative first dispatch time, once scheduled.
    first_dispatch_ns: Option<u64>,
    /// Post-mortem artifact JSON, composed when the job fails.
    postmortem: Option<String>,
    /// The job's cooperative cancel token (deadline-armed when the
    /// submission set one); cloned into the engine at dispatch.
    cancel: CancelToken,
}

#[derive(Debug, Default, Clone)]
struct TenantStats {
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    coalesced: u64,
    cache_hits: u64,
    /// Non-terminal jobs right now — kept incrementally so admission never
    /// scans the whole job table.
    active: u64,
    /// Terminal job ids in completion order, the retention/eviction queue.
    terminal: std::collections::VecDeque<JobId>,
}

#[derive(Debug)]
struct State {
    jobs: BTreeMap<JobId, JobRecord>,
    sched: Scheduler,
    next_id: JobId,
    submit_seq: u64,
    complete_seq: u64,
    shutdown: bool,
    /// Fingerprint → leader job, for in-flight coalescing of identical
    /// single runs.
    inflight: HashMap<String, JobId>,
    tenants: BTreeMap<String, TenantStats>,
    coalesced: u64,
    cache_hits: u64,
    sim_runs: u64,
    rejected: u64,
    /// Lifetime done/failed totals; the job table itself only retains the
    /// last [`ServeConfig::retain_terminal`] terminal records per tenant.
    done: u64,
    failed: u64,
    /// Submissions shed by overload protection.
    shed: u64,
    /// Jobs that finished with a `cancelled` / `timeout` outcome.
    cancelled: u64,
    timeouts: u64,
    /// Sweeps downgraded to the replay engine under queue pressure.
    degraded: u64,
    /// Jobs re-admitted from the journal at startup.
    recovered: u64,
    /// Submissions fast-failed by an open circuit breaker.
    breaker_fastfail: u64,
    /// The per-fingerprint circuit breakers (`None` when disabled).
    breaker: Option<BreakerSet>,
    retain_terminal: usize,
    /// Typed metrics: latency histograms (queue/run/e2e, per class and
    /// per tenant) plus counters/histograms merged in from sweep chunks.
    telemetry: Telemetry,
}

struct Inner {
    state: Mutex<State>,
    cvar: Condvar,
    cache: Option<ResultCache>,
    cfg: ServeConfig,
    /// The server's time zero; every span/histogram timestamp is
    /// nanoseconds since this instant.
    epoch: Instant,
    /// The always-on bounded ring of recent lifecycle/engine events,
    /// dumped into post-mortem artifacts. Disabled iff telemetry is off.
    flight: FlightRecorder,
    /// The append-only crash-recovery journal (`None` when disabled).
    journal: Option<Journal>,
    /// Chaos mode: worker panics left to inject (decremented per panic).
    chaos_budget: AtomicU64,
}

/// Epoch-relative now, in nanoseconds.
fn now_ns(inner: &Inner) -> u64 {
    inner.epoch.elapsed().as_nanos() as u64
}

/// The in-process server. Dropping it without [`ServeCore::shutdown`]
/// leaves worker threads parked; always shut down.
pub struct ServeCore {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Resolves a MachSuite benchmark id.
fn bench_by_id(id: &str) -> Option<machsuite::Bench> {
    machsuite::Bench::ALL
        .into_iter()
        .find(|b| b.label().eq_ignore_ascii_case(id))
}

impl ServeCore {
    /// Starts the worker pool and returns the running server.
    pub fn start(cfg: ServeConfig) -> Self {
        let cache = if cfg.no_cache {
            None
        } else {
            Some(
                ResultCache::at(
                    cfg.cache_dir
                        .clone()
                        .unwrap_or_else(ResultCache::default_dir),
                )
                .with_max_bytes(cfg.cache_max_bytes.or_else(salam_dse::env_max_bytes)),
            )
        };
        let slots = cfg.slots.max(1);
        let journal = cfg.journal.as_ref().map(|p| {
            Journal::open(p).unwrap_or_else(|e| panic!("cannot open journal {}: {e}", p.display()))
        });
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                sched: Scheduler::new(slots),
                next_id: 1,
                submit_seq: 0,
                complete_seq: 0,
                shutdown: false,
                inflight: HashMap::new(),
                tenants: BTreeMap::new(),
                coalesced: 0,
                cache_hits: 0,
                sim_runs: 0,
                rejected: 0,
                done: 0,
                failed: 0,
                shed: 0,
                cancelled: 0,
                timeouts: 0,
                degraded: 0,
                recovered: 0,
                breaker_fastfail: 0,
                breaker: cfg.breaker.clone().map(BreakerSet::new),
                retain_terminal: cfg.retain_terminal.max(1),
                telemetry: Telemetry::new(),
            }),
            cvar: Condvar::new(),
            cache,
            epoch: Instant::now(),
            flight: if cfg.telemetry {
                FlightRecorder::enabled(flight::DEFAULT_CAPACITY)
            } else {
                FlightRecorder::disabled()
            },
            journal,
            chaos_budget: AtomicU64::new(0),
            cfg,
        });
        let core = ServeCore {
            inner,
            workers: Mutex::new(Vec::new()),
        };
        // Recover interrupted jobs from the journal *before* the workers
        // exist: re-admission must see the pre-crash job ids unclaimed.
        core.recover_from_journal();
        let workers = (0..slots)
            .map(|_| {
                let inner = core.inner.clone();
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        *core.workers.lock().unwrap() = workers;
        core
    }

    /// Replays the journal: every admitted job without a terminal record is
    /// re-admitted under its original id, then the journal is compacted to
    /// exactly those open admissions (so recovery is idempotent and the
    /// file does not grow without bound across restarts).
    fn recover_from_journal(&self) {
        let Some(journal) = &self.inner.journal else {
            return;
        };
        let lines = match Journal::read_lines(journal.path()) {
            Ok(lines) => lines,
            Err(e) => {
                eprintln!("salam-serve: warning: journal unreadable, starting empty: {e}");
                return;
            }
        };
        // Fold the log: later events win, a terminal record closes the id.
        let mut open: BTreeMap<JobId, (String, crate::wire::JournalAdmit)> = BTreeMap::new();
        let mut max_id = 0;
        for line in &lines {
            match crate::wire::parse_journal_line(line) {
                Ok(crate::wire::JournalEvent::Admit(admit)) => {
                    max_id = max_id.max(admit.id);
                    open.insert(admit.id, (line.clone(), admit));
                }
                Ok(crate::wire::JournalEvent::Terminal { id }) => {
                    max_id = max_id.max(id);
                    open.remove(&id);
                }
                Err(e) => eprintln!("salam-serve: warning: skipping journal line: {e}"),
            }
        }
        // Compact first: the surviving admit lines *are* the re-append, so
        // a crash during recovery still re-admits exactly these jobs.
        let keep: Vec<String> = open.values().map(|(line, _)| line.clone()).collect();
        if let Err(e) = journal.rewrite(&keep) {
            eprintln!("salam-serve: warning: journal compaction failed: {e}");
        }
        {
            let mut st = self.inner.state.lock().unwrap();
            st.next_id = st.next_id.max(max_id + 1);
        }
        let mut recovered = 0u64;
        for (id, (_, admit)) in open {
            let opts = SubmitOpts {
                deadline_ms: admit.deadline_ms,
            };
            match self.admit(&admit.tenant, admit.job, opts, Some(id)) {
                Ok(_) => recovered += 1,
                Err(r) => {
                    eprintln!("salam-serve: warning: journaled job {id} not re-admitted: {r}")
                }
            }
        }
        if recovered > 0 {
            let mut st = self.inner.state.lock().unwrap();
            st.recovered = recovered;
            drop(st);
            self.inner
                .flight
                .record(0, "recovery", format!("recovered jobs={recovered}"));
        }
    }

    /// Admits (or rejects) one job for `tenant`.
    ///
    /// # Errors
    ///
    /// A typed [`Rejection`]; rejected submissions never become jobs.
    pub fn submit(&self, tenant: &str, req: JobRequest) -> Result<JobId, Rejection> {
        self.submit_with(tenant, req, SubmitOpts::default())
    }

    /// [`ServeCore::submit`] with per-submission options (deadline).
    ///
    /// # Errors
    ///
    /// A typed [`Rejection`]; rejected submissions never become jobs.
    pub fn submit_with(
        &self,
        tenant: &str,
        req: JobRequest,
        opts: SubmitOpts,
    ) -> Result<JobId, Rejection> {
        self.admit(tenant, req, opts, None)
    }

    /// The admission pipeline. With `force_id` (journal recovery) the
    /// admission gates — shutdown, shedding, quota, breaker — are skipped:
    /// the job was already admitted once, and recovery must not lose it.
    fn admit(
        &self,
        tenant: &str,
        req: JobRequest,
        opts: SubmitOpts,
        force_id: Option<JobId>,
    ) -> Result<JobId, Rejection> {
        let gated = force_id.is_none();
        let prepared = self.prepare(&req);
        let mut st = self.inner.state.lock().unwrap();
        let reject = |st: &mut State, r: Rejection| {
            st.rejected += 1;
            st.tenants.entry(tenant.to_string()).or_default().rejected += 1;
            self.inner.flight.record(
                0,
                "admission",
                format!("reject tenant={tenant} code={}", r.code),
            );
            Err(r)
        };
        if gated {
            if st.shutdown {
                return reject(
                    &mut st,
                    Rejection::new("shutting-down", "server is shutting down"),
                );
            }
            // Overload protection: a bounded accept queue. Sweeps shed at
            // half depth — batch work yields headroom to interactive work
            // before anyone is refused outright.
            let cap = self.inner.cfg.max_pending;
            if cap > 0 {
                let limit = if matches!(req, JobRequest::Sweep { .. }) {
                    cap / 2
                } else {
                    cap
                };
                let pending = st.sched.queued();
                if pending >= limit.max(1) {
                    st.shed += 1;
                    let retry_after_ms = ((pending as u64) * 20).clamp(100, 2000);
                    return reject(
                        &mut st,
                        Rejection::new(
                            "overloaded",
                            format!("server overloaded ({pending} tasks queued, limit {limit})"),
                        )
                        .with_retry_after_ms(retry_after_ms),
                    );
                }
            }
            let active = st.tenants.get(tenant).map_or(0, |s| s.active) as usize;
            if active >= self.inner.cfg.quota.max_queued {
                return reject(
                    &mut st,
                    Rejection::new(
                        "quota-queued",
                        format!(
                            "tenant '{tenant}' already has {active} jobs in flight (max {})",
                            self.inner.cfg.quota.max_queued
                        ),
                    ),
                );
            }
        }
        let (mut work, lint_json) = match prepared {
            Ok(p) => p,
            Err(r) => return reject(&mut st, r),
        };

        // The coalescing/breaker identity, computed up front so the breaker
        // can veto before any state is allocated. Chaos jobs get their own
        // fingerprint space — they must never coalesce with real runs.
        let fingerprint = match &work {
            Work::Single {
                point,
                plan,
                trace: false,
                chaos,
            } => {
                let fp = single_fingerprint(point, plan.as_ref());
                Some(if *chaos {
                    format!("chaos\u{0}{fp}")
                } else {
                    fp
                })
            }
            _ => None,
        };
        if gated {
            if let (Some(breaker), Some(fp)) = (st.breaker.as_mut(), fingerprint.as_ref()) {
                let (decision, transition) = breaker.admit(fp);
                if let Some(t) = transition {
                    self.inner
                        .flight
                        .record(0, "breaker", format!("fp={} {t}", fp8(fp)));
                }
                match decision {
                    BreakerDecision::Allow => {}
                    BreakerDecision::Probe => {
                        self.inner
                            .flight
                            .record(0, "breaker", format!("fp={} probe", fp8(fp)));
                    }
                    BreakerDecision::FastFail { retry_after_ms } => {
                        st.breaker_fastfail += 1;
                        return reject(
                            &mut st,
                            Rejection::new(
                                "circuit-open",
                                "circuit breaker open for this configuration \
                                 (repeated deadlocks/panics)",
                            )
                            .with_retry_after_ms(retry_after_ms),
                        );
                    }
                }
            }
            // Graceful degradation: under queue pressure, new sweeps take
            // the replay fast path — a cheaper answer beats a shed one.
            let pressure = self.inner.cfg.degrade_pressure;
            if pressure > 0 && st.sched.queued() >= pressure {
                if let Work::Sweep { replay, .. } = &mut work {
                    if !*replay {
                        *replay = true;
                        st.degraded += 1;
                        self.inner.flight.record(
                            0,
                            "admission",
                            "degrade sweep to replay".to_string(),
                        );
                    }
                }
            }
        }

        let id = match force_id {
            Some(id) => id,
            None => st.next_id,
        };
        st.next_id = st.next_id.max(id + 1);
        st.submit_seq += 1;
        let seq = st.submit_seq;
        let stats = st.tenants.entry(tenant.to_string()).or_default();
        stats.submitted += 1;
        stats.active += 1;

        // Journal the admission before the job becomes runnable: a crash
        // after this line re-admits the job, a crash before it rejects the
        // submission — either way, never a silently lost job.
        if gated {
            if let Some(journal) = &self.inner.journal {
                let line = crate::wire::journal_admit_line(id, tenant, opts.deadline_ms, &req);
                if let Err(e) = journal.append(&line) {
                    eprintln!("salam-serve: warning: journal append failed: {e}");
                }
            }
        }

        let now = now_ns(&self.inner);
        let mut record = JobRecord {
            tenant: tenant.to_string(),
            kind: req.kind(),
            state: JobState::Queued,
            submit_seq: seq,
            complete_seq: None,
            work: Arc::new(work),
            outcome: None,
            lint_json,
            pending_chunks: 0,
            rows: Vec::new(),
            fingerprint: None,
            followers: Vec::new(),
            trace: None,
            job_span: SpanId::INVALID,
            queued_span: SpanId::INVALID,
            run_span: SpanId::INVALID,
            submitted_ns: now,
            first_dispatch_ns: None,
            postmortem: None,
            cancel: CancelToken::with_deadline_opt(opts.deadline_ms),
        };
        if self.inner.cfg.telemetry {
            let jt = JobTrace::new(id);
            record.job_span = jt.begin(jt.request, &format!("job {id} ({})", record.kind), now);
            record.trace = Some(jt);
        }
        self.inner.flight.record(
            TraceCtx::for_job(id).trace_id,
            "job",
            format!("submit id={id} tenant={tenant} kind={}", record.kind),
        );
        match record.work.as_ref() {
            Work::Single { .. } => {
                // Coalesce onto an identical in-flight run: the follower
                // never takes a slot; it completes with the leader.
                let fp = fingerprint;
                record.fingerprint = fp.clone();
                let leader = fp.as_ref().and_then(|f| st.inflight.get(f).copied());
                if let Some(leader_id) = leader {
                    st.coalesced += 1;
                    st.tenants.entry(tenant.to_string()).or_default().coalesced += 1;
                    if let Some(jt) = record.trace.clone() {
                        jt.instant(jt.request, "coalesced", now);
                    }
                    st.jobs.insert(id, record);
                    st.jobs
                        .get_mut(&leader_id)
                        .expect("leader exists while in inflight map")
                        .followers
                        .push(id);
                } else {
                    if let Some(f) = fp {
                        st.inflight.insert(f, id);
                    }
                    if let Some(jt) = record.trace.clone() {
                        jt.instant(jt.request, "admitted", now);
                        record.queued_span = jt.begin(jt.sched, "queued", now);
                    }
                    st.jobs.insert(id, record);
                    st.sched.push(Task {
                        job: id,
                        tenant: tenant.to_string(),
                        class: Class::Regular,
                        chunk: 0,
                        seq,
                        tenant_slots: self.inner.cfg.quota.max_running,
                    });
                }
            }
            Work::Sweep { chunks, points, .. } => {
                record.pending_chunks = chunks.len();
                record.rows = vec![None; points.len()];
                let n = chunks.len();
                if let Some(jt) = record.trace.clone() {
                    jt.instant(jt.request, "admitted", now);
                    record.queued_span = jt.begin(jt.sched, "queued", now);
                }
                st.jobs.insert(id, record);
                for chunk in 0..n {
                    st.sched.push(Task {
                        job: id,
                        tenant: tenant.to_string(),
                        class: Class::Cpu,
                        chunk,
                        seq,
                        tenant_slots: self.inner.cfg.quota.max_running,
                    });
                }
            }
        }
        drop(st);
        self.inner.cvar.notify_all();
        Ok(id)
    }

    /// Validates and lowers a request outside the state lock.
    #[allow(clippy::type_complexity)]
    fn prepare(&self, req: &JobRequest) -> Result<(Work, Option<String>), Rejection> {
        let gate_ir = |kernel: &machsuite::BuiltKernel| -> Result<Option<String>, Rejection> {
            if !self.inner.cfg.verify {
                return Ok(None);
            }
            let diags = verify_ir(&kernel.func);
            let errors = errors_only(diags.clone());
            if !errors.is_empty() {
                return Err(Rejection {
                    code: "verify",
                    message: format!(
                        "static verification rejected @{} ({} error(s))",
                        kernel.name,
                        errors.len()
                    ),
                    diagnostics: errors,
                    retry_after_ms: None,
                });
            }
            // Flow gate: a range-proven out-of-bounds access (`F001`) is a
            // wrong result on every path, so the job is rejected before it
            // ever occupies a batch slot.
            let facts = salam_flow::analyze(&kernel.func, &kernel.args);
            let (lo, hi) = kernel.footprint;
            let region = salam_verify::MemRegion {
                lo,
                hi,
                label: "footprint".into(),
            };
            let flow_errors = errors_only(salam_verify::check_bounds_flow(
                &kernel.func,
                &facts,
                &kernel.args,
                &[region],
            ));
            if !flow_errors.is_empty() {
                return Err(Rejection {
                    code: "flow",
                    message: format!(
                        "dataflow analysis rejected @{} ({} provably out-of-bounds \
                         access(es))",
                        kernel.name,
                        flow_errors.len()
                    ),
                    diagnostics: flow_errors,
                    retry_after_ms: None,
                });
            }
            Ok((warning_count(&diags) > 0).then(|| diags_to_json(&diags)))
        };
        let single = |bench: &str, knobs: &[(String, u64)]| {
            let b = bench_by_id(bench).ok_or_else(|| {
                Rejection::new("bad-request", format!("unknown benchmark '{bench}'"))
            })?;
            let config = config_from_knobs(knobs).map_err(|m| Rejection::new("bad-request", m))?;
            let point = StandalonePoint {
                kernel: KernelSpec::bench(b),
                config,
                coords: Vec::new(),
            };
            // The same static screen the sweep engine applies per point.
            point.validate().map_err(|d| Rejection {
                code: "invalid-config",
                message: d.message.clone(),
                diagnostics: vec![d],
                retry_after_ms: None,
            })?;
            let lint = gate_ir(&point.kernel.build())?;
            Ok((point, lint))
        };
        match req {
            JobRequest::Kernel {
                bench,
                knobs,
                trace,
            } => {
                // Chaos mode only: `__chaos-panic` runs a stand-in kernel
                // whose worker panics while the injected budget lasts.
                let chaos = self.inner.cfg.chaos && bench == "__chaos-panic";
                let (point, lint) = single(if chaos { "gemm" } else { bench }, knobs)?;
                Ok((
                    Work::Single {
                        point: Box::new(point),
                        plan: None,
                        trace: *trace,
                        chaos,
                    },
                    lint,
                ))
            }
            JobRequest::Faulted { bench, knobs, plan } => {
                let (point, lint) = single(bench, knobs)?;
                // Flow gate: a plan that certainly drops every memory
                // response wedges the very first access — the run can only
                // end in a watchdog timeout, so burning a simulation slot
                // on it is pointless (`F004`).
                if self.inner.cfg.verify && plan.mem_drop_rate >= 1.0 {
                    let k = point.kernel.build();
                    let facts = salam_flow::analyze(&k.func, &k.args);
                    let pred = facts.predict_deadlock(
                        &k.func,
                        &salam_flow::HazardSpec {
                            mem_drop_rate: plan.mem_drop_rate,
                        },
                    );
                    if pred.verdict == salam_flow::DeadlockVerdict::Deadlock {
                        return Err(Rejection {
                            code: "flow-deadlock",
                            message: format!(
                                "fault plan provably deadlocks @{}: {}",
                                k.name, pred.description
                            ),
                            diagnostics: vec![salam_verify::Diagnostic::warning(
                                salam_verify::codes::F004,
                                salam_verify::Span::default(),
                                pred.description,
                            )],
                            retry_after_ms: None,
                        });
                    }
                }
                Ok((
                    Work::Single {
                        point: Box::new(point),
                        plan: Some(*plan),
                        trace: false,
                        chaos: false,
                    },
                    lint,
                ))
            }
            JobRequest::Sweep {
                name,
                kernels,
                axes,
                replay,
            } => {
                if kernels.is_empty() {
                    return Err(Rejection::new("bad-request", "sweep has no kernels"));
                }
                let mut spec = SweepSpec::new(name.clone(), StandaloneConfig::default());
                let mut lint = None;
                for k in kernels {
                    let b = bench_by_id(k).ok_or_else(|| {
                        Rejection::new("bad-request", format!("unknown benchmark '{k}'"))
                    })?;
                    lint = gate_ir(&b.build_standard())?.or(lint);
                    spec = spec.kernel(KernelSpec::bench(b));
                }
                for ax in axes {
                    let axis = ax.to_axis().map_err(|m| Rejection::new("bad-request", m))?;
                    spec = spec.axis(axis);
                }
                let count = spec.point_count();
                let max = self.inner.cfg.quota.max_sweep_points;
                if count > max {
                    return Err(Rejection::new(
                        "quota-sweep-points",
                        format!("sweep enumerates {count} points (max {max})"),
                    ));
                }
                let points = spec.points();
                let chunk = self.inner.cfg.sweep_chunk.max(1);
                let chunks: Vec<(usize, usize)> = (0..points.len())
                    .step_by(chunk)
                    .map(|a| (a, (a + chunk).min(points.len())))
                    .collect();
                Ok((
                    Work::Sweep {
                        name: name.clone(),
                        points,
                        chunks,
                        replay: *replay,
                    },
                    lint,
                ))
            }
        }
    }

    fn snapshot(st: &State, id: JobId) -> Option<JobStatus> {
        st.jobs.get(&id).map(|j| JobStatus {
            id,
            tenant: j.tenant.clone(),
            kind: j.kind,
            state: j.state,
            submit_seq: j.submit_seq,
            complete_seq: j.complete_seq,
            detail: j.outcome.as_ref().map(JobOutcome::detail),
        })
    }

    /// Why `id` is missing from the job table: ids below the allocation
    /// watermark were real jobs whose terminal record has been evicted;
    /// anything else was never allocated.
    fn lookup_err(st: &State, id: JobId) -> JobLookupError {
        if id > 0 && id < st.next_id {
            JobLookupError::Evicted
        } else {
            JobLookupError::NotFound
        }
    }

    /// The job's current status.
    ///
    /// # Errors
    ///
    /// [`JobLookupError::Evicted`] for a completed job whose record aged
    /// out of retention, [`JobLookupError::NotFound`] for an unknown id.
    pub fn status(&self, id: JobId) -> Result<JobStatus, JobLookupError> {
        let st = self.inner.state.lock().unwrap();
        Self::snapshot(&st, id).ok_or_else(|| Self::lookup_err(&st, id))
    }

    /// Blocks until the job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// As [`ServeCore::status`] — an evicted id returns immediately with
    /// [`JobLookupError::Evicted`] instead of parking the caller forever
    /// (the record can be evicted *while* waiting; the wake-up after its
    /// completion observes the eviction and reports it).
    pub fn wait(&self, id: JobId) -> Result<JobStatus, JobLookupError> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(&id) {
                None => return Err(Self::lookup_err(&st, id)),
                Some(j) if j.state.is_terminal() => {
                    return Self::snapshot(&st, id).ok_or(JobLookupError::NotFound)
                }
                Some(_) => st = self.inner.cvar.wait(st).unwrap(),
            }
        }
    }

    /// Requests cooperative cancellation of a job. Terminal jobs return
    /// their status unchanged (idempotent). Queued work is failed
    /// immediately with a `cancelled` outcome; running work is stopped at
    /// the engine's next cycle-batch (or the sweep's next chunk) boundary.
    /// Cancelling a coalesced leader first promotes a follower so the
    /// other tenants' identical jobs still complete.
    ///
    /// # Errors
    ///
    /// As [`ServeCore::status`].
    pub fn cancel(&self, id: JobId) -> Result<JobStatus, JobLookupError> {
        let mut st = self.inner.state.lock().unwrap();
        let (state, work, fp, token) = {
            let Some(j) = st.jobs.get(&id) else {
                return Err(Self::lookup_err(&st, id));
            };
            if j.state.is_terminal() {
                return Self::snapshot(&st, id).ok_or(JobLookupError::NotFound);
            }
            (
                j.state,
                j.work.clone(),
                j.fingerprint.clone(),
                j.cancel.clone(),
            )
        };
        self.inner.flight.record(
            TraceCtx::for_job(id).trace_id,
            "job",
            format!("cancel id={id} state={}", state.name()),
        );
        let cancelled_now = JobOutcome::Error {
            label: "cancelled".to_string(),
            message: "cancelled before the run started".to_string(),
        };
        match work.as_ref() {
            Work::Sweep { .. } => {
                if state == JobState::Queued {
                    // No chunk has a slot yet: drop the queued tasks and
                    // finish immediately.
                    st.sched.remove_job(id);
                    finish_job(
                        &mut st,
                        &self.inner,
                        id,
                        cancelled_now,
                        false,
                        &SingleExtras::NONE,
                    );
                } else {
                    // Running chunks stop at their next boundary; queued
                    // chunks observe the token at dispatch and skip.
                    token.cancel();
                }
            }
            Work::Single { .. } => {
                let is_leader = match fp.as_ref() {
                    Some(f) => st.inflight.get(f) == Some(&id),
                    // Uncoalescable (traced) singles own their task.
                    None => true,
                };
                if !is_leader {
                    // A follower: detach from its leader and finish alone.
                    let leader = fp.as_ref().and_then(|f| st.inflight.get(f).copied());
                    if let Some(l) = leader.and_then(|l| st.jobs.get_mut(&l)) {
                        l.followers.retain(|f| *f != id);
                    }
                    finish_job(
                        &mut st,
                        &self.inner,
                        id,
                        cancelled_now,
                        false,
                        &SingleExtras::NONE,
                    );
                } else if state == JobState::Queued {
                    st.sched.remove_job(id);
                    promote_follower(&mut st, &self.inner, id);
                    finish_job(
                        &mut st,
                        &self.inner,
                        id,
                        cancelled_now,
                        false,
                        &SingleExtras::NONE,
                    );
                } else {
                    // Running: stop the engine cooperatively; followers
                    // re-run under a promoted leader rather than inherit
                    // this job's cancellation.
                    promote_follower(&mut st, &self.inner, id);
                    token.cancel();
                }
            }
        }
        let snap = Self::snapshot(&st, id).ok_or(JobLookupError::NotFound);
        drop(st);
        self.inner.cvar.notify_all();
        snap
    }

    /// `true` while the server accepts work — the `/readyz` signal. Flips
    /// false permanently once shutdown begins.
    pub fn ready(&self) -> bool {
        !self.inner.state.lock().unwrap().shutdown
    }

    /// The configuration this core was started with (the transport layer
    /// reads its socket limits from here).
    pub fn config(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    /// Arms the chaos panic budget: the next `n` chaos-job runs panic in
    /// the worker (contained by `catch_unwind`, subject to retry and the
    /// circuit breaker like any real panic). No-op jobs unless
    /// [`ServeConfig::chaos`] is set.
    pub fn inject_panics(&self, n: u64) {
        self.inner.chaos_budget.store(n, Ordering::SeqCst);
    }

    /// The circuit breaker's transition log (`<fp8>: from->to` lines, in
    /// order) — deterministic for a fixed submission sequence, which the
    /// resilience tests assert across worker counts.
    pub fn breaker_log(&self) -> Vec<String> {
        let st = self.inner.state.lock().unwrap();
        st.breaker
            .as_ref()
            .map_or_else(Vec::new, |b| b.log().to_vec())
    }

    /// Fetches one artifact of a terminal job: `report`, `trace`, `csv`,
    /// `table`, `error`, `lint`, or `postmortem`.
    ///
    /// # Errors
    ///
    /// A message when the job/artifact combination does not exist (yet);
    /// an evicted job's message says so rather than "no job".
    pub fn artifact(&self, id: JobId, kind: &str) -> Result<String, String> {
        let st = self.inner.state.lock().unwrap();
        let j = st
            .jobs
            .get(&id)
            .ok_or_else(|| Self::lookup_err(&st, id).message(id))?;
        if kind == "lint" {
            return Ok(j.lint_json.clone().unwrap_or_else(|| "[]".to_string()));
        }
        if kind == "postmortem" {
            return j
                .postmortem
                .clone()
                .ok_or_else(|| format!("job {id} has no post-mortem"));
        }
        let outcome = j
            .outcome
            .as_ref()
            .ok_or_else(|| format!("job {id} is {}", j.state.name()))?;
        match (kind, outcome) {
            ("report", JobOutcome::Report { json, .. }) => Ok(json.clone()),
            ("trace", JobOutcome::Report { trace_json, .. }) => trace_json
                .clone()
                .ok_or_else(|| format!("job {id} was not traced")),
            ("csv", JobOutcome::Sweep { csv, .. }) => Ok(csv.clone()),
            ("table", JobOutcome::Sweep { json, .. }) => Ok(json.clone()),
            ("error", JobOutcome::Error { label, message }) => Ok(format!(
                "{{\"label\": \"{}\", \"message\": \"{}\"}}",
                crate::wire::escape(label),
                crate::wire::escape(message)
            )),
            _ => Err(format!("job {id} ({}) has no '{kind}' artifact", j.kind)),
        }
    }

    /// A full metrics dump: job/tenant counters plus cache occupancy and
    /// the typed telemetry (histograms expand to `.count/.p50/…` gauges).
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics_registry(true)
    }

    /// The Prometheus text exposition of the same metrics: counters and
    /// gauges as scalar samples, latency histograms as cumulative
    /// `_bucket`/`_sum`/`_count` series. Served as
    /// `GET /metrics?format=prom` and the `{"op":"metrics","format":"prom"}`
    /// wire request.
    pub fn metrics_prom(&self) -> String {
        // The registry must not include the telemetry expansion here: the
        // histograms are emitted natively, and a `…_count` gauge next to a
        // `…_count` histogram sample would be a duplicate family.
        let reg = self.metrics_registry(false);
        let st = self.inner.state.lock().unwrap();
        salam_telemetry::prom::encode_with_gauges(&st.telemetry, &reg)
    }

    fn metrics_registry(&self, include_telemetry: bool) -> MetricsRegistry {
        let st = self.inner.state.lock().unwrap();
        let mut reg = MetricsRegistry::new();
        // done/failed are lifetime counters — terminal records past the
        // retention cap leave the job table, so counting states would
        // undercount. queued/running are never evicted.
        let (queued, running) = st.jobs.values().fold((0u64, 0u64), |acc, j| match j.state {
            JobState::Queued => (acc.0 + 1, acc.1),
            JobState::Running => (acc.0, acc.1 + 1),
            _ => acc,
        });
        reg.set("serve.jobs.submitted", st.submit_seq as f64);
        reg.set("serve.jobs.done", st.done as f64);
        reg.set("serve.jobs.failed", st.failed as f64);
        reg.set("serve.jobs.queued", queued as f64);
        reg.set("serve.jobs.running", running as f64);
        reg.set("serve.jobs.rejected", st.rejected as f64);
        reg.set("serve.jobs.coalesced", st.coalesced as f64);
        reg.set("serve.jobs.shed", st.shed as f64);
        reg.set("serve.jobs.cancelled", st.cancelled as f64);
        reg.set("serve.jobs.timeout", st.timeouts as f64);
        reg.set("serve.jobs.degraded", st.degraded as f64);
        reg.set("serve.jobs.recovered", st.recovered as f64);
        reg.set("serve.breaker.fastfail", st.breaker_fastfail as f64);
        reg.set("serve.cache_hits", st.cache_hits as f64);
        reg.set("serve.sim_runs", st.sim_runs as f64);
        for (t, s) in &st.tenants {
            let p = format!("serve.tenant.{t}");
            reg.set(&format!("{p}.submitted"), s.submitted as f64);
            reg.set(&format!("{p}.completed"), s.completed as f64);
            reg.set(&format!("{p}.failed"), s.failed as f64);
            reg.set(&format!("{p}.rejected"), s.rejected as f64);
            reg.set(&format!("{p}.coalesced"), s.coalesced as f64);
            reg.set(&format!("{p}.cache_hits"), s.cache_hits as f64);
        }
        if let Some(cache) = &self.inner.cache {
            cache.export_metrics(&mut reg, "serve.cache");
        }
        if include_telemetry {
            st.telemetry.export_to_registry(&mut reg);
            reg.set("serve.flight.dropped", self.inner.flight.dropped() as f64);
        }
        reg
    }

    /// The stable one-line summary CI asserts on. The leading counters are
    /// frozen (scripts key on them); end-to-end latency percentiles and
    /// the resilience counters ride at the end (zeros until a job
    /// completes or with telemetry off). Format, documented in DESIGN.md
    /// §11: `jobs=N done=N failed=N rejected=N coalesced=N cache_hits=N
    /// sim_runs=N e2e_p50_ms=F e2e_p99_ms=F shed=N cancelled=N`.
    pub fn stats_line(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        let (p50, p99) = st
            .telemetry
            .hist("serve.latency.e2e_us")
            .map_or((0, 0), |h| (h.p50(), h.p99()));
        format!(
            "jobs={} done={} failed={} rejected={} coalesced={} cache_hits={} sim_runs={} \
             e2e_p50_ms={:.3} e2e_p99_ms={:.3} shed={} cancelled={}",
            st.submit_seq,
            st.done,
            st.failed,
            st.rejected,
            st.coalesced,
            st.cache_hits,
            st.sim_runs,
            p50 as f64 / 1000.0,
            p99 as f64 / 1000.0,
            st.shed,
            st.cancelled + st.timeouts,
        )
    }

    /// Per-class end-to-end latency percentiles as JSON — the payload the
    /// `salam_serve --bench-out` flag writes at shutdown for CI's workflow
    /// artifact.
    pub fn latency_summary_json(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        let block = |h: &Histogram| {
            format!(
                "{{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                h.count(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            )
        };
        let mut classes = String::new();
        for (key, h) in st.telemetry.hists() {
            let Some(class) = key
                .strip_prefix("serve.latency.e2e_us{class=\"")
                .and_then(|rest| rest.strip_suffix("\"}"))
            else {
                continue;
            };
            if !classes.is_empty() {
                classes.push_str(", ");
            }
            classes.push_str(&format!("\"{}\": {}", crate::wire::escape(class), block(h)));
        }
        let total = st
            .telemetry
            .hist("serve.latency.e2e_us")
            .map_or_else(|| block(&Histogram::new()), block);
        format!("{{\"total\": {total}, \"classes\": {{{classes}}}}}")
    }

    /// Stops accepting jobs, lets in-flight tasks finish, and joins the
    /// workers. Jobs whose queued tasks never ran are failed with a
    /// `shutdown` outcome — so every job is terminal afterwards and no
    /// [`ServeCore::wait`] caller parks forever. Idempotent; later calls
    /// are no-ops.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
        }
        self.inner.cvar.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Workers are gone; whatever is still queued can never run.
        let mut st = self.inner.state.lock().unwrap();
        let abandoned: Vec<JobId> = st
            .jobs
            .iter()
            .filter(|(_, j)| !j.state.is_terminal())
            .map(|(id, _)| *id)
            .collect();
        for id in abandoned {
            if let Some(j) = st.jobs.get_mut(&id) {
                if let Some(fp) = j.fingerprint.take() {
                    st.inflight.remove(&fp);
                }
            }
            finish_job(
                &mut st,
                &self.inner,
                id,
                JobOutcome::Error {
                    label: "shutdown".to_string(),
                    message: "server shut down before the job ran".to_string(),
                },
                false,
                &SingleExtras::NONE,
            );
        }
        drop(st);
        self.inner.cvar.notify_all();
    }
}

/// The coalescing identity of one single run: the cache identity plus the
/// fault-plan fingerprint (a faulted run must never coalesce with a clean
/// one).
fn single_fingerprint(point: &StandalonePoint, plan: Option<&FaultPlan>) -> String {
    let id = point.cache_id();
    match plan {
        None => format!("{}\u{0}{}", id.domain, id.canon),
        Some(p) => format!("{}\u{0}{}\u{0}{}", id.domain, id.canon, p.canonical_repr()),
    }
}

/// The cache identity of a faulted single run: its own domain so clean and
/// faulted results can never shadow each other.
fn faulted_cache_id(point: &StandalonePoint, plan: &FaultPlan) -> CacheId {
    CacheId::new(
        format!("serve-faulted/{}", point.kernel.id),
        format!(
            "{}\nfault: {}",
            point.config.canonical_repr(),
            plan.canonical_repr()
        ),
    )
}

/// Short hex digest of a fingerprint for breaker log / flight lines.
fn fp8(fp: &str) -> String {
    format!(
        "{:08x}",
        (salam_resilience::fnv1a64(fp.as_bytes()) >> 32) as u32
    )
}

/// Promotes the first follower of a coalesced single to leader: it takes
/// over the in-flight entry, inherits the remaining followers, and gets
/// its own scheduler task (re-running the simulation fresh — it must not
/// inherit the old leader's cancellation). With no followers, the
/// in-flight entry is simply dropped so later identical submissions start
/// fresh rather than coalescing onto a cancelled job.
fn promote_follower(st: &mut State, inner: &Inner, leader: JobId) {
    let (mut followers, fp) = {
        let Some(l) = st.jobs.get_mut(&leader) else {
            return;
        };
        (std::mem::take(&mut l.followers), l.fingerprint.take())
    };
    let Some(fp) = fp else {
        return;
    };
    if st.inflight.get(&fp) == Some(&leader) {
        st.inflight.remove(&fp);
    }
    if followers.is_empty() {
        return;
    }
    let new_leader = followers.remove(0);
    let (tenant, seq) = {
        let Some(n) = st.jobs.get_mut(&new_leader) else {
            return;
        };
        n.followers = followers;
        (n.tenant.clone(), n.submit_seq)
    };
    st.inflight.insert(fp, new_leader);
    st.sched.push(Task {
        job: new_leader,
        tenant,
        class: Class::Regular,
        chunk: 0,
        seq,
        tenant_slots: inner.cfg.quota.max_running,
    });
    inner.flight.record(
        TraceCtx::for_job(new_leader).trace_id,
        "job",
        format!("promote id={new_leader} from={leader}"),
    );
}

fn worker_loop(inner: &Inner) {
    loop {
        let dispatched: Dispatched = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(d) = st.sched.dispatch() {
                    on_dispatch(&mut st, inner, &d.task);
                    break d;
                }
                st = inner.cvar.wait(st).unwrap();
            }
        };
        let ctx = {
            let st = inner.state.lock().unwrap();
            st.jobs
                .get(&dispatched.task.job)
                .map(|j| (j.work.clone(), j.cancel.clone()))
        };
        let Some((work, cancel)) = ctx else {
            // Job vanished (a dispatched task's job is never evicted while
            // non-terminal, so this is belt-and-braces) — return the slot.
            let mut st = inner.state.lock().unwrap();
            st.sched.task_done(&dispatched);
            inner.cvar.notify_all();
            continue;
        };
        match work.as_ref() {
            Work::Single {
                point,
                plan,
                trace,
                chaos,
            } => {
                let run = run_single(
                    inner,
                    dispatched.task.job,
                    point,
                    plan.as_ref(),
                    *trace,
                    *chaos,
                    &cancel,
                    TraceCtx::for_job(dispatched.task.job).trace_id,
                );
                let mut st = inner.state.lock().unwrap();
                if run.from_cache {
                    st.cache_hits += 1;
                } else {
                    st.sim_runs += 1;
                }
                let extras = SingleExtras {
                    watchdog_json: run.watchdog_json.as_deref(),
                    engine_rec: run.engine_rec.as_ref(),
                };
                complete_single(
                    &mut st,
                    inner,
                    dispatched.task.job,
                    run.outcome,
                    run.from_cache,
                    &extras,
                );
                st.sched.task_done(&dispatched);
                drop(st);
                inner.cvar.notify_all();
            }
            Work::Sweep {
                points,
                chunks,
                replay,
                ..
            } => {
                let (a, b) = chunks[dispatched.task.chunk];
                // Cooperative cancellation between chunks: a stopped job's
                // remaining chunks record skipped rows instead of running.
                if let Some(reason) = cancel.poll() {
                    let mut st = inner.state.lock().unwrap();
                    record_chunk_skipped(
                        &mut st,
                        inner,
                        dispatched.task.job,
                        work.as_ref(),
                        a,
                        b,
                        reason,
                    );
                    st.sched.task_done(&dispatched);
                    drop(st);
                    inner.cvar.notify_all();
                    continue;
                }
                if *replay {
                    let opts = ReplayOptions {
                        inner: chunk_options(inner),
                        check: false,
                    };
                    let run = run_replay_sweep(&points[a..b], &StandaloneConfig::default(), &opts);
                    let engines: Vec<EngineKind> =
                        run.provenance.iter().map(|p| p.engine).collect();
                    let mut st = inner.state.lock().unwrap();
                    st.cache_hits += run.hits as u64;
                    st.sim_runs += (run.misses + run.baseline_misses) as u64;
                    record_chunk(
                        &mut st,
                        inner,
                        dispatched.task.job,
                        work.as_ref(),
                        a,
                        &run.outcomes,
                        Some(&engines),
                    );
                    st.sched.task_done(&dispatched);
                    drop(st);
                } else {
                    let run = run_sweep(&points[a..b], &chunk_options(inner));
                    let mut st = inner.state.lock().unwrap();
                    st.cache_hits += run.hits as u64;
                    st.sim_runs += (run.misses + run.corrupt) as u64;
                    if inner.cfg.telemetry {
                        // Per-point telemetry (dse.point.cycles, hit/miss
                        // counters) folds into the server registry; the
                        // histogram contents are a pure function of the
                        // point set, so chunking cannot perturb them.
                        st.telemetry.merge_from(&run.telemetry);
                    }
                    record_chunk(
                        &mut st,
                        inner,
                        dispatched.task.job,
                        work.as_ref(),
                        a,
                        &run.outcomes,
                        None,
                    );
                    st.sched.task_done(&dispatched);
                    drop(st);
                }
                inner.cvar.notify_all();
            }
        }
    }
}

fn chunk_options(inner: &Inner) -> DseOptions {
    // One worker per chunk: parallelism comes from the serve slot pool, and
    // a chunk must not oversubscribe the machine behind the scheduler's
    // back.
    let mut opts = DseOptions::default().with_workers(1);
    match (&inner.cache, &inner.cfg.cache_dir) {
        (None, _) => opts = opts.without_cache(),
        (Some(cache), _) => {
            opts = opts.with_cache_dir(cache.dir());
            if let Some(cap) = cache.max_bytes() {
                opts = opts.with_cache_max_bytes(cap);
            }
        }
    }
    opts
}

/// What one single run produced, beyond its outcome: whether the cache
/// served it, the watchdog snapshot when it deadlocked (post-mortem
/// material), and the engine's op-level trace recorder when it was traced.
struct SingleRun {
    outcome: JobOutcome,
    from_cache: bool,
    watchdog_json: Option<String>,
    engine_rec: Option<TraceRecorder>,
}

/// Borrowed post-run context threaded into job completion so the
/// terminal-telemetry hook can compose trace and post-mortem artifacts.
struct SingleExtras<'a> {
    watchdog_json: Option<&'a str>,
    engine_rec: Option<&'a TraceRecorder>,
}

impl SingleExtras<'_> {
    const NONE: SingleExtras<'static> = SingleExtras {
        watchdog_json: None,
        engine_rec: None,
    };
}

/// A typed outcome for a run stopped before/without simulating.
fn stop_outcome(reason: StopReason, when: &str) -> JobOutcome {
    JobOutcome::Error {
        label: reason.label().to_string(),
        message: match reason {
            StopReason::Cancelled => format!("cancelled {when}"),
            StopReason::DeadlineExceeded => format!("deadline exceeded {when}"),
        },
    }
}

/// Executes one single run — cache probe, simulate under `catch_unwind`
/// (with bounded, backoff-spaced retries on panic), store — and returns
/// the outcome plus its telemetry by-products.
#[allow(clippy::too_many_arguments)]
fn run_single(
    inner: &Inner,
    job: JobId,
    point: &StandalonePoint,
    plan: Option<&FaultPlan>,
    trace: bool,
    chaos: bool,
    cancel: &CancelToken,
    trace_id: u64,
) -> SingleRun {
    if let Some(reason) = cancel.poll() {
        return SingleRun {
            outcome: stop_outcome(reason, "before the run started"),
            from_cache: false,
            watchdog_json: None,
            engine_rec: None,
        };
    }
    let cache_id = match plan {
        None => point.cache_id(),
        Some(p) => faulted_cache_id(point, p),
    };
    // Traced runs bypass the cache: the report would hit, but the trace
    // artifact only exists by simulating. Chaos runs bypass it so the
    // injected panic actually fires.
    let cache = inner.cache.as_ref().filter(|_| !trace && !chaos);
    if let Some(cache) = cache {
        if let Lookup::Hit(report) = cache.lookup::<salam::RunReport>(&cache_id) {
            return SingleRun {
                outcome: report_outcome(&report, None),
                from_cache: true,
                watchdog_json: None,
                engine_rec: None,
            };
        }
    }
    // The backoff site: retries of the same configuration follow the same
    // deterministic jittered schedule no matter which worker runs them.
    let site = format!("{}/{}", cache_id.domain, cache_id.canon);
    let mut attempts = 0u32;
    loop {
        let mut shared = if trace {
            salam_obs::SharedTrace::enabled()
        } else {
            salam_obs::SharedTrace::disabled()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if chaos
                && inner
                    .chaos_budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                    .is_ok()
            {
                panic!("chaos: injected worker panic");
            }
            try_run_kernel_controlled(
                &point.kernel.build(),
                &point.config,
                &shared,
                plan,
                &inner.flight,
                trace_id,
                cancel,
            )
        }));
        let mut watchdog_json = None;
        let outcome = match result {
            Ok(Ok(report)) => {
                if let Some(cache) = cache {
                    if let Err(e) = cache.store(&cache_id, &report) {
                        eprintln!("salam-serve: warning: cache store failed: {e}");
                    }
                }
                report_outcome(&report, None)
            }
            Ok(Err(sim_err)) => {
                if let salam::SimError::Deadlock(snap) = &sim_err {
                    watchdog_json = Some(snap.to_json());
                }
                JobOutcome::Error {
                    label: sim_err.label().to_string(),
                    message: sim_err.to_string(),
                }
            }
            Err(payload) => {
                if attempts < inner.cfg.retries && cancel.poll().is_none() {
                    attempts += 1;
                    let delay = inner.cfg.backoff.delay_ms(&site, attempts);
                    inner.flight.record(
                        trace_id,
                        "retry",
                        format!("retry id={job} attempt={attempts} delay_ms={delay}"),
                    );
                    if delay > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                    }
                    continue;
                }
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                JobOutcome::Error {
                    label: "panic".to_string(),
                    message: msg.lines().next().unwrap_or("panic").to_string(),
                }
            }
        };
        return SingleRun {
            outcome,
            from_cache: false,
            watchdog_json,
            engine_rec: shared.take_recorder(),
        };
    }
}

fn report_outcome(report: &salam::RunReport, trace_json: Option<String>) -> JobOutcome {
    JobOutcome::Report {
        json: report.to_json(),
        cycles: report.cycles,
        verified: report.verified,
        bottleneck: report.dominant_bottleneck().to_string(),
        trace_json,
    }
}

/// Telemetry at the moment a task first takes a slot: ends the queued
/// span, opens the run span with a flow edge, and records the queue-wait
/// histogram. Runs under the state lock, on the first dispatch only
/// (later sweep chunks of the same job skip it).
fn on_dispatch(st: &mut State, inner: &Inner, task: &Task) {
    let now = now_ns(inner);
    let Some(j) = st.jobs.get_mut(&task.job) else {
        return;
    };
    j.state = JobState::Running;
    if j.first_dispatch_ns.is_some() {
        return;
    }
    j.first_dispatch_ns = Some(now);
    let wait_us = now.saturating_sub(j.submitted_ns) / 1_000;
    if let Some(jt) = j.trace.clone() {
        jt.end(j.queued_span, now);
        let run = jt.begin(jt.run, "run", now);
        jt.flow(j.queued_span, run, "dispatch", now);
        j.queued_span = SpanId::INVALID;
        j.run_span = run;
    }
    let (kind, tenant) = (j.kind, j.tenant.clone());
    if inner.cfg.telemetry {
        let t = &mut st.telemetry;
        t.record("serve.latency.queue_us", wait_us);
        t.record(
            &labeled("serve.latency.queue_us", &[("class", kind)]),
            wait_us,
        );
        t.record(
            &labeled("serve.latency.queue_us", &[("tenant", &tenant)]),
            wait_us,
        );
    }
    inner.flight.record(
        TraceCtx::for_job(task.job).trace_id,
        "sched",
        format!("dispatch id={} class={kind} wait_us={wait_us}", task.job),
    );
}

/// How many trailing flight-recorder events a post-mortem carries.
const POSTMORTEM_FLIGHT_EVENTS: usize = 256;

/// Telemetry at the moment a job goes terminal: closes its lifecycle
/// spans, records the run/end-to-end latency histograms, attaches the
/// span-tree trace to successful reports, and — on failure — composes the
/// post-mortem artifact from the flight recorder and (for deadlocks) the
/// watchdog snapshot.
fn job_terminal(
    st: &mut State,
    inner: &Inner,
    id: JobId,
    failed: bool,
    outcome: &mut JobOutcome,
    extras: &SingleExtras,
) {
    let now = now_ns(inner);
    let Some(j) = st.jobs.get_mut(&id) else {
        return;
    };
    if let Some(jt) = j.trace.clone() {
        jt.end(j.queued_span, now);
        jt.end(j.run_span, now);
        j.queued_span = SpanId::INVALID;
        j.run_span = SpanId::INVALID;
        jt.instant(jt.request, if failed { "failed" } else { "done" }, now);
        jt.end(j.job_span, now);
        j.job_span = SpanId::INVALID;
        if let JobOutcome::Report { trace_json, .. } = outcome {
            let extra: Vec<&TraceRecorder> = extras.engine_rec.into_iter().collect();
            *trace_json = Some(jt.export_chrome(&extra));
        }
    } else if let JobOutcome::Report { trace_json, .. } = outcome {
        // Telemetry off: the trace artifact (for jobs that asked to be
        // traced) is the engine recorder alone, as before PR 8.
        if trace_json.is_none() {
            *trace_json = extras.engine_rec.map(salam_obs::export_chrome_json);
        }
    }
    let trace_id = TraceCtx::for_job(id).trace_id;
    if failed && inner.cfg.telemetry {
        if let JobOutcome::Error { label, message } = &*outcome {
            j.postmortem = Some(format!(
                "{{\"job\": {id}, \"trace_id\": \"{trace_id:016x}\", \"label\": \"{}\", \
                 \"message\": \"{}\", \"watchdog\": {}, \"flight\": {}}}",
                crate::wire::escape(label),
                crate::wire::escape(message),
                extras.watchdog_json.unwrap_or("null"),
                inner.flight.tail_json(POSTMORTEM_FLIGHT_EVENTS),
            ));
        }
    }
    let (kind, tenant, submitted, first_dispatch) = (
        j.kind,
        j.tenant.clone(),
        j.submitted_ns,
        j.first_dispatch_ns,
    );
    if inner.cfg.telemetry {
        let t = &mut st.telemetry;
        let e2e_us = now.saturating_sub(submitted) / 1_000;
        t.record("serve.latency.e2e_us", e2e_us);
        t.record(&labeled("serve.latency.e2e_us", &[("class", kind)]), e2e_us);
        t.record(
            &labeled("serve.latency.e2e_us", &[("tenant", &tenant)]),
            e2e_us,
        );
        if let Some(t0) = first_dispatch {
            let run_us = now.saturating_sub(t0) / 1_000;
            t.record("serve.latency.run_us", run_us);
            t.record(&labeled("serve.latency.run_us", &[("class", kind)]), run_us);
        }
    }
    inner.flight.record(
        trace_id,
        "job",
        format!(
            "finish id={id} state={}",
            if failed { "failed" } else { "done" }
        ),
    );
}

/// Records a single run's outcome and completes the job together with any
/// coalesced followers.
fn complete_single(
    st: &mut State,
    inner: &Inner,
    id: JobId,
    outcome: JobOutcome,
    leader_from_cache: bool,
    extras: &SingleExtras,
) {
    let (followers, fp) = {
        let Some(j) = st.jobs.get_mut(&id) else {
            return;
        };
        (std::mem::take(&mut j.followers), j.fingerprint.take())
    };
    if let Some(fp) = &fp {
        // A promoted follower may own the entry by now — remove only our
        // own registration.
        if st.inflight.get(fp) == Some(&id) {
            st.inflight.remove(fp);
        }
        // Circuit-breaker verdict: real runs only (a cache hit proves
        // nothing new), deadlock/panic count as failures, a report as
        // success; cancellations and timeouts are neutral.
        if !leader_from_cache {
            if let Some(b) = st.breaker.as_mut() {
                let transition = match &outcome {
                    JobOutcome::Report { .. } => b.on_success(fp),
                    JobOutcome::Error { label, .. } if label == "deadlock" || label == "panic" => {
                        b.on_failure(fp)
                    }
                    _ => None,
                };
                if let Some(t) = transition {
                    inner
                        .flight
                        .record(0, "breaker", format!("fp={} {t}", fp8(fp)));
                }
            }
        }
    }
    // A follower is a cache hit exactly when its leader's result was one:
    // coalescing is already counted separately at submit.
    for f in followers {
        finish_job(st, inner, f, outcome.clone(), leader_from_cache, extras);
    }
    finish_job(st, inner, id, outcome, leader_from_cache, extras);
}

/// Marks one job terminal with `outcome` and retires it. Idempotent: a
/// job that is already terminal (e.g. cancelled while its worker was still
/// finishing) is left untouched — no double counting, no outcome
/// overwrite.
fn finish_job(
    st: &mut State,
    inner: &Inner,
    id: JobId,
    mut outcome: JobOutcome,
    hit: bool,
    extras: &SingleExtras,
) {
    match st.jobs.get(&id) {
        Some(j) if !j.state.is_terminal() => {}
        _ => return,
    }
    st.complete_seq += 1;
    let seq = st.complete_seq;
    let failed = matches!(outcome, JobOutcome::Error { .. });
    if let JobOutcome::Error { label, .. } = &outcome {
        match label.as_str() {
            "cancelled" => st.cancelled += 1,
            "timeout" => st.timeouts += 1,
            _ => {}
        }
    }
    job_terminal(st, inner, id, failed, &mut outcome, extras);
    let Some(j) = st.jobs.get_mut(&id) else {
        return;
    };
    j.state = if failed {
        JobState::Failed
    } else {
        JobState::Done
    };
    j.complete_seq = Some(seq);
    j.outcome = Some(outcome);
    let tenant = j.tenant.clone();
    retire(st, &tenant, id, failed, hit);
    // The journal's terminal record: after this line a restart will not
    // re-admit the job.
    if let Some(journal) = &inner.journal {
        if let Err(e) = journal.append(&crate::wire::journal_terminal_line(id)) {
            eprintln!("salam-serve: warning: journal append failed: {e}");
        }
    }
}

/// Bookkeeping for a job that just went terminal: lifetime and tenant
/// counters, the retention queue, and eviction of the oldest terminal
/// records past the cap. Evicted ids only ever leave the job table —
/// `inflight` holds non-terminal leaders, so it never references them.
fn retire(st: &mut State, tenant: &str, id: JobId, failed: bool, hit: bool) {
    if failed {
        st.failed += 1;
    } else {
        st.done += 1;
    }
    let retain = st.retain_terminal;
    let stats = st.tenants.entry(tenant.to_string()).or_default();
    stats.active = stats.active.saturating_sub(1);
    if failed {
        stats.failed += 1;
    } else {
        stats.completed += 1;
    }
    if hit {
        stats.cache_hits += 1;
    }
    stats.terminal.push_back(id);
    let mut evicted = Vec::new();
    while stats.terminal.len() > retain {
        let Some(old) = stats.terminal.pop_front() else {
            break;
        };
        evicted.push(old);
    }
    for old in evicted {
        st.jobs.remove(&old);
    }
}

/// Folds one finished chunk into its sweep job; assembles the table when
/// the last chunk lands.
fn record_chunk(
    st: &mut State,
    inner: &Inner,
    id: JobId,
    work: &Work,
    start: usize,
    outcomes: &[PointOutcome<salam::RunReport>],
    engines: Option<&[EngineKind]>,
) {
    let Work::Sweep { points, .. } = work else {
        return;
    };
    {
        let Some(j) = st.jobs.get_mut(&id) else {
            return;
        };
        for (i, outcome) in outcomes.iter().enumerate() {
            let point = &points[start + i];
            let engine = engines
                .map(|e| e[i].label().to_string())
                .unwrap_or_default();
            let row = match outcome.payload() {
                Some(r) => PointRow {
                    label: point.label(),
                    cycles: r.cycles.to_string(),
                    status: "ok".to_string(),
                    engine,
                    ok: true,
                    invalid: false,
                },
                None => PointRow {
                    label: point.label(),
                    cycles: String::new(),
                    status: outcome.failure_label().unwrap_or_default(),
                    engine,
                    ok: false,
                    invalid: outcome.invalid().is_some(),
                },
            };
            j.rows[start + i] = Some(row);
        }
    }
    chunk_done(st, inner, id, work);
}

/// Folds one *skipped* chunk (cancelled/deadline-stopped job) into its
/// sweep: the points record the stop reason instead of running.
fn record_chunk_skipped(
    st: &mut State,
    inner: &Inner,
    id: JobId,
    work: &Work,
    start: usize,
    end: usize,
    reason: StopReason,
) {
    let Work::Sweep { points, .. } = work else {
        return;
    };
    inner.flight.record(
        TraceCtx::for_job(id).trace_id,
        "sched",
        format!(
            "skip id={id} points={}..{end} reason={}",
            start,
            reason.label()
        ),
    );
    {
        let Some(j) = st.jobs.get_mut(&id) else {
            return;
        };
        for (i, point) in points.iter().enumerate().take(end).skip(start) {
            j.rows[i] = Some(PointRow {
                label: point.label(),
                cycles: String::new(),
                status: reason.label().to_string(),
                engine: String::new(),
                ok: false,
                invalid: false,
            });
        }
    }
    chunk_done(st, inner, id, work);
}

/// One chunk (run or skipped) is accounted for; when it was the last, the
/// deterministic artifact is assembled and the job finished.
fn chunk_done(st: &mut State, inner: &Inner, id: JobId, work: &Work) {
    let Work::Sweep { name, replay, .. } = work else {
        return;
    };
    let Some(j) = st.jobs.get_mut(&id) else {
        return;
    };
    j.pending_chunks -= 1;
    if j.pending_chunks > 0 {
        return;
    }

    // Last chunk: assemble the deterministic artifact. Cache/worker/wall
    // telemetry is deliberately excluded so the same submitted sweep is
    // byte-identical regardless of slot count, arrival order, or cache
    // warmth. The `engine` column exists only on replay sweeps, keeping
    // plain sweep artifacts byte-identical to previous releases.
    let columns: &[&str] = if *replay {
        &["point", "cycles", "status", "engine"]
    } else {
        &["point", "cycles", "status"]
    };
    let mut table = SweepTable::new(name.clone(), columns);
    let (mut ok, mut failed, mut invalid) = (0usize, 0usize, 0usize);
    let mut replayed = 0usize;
    let (mut stopped_cancel, mut stopped_timeout) = (0usize, 0usize);
    for row in j.rows.iter().flatten() {
        if row.ok {
            ok += 1;
        } else if row.invalid {
            invalid += 1;
        } else {
            failed += 1;
        }
        match row.status.as_str() {
            "cancelled" => stopped_cancel += 1,
            "timeout" => stopped_timeout += 1,
            _ => {}
        }
        if row.engine == "replay" {
            replayed += 1;
        }
        let mut cells = vec![row.label.clone(), row.cycles.clone(), row.status.clone()];
        if *replay {
            cells.push(row.engine.clone());
        }
        table.row(cells);
    }
    let total = j.rows.len();
    let mut summary = vec![
        ("points".into(), total.to_string()),
        ("ok".into(), ok.to_string()),
        ("failed".into(), failed.to_string()),
        ("invalid".into(), invalid.to_string()),
    ];
    if *replay {
        summary.push(("replayed".into(), replayed.to_string()));
    }
    table.set_summary(summary);
    // A stopped sweep is typed by its stop reason, not by a partial table:
    // clients keying on the outcome see `cancelled`/`timeout` directly.
    let outcome = if stopped_cancel + stopped_timeout > 0 {
        let label = if stopped_timeout > 0 {
            "timeout"
        } else {
            "cancelled"
        };
        JobOutcome::Error {
            label: label.to_string(),
            message: format!(
                "sweep stopped: {} of {total} points skipped",
                stopped_cancel + stopped_timeout
            ),
        }
    } else {
        JobOutcome::Sweep {
            csv: table.to_csv(),
            json: table.to_json(),
            points: total,
            ok,
            failed,
            invalid,
        }
    };
    finish_job(st, inner, id, outcome, false, &SingleExtras::NONE);
}
