//! `salam-serve` — multi-tenant simulation-as-a-service.
//!
//! The ROADMAP's north star is a long-running server hosting the whole
//! simulation stack for many tenants at once. This crate is that server,
//! std-only like the rest of the workspace:
//!
//! * [`job`] — the job model: submit a kernel run, a faulted run, or a
//!   whole sweep; poll status; fetch `RunReport`/table/trace/lint
//!   artifacts. Typed [`job::Rejection`]s carry stable codes and, for
//!   verify-gated rejections, the full `salam-verify` diagnostics.
//! * [`quota`] — per-tenant admission limits: queued jobs, concurrent
//!   simulation slots, sweep points.
//! * [`sched`] — the pure two-tier scheduler: an FCFS front queue per
//!   class with a cpu-intensive/regular slot split and limit borrowing,
//!   so thousand-point sweeps can never starve interactive single-kernel
//!   jobs. Unit-testable without threads.
//! * [`core`] — the running server: worker threads over the scheduler,
//!   fingerprint coalescing (identical in-flight jobs share one
//!   simulation), the shared `salam-dse` result cache for cross-tenant
//!   warmth, `catch_unwind` isolation per job, and per-tenant metrics.
//! * [`wire`] + [`server`] — line-delimited JSON over TCP with a thin
//!   HTTP/1.1 shim; zero external dependencies.
//!
//! Integration contract with the rest of the workspace:
//!
//! * **verify is an admission gate** (PR 5): IR that fails
//!   [`salam_verify::gate`] and configs that fail validation are rejected
//!   at submit time with diagnostics — they are never scheduled.
//! * **typed failures, never crashes** (PR 4): a job that deadlocks or
//!   faults returns its [`salam::SimError`] label; a job that panics is
//!   caught and reported. The server survives all of them.
//! * **shared incremental cache** (PR 2): single runs and sweep points use
//!   the same `standalone/<kernel>` cache domain as `salam-dse`, so a
//!   tenant resubmitting a config another tenant already ran is served
//!   from disk without a simulation slot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod job;
pub mod quota;
pub mod sched;
pub mod server;
pub mod wire;

pub use crate::core::{ServeConfig, ServeCore, SubmitOpts};
pub use job::{
    JobId, JobLookupError, JobOutcome, JobRequest, JobState, JobStatus, Rejection, WireAxis,
};
pub use quota::TenantQuota;
pub use sched::{Class, Scheduler, Task};
pub use server::Server;
