//! The transport shell: line-delimited JSON over TCP, with a thin
//! HTTP/1.1 shim on the same port.
//!
//! A connection speaks whichever protocol its first bytes announce: lines
//! starting with `GET ` / `POST ` are handled as one HTTP request
//! (`GET /metrics[?format=prom]`, `GET /stats`, `GET /status?id=N`,
//! `GET /trace?id=N`, `POST /submit`); anything else is the native
//! protocol — one [`crate::wire`] request per line, one response line
//! each, connection held open until the client hangs up.
//!
//! All policy lives in [`ServeCore`]; this module only frames bytes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::core::{ServeConfig, ServeCore};
use crate::wire::{self, Request};

/// A listening server. [`Server::shutdown`] (or the wire `shutdown` op)
/// stops the accept loop and the core's workers.
pub struct Server {
    core: Arc<ServeCore>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let core = Arc::new(ServeCore::start(cfg));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let core = core.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let core = core.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        let _ = handle_connection(&core, stream, &stop);
                    });
                }
            })
        };
        Ok(Server {
            core,
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted core, for in-process inspection (tests, embedding).
    pub fn core(&self) -> &ServeCore {
        &self.core
    }

    /// `true` once a client has requested shutdown over the wire.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Parks until a client requests shutdown over the wire, then tears
    /// the server down. This is the main loop of the `salam_serve` binary.
    pub fn serve_until_stopped(self) {
        while !self.stop_requested() {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        self.shutdown();
    }

    /// Stops accepting connections and shuts the core down. Blocks until
    /// in-flight simulations finish.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.core.shutdown();
    }
}

/// Serves one connection in whichever protocol it opens with.
fn handle_connection(
    core: &ServeCore,
    stream: TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Ok(());
    }
    if first.starts_with("GET ") || first.starts_with("POST ") {
        return handle_http(core, stream, reader, &first, stop);
    }
    let mut stream = stream;
    let mut line = first;
    loop {
        let response = respond(core, line.trim(), stop);
        stream.write_all(response.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
    }
}

/// Executes one native-protocol request and renders the response line.
fn respond(core: &ServeCore, line: &str, stop: &AtomicBool) -> String {
    let req = match wire::parse_request(line) {
        Ok(r) => r,
        Err(m) => return wire::err_json("bad-request", &m),
    };
    match req {
        Request::Submit { tenant, job } => match core.submit(&tenant, job) {
            Ok(id) => wire::submit_ok(id),
            Err(r) => wire::rejection_json(&r),
        },
        Request::Status(id) => match core.status(id) {
            Some(s) => wire::status_json(&s),
            None => wire::err_json("not-found", &format!("no job {id}")),
        },
        Request::Wait(id) => match core.wait(id) {
            Some(s) => wire::status_json(&s),
            None => wire::err_json("not-found", &format!("no job {id}")),
        },
        Request::Result { id, artifact } => match core.artifact(id, &artifact) {
            Ok(text) => wire::artifact_json(&text),
            Err(m) => wire::err_json("not-found", &m),
        },
        Request::Metrics => wire::raw_ok("metrics", &core.metrics().to_json()),
        Request::MetricsProm => wire::raw_ok(
            "prom",
            &format!("\"{}\"", wire::escape(&core.metrics_prom())),
        ),
        Request::Stats => wire::raw_ok(
            "stats",
            &format!("\"{}\"", wire::escape(&core.stats_line())),
        ),
        Request::Shutdown => {
            // The accept loop and core are torn down after the response is
            // flushed; the caller sees a clean `ok`.
            stop.store(true, Ordering::SeqCst);
            wire::ok_json()
        }
    }
}

/// Serves one HTTP/1.1 request (`Connection: close` semantics).
fn handle_http(
    core: &ServeCore,
    mut stream: TcpStream,
    mut reader: BufReader<TcpStream>,
    request_line: &str,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");

    let mut content_length = 0usize;
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let h = header.trim();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length.min(1 << 20)];
    if !body.is_empty() {
        reader.read_exact(&mut body)?;
    }
    let body = String::from_utf8_lossy(&body);

    let (status, content_type, payload) = http_route(core, method, target, &body, stop);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// The content type every JSON response carries.
const JSON: &str = "application/json";
/// The Prometheus text exposition content type (format 0.0.4).
const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maps an HTTP request onto the native operations.
fn http_route(
    core: &ServeCore,
    method: &str,
    target: &str,
    body: &str,
    stop: &AtomicBool,
) -> (&'static str, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query_val = |key: &str| {
        query
            .split('&')
            .find_map(|kv| kv.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
    };
    match (method, path) {
        ("GET", "/metrics") => match query_val("format") {
            Some("prom") => ("200 OK", PROM, core.metrics_prom()),
            _ => (
                "200 OK",
                JSON,
                wire::raw_ok("metrics", &core.metrics().to_json()),
            ),
        },
        ("GET", "/stats") => (
            "200 OK",
            JSON,
            wire::raw_ok(
                "stats",
                &format!("\"{}\"", wire::escape(&core.stats_line())),
            ),
        ),
        ("GET", "/status") => {
            let id = query_val("id").and_then(|v| v.parse::<u64>().ok());
            match id.and_then(|id| core.status(id)) {
                Some(s) => ("200 OK", JSON, wire::status_json(&s)),
                None => (
                    "404 Not Found",
                    JSON,
                    wire::err_json("not-found", "unknown or missing id"),
                ),
            }
        }
        // The span-tree trace artifact, raw — load it straight into
        // Perfetto / chrome://tracing.
        ("GET", "/trace") => {
            let id = query_val("id").and_then(|v| v.parse::<u64>().ok());
            match id
                .ok_or_else(|| "unknown or missing id".to_string())
                .and_then(|id| core.artifact(id, "trace"))
            {
                Ok(text) => ("200 OK", JSON, text),
                Err(m) => ("404 Not Found", JSON, wire::err_json("not-found", &m)),
            }
        }
        ("POST", "/submit") => match wire::parse_submit_body(body) {
            Ok((tenant, job)) => match core.submit(&tenant, job) {
                Ok(id) => ("200 OK", JSON, wire::submit_ok(id)),
                Err(r) => ("403 Forbidden", JSON, wire::rejection_json(&r)),
            },
            Err(m) => ("400 Bad Request", JSON, wire::err_json("bad-request", &m)),
        },
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::SeqCst);
            ("200 OK", JSON, wire::ok_json())
        }
        _ => (
            "404 Not Found",
            JSON,
            wire::err_json("not-found", &format!("no route {method} {path}")),
        ),
    }
}
