//! The transport shell: line-delimited JSON over TCP, with a thin
//! HTTP/1.1 shim on the same port.
//!
//! A connection speaks whichever protocol its first bytes announce: lines
//! starting with `GET ` / `POST ` are handled as one HTTP request
//! (`GET /metrics[?format=prom]`, `GET /stats`, `GET /status?id=N`,
//! `GET /trace?id=N`, `GET /healthz`, `GET /readyz`, `POST /submit`,
//! `POST /cancel?id=N`); anything else is the native protocol — one
//! [`crate::wire`] request per line, one response line each, connection
//! held open until the client hangs up.
//!
//! The transport is defensive: every line read is capped at
//! [`crate::core::ServeConfig::max_line_bytes`] (overflow answers a typed
//! `bad-request` and closes the connection instead of buffering without
//! bound), and sockets carry read/write timeouts so a stalled client
//! cannot pin a connection thread forever.
//!
//! All policy lives in [`ServeCore`]; this module only frames bytes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::core::{ServeConfig, ServeCore};
use crate::wire::{self, Request};

/// A listening server. [`Server::shutdown`] (or the wire `shutdown` op)
/// stops the accept loop and the core's workers.
pub struct Server {
    core: Arc<ServeCore>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let core = Arc::new(ServeCore::start(cfg));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let core = core.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let core = core.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        let _ = handle_connection(&core, stream, &stop);
                    });
                }
            })
        };
        Ok(Server {
            core,
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted core, for in-process inspection (tests, embedding).
    pub fn core(&self) -> &ServeCore {
        &self.core
    }

    /// `true` once a client has requested shutdown over the wire.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Parks until a client requests shutdown over the wire, then tears
    /// the server down. This is the main loop of the `salam_serve` binary.
    pub fn serve_until_stopped(self) {
        while !self.stop_requested() {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        self.shutdown();
    }

    /// Stops accepting connections and shuts the core down. Blocks until
    /// in-flight simulations finish.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.core.shutdown();
    }
}

/// One bounded line read off the socket.
enum BoundedLine {
    /// Clean end of stream before any byte of a new line.
    Eof,
    /// A complete (or EOF-truncated) line within the cap.
    Line(String),
    /// The cap was hit before a newline appeared — the connection is
    /// poisoned (the rest of the oversized line is still in flight).
    Overflow,
}

/// Reads one `\n`-terminated line, never buffering more than `max` bytes
/// of it. This replaces unbounded `read_line` on every socket path.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> std::io::Result<BoundedLine> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(BoundedLine::Eof);
    }
    if buf.last() != Some(&b'\n') && buf.len() > max {
        return Ok(BoundedLine::Overflow);
    }
    Ok(BoundedLine::Line(
        String::from_utf8_lossy(&buf).into_owned(),
    ))
}

/// Applies the configured socket timeouts (no-op when disabled).
fn apply_timeouts(stream: &TcpStream, cfg: &ServeConfig) -> std::io::Result<()> {
    if cfg.io_timeout_ms > 0 {
        let t = Some(Duration::from_millis(cfg.io_timeout_ms));
        stream.set_read_timeout(t)?;
        stream.set_write_timeout(t)?;
    }
    Ok(())
}

/// Serves one connection in whichever protocol it opens with.
fn handle_connection(
    core: &ServeCore,
    stream: TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    apply_timeouts(&stream, core.config())?;
    let max_line = core.config().max_line_bytes.max(1);
    let mut reader = BufReader::new(stream.try_clone()?);
    let first = match read_bounded_line(&mut reader, max_line)? {
        BoundedLine::Eof => return Ok(()),
        BoundedLine::Overflow => {
            let mut stream = stream;
            let msg = wire::err_json("bad-request", "request line exceeds the size limit");
            stream.write_all(msg.as_bytes())?;
            stream.write_all(b"\n")?;
            return stream.flush();
        }
        BoundedLine::Line(line) => line,
    };
    if first.starts_with("GET ") || first.starts_with("POST ") {
        return handle_http(core, stream, reader, &first, stop);
    }
    let mut stream = stream;
    let mut line = first;
    loop {
        let response = respond(core, line.trim(), stop);
        stream.write_all(response.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        line = match read_bounded_line(&mut reader, max_line)? {
            BoundedLine::Eof => return Ok(()),
            BoundedLine::Overflow => {
                let msg = wire::err_json("bad-request", "request line exceeds the size limit");
                stream.write_all(msg.as_bytes())?;
                stream.write_all(b"\n")?;
                return stream.flush();
            }
            BoundedLine::Line(l) => l,
        };
    }
}

/// Executes one native-protocol request and renders the response line.
fn respond(core: &ServeCore, line: &str, stop: &AtomicBool) -> String {
    let req = match wire::parse_request(line) {
        Ok(r) => r,
        Err(m) => return wire::err_json("bad-request", &m),
    };
    match req {
        Request::Submit {
            tenant,
            job,
            deadline_ms,
        } => {
            let opts = crate::core::SubmitOpts { deadline_ms };
            match core.submit_with(&tenant, job, opts) {
                Ok(id) => wire::submit_ok(id),
                Err(r) => wire::rejection_json(&r),
            }
        }
        Request::Status(id) => match core.status(id) {
            Ok(s) => wire::status_json(&s),
            Err(e) => wire::err_json(e.code(), &e.message(id)),
        },
        Request::Wait(id) => match core.wait(id) {
            Ok(s) => wire::status_json(&s),
            Err(e) => wire::err_json(e.code(), &e.message(id)),
        },
        Request::Cancel(id) => match core.cancel(id) {
            Ok(s) => wire::status_json(&s),
            Err(e) => wire::err_json(e.code(), &e.message(id)),
        },
        Request::Result { id, artifact } => match core.artifact(id, &artifact) {
            Ok(text) => wire::artifact_json(&text),
            Err(m) => wire::err_json("not-found", &m),
        },
        // The registry renders pretty-printed (multi-line) JSON; the wire
        // is line-delimited, so flatten it or the client reads a torn line.
        Request::Metrics => wire::raw_ok("metrics", &core.metrics().to_json().replace('\n', " ")),
        Request::MetricsProm => wire::raw_ok(
            "prom",
            &format!("\"{}\"", wire::escape(&core.metrics_prom())),
        ),
        Request::Stats => wire::raw_ok(
            "stats",
            &format!("\"{}\"", wire::escape(&core.stats_line())),
        ),
        Request::Shutdown => {
            // The accept loop and core are torn down after the response is
            // flushed; the caller sees a clean `ok`.
            stop.store(true, Ordering::SeqCst);
            wire::ok_json()
        }
    }
}

/// Headers accepted per HTTP request before the parser gives up.
const MAX_HEADERS: usize = 100;

/// Serves one HTTP/1.1 request (`Connection: close` semantics).
fn handle_http(
    core: &ServeCore,
    mut stream: TcpStream,
    mut reader: BufReader<TcpStream>,
    request_line: &str,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let max_line = core.config().max_line_bytes.max(1);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");

    let mut content_length = 0usize;
    let mut overflow = false;
    for _ in 0..MAX_HEADERS {
        let header = match read_bounded_line(&mut reader, max_line)? {
            BoundedLine::Eof => break,
            BoundedLine::Overflow => {
                overflow = true;
                break;
            }
            BoundedLine::Line(h) => h,
        };
        let h = header.trim();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let route = if overflow {
        HttpResponse {
            status: "400 Bad Request",
            content_type: JSON,
            retry_after_s: None,
            payload: wire::err_json("bad-request", "header line exceeds the size limit"),
        }
    } else {
        let mut body = vec![0u8; content_length.min(1 << 20)];
        if !body.is_empty() {
            reader.read_exact(&mut body)?;
        }
        let body = String::from_utf8_lossy(&body);
        http_route(core, method, target, &body, stop)
    };
    let retry = route
        .retry_after_s
        .map_or(String::new(), |s| format!("Retry-After: {s}\r\n"));
    let response = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{retry}Connection: close\r\n\r\n{}",
        route.status,
        route.content_type,
        route.payload.len(),
        route.payload
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// The content type every JSON response carries.
const JSON: &str = "application/json";
/// The Prometheus text exposition content type (format 0.0.4).
const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// One routed HTTP response.
struct HttpResponse {
    status: &'static str,
    content_type: &'static str,
    /// Emitted as a `Retry-After` header (seconds) on shed responses.
    retry_after_s: Option<u64>,
    payload: String,
}

impl HttpResponse {
    fn ok(content_type: &'static str, payload: String) -> Self {
        HttpResponse {
            status: "200 OK",
            content_type,
            retry_after_s: None,
            payload,
        }
    }

    fn err(status: &'static str, payload: String) -> Self {
        HttpResponse {
            status,
            content_type: JSON,
            retry_after_s: None,
            payload,
        }
    }
}

/// Maps an HTTP request onto the native operations.
fn http_route(
    core: &ServeCore,
    method: &str,
    target: &str,
    body: &str,
    stop: &AtomicBool,
) -> HttpResponse {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query_val = |key: &str| {
        query
            .split('&')
            .find_map(|kv| kv.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
    };
    let lookup_status =
        |id: Option<u64>,
         f: &dyn Fn(u64) -> Result<crate::JobStatus, crate::job::JobLookupError>| {
            let Some(id) = id else {
                return HttpResponse::err(
                    "400 Bad Request",
                    wire::err_json("bad-request", "missing or malformed id"),
                );
            };
            match f(id) {
                Ok(s) => HttpResponse::ok(JSON, wire::status_json(&s)),
                Err(e) => {
                    let status = match e {
                        crate::job::JobLookupError::Evicted => "410 Gone",
                        crate::job::JobLookupError::NotFound => "404 Not Found",
                    };
                    HttpResponse::err(status, wire::err_json(e.code(), &e.message(id)))
                }
            }
        };
    match (method, path) {
        ("GET", "/metrics") => match query_val("format") {
            Some("prom") => HttpResponse::ok(PROM, core.metrics_prom()),
            _ => HttpResponse::ok(JSON, wire::raw_ok("metrics", &core.metrics().to_json())),
        },
        ("GET", "/stats") => HttpResponse::ok(
            JSON,
            wire::raw_ok(
                "stats",
                &format!("\"{}\"", wire::escape(&core.stats_line())),
            ),
        ),
        // Liveness: the process is up and serving sockets.
        ("GET", "/healthz") => HttpResponse::ok(JSON, wire::ok_json()),
        // Readiness: accepting new work. Flips 503 the moment shutdown or
        // draining begins, so load balancers stop routing first.
        ("GET", "/readyz") => {
            if core.ready() && !stop.load(Ordering::SeqCst) {
                HttpResponse::ok(JSON, wire::ok_json())
            } else {
                HttpResponse::err(
                    "503 Service Unavailable",
                    wire::err_json("draining", "server is shutting down"),
                )
            }
        }
        ("GET", "/status") => {
            let id = query_val("id").and_then(|v| v.parse::<u64>().ok());
            lookup_status(id, &|id| core.status(id))
        }
        ("POST", "/cancel") => {
            let id = query_val("id").and_then(|v| v.parse::<u64>().ok());
            lookup_status(id, &|id| core.cancel(id))
        }
        // The span-tree trace artifact, raw — load it straight into
        // Perfetto / chrome://tracing.
        ("GET", "/trace") => {
            let id = query_val("id").and_then(|v| v.parse::<u64>().ok());
            match id
                .ok_or_else(|| "unknown or missing id".to_string())
                .and_then(|id| core.artifact(id, "trace"))
            {
                Ok(text) => HttpResponse::ok(JSON, text),
                Err(m) => HttpResponse::err("404 Not Found", wire::err_json("not-found", &m)),
            }
        }
        ("POST", "/submit") => match wire::parse_submit_body(body) {
            Ok((tenant, job, deadline_ms)) => {
                let opts = crate::core::SubmitOpts { deadline_ms };
                match core.submit_with(&tenant, job, opts) {
                    Ok(id) => HttpResponse::ok(JSON, wire::submit_ok(id)),
                    Err(r) => {
                        // Overload shedding maps to 429 with a Retry-After
                        // hint; everything else stays a plain refusal.
                        let status = match r.code {
                            "overloaded" => "429 Too Many Requests",
                            "circuit-open" => "503 Service Unavailable",
                            _ => "403 Forbidden",
                        };
                        HttpResponse {
                            status,
                            content_type: JSON,
                            retry_after_s: r.retry_after_ms.map(|ms| ms.div_ceil(1000).max(1)),
                            payload: wire::rejection_json(&r),
                        }
                    }
                }
            }
            Err(m) => HttpResponse::err("400 Bad Request", wire::err_json("bad-request", &m)),
        },
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::SeqCst);
            HttpResponse::ok(JSON, wire::ok_json())
        }
        _ => HttpResponse::err(
            "404 Not Found",
            wire::err_json("not-found", &format!("no route {method} {path}")),
        ),
    }
}
