//! The pure two-tier scheduler: all policy, no threads.
//!
//! Two FCFS queues — `regular` for interactive single-kernel jobs, `cpu`
//! for sweep chunks — over a fixed pool of simulation slots, split
//! ovn-ci-style: `cpu_limit = slots/4 + 1` when more than one slot exists,
//! otherwise the cpu class owns no slots of its own. Borrowing keeps the
//! pool busy without starvation:
//!
//! * a **regular** task may always take a free cpu slot (interactive work
//!   is latency-sensitive; a sweep chunk queued behind it waits one
//!   dispatch round at most);
//! * a **cpu** task may take a free regular slot only while the regular
//!   queue has nothing eligible — so the moment an interactive job
//!   arrives, the next regular slot to free up is its.
//!
//! Within a queue, dispatch is FCFS by submission sequence with skip: a
//! task whose tenant is at its concurrency cap is passed over, not a
//! head-of-line blocker. Every dispatched task records which bucket's slot
//! it charged, so completion returns the slot to the right class no matter
//! who borrowed what.
//!
//! Everything here is synchronous and deterministic — the server calls it
//! under one lock, and the unit tests drive it without any threads.

use std::collections::{HashMap, VecDeque};

use crate::job::JobId;

/// Which queue (and slot bucket) a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Interactive single-kernel work.
    Regular,
    /// Sweep chunks and other batch work.
    Cpu,
}

/// One schedulable unit: a whole single-run job, or one chunk of a sweep.
#[derive(Debug, Clone)]
pub struct Task {
    /// Owning job.
    pub job: JobId,
    /// Owning tenant (for the concurrency cap).
    pub tenant: String,
    /// Queue class.
    pub class: Class,
    /// Chunk index within the job (0 for single-task jobs).
    pub chunk: usize,
    /// Global FCFS order.
    pub seq: u64,
    /// The tenant's concurrent-slot cap at admission time.
    pub tenant_slots: usize,
}

/// A dispatched task plus the slot bucket it charged.
#[derive(Debug, Clone)]
pub struct Dispatched {
    /// The task to execute.
    pub task: Task,
    /// Return the slot here on completion.
    pub charged: Class,
}

/// The scheduler state machine.
#[derive(Debug)]
pub struct Scheduler {
    regular: VecDeque<Task>,
    cpu: VecDeque<Task>,
    regular_limit: usize,
    cpu_limit: usize,
    running_regular: usize,
    running_cpu: usize,
    tenant_running: HashMap<String, usize>,
}

impl Scheduler {
    /// A scheduler over `slots` total simulation slots (at least 1).
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        let cpu_limit = if slots > 1 { slots / 4 + 1 } else { 0 };
        Scheduler {
            regular: VecDeque::new(),
            cpu: VecDeque::new(),
            regular_limit: slots - cpu_limit,
            cpu_limit,
            running_regular: 0,
            running_cpu: 0,
            tenant_running: HashMap::new(),
        }
    }

    /// The `(regular, cpu)` slot split.
    pub fn limits(&self) -> (usize, usize) {
        (self.regular_limit, self.cpu_limit)
    }

    /// Tasks waiting in both queues.
    pub fn queued(&self) -> usize {
        self.regular.len() + self.cpu.len()
    }

    /// Tasks currently holding slots.
    pub fn running(&self) -> usize {
        self.running_regular + self.running_cpu
    }

    /// Enqueues a task at the back of its class queue.
    pub fn push(&mut self, task: Task) {
        match task.class {
            Class::Regular => self.regular.push_back(task),
            Class::Cpu => self.cpu.push_back(task),
        }
    }

    /// Removes every queued task belonging to `job` (cancellation of a
    /// not-yet-dispatched job). Returns how many tasks were dropped; tasks
    /// already dispatched are unaffected — the caller stops those through
    /// the job's cancel token instead.
    pub fn remove_job(&mut self, job: JobId) -> usize {
        let before = self.regular.len() + self.cpu.len();
        self.regular.retain(|t| t.job != job);
        self.cpu.retain(|t| t.job != job);
        before - (self.regular.len() + self.cpu.len())
    }

    fn tenant_eligible(&self, t: &Task) -> bool {
        self.tenant_running.get(&t.tenant).copied().unwrap_or(0) < t.tenant_slots
    }

    /// First tenant-eligible task in `queue`, FCFS with skip.
    fn pick(queue: &VecDeque<Task>, eligible: impl Fn(&Task) -> bool) -> Option<usize> {
        queue.iter().position(eligible)
    }

    /// Picks the next task to run, or `None` when nothing is both eligible
    /// and fundable. Call repeatedly until `None` to fill all free slots.
    pub fn dispatch(&mut self) -> Option<Dispatched> {
        let regular_free = self.regular_limit - self.running_regular;
        let cpu_free = self.cpu_limit - self.running_cpu;

        // Regular first: take its own bucket, else borrow a cpu slot. When
        // an eligible interactive task exists but nothing is free, return
        // None rather than letting the cpu class claim capacity under it —
        // the next released slot must be the interactive task's.
        if let Some(i) = Self::pick(&self.regular, |t| self.tenant_eligible(t)) {
            let charged = if regular_free > 0 {
                Class::Regular
            } else if cpu_free > 0 {
                Class::Cpu
            } else {
                return None;
            };
            let task = self.regular.remove(i).expect("picked index exists");
            return Some(self.start(task, charged));
        }

        // No eligible regular work: cpu may use its bucket and borrow.
        if let Some(i) = Self::pick(&self.cpu, |t| self.tenant_eligible(t)) {
            let charged = if cpu_free > 0 {
                Some(Class::Cpu)
            } else if regular_free > 0 {
                Some(Class::Regular)
            } else {
                None
            };
            if let Some(charged) = charged {
                let task = self.cpu.remove(i).expect("picked index exists");
                return Some(self.start(task, charged));
            }
        }
        None
    }

    fn start(&mut self, task: Task, charged: Class) -> Dispatched {
        match charged {
            Class::Regular => self.running_regular += 1,
            Class::Cpu => self.running_cpu += 1,
        }
        *self.tenant_running.entry(task.tenant.clone()).or_insert(0) += 1;
        Dispatched { task, charged }
    }

    /// Returns a finished task's slot to the bucket it charged.
    pub fn task_done(&mut self, d: &Dispatched) {
        match d.charged {
            Class::Regular => self.running_regular -= 1,
            Class::Cpu => self.running_cpu -= 1,
        }
        if let Some(n) = self.tenant_running.get_mut(&d.task.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.tenant_running.remove(&d.task.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(job: JobId, tenant: &str, class: Class, seq: u64) -> Task {
        Task {
            job,
            tenant: tenant.into(),
            class,
            chunk: 0,
            seq,
            tenant_slots: 2,
        }
    }

    #[test]
    fn slot_split_matches_ovn_rule() {
        assert_eq!(Scheduler::new(1).limits(), (1, 0));
        assert_eq!(Scheduler::new(2).limits(), (1, 1));
        assert_eq!(Scheduler::new(4).limits(), (2, 2));
        assert_eq!(Scheduler::new(8).limits(), (5, 3));
    }

    #[test]
    fn fcfs_within_a_class() {
        let mut s = Scheduler::new(4);
        s.push(task(1, "a", Class::Regular, 1));
        s.push(task(2, "b", Class::Regular, 2));
        assert_eq!(s.dispatch().unwrap().task.job, 1);
        assert_eq!(s.dispatch().unwrap().task.job, 2);
        assert!(s.dispatch().is_none());
    }

    #[test]
    fn cpu_borrows_regular_only_when_regular_queue_is_empty() {
        let mut s = Scheduler::new(4); // (2 regular, 2 cpu)
        for i in 0..4 {
            s.push(Task {
                tenant_slots: 4,
                ..task(10 + i, "sweep", Class::Cpu, i)
            });
        }
        // Empty regular queue: cpu fills its own bucket, then borrows both
        // regular slots.
        let d1 = s.dispatch().unwrap();
        let d2 = s.dispatch().unwrap();
        assert!(matches!(d1.charged, Class::Cpu));
        assert!(matches!(d2.charged, Class::Cpu));
        let d3 = s.dispatch().unwrap();
        assert!(matches!(d3.charged, Class::Regular), "borrowed");
        let d4 = s.dispatch().unwrap();
        assert!(matches!(d4.charged, Class::Regular), "borrowed");
        assert_eq!(s.running(), 4);

        // An interactive job arrives: nothing free, it waits…
        s.push(task(1, "alice", Class::Regular, 99));
        assert!(s.dispatch().is_none());
        // …and the next released slot goes to it, not to more cpu work.
        s.push(Task {
            tenant_slots: 4,
            ..task(14, "sweep", Class::Cpu, 100)
        });
        s.task_done(&d3);
        let next = s.dispatch().unwrap();
        assert_eq!(next.task.job, 1, "interactive preempts queued cpu work");
        assert!(matches!(next.charged, Class::Regular));
    }

    #[test]
    fn regular_borrows_free_cpu_slots() {
        let mut s = Scheduler::new(4); // (2, 2)
        for i in 0..3 {
            s.push(task(i, "a", Class::Regular, i));
        }
        // Tenant cap is 2: only two run even with free slots.
        assert!(s.dispatch().is_some());
        assert!(s.dispatch().is_some());
        assert!(s.dispatch().is_none(), "tenant cap holds");
        // A second tenant's singles may borrow the idle cpu bucket.
        s.push(task(7, "b", Class::Regular, 10));
        s.push(task(8, "b", Class::Regular, 11));
        let d = s.dispatch().unwrap();
        assert_eq!(d.task.job, 7);
        assert!(matches!(d.charged, Class::Cpu), "borrowed cpu slot");
        let d2 = s.dispatch().unwrap();
        assert!(matches!(d2.charged, Class::Cpu));
        assert_eq!(s.running(), 4);
    }

    #[test]
    fn tenant_cap_skips_not_blocks() {
        let mut s = Scheduler::new(4);
        s.push(Task {
            tenant_slots: 1,
            ..task(1, "a", Class::Regular, 1)
        });
        s.push(Task {
            tenant_slots: 1,
            ..task(2, "a", Class::Regular, 2)
        });
        s.push(task(3, "b", Class::Regular, 3));
        assert_eq!(s.dispatch().unwrap().task.job, 1);
        // Job 2 (tenant a, capped) is skipped; b runs.
        assert_eq!(s.dispatch().unwrap().task.job, 3);
        assert!(s.dispatch().is_none());
    }

    #[test]
    fn done_returns_slot_to_charged_bucket() {
        let mut s = Scheduler::new(2); // (1, 1)
        s.push(task(1, "a", Class::Regular, 1));
        let d = s.dispatch().unwrap();
        assert_eq!(s.running(), 1);
        s.task_done(&d);
        assert_eq!(s.running(), 0);
        // Slot is reusable immediately.
        s.push(task(2, "a", Class::Regular, 2));
        assert!(s.dispatch().is_some());
    }
}
