//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request. The same encoding
//! backs the TCP listener and the HTTP shim in [`crate::server`], and the
//! client half lives in `salam_client`. Parsing rides on
//! [`salam_obs::json`] — std-only, no external dependencies.
//!
//! Requests (`op` selects the operation):
//!
//! ```json
//! {"op":"submit","tenant":"alice","job":{"type":"kernel","bench":"gemm","knobs":{"ports":2},"trace":false}}
//! {"op":"submit","tenant":"alice","job":{"type":"faulted","bench":"spmv","plan":{"seed":7,"mem_delay_rate":0.01}}}
//! {"op":"submit","tenant":"bob","job":{"type":"sweep","name":"ports","kernels":["gemm"],"axes":[{"knob":"ports","values":[1,2,4]}]}}
//! {"op":"submit","tenant":"alice","deadline_ms":5000,"job":{"type":"kernel","bench":"gemm"}}
//! {"op":"status","id":3}
//! {"op":"wait","id":3}
//! {"op":"cancel","id":3}
//! {"op":"result","id":3,"artifact":"report"}
//! {"op":"metrics"}
//! {"op":"metrics","format":"prom"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`; failures add a stable `code`.

use salam_fault::FaultPlan;
use salam_obs::json::{self, Value};

use crate::job::{JobId, JobRequest, JobStatus, Rejection, WireAxis};

/// One decoded request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit a job for a tenant.
    Submit {
        /// Submitting tenant.
        tenant: String,
        /// The job payload.
        job: JobRequest,
        /// Optional end-to-end deadline, milliseconds from admission.
        deadline_ms: Option<u64>,
    },
    /// Snapshot one job's status.
    Status(JobId),
    /// Block until the job is terminal, then return its status.
    Wait(JobId),
    /// Request cooperative cancellation; returns the job's status.
    Cancel(JobId),
    /// Fetch one artifact of a terminal job.
    Result {
        /// The job.
        id: JobId,
        /// `report` / `trace` / `csv` / `table` / `error` / `lint` /
        /// `postmortem`.
        artifact: String,
    },
    /// Dump the server metrics registry (JSON gauges).
    Metrics,
    /// Dump the metrics in Prometheus text exposition format. The text
    /// rides back as a JSON string under `"prom"` on the native protocol;
    /// the HTTP shim serves it raw as `GET /metrics?format=prom`.
    MetricsProm,
    /// The one-line server summary.
    Stats,
    /// Stop accepting jobs and shut the server down.
    Shutdown,
}

/// Escapes a string for embedding in a JSON literal (shared with every
/// other JSON writer in the workspace via [`salam_obs::json::escape`]).
pub fn escape(s: &str) -> String {
    json::escape(s)
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .filter(|f| *f >= 0.0 && f.fract() == 0.0)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

/// An optional non-negative integer field; present-but-malformed is an
/// error, absent (or null) is `None`.
fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(val) => val
            .as_f64()
            .filter(|f| *f >= 0.0 && f.fract() == 0.0)
            .map(|f| Some(f as u64))
            .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
    }
}

fn knob_pairs(v: &Value) -> Result<Vec<(String, u64)>, String> {
    let Some(knobs) = v.get("knobs") else {
        return Ok(Vec::new());
    };
    let obj = knobs
        .as_object()
        .ok_or_else(|| "'knobs' must be an object of name: value".to_string())?;
    obj.iter()
        .map(|(k, val)| {
            val.as_f64()
                .filter(|f| *f >= 0.0 && f.fract() == 0.0)
                .map(|f| (k.clone(), f as u64))
                .ok_or_else(|| format!("knob '{k}' must be a non-negative integer"))
        })
        .collect()
}

fn fault_plan(v: &Value) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default();
    let Some(spec) = v.get("plan") else {
        return Ok(plan);
    };
    let obj = spec
        .as_object()
        .ok_or_else(|| "'plan' must be an object".to_string())?;
    for (k, val) in obj {
        let f = val
            .as_f64()
            .ok_or_else(|| format!("plan field '{k}' must be a number"))?;
        match k.as_str() {
            // Assign the field alone: replacing the plan here would zero
            // every rate parsed before "seed", and JSON key order is not
            // semantically significant.
            "seed" => plan.seed = f as u64,
            "fu_bitflip_rate" => plan.fu_bitflip_rate = f,
            "fu_flip_any" => plan.fu_flip_any = f != 0.0,
            "fu_jitter_rate" => plan.fu_jitter_rate = f,
            "fu_jitter_cycles" => plan.fu_jitter_cycles = f as u32,
            "mem_bitflip_rate" => plan.mem_bitflip_rate = f,
            "mem_delay_rate" => plan.mem_delay_rate = f,
            "mem_delay_cycles" => plan.mem_delay_cycles = f as u64,
            "mem_drop_rate" => plan.mem_drop_rate = f,
            "port_busy_rate" => plan.port_busy_rate = f,
            "dma_stall_rate" => plan.dma_stall_rate = f,
            "dma_stall_cycles" => plan.dma_stall_cycles = f as u64,
            other => return Err(format!("unknown plan field '{other}'")),
        }
    }
    Ok(plan)
}

fn job_request(v: &Value) -> Result<JobRequest, String> {
    let job = v.get("job").ok_or("missing 'job' object")?;
    match need_str(job, "type")?.as_str() {
        "kernel" => Ok(JobRequest::Kernel {
            bench: need_str(job, "bench")?,
            knobs: knob_pairs(job)?,
            trace: job.get("trace").and_then(Value::as_bool).unwrap_or(false),
        }),
        "faulted" => Ok(JobRequest::Faulted {
            bench: need_str(job, "bench")?,
            knobs: knob_pairs(job)?,
            plan: fault_plan(job)?,
        }),
        "sweep" => {
            let kernels = job
                .get("kernels")
                .and_then(Value::as_array)
                .ok_or("sweep needs a 'kernels' array")?
                .iter()
                .map(|k| {
                    k.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "kernel ids must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            let axes = job
                .get("axes")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|ax| {
                    let knob = need_str(ax, "knob")?;
                    let values = ax
                        .get("values")
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("axis '{knob}' needs a 'values' array"))?
                        .iter()
                        .map(|n| {
                            n.as_f64()
                                .filter(|f| *f >= 0.0 && f.fract() == 0.0)
                                .map(|f| f as u64)
                                .ok_or_else(|| {
                                    format!("axis '{knob}' values must be non-negative integers")
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(WireAxis { knob, values })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(JobRequest::Sweep {
                name: need_str(job, "name")?,
                kernels,
                axes,
                replay: job.get("replay").and_then(Value::as_bool).unwrap_or(false),
            })
        }
        other => Err(format!("unknown job type '{other}'")),
    }
}

/// Decodes one request line.
///
/// # Errors
///
/// A message describing the malformed field; the server answers it as a
/// `bad-request` response without touching the core.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line)?;
    match need_str(&v, "op")?.as_str() {
        "submit" => Ok(Request::Submit {
            tenant: need_str(&v, "tenant")?,
            job: job_request(&v)?,
            deadline_ms: opt_u64(&v, "deadline_ms")?,
        }),
        "status" => Ok(Request::Status(need_u64(&v, "id")?)),
        "wait" => Ok(Request::Wait(need_u64(&v, "id")?)),
        "cancel" => Ok(Request::Cancel(need_u64(&v, "id")?)),
        "result" => Ok(Request::Result {
            id: need_u64(&v, "id")?,
            artifact: need_str(&v, "artifact")?,
        }),
        "metrics" => match v.get("format").and_then(Value::as_str) {
            None => Ok(Request::Metrics),
            Some("prom") => Ok(Request::MetricsProm),
            Some(other) => Err(format!("unknown metrics format '{other}'")),
        },
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Decodes an HTTP `POST /submit` body: the same shape as the `submit`
/// op minus the `op` field.
///
/// # Errors
///
/// A message describing the malformed field.
pub fn parse_submit_body(text: &str) -> Result<(String, JobRequest, Option<u64>), String> {
    let v = json::parse(text)?;
    Ok((
        need_str(&v, "tenant")?,
        job_request(&v)?,
        opt_u64(&v, "deadline_ms")?,
    ))
}

/// Encodes a [`JobRequest`] as its wire `job` object — the exact shape
/// [`parse_request`] accepts, so journaled jobs round-trip through the
/// same parser the TCP listener uses.
pub fn job_json(job: &JobRequest) -> String {
    let knobs_json = |knobs: &[(String, u64)]| {
        let body = knobs
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{body}}}")
    };
    match job {
        JobRequest::Kernel {
            bench,
            knobs,
            trace,
        } => format!(
            "{{\"type\": \"kernel\", \"bench\": \"{}\", \"knobs\": {}, \"trace\": {trace}}}",
            escape(bench),
            knobs_json(knobs)
        ),
        JobRequest::Faulted { bench, knobs, plan } => format!(
            "{{\"type\": \"faulted\", \"bench\": \"{}\", \"knobs\": {}, \"plan\": \
             {{\"seed\": {}, \"fu_bitflip_rate\": {}, \"fu_flip_any\": {}, \
             \"fu_jitter_rate\": {}, \"fu_jitter_cycles\": {}, \"mem_bitflip_rate\": {}, \
             \"mem_delay_rate\": {}, \"mem_delay_cycles\": {}, \"mem_drop_rate\": {}, \
             \"port_busy_rate\": {}, \"dma_stall_rate\": {}, \"dma_stall_cycles\": {}}}}}",
            escape(bench),
            knobs_json(knobs),
            plan.seed,
            plan.fu_bitflip_rate,
            // The parser reads every plan field as a number.
            u8::from(plan.fu_flip_any),
            plan.fu_jitter_rate,
            plan.fu_jitter_cycles,
            plan.mem_bitflip_rate,
            plan.mem_delay_rate,
            plan.mem_delay_cycles,
            plan.mem_drop_rate,
            plan.port_busy_rate,
            plan.dma_stall_rate,
            plan.dma_stall_cycles,
        ),
        JobRequest::Sweep {
            name,
            kernels,
            axes,
            replay,
        } => {
            let ks = kernels
                .iter()
                .map(|k| format!("\"{}\"", escape(k)))
                .collect::<Vec<_>>()
                .join(", ");
            let axs = axes
                .iter()
                .map(|a| {
                    let vals = a
                        .values
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "{{\"knob\": \"{}\", \"values\": [{vals}]}}",
                        escape(&a.knob)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{\"type\": \"sweep\", \"name\": \"{}\", \"kernels\": [{ks}], \
                 \"axes\": [{axs}], \"replay\": {replay}}}",
                escape(name)
            )
        }
    }
}

/// A journaled admission, as recovered from one `admit` line.
#[derive(Debug, Clone)]
pub struct JournalAdmit {
    /// The job's original server-assigned id (reused on recovery).
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// The submission's deadline option.
    pub deadline_ms: Option<u64>,
    /// The job payload.
    pub job: JobRequest,
}

/// One decoded crash-recovery journal line.
#[derive(Debug, Clone)]
pub enum JournalEvent {
    /// A job was admitted.
    Admit(JournalAdmit),
    /// A job reached a terminal state (will not be re-admitted).
    Terminal {
        /// The job.
        id: JobId,
    },
}

/// One journal `admit` line (newline-free; the journal appends one).
pub fn journal_admit_line(
    id: JobId,
    tenant: &str,
    deadline_ms: Option<u64>,
    job: &JobRequest,
) -> String {
    let deadline = deadline_ms.map_or("null".to_string(), |ms| ms.to_string());
    format!(
        "{{\"event\": \"admit\", \"id\": {id}, \"tenant\": \"{}\", \
         \"deadline_ms\": {deadline}, \"job\": {}}}",
        escape(tenant),
        job_json(job)
    )
}

/// One journal `terminal` line.
pub fn journal_terminal_line(id: JobId) -> String {
    format!("{{\"event\": \"terminal\", \"id\": {id}}}")
}

/// Decodes one journal line.
///
/// # Errors
///
/// A message describing the malformed line; recovery skips it with a
/// warning rather than refusing to start.
pub fn parse_journal_line(line: &str) -> Result<JournalEvent, String> {
    let v = json::parse(line)?;
    match need_str(&v, "event")?.as_str() {
        "admit" => Ok(JournalEvent::Admit(JournalAdmit {
            id: need_u64(&v, "id")?,
            tenant: need_str(&v, "tenant")?,
            deadline_ms: opt_u64(&v, "deadline_ms")?,
            job: job_request(&v)?,
        })),
        "terminal" => Ok(JournalEvent::Terminal {
            id: need_u64(&v, "id")?,
        }),
        other => Err(format!("unknown journal event '{other}'")),
    }
}

/// `{"ok": true, "id": N}` — a successful submission.
pub fn submit_ok(id: JobId) -> String {
    format!("{{\"ok\": true, \"id\": {id}}}")
}

/// A rejection response; `code` is the stable rejection code, the
/// verifier diagnostics ride along verbatim, and shed/circuit-open
/// refusals carry their retry hint.
pub fn rejection_json(r: &Rejection) -> String {
    let retry = r
        .retry_after_ms
        .map_or("null".to_string(), |ms| ms.to_string());
    format!(
        "{{\"ok\": false, \"code\": \"{}\", \"message\": \"{}\", \"retry_after_ms\": {retry}, \
         \"diagnostics\": {}}}",
        escape(r.code),
        escape(&r.message),
        salam_verify::to_json(&r.diagnostics)
    )
}

/// A generic failure response.
pub fn err_json(code: &str, message: &str) -> String {
    format!(
        "{{\"ok\": false, \"code\": \"{}\", \"message\": \"{}\"}}",
        escape(code),
        escape(message)
    )
}

/// A status response.
pub fn status_json(s: &JobStatus) -> String {
    let complete = s.complete_seq.map_or("null".to_string(), |c| c.to_string());
    let detail = s
        .detail
        .as_deref()
        .map_or("null".to_string(), |d| format!("\"{}\"", escape(d)));
    format!(
        "{{\"ok\": true, \"status\": {{\"id\": {}, \"tenant\": \"{}\", \"kind\": \"{}\", \
         \"state\": \"{}\", \"submit_seq\": {}, \"complete_seq\": {complete}, \
         \"detail\": {detail}}}}}",
        s.id,
        escape(&s.tenant),
        escape(s.kind),
        s.state.name(),
        s.submit_seq,
    )
}

/// An artifact response; the artifact rides as a JSON string so CSV and
/// JSON artifacts are carried uniformly.
pub fn artifact_json(text: &str) -> String {
    format!("{{\"ok\": true, \"artifact\": \"{}\"}}", escape(text))
}

/// Embeds an already-JSON payload under `key`.
pub fn raw_ok(key: &str, raw_json: &str) -> String {
    format!("{{\"ok\": true, \"{}\": {raw_json}}}", escape(key))
}

/// `{"ok": true}`.
pub fn ok_json() -> String {
    "{\"ok\": true}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let r = parse_request(
            r#"{"op":"submit","tenant":"alice","job":{"type":"kernel","bench":"gemm","knobs":{"ports":2},"trace":true}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                tenant,
                job,
                deadline_ms,
            } => {
                assert_eq!(tenant, "alice");
                assert_eq!(deadline_ms, None);
                match job {
                    JobRequest::Kernel {
                        bench,
                        knobs,
                        trace,
                    } => {
                        assert_eq!(bench, "gemm");
                        assert_eq!(knobs, vec![("ports".to_string(), 2)]);
                        assert!(trace);
                    }
                    other => panic!("wrong job: {other:?}"),
                }
            }
            other => panic!("wrong request: {other:?}"),
        }

        let r = parse_request(
            r#"{"op":"submit","tenant":"t","job":{"type":"faulted","bench":"spmv","plan":{"seed":7,"mem_delay_rate":0.5,"mem_delay_cycles":3}}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job: JobRequest::Faulted { plan, .. },
                ..
            } => {
                assert_eq!(plan.seed, 7);
                assert!((plan.mem_delay_rate - 0.5).abs() < 1e-12);
                assert_eq!(plan.mem_delay_cycles, 3);
            }
            other => panic!("wrong request: {other:?}"),
        }

        let r = parse_request(
            r#"{"op":"submit","tenant":"t","job":{"type":"sweep","name":"s","kernels":["gemm","spmv"],"axes":[{"knob":"ports","values":[1,2]}]}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job:
                    JobRequest::Sweep {
                        kernels,
                        axes,
                        replay,
                        ..
                    },
                ..
            } => {
                assert_eq!(kernels, vec!["gemm", "spmv"]);
                assert_eq!(axes.len(), 1);
                assert_eq!(axes[0].values, vec![1, 2]);
                assert!(!replay, "replay defaults to off");
            }
            other => panic!("wrong request: {other:?}"),
        }

        let r = parse_request(
            r#"{"op":"submit","tenant":"t","job":{"type":"sweep","name":"s","kernels":["gemm"],"replay":true,"axes":[{"knob":"ports","values":[1,2]}]}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job: JobRequest::Sweep { replay, .. },
                ..
            } => assert!(replay, "replay knob parsed"),
            other => panic!("wrong request: {other:?}"),
        }

        assert!(matches!(
            parse_request(r#"{"op":"status","id":3}"#).unwrap(),
            Request::Status(3)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"wait","id":4}"#).unwrap(),
            Request::Wait(4)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"result","id":1,"artifact":"report"}"#).unwrap(),
            Request::Result { id: 1, .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics","format":"prom"}"#).unwrap(),
            Request::MetricsProm
        ));
        assert!(parse_request(r#"{"op":"metrics","format":"xml"}"#).is_err());
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
        assert!(parse_request(r#"{"op":"nope"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn fault_plan_fields_survive_any_key_order() {
        // "seed" last — where an alphabetical serializer puts it — must not
        // reset the rate fields parsed before it.
        let r = parse_request(
            r#"{"op":"submit","tenant":"t","job":{"type":"faulted","bench":"spmv","plan":{"dma_stall_rate":0.25,"mem_bitflip_rate":0.125,"seed":9}}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job: JobRequest::Faulted { plan, .. },
                ..
            } => {
                assert_eq!(plan.seed, 9);
                assert!((plan.dma_stall_rate - 0.25).abs() < 1e-12);
                assert!((plan.mem_bitflip_rate - 0.125).abs() < 1e-12);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn responses_are_valid_json() {
        use salam_obs::json;
        let esc = escape("a\"b\\c\nd");
        assert_eq!(esc, "a\\\"b\\\\c\\nd");
        for text in [
            submit_ok(7),
            err_json("bad-request", "oops \"quoted\""),
            artifact_json("kernel,cycles\ngemm,12\n"),
            raw_ok("metrics", "{\"a\": 1}"),
            ok_json(),
        ] {
            let v = json::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(v.get("ok").is_some(), "{text}");
        }
    }
}
