//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request. The same encoding
//! backs the TCP listener and the HTTP shim in [`crate::server`], and the
//! client half lives in `salam_client`. Parsing rides on
//! [`salam_obs::json`] — std-only, no external dependencies.
//!
//! Requests (`op` selects the operation):
//!
//! ```json
//! {"op":"submit","tenant":"alice","job":{"type":"kernel","bench":"gemm","knobs":{"ports":2},"trace":false}}
//! {"op":"submit","tenant":"alice","job":{"type":"faulted","bench":"spmv","plan":{"seed":7,"mem_delay_rate":0.01}}}
//! {"op":"submit","tenant":"bob","job":{"type":"sweep","name":"ports","kernels":["gemm"],"axes":[{"knob":"ports","values":[1,2,4]}]}}
//! {"op":"status","id":3}
//! {"op":"wait","id":3}
//! {"op":"result","id":3,"artifact":"report"}
//! {"op":"metrics"}
//! {"op":"metrics","format":"prom"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`; failures add a stable `code`.

use salam_fault::FaultPlan;
use salam_obs::json::{self, Value};

use crate::job::{JobId, JobRequest, JobStatus, Rejection, WireAxis};

/// One decoded request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit a job for a tenant.
    Submit {
        /// Submitting tenant.
        tenant: String,
        /// The job payload.
        job: JobRequest,
    },
    /// Snapshot one job's status.
    Status(JobId),
    /// Block until the job is terminal, then return its status.
    Wait(JobId),
    /// Fetch one artifact of a terminal job.
    Result {
        /// The job.
        id: JobId,
        /// `report` / `trace` / `csv` / `table` / `error` / `lint` /
        /// `postmortem`.
        artifact: String,
    },
    /// Dump the server metrics registry (JSON gauges).
    Metrics,
    /// Dump the metrics in Prometheus text exposition format. The text
    /// rides back as a JSON string under `"prom"` on the native protocol;
    /// the HTTP shim serves it raw as `GET /metrics?format=prom`.
    MetricsProm,
    /// The one-line server summary.
    Stats,
    /// Stop accepting jobs and shut the server down.
    Shutdown,
}

/// Escapes a string for embedding in a JSON literal (shared with every
/// other JSON writer in the workspace via [`salam_obs::json::escape`]).
pub fn escape(s: &str) -> String {
    json::escape(s)
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .filter(|f| *f >= 0.0 && f.fract() == 0.0)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn knob_pairs(v: &Value) -> Result<Vec<(String, u64)>, String> {
    let Some(knobs) = v.get("knobs") else {
        return Ok(Vec::new());
    };
    let obj = knobs
        .as_object()
        .ok_or_else(|| "'knobs' must be an object of name: value".to_string())?;
    obj.iter()
        .map(|(k, val)| {
            val.as_f64()
                .filter(|f| *f >= 0.0 && f.fract() == 0.0)
                .map(|f| (k.clone(), f as u64))
                .ok_or_else(|| format!("knob '{k}' must be a non-negative integer"))
        })
        .collect()
}

fn fault_plan(v: &Value) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default();
    let Some(spec) = v.get("plan") else {
        return Ok(plan);
    };
    let obj = spec
        .as_object()
        .ok_or_else(|| "'plan' must be an object".to_string())?;
    for (k, val) in obj {
        let f = val
            .as_f64()
            .ok_or_else(|| format!("plan field '{k}' must be a number"))?;
        match k.as_str() {
            // Assign the field alone: replacing the plan here would zero
            // every rate parsed before "seed", and JSON key order is not
            // semantically significant.
            "seed" => plan.seed = f as u64,
            "fu_bitflip_rate" => plan.fu_bitflip_rate = f,
            "fu_flip_any" => plan.fu_flip_any = f != 0.0,
            "fu_jitter_rate" => plan.fu_jitter_rate = f,
            "fu_jitter_cycles" => plan.fu_jitter_cycles = f as u32,
            "mem_bitflip_rate" => plan.mem_bitflip_rate = f,
            "mem_delay_rate" => plan.mem_delay_rate = f,
            "mem_delay_cycles" => plan.mem_delay_cycles = f as u64,
            "mem_drop_rate" => plan.mem_drop_rate = f,
            "port_busy_rate" => plan.port_busy_rate = f,
            "dma_stall_rate" => plan.dma_stall_rate = f,
            "dma_stall_cycles" => plan.dma_stall_cycles = f as u64,
            other => return Err(format!("unknown plan field '{other}'")),
        }
    }
    Ok(plan)
}

fn job_request(v: &Value) -> Result<JobRequest, String> {
    let job = v.get("job").ok_or("missing 'job' object")?;
    match need_str(job, "type")?.as_str() {
        "kernel" => Ok(JobRequest::Kernel {
            bench: need_str(job, "bench")?,
            knobs: knob_pairs(job)?,
            trace: job.get("trace").and_then(Value::as_bool).unwrap_or(false),
        }),
        "faulted" => Ok(JobRequest::Faulted {
            bench: need_str(job, "bench")?,
            knobs: knob_pairs(job)?,
            plan: fault_plan(job)?,
        }),
        "sweep" => {
            let kernels = job
                .get("kernels")
                .and_then(Value::as_array)
                .ok_or("sweep needs a 'kernels' array")?
                .iter()
                .map(|k| {
                    k.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "kernel ids must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            let axes = job
                .get("axes")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|ax| {
                    let knob = need_str(ax, "knob")?;
                    let values = ax
                        .get("values")
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("axis '{knob}' needs a 'values' array"))?
                        .iter()
                        .map(|n| {
                            n.as_f64()
                                .filter(|f| *f >= 0.0 && f.fract() == 0.0)
                                .map(|f| f as u64)
                                .ok_or_else(|| {
                                    format!("axis '{knob}' values must be non-negative integers")
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(WireAxis { knob, values })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(JobRequest::Sweep {
                name: need_str(job, "name")?,
                kernels,
                axes,
                replay: job.get("replay").and_then(Value::as_bool).unwrap_or(false),
            })
        }
        other => Err(format!("unknown job type '{other}'")),
    }
}

/// Decodes one request line.
///
/// # Errors
///
/// A message describing the malformed field; the server answers it as a
/// `bad-request` response without touching the core.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line)?;
    match need_str(&v, "op")?.as_str() {
        "submit" => Ok(Request::Submit {
            tenant: need_str(&v, "tenant")?,
            job: job_request(&v)?,
        }),
        "status" => Ok(Request::Status(need_u64(&v, "id")?)),
        "wait" => Ok(Request::Wait(need_u64(&v, "id")?)),
        "result" => Ok(Request::Result {
            id: need_u64(&v, "id")?,
            artifact: need_str(&v, "artifact")?,
        }),
        "metrics" => match v.get("format").and_then(Value::as_str) {
            None => Ok(Request::Metrics),
            Some("prom") => Ok(Request::MetricsProm),
            Some(other) => Err(format!("unknown metrics format '{other}'")),
        },
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Decodes an HTTP `POST /submit` body: the same shape as the `submit`
/// op minus the `op` field.
///
/// # Errors
///
/// A message describing the malformed field.
pub fn parse_submit_body(text: &str) -> Result<(String, JobRequest), String> {
    let v = json::parse(text)?;
    Ok((need_str(&v, "tenant")?, job_request(&v)?))
}

/// `{"ok": true, "id": N}` — a successful submission.
pub fn submit_ok(id: JobId) -> String {
    format!("{{\"ok\": true, \"id\": {id}}}")
}

/// A rejection response; `code` is the stable rejection code and the
/// verifier diagnostics ride along verbatim.
pub fn rejection_json(r: &Rejection) -> String {
    format!(
        "{{\"ok\": false, \"code\": \"{}\", \"message\": \"{}\", \"diagnostics\": {}}}",
        escape(r.code),
        escape(&r.message),
        salam_verify::to_json(&r.diagnostics)
    )
}

/// A generic failure response.
pub fn err_json(code: &str, message: &str) -> String {
    format!(
        "{{\"ok\": false, \"code\": \"{}\", \"message\": \"{}\"}}",
        escape(code),
        escape(message)
    )
}

/// A status response.
pub fn status_json(s: &JobStatus) -> String {
    let complete = s.complete_seq.map_or("null".to_string(), |c| c.to_string());
    let detail = s
        .detail
        .as_deref()
        .map_or("null".to_string(), |d| format!("\"{}\"", escape(d)));
    format!(
        "{{\"ok\": true, \"status\": {{\"id\": {}, \"tenant\": \"{}\", \"kind\": \"{}\", \
         \"state\": \"{}\", \"submit_seq\": {}, \"complete_seq\": {complete}, \
         \"detail\": {detail}}}}}",
        s.id,
        escape(&s.tenant),
        escape(s.kind),
        s.state.name(),
        s.submit_seq,
    )
}

/// An artifact response; the artifact rides as a JSON string so CSV and
/// JSON artifacts are carried uniformly.
pub fn artifact_json(text: &str) -> String {
    format!("{{\"ok\": true, \"artifact\": \"{}\"}}", escape(text))
}

/// Embeds an already-JSON payload under `key`.
pub fn raw_ok(key: &str, raw_json: &str) -> String {
    format!("{{\"ok\": true, \"{}\": {raw_json}}}", escape(key))
}

/// `{"ok": true}`.
pub fn ok_json() -> String {
    "{\"ok\": true}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let r = parse_request(
            r#"{"op":"submit","tenant":"alice","job":{"type":"kernel","bench":"gemm","knobs":{"ports":2},"trace":true}}"#,
        )
        .unwrap();
        match r {
            Request::Submit { tenant, job } => {
                assert_eq!(tenant, "alice");
                match job {
                    JobRequest::Kernel {
                        bench,
                        knobs,
                        trace,
                    } => {
                        assert_eq!(bench, "gemm");
                        assert_eq!(knobs, vec![("ports".to_string(), 2)]);
                        assert!(trace);
                    }
                    other => panic!("wrong job: {other:?}"),
                }
            }
            other => panic!("wrong request: {other:?}"),
        }

        let r = parse_request(
            r#"{"op":"submit","tenant":"t","job":{"type":"faulted","bench":"spmv","plan":{"seed":7,"mem_delay_rate":0.5,"mem_delay_cycles":3}}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job: JobRequest::Faulted { plan, .. },
                ..
            } => {
                assert_eq!(plan.seed, 7);
                assert!((plan.mem_delay_rate - 0.5).abs() < 1e-12);
                assert_eq!(plan.mem_delay_cycles, 3);
            }
            other => panic!("wrong request: {other:?}"),
        }

        let r = parse_request(
            r#"{"op":"submit","tenant":"t","job":{"type":"sweep","name":"s","kernels":["gemm","spmv"],"axes":[{"knob":"ports","values":[1,2]}]}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job:
                    JobRequest::Sweep {
                        kernels,
                        axes,
                        replay,
                        ..
                    },
                ..
            } => {
                assert_eq!(kernels, vec!["gemm", "spmv"]);
                assert_eq!(axes.len(), 1);
                assert_eq!(axes[0].values, vec![1, 2]);
                assert!(!replay, "replay defaults to off");
            }
            other => panic!("wrong request: {other:?}"),
        }

        let r = parse_request(
            r#"{"op":"submit","tenant":"t","job":{"type":"sweep","name":"s","kernels":["gemm"],"replay":true,"axes":[{"knob":"ports","values":[1,2]}]}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job: JobRequest::Sweep { replay, .. },
                ..
            } => assert!(replay, "replay knob parsed"),
            other => panic!("wrong request: {other:?}"),
        }

        assert!(matches!(
            parse_request(r#"{"op":"status","id":3}"#).unwrap(),
            Request::Status(3)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"wait","id":4}"#).unwrap(),
            Request::Wait(4)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"result","id":1,"artifact":"report"}"#).unwrap(),
            Request::Result { id: 1, .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics","format":"prom"}"#).unwrap(),
            Request::MetricsProm
        ));
        assert!(parse_request(r#"{"op":"metrics","format":"xml"}"#).is_err());
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
        assert!(parse_request(r#"{"op":"nope"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn fault_plan_fields_survive_any_key_order() {
        // "seed" last — where an alphabetical serializer puts it — must not
        // reset the rate fields parsed before it.
        let r = parse_request(
            r#"{"op":"submit","tenant":"t","job":{"type":"faulted","bench":"spmv","plan":{"dma_stall_rate":0.25,"mem_bitflip_rate":0.125,"seed":9}}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job: JobRequest::Faulted { plan, .. },
                ..
            } => {
                assert_eq!(plan.seed, 9);
                assert!((plan.dma_stall_rate - 0.25).abs() < 1e-12);
                assert!((plan.mem_bitflip_rate - 0.125).abs() < 1e-12);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn responses_are_valid_json() {
        use salam_obs::json;
        let esc = escape("a\"b\\c\nd");
        assert_eq!(esc, "a\\\"b\\\\c\\nd");
        for text in [
            submit_ok(7),
            err_json("bad-request", "oops \"quoted\""),
            artifact_json("kernel,cycles\ngemm,12\n"),
            raw_ok("metrics", "{\"a\": 1}"),
            ok_json(),
        ] {
            let v = json::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(v.get("ok").is_some(), "{text}");
        }
    }
}
