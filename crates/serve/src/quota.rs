//! Per-tenant admission limits.

/// What one tenant may have in flight at once. The server applies one
/// default quota to every tenant; per-tenant overrides are a config knob
/// away because admission reads the quota through one lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum non-terminal jobs (queued + running). Submissions beyond
    /// this are rejected `quota-queued` until something drains.
    pub max_queued: usize,
    /// Maximum simulation slots the tenant's tasks may hold concurrently.
    /// Excess tasks stay queued (not rejected) — this is a fairness cap,
    /// not an admission limit.
    pub max_running: usize,
    /// Maximum points in one sweep submission; larger sweeps are rejected
    /// `quota-sweep-points` outright.
    pub max_sweep_points: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_queued: 16,
            max_running: 2,
            max_sweep_points: 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_quota_is_sane() {
        let q = TenantQuota::default();
        assert!(q.max_queued > 0 && q.max_running > 0 && q.max_sweep_points > 1);
    }
}
