//! The job model: what tenants submit, how jobs progress, what comes back.

use salam::standalone::StandaloneConfig;
use salam_dse::Axis;
use salam_fault::FaultPlan;
use salam_verify::Diagnostic;

/// A job's server-assigned identity (monotone per server).
pub type JobId = u64;

/// What a tenant asks the server to run.
#[derive(Debug, Clone)]
pub enum JobRequest {
    /// One kernel simulation, optionally with a Chrome trace recorded.
    Kernel {
        /// MachSuite benchmark id (`gemm`, `spmv`, …).
        bench: String,
        /// `(knob, value)` overrides over [`StandaloneConfig::default`],
        /// in submission order (see [`apply_knob`]).
        knobs: Vec<(String, u64)>,
        /// Record op spans and stream them back as a trace artifact.
        trace: bool,
    },
    /// One kernel simulation under a seeded fault-injection plan.
    Faulted {
        /// MachSuite benchmark id.
        bench: String,
        /// Config overrides, as for [`JobRequest::Kernel`].
        knobs: Vec<(String, u64)>,
        /// The campaign plan (decorrelated per-site streams; PR 4).
        plan: FaultPlan,
    },
    /// A whole parameter sweep, scheduled as cpu-intensive chunks.
    Sweep {
        /// Sweep name (table title, metric prefix).
        name: String,
        /// MachSuite benchmark ids, outermost dimension.
        kernels: Vec<String>,
        /// Axes in declaration order; later axes vary faster.
        axes: Vec<WireAxis>,
        /// Use the trace-replay fast path (PR 7): record each kernel's
        /// dependence stream once, re-schedule replay-safe points
        /// analytically, full-sim the rest. Rows gain an `engine` column.
        replay: bool,
    },
}

impl JobRequest {
    /// Stable kind label (`kernel` / `faulted` / `sweep`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobRequest::Kernel { .. } => "kernel",
            JobRequest::Faulted { .. } => "faulted",
            JobRequest::Sweep { .. } => "sweep",
        }
    }
}

/// One sweep axis as it crosses the wire: a knob name and its values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireAxis {
    /// Knob name (see [`apply_knob`] for the registry).
    pub knob: String,
    /// Settings in sweep order.
    pub values: Vec<u64>,
}

impl WireAxis {
    /// Lowers to a `salam-dse` [`Axis`].
    ///
    /// # Errors
    ///
    /// A message naming the unknown knob.
    pub fn to_axis(&self) -> Result<Axis, String> {
        match self.knob.as_str() {
            "ports" => Ok(Axis::spm_ports(
                &self.values.iter().map(|&v| v as u32).collect::<Vec<_>>(),
            )),
            "spm-latency" => Ok(Axis::spm_latency(&self.values)),
            "window" => Ok(Axis::reservation_entries(
                &self.values.iter().map(|&v| v as usize).collect::<Vec<_>>(),
            )),
            other => Err(format!("unknown sweep knob '{other}'")),
        }
    }
}

/// Applies one named config override — the same knob vocabulary the sweep
/// axes use, so a single run and a sweep point describe configurations
/// identically (and therefore share cache entries).
///
/// # Errors
///
/// A message naming the unknown knob.
pub fn apply_knob(cfg: &mut StandaloneConfig, knob: &str, value: u64) -> Result<(), String> {
    match knob {
        "ports" => {
            cfg.spm_read_ports = value as u32;
            cfg.spm_write_ports = value as u32;
        }
        "spm-latency" => cfg.spm_latency = value,
        "window" => cfg.engine.reservation_entries = value as usize,
        // No-progress cycles before the watchdog declares a deadlock.
        // Exposed so chaos jobs (and CI's post-mortem smoke) can trip the
        // watchdog quickly instead of spinning out the default million.
        "deadlock-cycles" => cfg.engine.deadlock_cycles = value,
        other => return Err(format!("unknown config knob '{other}'")),
    }
    Ok(())
}

/// Builds a [`StandaloneConfig`] from default + ordered overrides.
///
/// # Errors
///
/// A message naming the unknown knob.
pub fn config_from_knobs(knobs: &[(String, u64)]) -> Result<StandaloneConfig, String> {
    let mut cfg = StandaloneConfig::default();
    for (knob, value) in knobs {
        apply_knob(&mut cfg, knob, *value)?;
    }
    Ok(cfg)
}

/// Where a job is in its lifecycle. Terminal states are
/// [`JobState::Done`] and [`JobState::Failed`]; rejected submissions never
/// become jobs at all (they return a [`Rejection`] instead of a [`JobId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a simulation slot.
    Queued,
    /// At least one of its tasks holds a slot.
    Running,
    /// Completed with a result artifact.
    Done,
    /// Completed with an error artifact (typed `SimError` or panic).
    Failed,
}

impl JobState {
    /// Lowercase stable name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// `true` once the job can make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// What a finished job produced.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// A single run's full report.
    Report {
        /// The exact [`salam::RunReport`] JSON (byte-identical to a direct
        /// library call on the same configuration).
        json: String,
        /// Total cycles, surfaced for status lines.
        cycles: u64,
        /// Output verification outcome.
        verified: bool,
        /// Dominant attribution class.
        bottleneck: String,
        /// Chrome trace JSON, when the job asked for tracing.
        trace_json: Option<String>,
    },
    /// A completed sweep.
    Sweep {
        /// The result table as CSV (summary trailer included).
        csv: String,
        /// The result table as JSON (`{"rows": …, "summary": …}`).
        json: String,
        /// Total points.
        points: usize,
        /// Points with a report.
        ok: usize,
        /// Points whose job panicked out.
        failed: usize,
        /// Points statically rejected.
        invalid: usize,
    },
    /// The job could not produce a result.
    Error {
        /// Stable class: a [`salam::SimError::label`] or `panic`.
        label: String,
        /// Human-readable detail.
        message: String,
    },
}

impl JobOutcome {
    /// One short status string (`cycles=… verified=…`, `points=… failed=…`,
    /// or the error label).
    pub fn detail(&self) -> String {
        match self {
            JobOutcome::Report {
                cycles, verified, ..
            } => format!("cycles={cycles} verified={verified}"),
            JobOutcome::Sweep {
                points,
                ok,
                failed,
                invalid,
                ..
            } => format!("points={points} ok={ok} failed={failed} invalid={invalid}"),
            JobOutcome::Error { label, .. } => format!("error={label}"),
        }
    }
}

/// A point-in-time snapshot of one job, safe to hand across the wire.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// `kernel` / `faulted` / `sweep`.
    pub kind: &'static str,
    /// Lifecycle state.
    pub state: JobState,
    /// Admission order (monotone across the server).
    pub submit_seq: u64,
    /// Completion order, once terminal.
    pub complete_seq: Option<u64>,
    /// [`JobOutcome::detail`], once terminal.
    pub detail: Option<String>,
}

/// A typed admission refusal. `code` is stable (CI and clients key on it);
/// verify-gated rejections carry the full diagnostics.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// Stable code: `quota-queued`, `quota-sweep-points`, `bad-request`,
    /// `invalid-config`, `verify`, `shutting-down`, `overloaded`,
    /// `circuit-open`.
    pub code: &'static str,
    /// Human-readable reason.
    pub message: String,
    /// Verifier findings, when the gate rejected the job.
    pub diagnostics: Vec<Diagnostic>,
    /// For load-shed and circuit-open refusals: how long the client should
    /// wait before retrying. Rides the wire as `retry_after_ms` and as an
    /// HTTP `Retry-After` header.
    pub retry_after_ms: Option<u64>,
}

impl Rejection {
    /// A rejection without diagnostics.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        Rejection {
            code,
            message: message.into(),
            diagnostics: Vec::new(),
            retry_after_ms: None,
        }
    }

    /// Attaches a retry hint (builder-style).
    #[must_use]
    pub fn with_retry_after_ms(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rejected[{}]: {}", self.code, self.message)
    }
}

/// Why a job lookup (`status` / `wait` / `result`) found nothing.
///
/// The distinction matters: an [`Evicted`](JobLookupError::Evicted) id was
/// once real and its terminal record aged out of the bounded retention
/// window, so a client holding it should not park forever — while a
/// [`NotFound`](JobLookupError::NotFound) id was never allocated at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobLookupError {
    /// The id was never allocated by this server.
    NotFound,
    /// The id was allocated, completed, and its record has since been
    /// evicted by the terminal-retention cap.
    Evicted,
}

impl JobLookupError {
    /// Stable wire code (`not-found` / `evicted`).
    pub fn code(self) -> &'static str {
        match self {
            JobLookupError::NotFound => "not-found",
            JobLookupError::Evicted => "evicted",
        }
    }

    /// Human-readable message for a given id.
    pub fn message(self, id: JobId) -> String {
        match self {
            JobLookupError::NotFound => format!("no job {id}"),
            JobLookupError::Evicted => {
                format!("job {id} completed and its record was evicted from retention")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_vocabulary_matches_axes() {
        let mut cfg = StandaloneConfig::default();
        apply_knob(&mut cfg, "ports", 4).unwrap();
        apply_knob(&mut cfg, "spm-latency", 3).unwrap();
        apply_knob(&mut cfg, "window", 16).unwrap();
        apply_knob(&mut cfg, "deadlock-cycles", 500).unwrap();
        assert_eq!(cfg.spm_read_ports, 4);
        assert_eq!(cfg.spm_write_ports, 4);
        assert_eq!(cfg.spm_latency, 3);
        assert_eq!(cfg.engine.reservation_entries, 16);
        assert_eq!(cfg.engine.deadlock_cycles, 500);
        assert!(apply_knob(&mut cfg, "nope", 1).is_err());

        let ax = WireAxis {
            knob: "ports".into(),
            values: vec![1, 2],
        };
        assert_eq!(ax.to_axis().unwrap().len(), 2);
        assert!(WireAxis {
            knob: "bogus".into(),
            values: vec![1],
        }
        .to_axis()
        .is_err());
    }

    #[test]
    fn states_and_outcomes_summarize() {
        assert!(JobState::Done.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert_eq!(JobState::Queued.name(), "queued");
        let o = JobOutcome::Error {
            label: "deadlock".into(),
            message: "m".into(),
        };
        assert_eq!(o.detail(), "error=deadlock");
    }
}
