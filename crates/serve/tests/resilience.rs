//! Resilience integration tests (PR 9): deadlines, cancellation, breaker
//! determinism, journal crash recovery, and wire-layer bounds.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use salam_resilience::BackoffPolicy;
use salam_serve::wire::{
    journal_admit_line, journal_terminal_line, parse_journal_line, JournalEvent,
};
use salam_serve::{
    JobLookupError, JobRequest, JobState, ServeConfig, ServeCore, Server, SubmitOpts, TenantQuota,
    WireAxis,
};

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("salam-resil-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(tag: &str) -> ServeConfig {
    ServeConfig {
        cache_dir: Some(tmp(tag)),
        no_cache: true,
        ..ServeConfig::default()
    }
}

fn kernel_job(bench: &str, knobs: &[(&str, u64)]) -> JobRequest {
    JobRequest::Kernel {
        bench: bench.to_string(),
        knobs: knobs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        trace: false,
    }
}

#[test]
fn expired_deadline_fails_typed_timeout() {
    let core = ServeCore::start(cfg("deadline"));
    let id = core
        .submit_with(
            "alice",
            kernel_job("gemm", &[]),
            SubmitOpts {
                deadline_ms: Some(0),
            },
        )
        .unwrap();
    let s = core.wait(id).unwrap();
    assert_eq!(s.state, JobState::Failed);
    assert_eq!(s.detail.as_deref(), Some("error=timeout"));
    assert_eq!(core.metrics().get("serve.jobs.timeout"), Some(1.0));
    // The timeout rides the cancelled counter on the stats line.
    assert!(
        core.stats_line().contains("cancelled=1"),
        "{}",
        core.stats_line()
    );
    core.shutdown();
}

#[test]
fn cancel_detaches_a_coalesced_follower_without_stopping_the_leader() {
    // One slot; a sweep occupies it so the leader stays queued while its
    // twin coalesces onto it.
    let core = ServeCore::start(ServeConfig {
        slots: 1,
        sweep_chunk: 4,
        ..cfg("follower-cancel")
    });
    let blocker = core
        .submit(
            "blocker",
            JobRequest::Sweep {
                name: "warm".into(),
                kernels: vec!["gemm".into()],
                axes: vec![WireAxis {
                    knob: "spm-latency".into(),
                    values: vec![1, 2, 3, 4],
                }],
                replay: false,
            },
        )
        .unwrap();
    let leader = core
        .submit("alice", kernel_job("spmv", &[("ports", 2)]))
        .unwrap();
    let twin = core
        .submit("bob", kernel_job("spmv", &[("ports", 2)]))
        .unwrap();

    // Cancelling the follower detaches it immediately — it never had a
    // task of its own — and must not disturb the leader.
    let s = core.cancel(twin).unwrap();
    assert!(s.state.is_terminal());
    assert_eq!(
        core.wait(twin).unwrap().detail.as_deref(),
        Some("error=cancelled")
    );
    assert_eq!(core.wait(leader).unwrap().state, JobState::Done);
    assert_eq!(core.wait(blocker).unwrap().state, JobState::Done);
    assert_eq!(core.metrics().get("serve.jobs.cancelled"), Some(1.0));
    core.shutdown();
}

#[test]
fn cancelling_a_queued_job_is_immediate_and_idempotent() {
    // max_running: 0 pins the job in the queue forever; before PR 9 the
    // only way out was a server shutdown.
    let core = ServeCore::start(ServeConfig {
        quota: TenantQuota {
            max_running: 0,
            ..TenantQuota::default()
        },
        ..cfg("queued-cancel")
    });
    let id = core.submit("alice", kernel_job("gemm", &[])).unwrap();
    let s = core.cancel(id).unwrap();
    assert_eq!(s.state, JobState::Failed);
    assert_eq!(s.detail.as_deref(), Some("error=cancelled"));
    // Idempotent: a second cancel returns the terminal snapshot.
    let again = core.cancel(id).unwrap();
    assert_eq!(again.state, JobState::Failed);
    assert_eq!(core.metrics().get("serve.jobs.cancelled"), Some(1.0));
    core.shutdown();
}

#[test]
fn wait_returns_typed_evicted_instead_of_not_found() {
    // Regression for the wait-vs-eviction hole: a waiter whose job fell
    // out of retention gets a typed `evicted` error, never `not-found`
    // (and never a hang).
    let core = ServeCore::start(ServeConfig {
        retain_terminal: 1,
        ..cfg("evict-wait")
    });
    let first = core.submit("alice", kernel_job("gemm", &[])).unwrap();
    assert_eq!(core.wait(first).unwrap().state, JobState::Done);
    let second = core
        .submit("alice", kernel_job("gemm", &[("ports", 2)]))
        .unwrap();
    assert_eq!(core.wait(second).unwrap().state, JobState::Done);

    assert_eq!(core.wait(first).err(), Some(JobLookupError::Evicted));
    assert_eq!(core.status(first).err(), Some(JobLookupError::Evicted));
    assert_eq!(core.cancel(first).err(), Some(JobLookupError::Evicted));
    // An id never allocated is a different condition.
    assert_eq!(core.wait(12345).err(), Some(JobLookupError::NotFound));
    let msg = core.artifact(first, "report").unwrap_err();
    assert!(msg.contains("evicted"), "{msg}");
    core.shutdown();
}

/// The breaker drill from `chaos_smoke`, pinned as a test: serialized
/// submissions must produce a byte-identical transition log whether the
/// server runs 1 worker or 8.
fn breaker_log_with_slots(slots: usize) -> Vec<String> {
    let core = ServeCore::start(ServeConfig {
        slots,
        chaos: true,
        retries: 0,
        ..cfg(&format!("breaker-{slots}"))
    });
    core.inject_panics(3);
    for _ in 0..3 {
        let id = core
            .submit("alice", kernel_job("__chaos-panic", &[]))
            .unwrap();
        assert_eq!(
            core.wait(id).unwrap().detail.as_deref(),
            Some("error=panic")
        );
    }
    for _ in 0..2 {
        let r = core
            .submit("alice", kernel_job("__chaos-panic", &[]))
            .unwrap_err();
        assert_eq!(r.code, "circuit-open");
        assert!(r.retry_after_ms.is_some());
    }
    let probe = core
        .submit("alice", kernel_job("__chaos-panic", &[]))
        .unwrap();
    assert_eq!(core.wait(probe).unwrap().state, JobState::Done);
    let log = core.breaker_log();
    core.shutdown();
    log
}

#[test]
fn breaker_transitions_are_identical_across_worker_counts() {
    let log1 = breaker_log_with_slots(1);
    let log8 = breaker_log_with_slots(8);
    assert_eq!(log1, log8);
    let transitions: Vec<&str> = log1.iter().filter_map(|l| l.split(": ").nth(1)).collect();
    assert_eq!(
        transitions,
        ["closed->open", "open->half-open", "half-open->closed"]
    );
}

#[test]
fn backoff_schedules_are_seeded_and_worker_count_independent() {
    // The delay is a pure function of (site, attempt): two policy values
    // with the same seed agree everywhere, and the schedule never depends
    // on call order (what a different worker count would perturb).
    let a = BackoffPolicy::default();
    let b = BackoffPolicy::default();
    let site = "standalone/gemm/ports=2";
    let forward: Vec<u64> = (1..=6).map(|n| a.delay_ms(site, n)).collect();
    let backward: Vec<u64> = (1..=6).rev().map(|n| b.delay_ms(site, n)).collect();
    assert_eq!(
        forward,
        backward.into_iter().rev().collect::<Vec<_>>(),
        "schedule must not depend on evaluation order"
    );
    for (i, d) in forward.iter().enumerate() {
        let ceiling = a.cap_ms.min(a.base_ms << (i + 1));
        assert!(*d < ceiling.max(1), "delay {d} beyond ceiling {ceiling}");
    }
    // Different sites draw different jitter.
    let other: Vec<u64> = (1..=6).map(|n| a.delay_ms("standalone/bfs", n)).collect();
    assert_ne!(forward, other);
}

#[test]
fn journal_recovery_re_admits_open_jobs_exactly_once() {
    let dir = tmp("journal");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("jobs.journal");

    // A crashed server's journal: jobs 1 and 2 admitted but not finished,
    // job 3 already terminal (must NOT be re-admitted), and a torn final
    // line (the crash landed mid-write).
    let mut text = String::new();
    text.push_str(&journal_admit_line(
        1,
        "alice",
        None,
        &kernel_job("gemm", &[]),
    ));
    text.push('\n');
    text.push_str(&journal_admit_line(
        2,
        "bob",
        Some(60_000),
        &kernel_job("spmv", &[("ports", 2)]),
    ));
    text.push('\n');
    text.push_str(&journal_admit_line(
        3,
        "carol",
        None,
        &kernel_job("bfs", &[]),
    ));
    text.push('\n');
    text.push_str(&journal_terminal_line(3));
    text.push('\n');
    text.push_str("{\"event\": \"admit\", \"id\": 4, \"tena"); // torn
    std::fs::write(&journal, &text).unwrap();

    let core = ServeCore::start(ServeConfig {
        journal: Some(journal.clone()),
        ..cfg("journal-core")
    });
    assert_eq!(core.metrics().get("serve.jobs.recovered"), Some(2.0));
    assert_eq!(core.wait(1).unwrap().state, JobState::Done);
    assert_eq!(core.wait(2).unwrap().state, JobState::Done);
    // Fresh ids continue past everything the journal ever allocated.
    let fresh = core.submit("dave", kernel_job("gemm", &[])).unwrap();
    assert_eq!(fresh, 4);
    assert_eq!(core.wait(fresh).unwrap().state, JobState::Done);

    // Recovered outcomes are byte-identical to a direct run of the same
    // configuration on a fresh server.
    let report = core.artifact(2, "report").unwrap();
    let reference = ServeCore::start(cfg("journal-ref"));
    let ref_id = reference
        .submit("ref", kernel_job("spmv", &[("ports", 2)]))
        .unwrap();
    assert_eq!(reference.wait(ref_id).unwrap().state, JobState::Done);
    assert_eq!(report, reference.artifact(ref_id, "report").unwrap());
    reference.shutdown();
    core.shutdown();

    // The journal now tells an exactly-once story: ids 1, 2 and 4 have
    // one admit and one terminal each; id 3 was compacted away.
    let mut admits = std::collections::BTreeMap::new();
    let mut terminals = std::collections::BTreeMap::new();
    for line in std::fs::read_to_string(&journal).unwrap().lines() {
        match parse_journal_line(line).unwrap() {
            JournalEvent::Admit(a) => *admits.entry(a.id).or_insert(0u32) += 1,
            JournalEvent::Terminal { id } => *terminals.entry(id).or_insert(0u32) += 1,
        }
    }
    assert_eq!(admits.get(&1), Some(&1));
    assert_eq!(admits.get(&2), Some(&1));
    assert_eq!(admits.get(&4), Some(&1));
    assert_eq!(admits.get(&3), None, "terminal job must be compacted away");
    assert_eq!(terminals.get(&1), Some(&1));
    assert_eq!(terminals.get(&2), Some(&1));
    assert_eq!(terminals.get(&4), Some(&1));
}

#[test]
fn recovering_twice_from_the_same_journal_is_identical() {
    // Recovery itself must be deterministic: two cores booted from copies
    // of the same journal produce the same recovered set and outcomes.
    let mut text = String::new();
    for (id, bench) in [(1u64, "gemm"), (2, "spmv")] {
        text.push_str(&journal_admit_line(
            id,
            "alice",
            None,
            &kernel_job(bench, &[]),
        ));
        text.push('\n');
    }
    let mut reports = Vec::new();
    for copy in ["a", "b"] {
        let dir = tmp(&format!("journal-twice-{copy}"));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("jobs.journal");
        std::fs::write(&journal, &text).unwrap();
        let core = ServeCore::start(ServeConfig {
            journal: Some(journal),
            ..cfg(&format!("journal-twice-core-{copy}"))
        });
        assert_eq!(core.metrics().get("serve.jobs.recovered"), Some(2.0));
        assert_eq!(core.wait(1).unwrap().state, JobState::Done);
        assert_eq!(core.wait(2).unwrap().state, JobState::Done);
        reports.push((
            core.artifact(1, "report").unwrap(),
            core.artifact(2, "report").unwrap(),
        ));
        core.shutdown();
    }
    assert_eq!(reports[0], reports[1], "recovery must be deterministic");
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response
}

#[test]
fn oversized_wire_lines_are_rejected_and_the_connection_closed() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_line_bytes: 256,
            ..cfg("bounds")
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let huge = format!("{{\"op\":\"stats\",\"pad\":\"{}\"}}", "x".repeat(4096));
    let r = send_line(&mut stream, &mut reader, &huge);
    assert!(r.contains("\"bad-request\""), "{r}");
    assert!(r.contains("size limit"), "{r}");
    // The server hangs up rather than resynchronize inside a torn stream.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "connection closed");

    // A bounded request still works on a fresh connection.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let r = send_line(&mut stream, &mut reader, r#"{"op":"stats"}"#);
    assert!(r.contains("\"ok\": true"), "{r}");

    // The HTTP shim enforces the same ceiling on header lines.
    let mut http = TcpStream::connect(addr).unwrap();
    let mut http_reader = BufReader::new(http.try_clone().unwrap());
    http.write_all(
        format!(
            "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(4096)
        )
        .as_bytes(),
    )
    .unwrap();
    let mut status = String::new();
    http_reader.read_line(&mut status).unwrap();
    assert!(status.starts_with("HTTP/1.1 400"), "{status}");
    server.shutdown();
}

#[test]
fn cancel_deadline_and_health_ride_the_wire() {
    // max_running: 0 pins submissions in the queue so cancel outcomes are
    // deterministic.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            quota: TenantQuota {
                max_running: 0,
                ..TenantQuota::default()
            },
            ..cfg("wire-cancel")
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Submit with a deadline; the field round-trips through the wire.
    let r = send_line(
        &mut stream,
        &mut reader,
        r#"{"op":"submit","tenant":"alice","deadline_ms":60000,"job":{"type":"kernel","bench":"gemm"}}"#,
    );
    let v = salam_obs::json::parse(&r).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{r}");
    let id = v.get("id").and_then(|n| n.as_f64()).unwrap() as u64;

    // Cancel it over the native op; the snapshot comes back terminal.
    let r = send_line(
        &mut stream,
        &mut reader,
        &format!(r#"{{"op":"cancel","id":{id}}}"#),
    );
    assert!(r.contains("\"state\": \"failed\""), "{r}");
    assert!(r.contains("error=cancelled"), "{r}");

    // Cancelling a never-allocated id is typed.
    let r = send_line(&mut stream, &mut reader, r#"{"op":"cancel","id":999}"#);
    assert!(r.contains("\"not-found\""), "{r}");

    // Second job cancelled through the HTTP shim instead.
    let body = r#"{"tenant":"bob","job":{"type":"kernel","bench":"bfs"}}"#;
    let mut http = TcpStream::connect(addr).unwrap();
    http.write_all(
        format!(
            "POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let mut response = String::new();
    std::io::Read::read_to_string(&mut http, &mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let payload = response.split("\r\n\r\n").nth(1).unwrap();
    let bob_id = salam_obs::json::parse(payload)
        .unwrap()
        .get("id")
        .and_then(|n| n.as_f64())
        .unwrap() as u64;
    let mut http = TcpStream::connect(addr).unwrap();
    http.write_all(format!("POST /cancel?id={bob_id} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    std::io::Read::read_to_string(&mut http, &mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("error=cancelled"), "{response}");

    // Liveness and readiness endpoints.
    for (path, needle) in [
        ("/healthz", "HTTP/1.1 200 OK"),
        ("/readyz", "HTTP/1.1 200 OK"),
    ] {
        let mut http = TcpStream::connect(addr).unwrap();
        http.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        std::io::Read::read_to_string(&mut http, &mut response).unwrap();
        assert!(response.starts_with(needle), "{path}: {response}");
    }
    server.shutdown();
}
