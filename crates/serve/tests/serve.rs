//! End-to-end serving tests: multi-tenant job mixes, admission control,
//! fairness, determinism, coalescing, cache warmth, and both transports.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use salam::standalone::{try_run_kernel_traced, StandaloneConfig};
use salam_serve::{
    JobLookupError, JobRequest, JobState, Rejection, ServeConfig, ServeCore, Server, TenantQuota,
    WireAxis,
};

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("salam-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(tag: &str) -> ServeConfig {
    ServeConfig {
        cache_dir: Some(tmp(tag)),
        ..ServeConfig::default()
    }
}

fn kernel_job(bench: &str, knobs: &[(&str, u64)]) -> JobRequest {
    JobRequest::Kernel {
        bench: bench.to_string(),
        knobs: knobs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        trace: false,
    }
}

/// The report a direct library call produces for the same configuration.
fn direct_report_json(bench: machsuite::Bench, knobs: &[(&str, u64)]) -> String {
    let mut cfg = StandaloneConfig::default();
    for (k, v) in knobs {
        salam_serve::job::apply_knob(&mut cfg, k, *v).unwrap();
    }
    let trace = salam_obs::SharedTrace::disabled();
    try_run_kernel_traced(&bench.build_standard(), &cfg, &trace, None)
        .expect("direct run succeeds")
        .to_json()
}

#[test]
fn multi_tenant_mix_end_to_end() {
    let core = ServeCore::start(cfg("mix"));

    // Tenant alice: an interactive kernel run.
    let a1 = core
        .submit("alice", kernel_job("gemm", &[("ports", 2)]))
        .unwrap();
    // Tenant bob: a clean faulted run (seeded plan, zero rates) and a sweep.
    let b1 = core
        .submit(
            "bob",
            JobRequest::Faulted {
                bench: "spmv".into(),
                knobs: vec![],
                plan: salam_fault::FaultPlan::seeded(7),
            },
        )
        .unwrap();
    let b2 = core
        .submit(
            "bob",
            JobRequest::Sweep {
                name: "ports".into(),
                kernels: vec!["gemm".into()],
                axes: vec![WireAxis {
                    knob: "ports".into(),
                    values: vec![1, 2],
                }],
                replay: false,
            },
        )
        .unwrap();

    // Invalid submissions are rejected with stable codes, never scheduled.
    let bad_bench = core
        .submit("alice", kernel_job("nonesuch", &[]))
        .unwrap_err();
    assert_eq!(bad_bench.code, "bad-request");
    let bad_cfg = core
        .submit("alice", kernel_job("gemm", &[("ports", 0)]))
        .unwrap_err();
    assert_eq!(bad_cfg.code, "invalid-config");
    assert!(
        !bad_cfg.diagnostics.is_empty(),
        "carries the C001 diagnostic"
    );
    let bad_knob = core
        .submit("alice", kernel_job("gemm", &[("warp-speed", 9)]))
        .unwrap_err();
    assert_eq!(bad_knob.code, "bad-request");

    let s1 = core.wait(a1).unwrap();
    assert_eq!(s1.state, JobState::Done);
    let report = core.artifact(a1, "report").unwrap();
    assert_eq!(
        report,
        direct_report_json(machsuite::Bench::GemmNcubed, &[("ports", 2)]),
        "served report is byte-identical to a direct library call"
    );

    let s2 = core.wait(b1).unwrap();
    assert_eq!(s2.state, JobState::Done, "zero-rate plan runs clean");

    let s3 = core.wait(b2).unwrap();
    assert_eq!(s3.state, JobState::Done);
    let csv = core.artifact(b2, "csv").unwrap();
    assert!(csv.contains("# points=2 ok=2 failed=0 invalid=0"), "{csv}");
    let table = core.artifact(b2, "table").unwrap();
    let v = salam_obs::json::parse(&table).unwrap();
    assert_eq!(
        v.get("summary")
            .and_then(|s| s.get("ok"))
            .and_then(|x| x.as_str()),
        Some("2")
    );

    // Wrong-artifact requests fail with a message, not a panic.
    assert!(core.artifact(a1, "csv").is_err());
    assert!(core.artifact(b2, "trace").is_err());
    assert_eq!(core.artifact(a1, "lint").unwrap(), "[]");

    let m = core.metrics();
    assert_eq!(m.get("serve.jobs.submitted"), Some(3.0));
    assert_eq!(m.get("serve.jobs.done"), Some(3.0));
    assert_eq!(m.get("serve.jobs.rejected"), Some(3.0));
    assert_eq!(m.get("serve.tenant.alice.submitted"), Some(1.0));
    assert_eq!(m.get("serve.tenant.alice.rejected"), Some(3.0));
    assert_eq!(m.get("serve.tenant.bob.completed"), Some(2.0));
    assert!(
        m.get("serve.cache.entries").is_some(),
        "cache metrics ride along"
    );

    let line = core.stats_line();
    assert!(
        line.contains("done=3") && line.contains("rejected=3"),
        "{line}"
    );
    core.shutdown();
}

#[test]
fn fairness_interactive_finishes_before_a_long_sweep() {
    // One slot, one point per chunk: the worst case for an interactive job
    // racing a big batch.
    let core = ServeCore::start(ServeConfig {
        slots: 1,
        sweep_chunk: 1,
        no_cache: true,
        ..cfg("fair")
    });
    let sweep = core
        .submit(
            "batch",
            JobRequest::Sweep {
                name: "big".into(),
                kernels: vec!["gemm".into()],
                axes: vec![
                    WireAxis {
                        knob: "ports".into(),
                        values: vec![1, 2, 4],
                    },
                    WireAxis {
                        knob: "spm-latency".into(),
                        values: vec![1, 2],
                    },
                ],
                replay: false,
            },
        )
        .unwrap();
    let fast = core.submit("alice", kernel_job("bfs", &[])).unwrap();
    let fast_done = core.wait(fast).unwrap();
    let sweep_done = core.wait(sweep).unwrap();
    assert_eq!(fast_done.state, JobState::Done);
    assert_eq!(sweep_done.state, JobState::Done);
    assert!(
        fast_done.complete_seq.unwrap() < sweep_done.complete_seq.unwrap(),
        "interactive job (seq {:?}) must finish before the 6-point sweep (seq {:?})",
        fast_done.complete_seq,
        sweep_done.complete_seq
    );
    core.shutdown();
}

#[test]
fn quotas_reject_at_the_limit_and_admit_after_drain() {
    // max_running: 0 pins admitted jobs in the queue, so "tenant at its
    // queued-jobs limit" is a deterministic state, not a race.
    let stuck = ServeCore::start(ServeConfig {
        quota: TenantQuota {
            max_queued: 1,
            max_running: 0,
            max_sweep_points: 8,
        },
        ..cfg("quota-stuck")
    });
    stuck.submit("alice", kernel_job("gemm", &[])).unwrap();
    let r: Rejection = stuck.submit("alice", kernel_job("gemm", &[])).unwrap_err();
    assert_eq!(r.code, "quota-queued");
    // Quotas are per tenant: bob is unaffected by alice's backlog.
    stuck.submit("bob", kernel_job("gemm", &[])).unwrap();

    // A fresh tenant with no backlog still can't submit an oversized sweep.
    let big = stuck
        .submit(
            "carol",
            JobRequest::Sweep {
                name: "big".into(),
                kernels: vec!["gemm".into()],
                axes: vec![WireAxis {
                    knob: "spm-latency".into(),
                    values: (1..=9).collect(),
                }],
                replay: false,
            },
        )
        .unwrap_err();
    assert_eq!(big.code, "quota-sweep-points");
    stuck.shutdown();

    // After a tenant's jobs drain, the same quota admits new work.
    let core = ServeCore::start(ServeConfig {
        quota: TenantQuota {
            max_queued: 1,
            ..TenantQuota::default()
        },
        ..cfg("quota-drain")
    });
    let j1 = core.submit("alice", kernel_job("gemm", &[])).unwrap();
    core.wait(j1).unwrap();
    let j2 = core.submit("alice", kernel_job("gemm", &[])).unwrap();
    assert_eq!(core.wait(j2).unwrap().state, JobState::Done);
    core.shutdown();
}

#[test]
fn results_are_identical_across_slot_counts_and_arrival_orders() {
    let sweep = || JobRequest::Sweep {
        name: "det".into(),
        kernels: vec!["gemm".into(), "spmv".into()],
        axes: vec![WireAxis {
            knob: "ports".into(),
            values: vec![1, 2],
        }],
        replay: false,
    };
    let single = || kernel_job("nw", &[("window", 16)]);

    // Serial server, sweep submitted first, cold private cache.
    let a = ServeCore::start(ServeConfig {
        slots: 1,
        ..cfg("det-a")
    });
    let a_sweep = a.submit("t", sweep()).unwrap();
    let a_single = a.submit("t", single()).unwrap();
    assert_eq!(a.wait(a_sweep).unwrap().state, JobState::Done);
    assert_eq!(a.wait(a_single).unwrap().state, JobState::Done);
    let a_csv = a.artifact(a_sweep, "csv").unwrap();
    let a_report = a.artifact(a_single, "report").unwrap();
    a.shutdown();

    // Wide server, reversed arrival, no cache at all.
    let b = ServeCore::start(ServeConfig {
        slots: 4,
        sweep_chunk: 1,
        no_cache: true,
        ..cfg("det-b")
    });
    let b_single = b.submit("t", single()).unwrap();
    let b_sweep = b.submit("t", sweep()).unwrap();
    assert_eq!(b.wait(b_sweep).unwrap().state, JobState::Done);
    assert_eq!(b.wait(b_single).unwrap().state, JobState::Done);
    assert_eq!(b.artifact(b_sweep, "csv").unwrap(), a_csv);
    assert_eq!(b.artifact(b_single, "report").unwrap(), a_report);
    b.shutdown();
}

#[test]
fn identical_inflight_jobs_coalesce_onto_one_simulation() {
    // One slot, no cache; a batch chunk occupies the slot so the leader
    // stays in flight while its twin arrives.
    let core = ServeCore::start(ServeConfig {
        slots: 1,
        sweep_chunk: 4,
        no_cache: true,
        ..cfg("coalesce")
    });
    let blocker = core
        .submit(
            "blocker",
            JobRequest::Sweep {
                name: "warm".into(),
                kernels: vec!["gemm".into()],
                axes: vec![WireAxis {
                    knob: "spm-latency".into(),
                    values: vec![1, 2, 3, 4],
                }],
                replay: false,
            },
        )
        .unwrap();
    let leader = core
        .submit("alice", kernel_job("spmv", &[("ports", 2)]))
        .unwrap();
    let twin = core
        .submit("bob", kernel_job("spmv", &[("ports", 2)]))
        .unwrap();

    let s1 = core.wait(leader).unwrap();
    let s2 = core.wait(twin).unwrap();
    assert_eq!(s1.state, JobState::Done);
    assert_eq!(s2.state, JobState::Done);
    assert_eq!(
        core.artifact(leader, "report").unwrap(),
        core.artifact(twin, "report").unwrap()
    );
    // The blocker must be terminal too before reading run counters — the
    // single can win the slot race, leaving the sweep in flight here.
    assert_eq!(core.wait(blocker).unwrap().state, JobState::Done);
    let m = core.metrics();
    assert_eq!(m.get("serve.jobs.coalesced"), Some(1.0));
    // 4 sweep points + exactly one shared single simulation.
    assert_eq!(m.get("serve.sim_runs"), Some(5.0));
    // The leader simulated, so riding along is a coalesce — not a cache
    // hit — for the follower's tenant.
    assert_eq!(m.get("serve.tenant.bob.coalesced"), Some(1.0));
    assert_eq!(m.get("serve.tenant.bob.cache_hits"), Some(0.0));
    core.shutdown();
}

#[test]
fn terminal_jobs_are_evicted_past_the_retention_cap() {
    let core = ServeCore::start(ServeConfig {
        retain_terminal: 1,
        no_cache: true,
        ..cfg("retain")
    });
    let first = core.submit("alice", kernel_job("bfs", &[])).unwrap();
    assert_eq!(core.wait(first).unwrap().state, JobState::Done);
    let second = core
        .submit("alice", kernel_job("bfs", &[("ports", 2)]))
        .unwrap();
    assert_eq!(core.wait(second).unwrap().state, JobState::Done);

    // Only the most recent terminal record (and its artifacts) survives;
    // the lifetime counters don't shrink with it.
    assert_eq!(
        core.status(first).err(),
        Some(JobLookupError::Evicted),
        "oldest evicted first, with a typed eviction error"
    );
    assert!(core.artifact(second, "report").is_ok());
    let m = core.metrics();
    assert_eq!(m.get("serve.jobs.done"), Some(2.0));
    assert_eq!(m.get("serve.tenant.alice.completed"), Some(2.0));
    assert!(core.stats_line().contains("done=2"));

    // Evicted jobs never eat into the tenant's in-flight budget.
    let third = core.submit("alice", kernel_job("bfs", &[])).unwrap();
    assert_eq!(core.wait(third).unwrap().state, JobState::Done);
    core.shutdown();
}

#[test]
fn shutdown_fails_abandoned_jobs_instead_of_stranding_waiters() {
    // max_running: 0 pins the job in the queue, so it is guaranteed to
    // still be queued when the server shuts down.
    let core = ServeCore::start(ServeConfig {
        quota: TenantQuota {
            max_running: 0,
            ..TenantQuota::default()
        },
        no_cache: true,
        ..cfg("abandon")
    });
    let stuck = core.submit("alice", kernel_job("gemm", &[])).unwrap();
    core.shutdown();
    // wait() must return, not park forever on a job that can never run.
    let s = core.wait(stuck).expect("record survives shutdown");
    assert_eq!(s.state, JobState::Failed);
    let err = core.artifact(stuck, "error").unwrap();
    let v = salam_obs::json::parse(&err).unwrap();
    assert_eq!(v.get("label").and_then(|l| l.as_str()), Some("shutdown"));
}

#[test]
fn a_tenant_is_served_from_another_tenants_warm_cache() {
    let core = ServeCore::start(cfg("warm"));
    let first = core
        .submit("alice", kernel_job("gemm", &[("ports", 4)]))
        .unwrap();
    assert_eq!(core.wait(first).unwrap().state, JobState::Done);
    let second = core
        .submit("bob", kernel_job("gemm", &[("ports", 4)]))
        .unwrap();
    assert_eq!(core.wait(second).unwrap().state, JobState::Done);
    assert_eq!(
        core.artifact(first, "report").unwrap(),
        core.artifact(second, "report").unwrap()
    );
    let m = core.metrics();
    assert_eq!(
        m.get("serve.cache_hits"),
        Some(1.0),
        "bob hit alice's entry"
    );
    assert_eq!(m.get("serve.sim_runs"), Some(1.0), "only alice simulated");
    assert_eq!(m.get("serve.tenant.bob.cache_hits"), Some(1.0));
    core.shutdown();
}

#[test]
fn failing_jobs_are_isolated_and_typed() {
    let core = ServeCore::start(ServeConfig {
        no_cache: true,
        ..cfg("faults")
    });
    // Dropping nearly every memory response is a detectable hang: the
    // watchdog turns it into a typed deadlock, not a wedged server. (A
    // rate of exactly 1.0 would be rejected pre-flight as a provable
    // `F004` deadlock — this test wants the *dynamic* path.)
    let mut plan = salam_fault::FaultPlan::seeded(3);
    plan.mem_drop_rate = 0.999;
    let doomed = core
        .submit(
            "chaos",
            JobRequest::Faulted {
                bench: "gemm".into(),
                knobs: vec![],
                plan,
            },
        )
        .unwrap();
    let s = core.wait(doomed).unwrap();
    assert_eq!(s.state, JobState::Failed);
    let err = core.artifact(doomed, "error").unwrap();
    let v = salam_obs::json::parse(&err).unwrap();
    assert_eq!(v.get("label").and_then(|l| l.as_str()), Some("deadlock"));

    // The server keeps serving afterwards.
    let next = core.submit("alice", kernel_job("bfs", &[])).unwrap();
    assert_eq!(core.wait(next).unwrap().state, JobState::Done);

    // A sweep containing statically-invalid points completes, counting
    // them instead of failing the whole job.
    let sweep = core
        .submit(
            "chaos",
            JobRequest::Sweep {
                name: "holes".into(),
                kernels: vec!["gemm".into()],
                axes: vec![WireAxis {
                    knob: "ports".into(),
                    values: vec![0, 1],
                }],
                replay: false,
            },
        )
        .unwrap();
    let s = core.wait(sweep).unwrap();
    assert_eq!(s.state, JobState::Done);
    let csv = core.artifact(sweep, "csv").unwrap();
    assert!(csv.contains("# points=2 ok=1 failed=0 invalid=1"), "{csv}");
    core.shutdown();
}

#[test]
fn certain_deadlock_plans_are_rejected_by_the_flow_gate() {
    let core = ServeCore::start(ServeConfig {
        no_cache: true,
        ..cfg("flowgate")
    });
    let mut plan = salam_fault::FaultPlan::seeded(3);
    plan.mem_drop_rate = 1.0;
    let rej = core
        .submit(
            "chaos",
            JobRequest::Faulted {
                bench: "gemm".into(),
                knobs: vec![],
                plan,
            },
        )
        .unwrap_err();
    assert_eq!(rej.code, "flow-deadlock");
    assert_eq!(rej.diagnostics.len(), 1);
    assert_eq!(rej.diagnostics[0].code, "F004");
    assert!(
        rej.message.contains("provably deadlocks"),
        "{}",
        rej.message
    );
    core.shutdown();

    // The prediction the gate acted on agrees with the dynamic outcome:
    // with verification off the same plan is admitted, and the watchdog
    // fires exactly as the `F004` verdict promised.
    let off = ServeCore::start(ServeConfig {
        no_cache: true,
        verify: false,
        ..cfg("flowgate-off")
    });
    let mut plan = salam_fault::FaultPlan::seeded(3);
    plan.mem_drop_rate = 1.0;
    let id = off
        .submit(
            "chaos",
            JobRequest::Faulted {
                bench: "gemm".into(),
                knobs: vec![("deadlock-cycles".to_string(), 200)],
                plan,
            },
        )
        .unwrap();
    let s = off.wait(id).unwrap();
    assert_eq!(s.state, JobState::Failed);
    let err = off.artifact(id, "error").unwrap();
    let v = salam_obs::json::parse(&err).unwrap();
    assert_eq!(v.get("label").and_then(|l| l.as_str()), Some("deadlock"));
    off.shutdown();
}

#[test]
fn replay_sweeps_gain_an_engine_column_and_match_full_sim_cycles() {
    let core = ServeCore::start(ServeConfig {
        no_cache: true,
        ..cfg("replay")
    });
    let sweep = |replay| JobRequest::Sweep {
        name: "rp".into(),
        kernels: vec!["gemm".into()],
        axes: vec![WireAxis {
            knob: "ports".into(),
            values: vec![1, 2, 4],
        }],
        replay,
    };
    let fast = core.submit("alice", sweep(true)).unwrap();
    let slow = core.submit("alice", sweep(false)).unwrap();
    assert_eq!(core.wait(fast).unwrap().state, JobState::Done);
    assert_eq!(core.wait(slow).unwrap().state, JobState::Done);
    let fast_csv = core.artifact(fast, "csv").unwrap();
    let slow_csv = core.artifact(slow, "csv").unwrap();

    // The replay sweep's artifact carries the engine column and the
    // replayed count; the plain sweep's artifact is unchanged.
    assert!(fast_csv.contains("engine"), "{fast_csv}");
    assert!(fast_csv.contains(",replay"), "{fast_csv}");
    assert!(fast_csv.contains("replayed=2"), "{fast_csv}");
    assert!(!slow_csv.contains("engine"), "{slow_csv}");

    // Replayed cycles agree with the event engine point for point
    // (replay is cycle-exact on port axes).
    let strip = |csv: &str| -> Vec<(String, String)> {
        csv.lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("point"))
            .map(|l| {
                let mut parts = l.split(',');
                (
                    parts.next().unwrap_or_default().to_string(),
                    parts.next().unwrap_or_default().to_string(),
                )
            })
            .collect()
    };
    assert_eq!(strip(&fast_csv), strip(&slow_csv));
    core.shutdown();
}

#[test]
fn telemetry_records_latency_histograms_and_prometheus_exposition() {
    let core = ServeCore::start(ServeConfig {
        no_cache: true,
        ..cfg("telemetry")
    });
    let j1 = core.submit("alice", kernel_job("bfs", &[])).unwrap();
    let j2 = core
        .submit("bob", kernel_job("gemm", &[("ports", 2)]))
        .unwrap();
    assert_eq!(core.wait(j1).unwrap().state, JobState::Done);
    assert_eq!(core.wait(j2).unwrap().state, JobState::Done);

    // The JSON registry gains the histogram expansion.
    let m = core.metrics();
    assert_eq!(m.get("serve.latency.e2e_us.count"), Some(2.0));
    assert_eq!(m.get("serve.latency.e2e_us.class.kernel.count"), Some(2.0));
    assert_eq!(m.get("serve.latency.e2e_us.tenant.alice.count"), Some(1.0));
    assert_eq!(m.get("serve.latency.queue_us.count"), Some(2.0));
    assert!(m.get("serve.latency.run_us.p99").is_some());

    // The Prometheus exposition is well-formed: typed families, cumulative
    // buckets with a +Inf bound, _sum/_count, and the plain gauges.
    let prom = core.metrics_prom();
    assert!(
        prom.contains("# TYPE serve_latency_e2e_us histogram"),
        "{prom}"
    );
    assert!(
        prom.contains("serve_latency_e2e_us_bucket{le=\"+Inf\"} 2"),
        "{prom}"
    );
    assert!(prom.contains("serve_latency_e2e_us_sum"), "{prom}");
    assert!(prom.contains("serve_latency_e2e_us_count 2"), "{prom}");
    assert!(prom.contains("# TYPE serve_jobs_done gauge"), "{prom}");
    assert!(
        !prom.contains("# TYPE serve_latency_e2e_us_count gauge"),
        "histogram summaries must not leak into the gauge section: {prom}"
    );

    // The stats line carries the e2e percentiles (satellite 2).
    let line = core.stats_line();
    assert!(line.contains("e2e_p50_ms="), "{line}");
    assert!(line.contains("e2e_p99_ms="), "{line}");

    // The bench-out summary names each class with its percentiles.
    let summary = core.latency_summary_json();
    let v = salam_obs::json::parse(&summary).unwrap();
    assert_eq!(
        v.get("total")
            .and_then(|t| t.get("count"))
            .and_then(|c| c.as_f64()),
        Some(2.0),
        "{summary}"
    );
    assert!(
        v.get("classes")
            .and_then(|c| c.get("kernel"))
            .and_then(|k| k.get("p99_us"))
            .is_some(),
        "{summary}"
    );
    core.shutdown();
}

#[test]
fn every_job_gets_a_lifecycle_trace_and_telemetry_off_restores_the_baseline() {
    // Telemetry on (the default): even an untraced job serves a span-tree
    // trace artifact with the lifecycle stages and its trace id.
    let on = ServeCore::start(ServeConfig {
        no_cache: true,
        ..cfg("tel-on")
    });
    let j = on.submit("alice", kernel_job("bfs", &[])).unwrap();
    assert_eq!(on.wait(j).unwrap().state, JobState::Done);
    let report_on = on.artifact(j, "report").unwrap();
    let trace = on.artifact(j, "trace").unwrap();
    for needle in ["\"queued\"", "\"run\"", "\"admitted\"", "trace_id:"] {
        assert!(trace.contains(needle), "missing {needle} in {trace}");
    }
    on.shutdown();

    // Telemetry off: no trace artifact for untraced jobs (the pre-PR 8
    // contract), no histograms — and the simulation artifact itself is
    // byte-identical, proving telemetry does not perturb the model.
    let off = ServeCore::start(ServeConfig {
        no_cache: true,
        telemetry: false,
        ..cfg("tel-off")
    });
    let j = off.submit("alice", kernel_job("bfs", &[])).unwrap();
    assert_eq!(off.wait(j).unwrap().state, JobState::Done);
    assert_eq!(off.artifact(j, "report").unwrap(), report_on);
    assert!(off.artifact(j, "trace").is_err());
    assert!(off.metrics().get("serve.latency.e2e_us.count").is_none());
    let line = off.stats_line();
    assert!(line.contains("e2e_p50_ms=0.000"), "{line}");
    off.shutdown();
}

#[test]
fn deadlocked_jobs_leave_a_postmortem_with_the_watchdog_snapshot() {
    let core = ServeCore::start(ServeConfig {
        no_cache: true,
        ..cfg("postmortem")
    });
    // Just below certain-drop: admitted by the flow gate, still a
    // deterministic watchdog deadlock under the seeded draw.
    let mut plan = salam_fault::FaultPlan::seeded(3);
    plan.mem_drop_rate = 0.999;
    let doomed = core
        .submit(
            "chaos",
            JobRequest::Faulted {
                bench: "gemm".into(),
                // Trip the watchdog quickly; the knob keeps the test fast.
                knobs: vec![("deadlock-cycles".to_string(), 200)],
                plan,
            },
        )
        .unwrap();
    assert_eq!(core.wait(doomed).unwrap().state, JobState::Failed);

    let pm = core.artifact(doomed, "postmortem").unwrap();
    let v = salam_obs::json::parse(&pm).unwrap_or_else(|e| panic!("{pm}: {e}"));
    assert_eq!(v.get("label").and_then(|l| l.as_str()), Some("deadlock"));
    let watchdog = v.get("watchdog").expect("watchdog snapshot attached");
    assert!(
        watchdog.get("last_progress_cycle").is_some(),
        "snapshot fields survive: {pm}"
    );
    assert_eq!(
        watchdog.get("kernel").and_then(|k| k.as_str()),
        Some("gemm_ncubed")
    );
    let flight = v.get("flight").and_then(|f| f.as_array()).unwrap();
    assert!(!flight.is_empty(), "flight recorder tail rides along: {pm}");
    assert!(
        flight.iter().any(|e| e
            .get("msg")
            .and_then(|m| m.as_str())
            .is_some_and(|m| m.contains("run-error"))),
        "the engine's run-error event is in the tail: {pm}"
    );

    // Healthy jobs have no post-mortem.
    let fine = core.submit("alice", kernel_job("bfs", &[])).unwrap();
    assert_eq!(core.wait(fine).unwrap().state, JobState::Done);
    assert!(core.artifact(fine, "postmortem").is_err());
    core.shutdown();
}

#[test]
fn traced_jobs_return_a_chrome_trace() {
    let core = ServeCore::start(ServeConfig {
        no_cache: true,
        ..cfg("trace")
    });
    let job = core
        .submit(
            "alice",
            JobRequest::Kernel {
                bench: "bfs".into(),
                knobs: vec![],
                trace: true,
            },
        )
        .unwrap();
    assert_eq!(core.wait(job).unwrap().state, JobState::Done);
    let trace = core.artifact(job, "trace").unwrap();
    assert!(trace.contains("\"traceEvents\""), "chrome trace shape");
    core.shutdown();
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response
}

#[test]
fn tcp_and_http_transports_serve_the_same_core() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            no_cache: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Native line-JSON protocol.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let r = send_line(
        &mut stream,
        &mut reader,
        r#"{"op":"submit","tenant":"alice","job":{"type":"kernel","bench":"gemm","knobs":{"ports":2}}}"#,
    );
    let v = salam_obs::json::parse(&r).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{r}");
    let id = v.get("id").and_then(|n| n.as_f64()).unwrap() as u64;

    let r = send_line(
        &mut stream,
        &mut reader,
        &format!(r#"{{"op":"wait","id":{id}}}"#),
    );
    let v = salam_obs::json::parse(&r).unwrap();
    let state = v
        .get("status")
        .and_then(|s| s.get("state"))
        .and_then(|s| s.as_str())
        .unwrap()
        .to_string();
    assert_eq!(state, "done", "{r}");

    let r = send_line(
        &mut stream,
        &mut reader,
        &format!(r#"{{"op":"result","id":{id},"artifact":"report"}}"#),
    );
    let v = salam_obs::json::parse(&r).unwrap();
    let report = v.get("artifact").and_then(|a| a.as_str()).unwrap();
    assert_eq!(
        report,
        direct_report_json(machsuite::Bench::GemmNcubed, &[("ports", 2)]),
        "the wire round-trip preserves the report byte-for-byte"
    );

    // A rejection over the wire carries its stable code.
    let r = send_line(
        &mut stream,
        &mut reader,
        r#"{"op":"submit","tenant":"alice","job":{"type":"kernel","bench":"gemm","knobs":{"ports":0}}}"#,
    );
    let v = salam_obs::json::parse(&r).unwrap();
    assert_eq!(
        v.get("code").and_then(|c| c.as_str()),
        Some("invalid-config"),
        "{r}"
    );

    // HTTP shim on the same port.
    let mut http = TcpStream::connect(addr).unwrap();
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("serve.jobs.submitted"), "{response}");

    let body = r#"{"tenant":"bob","job":{"type":"kernel","bench":"bfs"}}"#;
    let mut http = TcpStream::connect(addr).unwrap();
    http.write_all(
        format!(
            "POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let payload = response.split("\r\n\r\n").nth(1).unwrap();
    let v = salam_obs::json::parse(payload).unwrap();
    let bob_id = v.get("id").and_then(|n| n.as_f64()).unwrap() as u64;

    let mut http = TcpStream::connect(addr).unwrap();
    http.write_all(format!("GET /status?id={bob_id} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");

    // Clean shutdown over the wire.
    let r = send_line(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    assert!(r.contains("\"ok\": true"), "{r}");
    server.shutdown();
}
