//! # salam-cdfg
//!
//! Static elaboration: turns an IR function into the *static CDFG* that
//! gem5-SALAM builds during setup — every instruction linked to a virtual
//! hardware functional unit and registers, at basic-block granularity.
//!
//! This is the first half of the paper's *dual CDFG* design: the static
//! skeleton fixes the datapath (and therefore area and leakage power) from
//! algorithm-intrinsic structure alone, while the dynamic CDFG is
//! instantiated from it at runtime by `salam-runtime`. Because the datapath
//! comes from the static IR, it is **independent of input data and of the
//! memory hierarchy** — the property Tables I and II of the paper show
//! trace-based Aladdin lacks.
//!
//! # Example
//!
//! ```
//! use hw_profile::{FuKind, HardwareProfile};
//! use salam_cdfg::{FuConstraints, StaticCdfg};
//! use salam_ir::{FunctionBuilder, Type};
//!
//! let mut fb = FunctionBuilder::new("saxpy", &[("x", Type::Ptr), ("y", Type::Ptr)]);
//! let (x, y) = (fb.arg(0), fb.arg(1));
//! let a = fb.load(Type::F32, x, "a");
//! let b = fb.load(Type::F32, y, "b");
//! let two = fb.f32c(2.0);
//! let ab = fb.fmul(a, two, "ab");
//! let s = fb.fadd(ab, b, "s");
//! fb.store(s, y);
//! fb.ret();
//! let f = fb.finish();
//!
//! let profile = HardwareProfile::default_40nm();
//! let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
//! assert_eq!(cdfg.fu_count(FuKind::FpMulF32), 1);
//! assert_eq!(cdfg.fu_count(FuKind::FpAddF32), 1);
//! assert!(cdfg.area_report(&profile).total_um2 > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use hw_profile::{fu_for_opcode, FuKind, HardwareProfile};
use salam_ir::{BlockId, Function, InstId, Opcode};

/// User-imposed limits on functional-unit counts (the "device config"
/// datapath constraints of the paper). Absent kinds default to the 1-to-1
/// instruction↔unit mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuConstraints {
    limits: BTreeMap<FuKind, u32>,
}

impl FuConstraints {
    /// No limits: every instruction gets a dedicated unit.
    pub fn unconstrained() -> Self {
        FuConstraints::default()
    }

    /// Caps `kind` at `max` units, forcing runtime reuse.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn with_limit(mut self, kind: FuKind, max: u32) -> Self {
        assert!(max > 0, "functional-unit limit must be at least 1");
        self.limits.insert(kind, max);
        self
    }

    /// The limit for `kind`, if any.
    pub fn limit(&self, kind: FuKind) -> Option<u32> {
        self.limits.get(&kind).copied()
    }

    /// A canonical single-line text form (`fpmul_f64=4,int_add=2` style,
    /// `unconstrained` when empty). Equal constraints always produce equal
    /// strings — the design-space-exploration cache keys on this.
    pub fn canonical_repr(&self) -> String {
        if self.limits.is_empty() {
            return "unconstrained".to_string();
        }
        let parts: Vec<String> = self
            .limits
            .iter()
            .map(|(k, v)| format!("{}={v}", k.name()))
            .collect();
        parts.join(",")
    }
}

/// One statically elaborated operation.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticOp {
    /// The IR instruction.
    pub inst: InstId,
    /// Its basic block.
    pub block: BlockId,
    /// Functional unit executing it (`None` for wiring/control/memory ops).
    pub fu: Option<FuKind>,
    /// Issue-to-commit latency in accelerator cycles.
    pub latency: u32,
    /// Operand/result width in bits (for power scaling and precision).
    pub bits: u32,
}

/// The statically elaborated CDFG of one accelerator function.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticCdfg {
    /// Name of the elaborated function.
    pub func_name: String,
    ops: Vec<StaticOp>,
    fu_counts: BTreeMap<FuKind, u32>,
    register_bits: u64,
    constraints: FuConstraints,
}

impl StaticCdfg {
    /// Elaborates `f` against a hardware profile and datapath constraints.
    ///
    /// Every live instruction is assigned a latency, a width, and (for
    /// compute ops) a functional-unit kind. The datapath allocation is
    /// `min(instruction count, constraint)` per kind.
    pub fn elaborate(f: &Function, profile: &HardwareProfile, constraints: &FuConstraints) -> Self {
        let mut ops = vec![
            StaticOp {
                inst: InstId::from_raw(0),
                block: f.entry(),
                fu: None,
                latency: 1,
                bits: 0
            };
            f.num_insts()
        ];
        let mut inst_counts: BTreeMap<FuKind, u32> = BTreeMap::new();
        let mut register_bits: u64 = 0;
        for (bid, b) in f.blocks() {
            for &iid in &b.insts {
                let inst = f.inst(iid);
                let bits = op_bits(f, iid);
                let fu = fu_for_opcode(&inst.op, bits);
                if let Some(k) = fu {
                    *inst_counts.entry(k).or_insert(0) += 1;
                }
                if inst.has_result() {
                    register_bits += bits as u64;
                }
                ops[iid.index()] = StaticOp {
                    inst: iid,
                    block: bid,
                    fu,
                    latency: profile.opcode_latency(&inst.op, bits),
                    bits,
                };
            }
        }
        let fu_counts = inst_counts
            .into_iter()
            .map(|(k, n)| (k, constraints.limit(k).map_or(n, |l| n.min(l))))
            .collect();
        StaticCdfg {
            func_name: f.name.clone(),
            ops,
            fu_counts,
            register_bits,
            constraints: constraints.clone(),
        }
    }

    /// The static op for an instruction.
    pub fn op(&self, inst: InstId) -> &StaticOp {
        &self.ops[inst.index()]
    }

    /// Allocated units of `kind` in the datapath.
    pub fn fu_count(&self, kind: FuKind) -> u32 {
        self.fu_counts.get(&kind).copied().unwrap_or(0)
    }

    /// All allocated `(kind, count)` pairs.
    pub fn fu_counts(&self) -> impl Iterator<Item = (FuKind, u32)> + '_ {
        self.fu_counts.iter().map(|(&k, &n)| (k, n))
    }

    /// Total datapath register bits.
    pub fn register_bits(&self) -> u64 {
        self.register_bits
    }

    /// The constraints this CDFG was elaborated under.
    pub fn constraints(&self) -> &FuConstraints {
        &self.constraints
    }

    /// Chip-area estimate from the static datapath.
    pub fn area_report(&self, profile: &HardwareProfile) -> AreaReport {
        let fu_area: f64 = self
            .fu_counts
            .iter()
            .map(|(&k, &n)| profile.spec(k).area_um2 * n as f64)
            .sum();
        let reg_area = profile.register.area_um2_per_bit * self.register_bits as f64;
        AreaReport {
            fu_um2: fu_area,
            register_um2: reg_area,
            total_um2: fu_area + reg_area,
        }
    }

    /// Static (leakage) power estimate from the static datapath.
    pub fn static_power_report(&self, profile: &HardwareProfile) -> StaticPowerReport {
        let fu_leak: f64 = self
            .fu_counts
            .iter()
            .map(|(&k, &n)| profile.spec(k).leakage_mw * n as f64)
            .sum();
        let reg_leak = profile.register.leakage_mw_per_bit * self.register_bits as f64;
        StaticPowerReport {
            fu_mw: fu_leak,
            register_mw: reg_leak,
            total_mw: fu_leak + reg_leak,
        }
    }
}

/// Operand/result width in bits for an instruction.
fn op_bits(f: &Function, iid: InstId) -> u32 {
    let inst = f.inst(iid);
    match &inst.op {
        Opcode::Gep { .. } => 64,
        Opcode::ICmp(_) | Opcode::FCmp(_) | Opcode::Store => inst
            .operands
            .first()
            .map(|&v| scalar_bits(f, v))
            .unwrap_or(32),
        _ => {
            if inst.has_result() {
                scalar_bits_ty(&inst.ty)
            } else {
                inst.operands
                    .first()
                    .map(|&v| scalar_bits(f, v))
                    .unwrap_or(32)
            }
        }
    }
}

fn scalar_bits(f: &Function, v: salam_ir::ValueId) -> u32 {
    scalar_bits_ty(&f.value_type(v))
}

fn scalar_bits_ty(ty: &salam_ir::Type) -> u32 {
    match ty {
        salam_ir::Type::Void | salam_ir::Type::Array { .. } => 0,
        t => t.bits(),
    }
}

/// Datapath area breakdown in square micrometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Functional units.
    pub fu_um2: f64,
    /// Registers.
    pub register_um2: f64,
    /// Sum of the above.
    pub total_um2: f64,
}

/// Static (leakage) power breakdown in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPowerReport {
    /// Functional units.
    pub fu_mw: f64,
    /// Registers.
    pub register_mw: f64,
    /// Sum of the above.
    pub total_mw: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::{FunctionBuilder, Type};

    fn fp_kernel(n_mults: usize) -> Function {
        let mut fb = FunctionBuilder::new("k", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let mut v = fb.load(Type::F64, p, "v");
        for i in 0..n_mults {
            v = fb.fmul(v, v, &format!("m{i}"));
        }
        fb.store(v, p);
        fb.ret();
        fb.finish()
    }

    #[test]
    fn one_to_one_mapping_by_default() {
        let f = fp_kernel(5);
        let p = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &p, &FuConstraints::unconstrained());
        assert_eq!(cdfg.fu_count(FuKind::FpMulF64), 5);
    }

    #[test]
    fn constraints_cap_allocation() {
        let f = fp_kernel(8);
        let p = HardwareProfile::default_40nm();
        let c = FuConstraints::unconstrained().with_limit(FuKind::FpMulF64, 2);
        let cdfg = StaticCdfg::elaborate(&f, &p, &c);
        assert_eq!(cdfg.fu_count(FuKind::FpMulF64), 2);
    }

    #[test]
    fn constraint_below_count_is_noop() {
        let f = fp_kernel(1);
        let p = HardwareProfile::default_40nm();
        let c = FuConstraints::unconstrained().with_limit(FuKind::FpMulF64, 64);
        let cdfg = StaticCdfg::elaborate(&f, &p, &c);
        assert_eq!(cdfg.fu_count(FuKind::FpMulF64), 1);
    }

    #[test]
    fn area_and_leakage_scale_with_datapath() {
        let p = HardwareProfile::default_40nm();
        let small = StaticCdfg::elaborate(&fp_kernel(1), &p, &FuConstraints::unconstrained());
        let large = StaticCdfg::elaborate(&fp_kernel(10), &p, &FuConstraints::unconstrained());
        assert!(large.area_report(&p).total_um2 > small.area_report(&p).total_um2);
        assert!(large.static_power_report(&p).total_mw > small.static_power_report(&p).total_mw);
        // Reports are internally consistent.
        let a = large.area_report(&p);
        assert!((a.fu_um2 + a.register_um2 - a.total_um2).abs() < 1e-9);
    }

    #[test]
    fn datapath_independent_of_memory_and_data() {
        // Elaborating the same function twice yields the identical datapath —
        // the defining property vs. trace-based simulators.
        let f = fp_kernel(4);
        let p = HardwareProfile::default_40nm();
        let a = StaticCdfg::elaborate(&f, &p, &FuConstraints::unconstrained());
        let b = StaticCdfg::elaborate(&f, &p, &FuConstraints::unconstrained());
        assert_eq!(a, b);
    }

    #[test]
    fn ops_carry_latency_and_block() {
        let f = fp_kernel(1);
        let p = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &p, &FuConstraints::unconstrained());
        let (_, entry) = f.blocks().next().unwrap();
        for &iid in &entry.insts {
            let op = cdfg.op(iid);
            assert_eq!(op.block, f.entry());
        }
        // FP multiplies keep their 3-stage latency; wiring ops may be 0.
        let fmul = entry
            .insts
            .iter()
            .find(|&&i| f.inst(i).op == salam_ir::Opcode::FMul)
            .copied()
            .unwrap();
        assert_eq!(cdfg.op(fmul).latency, 3);
    }

    #[test]
    fn register_bits_counted() {
        let f = fp_kernel(2);
        let p = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &p, &FuConstraints::unconstrained());
        // load (64) + 2 fmul (64 each) = 192 bits of results.
        assert_eq!(cdfg.register_bits(), 192);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_limit_rejected() {
        let _ = FuConstraints::unconstrained().with_limit(FuKind::IntAdder, 0);
    }
}
