//! Post-simulation reports: performance, power and area rollups.

use hw_profile::{HardwareProfile, SramSpec};
use salam_cdfg::StaticCdfg;
use salam_runtime::EngineStats;

/// Power decomposition in milliwatts, matching the categories of the
/// paper's Fig. 4 (dynamic/static × functional units / registers / SPM).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Dynamic functional-unit power.
    pub dynamic_fu_mw: f64,
    /// Dynamic internal-register power.
    pub dynamic_reg_mw: f64,
    /// Dynamic SPM read power.
    pub dynamic_spm_read_mw: f64,
    /// Dynamic SPM write power.
    pub dynamic_spm_write_mw: f64,
    /// Static functional-unit leakage.
    pub static_fu_mw: f64,
    /// Static internal-register leakage.
    pub static_reg_mw: f64,
    /// Static SPM leakage.
    pub static_spm_mw: f64,
}

impl PowerBreakdown {
    /// Total power.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_fu_mw
            + self.dynamic_reg_mw
            + self.dynamic_spm_read_mw
            + self.dynamic_spm_write_mw
            + self.static_fu_mw
            + self.static_reg_mw
            + self.static_spm_mw
    }

    /// The seven components as `(label, milliwatts)` pairs, in Fig. 4's
    /// legend order.
    pub fn components(&self) -> [(&'static str, f64); 7] {
        [
            ("dynamic_fu", self.dynamic_fu_mw),
            ("dynamic_registers", self.dynamic_reg_mw),
            ("dynamic_spm_read", self.dynamic_spm_read_mw),
            ("dynamic_spm_write", self.dynamic_spm_write_mw),
            ("static_fu", self.static_fu_mw),
            ("static_registers", self.static_reg_mw),
            ("static_spm", self.static_spm_mw),
        ]
    }
}

/// The rollup of one accelerator run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Benchmark / accelerator name.
    pub name: String,
    /// Engine cycles.
    pub cycles: u64,
    /// Wall-clock of the modeled run in nanoseconds.
    pub runtime_ns: f64,
    /// Full power breakdown.
    pub power: PowerBreakdown,
    /// Datapath area in square micrometres (FUs + registers).
    pub datapath_area_um2: f64,
    /// Private SPM area in square micrometres (0 if none).
    pub spm_area_um2: f64,
    /// Output verified against the golden model.
    pub verified: bool,
    /// Raw engine statistics.
    pub stats: EngineStats,
}

impl RunReport {
    /// Assembles a report from engine stats and the static CDFG.
    ///
    /// `spm` describes the private scratchpad (if any) for Cacti-style SPM
    /// power/area; `clock_period_ps` converts cycles to time.
    pub fn assemble(
        name: &str,
        stats: &EngineStats,
        cdfg: &StaticCdfg,
        profile: &HardwareProfile,
        spm: Option<&SramSpec>,
        clock_period_ps: u64,
        verified: bool,
    ) -> Self {
        let runtime_ns = (stats.cycles * clock_period_ps) as f64 / 1000.0;
        let safe_ns = runtime_ns.max(1e-9);
        let static_rep = cdfg.static_power_report(profile);
        let mut power = PowerBreakdown {
            dynamic_fu_mw: stats.fu_dynamic_pj / safe_ns,
            dynamic_reg_mw: (stats.reg_read_pj + stats.reg_write_pj) / safe_ns,
            static_fu_mw: static_rep.fu_mw,
            static_reg_mw: static_rep.register_mw,
            ..PowerBreakdown::default()
        };
        let area = cdfg.area_report(profile);
        let mut spm_area = 0.0;
        if let Some(s) = spm {
            power.dynamic_spm_read_mw = stats.loads as f64 * s.read_energy_pj() / safe_ns;
            power.dynamic_spm_write_mw = stats.stores as f64 * s.write_energy_pj() / safe_ns;
            power.static_spm_mw = s.leakage_mw();
            spm_area = s.area_um2();
        }
        RunReport {
            name: name.to_string(),
            cycles: stats.cycles,
            runtime_ns,
            power,
            datapath_area_um2: area.total_um2,
            spm_area_um2: spm_area,
            verified,
            stats: stats.clone(),
        }
    }

    /// Total area (datapath + SPM).
    pub fn total_area_um2(&self) -> f64 {
        self.datapath_area_um2 + self.spm_area_um2
    }

    /// Publishes the whole report — rollup, power breakdown, and every
    /// engine counter — into `reg` under `prefix` (e.g. `accel.gemm`).
    pub fn export_metrics(&self, reg: &mut salam_obs::MetricsRegistry, prefix: &str) {
        reg.set(&format!("{prefix}.cycles"), self.cycles as f64);
        reg.set(&format!("{prefix}.runtime_ns"), self.runtime_ns);
        reg.set(
            &format!("{prefix}.verified"),
            if self.verified { 1.0 } else { 0.0 },
        );
        reg.set(
            &format!("{prefix}.area.datapath_um2"),
            self.datapath_area_um2,
        );
        reg.set(&format!("{prefix}.area.spm_um2"), self.spm_area_um2);
        reg.set(&format!("{prefix}.power.total_mw"), self.power.total_mw());
        for (label, mw) in self.power.components() {
            reg.set(&format!("{prefix}.power.{label}_mw"), mw);
        }
        self.stats.export_metrics(reg, &format!("{prefix}.engine"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_sum() {
        let b = PowerBreakdown {
            dynamic_fu_mw: 1.0,
            dynamic_reg_mw: 2.0,
            dynamic_spm_read_mw: 3.0,
            dynamic_spm_write_mw: 4.0,
            static_fu_mw: 5.0,
            static_reg_mw: 6.0,
            static_spm_mw: 7.0,
        };
        assert!((b.total_mw() - 28.0).abs() < 1e-12);
        let sum: f64 = b.components().iter().map(|(_, v)| v).sum();
        assert!((sum - b.total_mw()).abs() < 1e-12);
    }
}
