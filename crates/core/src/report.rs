//! Post-simulation reports: performance, power and area rollups.

use hw_profile::{HardwareProfile, SramSpec};
use salam_cdfg::StaticCdfg;
use salam_runtime::EngineStats;

/// Power decomposition in milliwatts, matching the categories of the
/// paper's Fig. 4 (dynamic/static × functional units / registers / SPM).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Dynamic functional-unit power.
    pub dynamic_fu_mw: f64,
    /// Dynamic internal-register power.
    pub dynamic_reg_mw: f64,
    /// Dynamic SPM read power.
    pub dynamic_spm_read_mw: f64,
    /// Dynamic SPM write power.
    pub dynamic_spm_write_mw: f64,
    /// Static functional-unit leakage.
    pub static_fu_mw: f64,
    /// Static internal-register leakage.
    pub static_reg_mw: f64,
    /// Static SPM leakage.
    pub static_spm_mw: f64,
}

impl PowerBreakdown {
    /// Total power.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_fu_mw
            + self.dynamic_reg_mw
            + self.dynamic_spm_read_mw
            + self.dynamic_spm_write_mw
            + self.static_fu_mw
            + self.static_reg_mw
            + self.static_spm_mw
    }

    /// The seven components as `(label, milliwatts)` pairs, in Fig. 4's
    /// legend order.
    pub fn components(&self) -> [(&'static str, f64); 7] {
        [
            ("dynamic_fu", self.dynamic_fu_mw),
            ("dynamic_registers", self.dynamic_reg_mw),
            ("dynamic_spm_read", self.dynamic_spm_read_mw),
            ("dynamic_spm_write", self.dynamic_spm_write_mw),
            ("static_fu", self.static_fu_mw),
            ("static_registers", self.static_reg_mw),
            ("static_spm", self.static_spm_mw),
        ]
    }
}

/// The rollup of one accelerator run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Benchmark / accelerator name.
    pub name: String,
    /// Engine cycles.
    pub cycles: u64,
    /// Wall-clock of the modeled run in nanoseconds.
    pub runtime_ns: f64,
    /// Full power breakdown.
    pub power: PowerBreakdown,
    /// Datapath area in square micrometres (FUs + registers).
    pub datapath_area_um2: f64,
    /// Private SPM area in square micrometres (0 if none).
    pub spm_area_um2: f64,
    /// Output verified against the golden model.
    pub verified: bool,
    /// Raw engine statistics.
    pub stats: EngineStats,
}

impl RunReport {
    /// Assembles a report from engine stats and the static CDFG.
    ///
    /// `spm` describes the private scratchpad (if any) for Cacti-style SPM
    /// power/area; `clock_period_ps` converts cycles to time.
    pub fn assemble(
        name: &str,
        stats: &EngineStats,
        cdfg: &StaticCdfg,
        profile: &HardwareProfile,
        spm: Option<&SramSpec>,
        clock_period_ps: u64,
        verified: bool,
    ) -> Self {
        let runtime_ns = (stats.cycles * clock_period_ps) as f64 / 1000.0;
        let safe_ns = runtime_ns.max(1e-9);
        let static_rep = cdfg.static_power_report(profile);
        let mut power = PowerBreakdown {
            dynamic_fu_mw: stats.fu_dynamic_pj / safe_ns,
            dynamic_reg_mw: (stats.reg_read_pj + stats.reg_write_pj) / safe_ns,
            static_fu_mw: static_rep.fu_mw,
            static_reg_mw: static_rep.register_mw,
            ..PowerBreakdown::default()
        };
        let area = cdfg.area_report(profile);
        let mut spm_area = 0.0;
        if let Some(s) = spm {
            power.dynamic_spm_read_mw = stats.loads as f64 * s.read_energy_pj() / safe_ns;
            power.dynamic_spm_write_mw = stats.stores as f64 * s.write_energy_pj() / safe_ns;
            power.static_spm_mw = s.leakage_mw();
            spm_area = s.area_um2();
        }
        RunReport {
            name: name.to_string(),
            cycles: stats.cycles,
            runtime_ns,
            power,
            datapath_area_um2: area.total_um2,
            spm_area_um2: spm_area,
            verified,
            stats: stats.clone(),
        }
    }

    /// Total area (datapath + SPM).
    pub fn total_area_um2(&self) -> f64 {
        self.datapath_area_um2 + self.spm_area_um2
    }

    /// Serializes the report to JSON, losslessly enough that
    /// [`RunReport::from_json`] reconstructs an equivalent report. Floats
    /// use Rust's shortest round-trip formatting; the per-cycle `timeline`
    /// and the `depstream` (debugging aids that grow with runtime) are
    /// deliberately not persisted. This is the payload format of the DSE
    /// result cache.
    pub fn to_json(&self) -> String {
        let mut o = JsonWriter::new();
        o.str_field("name", &self.name);
        o.num_field("cycles", self.cycles as f64);
        o.num_field("runtime_ns", self.runtime_ns);
        o.bool_field("verified", self.verified);
        o.num_field("datapath_area_um2", self.datapath_area_um2);
        o.num_field("spm_area_um2", self.spm_area_um2);
        o.object_field("power", |p| {
            for (label, mw) in self.power.components() {
                p.num_field(label, mw);
            }
        });
        let st = &self.stats;
        o.object_field("stats", |s| {
            s.num_field("cycles", st.cycles as f64);
            s.num_field("new_exec_cycles", st.new_exec_cycles as f64);
            s.num_field("stall_cycles", st.stall_cycles as f64);
            s.map_field("stall_breakdown", st.stall_breakdown.iter());
            s.map_field("issued", st.issued.iter());
            s.map_field("class_active_cycles", st.class_active_cycles.iter());
            s.map_field("mem_mix_cycles", st.mem_mix_cycles.iter());
            s.object_field("fu_busy_cycle_sum", |m| {
                for (k, v) in &st.fu_busy_cycle_sum {
                    m.num_field(k.name(), *v as f64);
                }
            });
            s.object_field("fu_pool", |m| {
                for (k, v) in &st.fu_pool {
                    m.num_field(k.name(), *v as f64);
                }
            });
            s.num_field("fu_dynamic_pj", st.fu_dynamic_pj);
            s.num_field("reg_read_pj", st.reg_read_pj);
            s.num_field("reg_write_pj", st.reg_write_pj);
            s.num_field("loads", st.loads as f64);
            s.num_field("stores", st.stores as f64);
            s.num_field("load_bytes", st.load_bytes as f64);
            s.num_field("store_bytes", st.store_bytes as f64);
            s.num_field("port_reject_cycles", st.port_reject_cycles as f64);
            s.object_field("attribution", |m| {
                for (class, n) in st.attribution.iter() {
                    m.num_field(class.label(), n as f64);
                }
            });
            s.map_field("reject_causes", st.reject_causes.iter());
            // Emitted unconditionally (an empty map for clean runs), so a
            // zero-rate fault plan stays byte-identical to no fault layer.
            s.map_field("fault_counts", st.fault_counts.iter());
        });
        o.finish()
    }

    /// The cycle-attribution class that dominated the run — the sweeps'
    /// self-explaining `bottleneck` column.
    pub fn dominant_bottleneck(&self) -> &'static str {
        self.stats.attribution.dominant().label()
    }

    /// Parses a report serialized by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field. Unknown
    /// issue-class or functional-unit keys are errors too, so a cache
    /// entry written by an incompatible version reads as corrupt instead
    /// of silently dropping counters.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let v = salam_obs::json::parse(text)?;
        RunReport::from_json_value(&v)
    }

    /// [`RunReport::from_json`] on an already parsed JSON value — the DSE
    /// result cache embeds report payloads inside its entry objects and
    /// parses the whole entry once.
    pub fn from_json_value(v: &salam_obs::json::Value) -> Result<RunReport, String> {
        use salam_obs::json::Value;
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let power_v = v.get("power").ok_or("missing 'power'")?;
        let pf = |key: &str| -> Result<f64, String> {
            power_v
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing power field '{key}'"))
        };
        let power = PowerBreakdown {
            dynamic_fu_mw: pf("dynamic_fu")?,
            dynamic_reg_mw: pf("dynamic_registers")?,
            dynamic_spm_read_mw: pf("dynamic_spm_read")?,
            dynamic_spm_write_mw: pf("dynamic_spm_write")?,
            static_fu_mw: pf("static_fu")?,
            static_reg_mw: pf("static_registers")?,
            static_spm_mw: pf("static_spm")?,
        };

        let sv = v.get("stats").ok_or("missing 'stats'")?;
        let sf = |key: &str| -> Result<f64, String> {
            sv.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing stats field '{key}'"))
        };
        let u64_map = |key: &str| -> Result<Vec<(String, u64)>, String> {
            let obj = sv
                .get(key)
                .and_then(Value::as_object)
                .ok_or_else(|| format!("missing stats map '{key}'"))?;
            obj.iter()
                .map(|(k, val)| {
                    let n = val
                        .as_f64()
                        .ok_or_else(|| format!("non-numeric entry '{k}' in '{key}'"))?;
                    Ok((k.clone(), n as u64))
                })
                .collect()
        };
        let static_keyed =
            |key: &str| -> Result<std::collections::BTreeMap<&'static str, u64>, String> {
                u64_map(key)?
                    .into_iter()
                    .map(|(k, n)| {
                        intern_stat_label(&k)
                            .map(|l| (l, n))
                            .ok_or_else(|| format!("unknown label '{k}' in '{key}'"))
                    })
                    .collect()
            };
        let fu_keyed = |key: &str| -> Result<Vec<(hw_profile::FuKind, u64)>, String> {
            u64_map(key)?
                .into_iter()
                .map(|(k, n)| {
                    hw_profile::FuKind::from_name(&k)
                        .map(|fu| (fu, n))
                        .ok_or_else(|| format!("unknown FU kind '{k}' in '{key}'"))
                })
                .collect()
        };

        let attr_v = sv
            .get("attribution")
            .ok_or("missing stats field 'attribution'")?;
        let mut attribution = salam_obs::Attribution::default();
        for class in salam_obs::CycleClass::ALL {
            let n = attr_v
                .get(class.label())
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing attribution field '{}'", class.label()))?;
            attribution.add(class, n as u64);
        }

        let stats = EngineStats {
            cycles: sf("cycles")? as u64,
            new_exec_cycles: sf("new_exec_cycles")? as u64,
            stall_cycles: sf("stall_cycles")? as u64,
            stall_breakdown: u64_map("stall_breakdown")?.into_iter().collect(),
            issued: static_keyed("issued")?,
            class_active_cycles: static_keyed("class_active_cycles")?,
            mem_mix_cycles: static_keyed("mem_mix_cycles")?,
            fu_busy_cycle_sum: fu_keyed("fu_busy_cycle_sum")?.into_iter().collect(),
            fu_pool: fu_keyed("fu_pool")?
                .into_iter()
                .map(|(k, n)| (k, n as u32))
                .collect(),
            fu_dynamic_pj: sf("fu_dynamic_pj")?,
            reg_read_pj: sf("reg_read_pj")?,
            reg_write_pj: sf("reg_write_pj")?,
            loads: sf("loads")? as u64,
            stores: sf("stores")? as u64,
            load_bytes: sf("load_bytes")? as u64,
            store_bytes: sf("store_bytes")? as u64,
            port_reject_cycles: sf("port_reject_cycles")? as u64,
            attribution,
            reject_causes: u64_map("reject_causes")?.into_iter().collect(),
            fault_counts: u64_map("fault_counts")?.into_iter().collect(),
            depstream: None,
            timeline: Vec::new(),
        };

        Ok(RunReport {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .ok_or("missing 'name'")?
                .to_string(),
            cycles: f("cycles")? as u64,
            runtime_ns: f("runtime_ns")?,
            power,
            datapath_area_um2: f("datapath_area_um2")?,
            spm_area_um2: f("spm_area_um2")?,
            verified: match v.get("verified") {
                Some(salam_obs::json::Value::Bool(b)) => *b,
                _ => return Err("missing boolean 'verified'".to_string()),
            },
            stats,
        })
    }

    /// Publishes the whole report — rollup, power breakdown, and every
    /// engine counter — into `reg` under `prefix` (e.g. `accel.gemm`).
    pub fn export_metrics(&self, reg: &mut salam_obs::MetricsRegistry, prefix: &str) {
        reg.set(&format!("{prefix}.cycles"), self.cycles as f64);
        reg.set(&format!("{prefix}.runtime_ns"), self.runtime_ns);
        reg.set(
            &format!("{prefix}.verified"),
            if self.verified { 1.0 } else { 0.0 },
        );
        reg.set(
            &format!("{prefix}.area.datapath_um2"),
            self.datapath_area_um2,
        );
        reg.set(&format!("{prefix}.area.spm_um2"), self.spm_area_um2);
        reg.set(&format!("{prefix}.power.total_mw"), self.power.total_mw());
        for (label, mw) in self.power.components() {
            reg.set(&format!("{prefix}.power.{label}_mw"), mw);
        }
        self.stats.export_metrics(reg, &format!("{prefix}.engine"));
    }
}

/// Interns the engine's `&'static str` stat-map keys back from parsed
/// strings. The label set is closed: issue classes plus the memory-mix
/// combinations.
fn intern_stat_label(s: &str) -> Option<&'static str> {
    const LABELS: [&str; 6] = ["load", "store", "float", "int", "other", "load+store"];
    LABELS.into_iter().find(|l| *l == s)
}

/// A tiny nested-object JSON builder (two-space indent, insertion order).
/// Numbers use Rust's shortest round-trip float formatting, so a value
/// survives serialize → parse → serialize byte-identically.
struct JsonWriter {
    out: String,
    indent: usize,
    first: bool,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::from("{"),
            indent: 1,
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push('"');
        self.out.push_str(&json_escape(k));
        self.out.push_str("\": ");
    }

    fn num_field(&mut self, k: &str, v: f64) {
        self.key(k);
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }

    fn str_field(&mut self, k: &str, v: &str) {
        self.key(k);
        self.out.push('"');
        self.out.push_str(&json_escape(v));
        self.out.push('"');
    }

    fn bool_field(&mut self, k: &str, v: bool) {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
    }

    fn object_field(&mut self, k: &str, f: impl FnOnce(&mut JsonWriter)) {
        self.key(k);
        self.out.push('{');
        self.indent += 1;
        self.first = true;
        f(self);
        let wrote_any = !self.first;
        self.indent -= 1;
        if wrote_any {
            self.out.push('\n');
            self.out.push_str(&"  ".repeat(self.indent));
        }
        self.out.push('}');
        self.first = false;
    }

    fn map_field<'a, K, I>(&mut self, k: &str, entries: I)
    where
        K: AsRef<str>,
        I: IntoIterator<Item = (K, &'a u64)>,
    {
        self.object_field(k, |o| {
            for (key, v) in entries {
                o.num_field(key.as_ref(), *v as f64);
            }
        });
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n}\n");
        self.out
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_sum() {
        let b = PowerBreakdown {
            dynamic_fu_mw: 1.0,
            dynamic_reg_mw: 2.0,
            dynamic_spm_read_mw: 3.0,
            dynamic_spm_write_mw: 4.0,
            static_fu_mw: 5.0,
            static_reg_mw: 6.0,
            static_spm_mw: 7.0,
        };
        assert!((b.total_mw() - 28.0).abs() < 1e-12);
        let sum: f64 = b.components().iter().map(|(_, v)| v).sum();
        assert!((sum - b.total_mw()).abs() < 1e-12);
    }

    #[test]
    fn report_json_roundtrip_is_exact() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 2 });
        let r = crate::standalone::run_kernel(&k, &crate::standalone::StandaloneConfig::default());
        let text = r.to_json();
        let back = RunReport::from_json(&text).expect("parse own serialization");
        assert_eq!(back.name, r.name);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.runtime_ns, r.runtime_ns);
        assert_eq!(back.verified, r.verified);
        assert_eq!(back.power, r.power);
        assert_eq!(back.datapath_area_um2, r.datapath_area_um2);
        assert_eq!(back.spm_area_um2, r.spm_area_um2);
        assert_eq!(back.stats.cycles, r.stats.cycles);
        assert_eq!(back.stats.issued, r.stats.issued);
        assert_eq!(back.stats.mem_mix_cycles, r.stats.mem_mix_cycles);
        assert_eq!(back.stats.class_active_cycles, r.stats.class_active_cycles);
        assert_eq!(back.stats.fu_busy_cycle_sum, r.stats.fu_busy_cycle_sum);
        assert_eq!(back.stats.fu_pool, r.stats.fu_pool);
        assert_eq!(back.stats.fu_dynamic_pj, r.stats.fu_dynamic_pj);
        // Serializing the parsed report reproduces the exact bytes — the
        // cache's byte-identity guarantee rests on this.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn report_json_rejects_truncation_and_unknown_labels() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        let r = crate::standalone::run_kernel(&k, &crate::standalone::StandaloneConfig::default());
        let text = r.to_json();
        assert!(RunReport::from_json(&text[..text.len() / 2]).is_err());
        let poisoned = text.replace("\"load\"", "\"lload\"");
        assert!(RunReport::from_json(&poisoned).is_err());
    }

    #[test]
    fn canonical_reprs_distinguish_knobs() {
        use crate::standalone::StandaloneConfig;
        let a = StandaloneConfig::default();
        let mut b = a.clone();
        assert_eq!(a.canonical_repr(), b.canonical_repr());
        b.spm_latency = 7;
        assert_ne!(a.canonical_repr(), b.canonical_repr());
        let mut c = a.clone();
        c.engine.reservation_entries = 999;
        assert_ne!(a.canonical_repr(), c.canonical_repr());
        let mut d = a.clone();
        d.constraints =
            salam_cdfg::FuConstraints::unconstrained().with_limit(hw_profile::FuKind::FpMulF64, 2);
        assert_ne!(a.canonical_repr(), d.canonical_repr());
        // record_timeline is observability-only: same fingerprint.
        let mut e = a.clone();
        e.engine.record_timeline = true;
        assert_eq!(a.canonical_repr(), e.canonical_repr());

        let ca = crate::ClusterConfig::default();
        let mut cb = ca;
        cb.dma_burst = 128;
        assert_ne!(ca.canonical_repr(), cb.canonical_repr());
    }
}
