//! One-call harness for datapath + private-SPM simulations.
//!
//! This is the configuration the paper validates against HLS (Fig. 10) and
//! sweeps in its GEMM design-space exploration (Figs. 13–15): the runtime
//! engine backed by a private multi-ported scratchpad, no wider system.

use hw_profile::{HardwareProfile, SramSpec};
use machsuite::BuiltKernel;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_fault::{FaultPlan, SimError};
use salam_runtime::{Engine, EngineConfig, FaultyPort, SimpleMem};

use crate::report::RunReport;

/// Configuration of a standalone run.
#[derive(Debug, Clone)]
pub struct StandaloneConfig {
    /// Datapath constraints.
    pub constraints: FuConstraints,
    /// Engine tunables.
    pub engine: EngineConfig,
    /// Hardware profile.
    pub profile: HardwareProfile,
    /// SPM latency in cycles.
    pub spm_latency: u64,
    /// SPM read ports per cycle.
    pub spm_read_ports: u32,
    /// SPM write ports per cycle.
    pub spm_write_ports: u32,
    /// SPM word width in bytes (for the Cacti-style power model).
    pub spm_word_bytes: u32,
    /// Run the static verifier as a pre-run gate: error-severity
    /// diagnostics abort the run with [`SimError::Verify`] before any
    /// cycle is simulated. Excluded from [`StandaloneConfig::canonical_repr`] —
    /// gating changes whether a run starts, never its result.
    pub verify: bool,
}

impl Default for StandaloneConfig {
    /// 1-cycle SPM with 2R/2W ports, unconstrained datapath.
    fn default() -> Self {
        StandaloneConfig {
            constraints: FuConstraints::unconstrained(),
            engine: EngineConfig::default(),
            profile: HardwareProfile::default_40nm(),
            spm_latency: 1,
            spm_read_ports: 2,
            spm_write_ports: 2,
            spm_word_bytes: 8,
            verify: false,
        }
    }
}

impl StandaloneConfig {
    /// Sets symmetric SPM read/write ports (the Fig. 14 sweep knob).
    pub fn with_ports(mut self, ports: u32) -> Self {
        self.spm_read_ports = ports;
        self.spm_write_ports = ports;
        self
    }

    /// Enables the static-verification pre-run gate.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Sets datapath constraints.
    pub fn with_constraints(mut self, constraints: FuConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// A canonical multi-line text form covering every knob that can change
    /// a run's result: the datapath constraints, engine tunables, SPM
    /// timing/ports, and the full hardware profile. Equal configs always
    /// produce equal strings; the design-space-exploration cache hashes
    /// this (together with the kernel identity) into its content address.
    /// The `verify` gate is deliberately excluded: it decides whether a
    /// run *starts*, never what it computes, so it must not split cache
    /// entries.
    pub fn canonical_repr(&self) -> String {
        format!(
            "constraints: {}\nengine: {}\nspm: latency={};read_ports={};write_ports={};word_bytes={}\nprofile:\n{}",
            self.constraints.canonical_repr(),
            self.engine.canonical_repr(),
            self.spm_latency,
            self.spm_read_ports,
            self.spm_write_ports,
            self.spm_word_bytes,
            self.profile.to_text(),
        )
    }

    /// Rejects nonsense knob settings — zero SPM ports can never service a
    /// memory op, a zero word width breaks the power model — before they
    /// turn into deep-in-the-run hangs. Includes [`EngineConfig::validate`].
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        self.engine.validate()?;
        let bad = |field: &str, detail: &str| Err(SimError::config("standalone", field, detail));
        if self.spm_latency == 0 {
            return bad("spm_latency", "must be nonzero");
        }
        if self.spm_read_ports == 0 {
            return bad("spm_read_ports", "must be nonzero");
        }
        if self.spm_write_ports == 0 {
            return bad("spm_write_ports", "must be nonzero");
        }
        if self.spm_word_bytes == 0 {
            return bad("spm_word_bytes", "must be nonzero");
        }
        Ok(())
    }
}

/// Runs `kernel` on the runtime engine with a private SPM and returns the
/// full report (cycles, power breakdown, area, verification).
pub fn run_kernel(kernel: &BuiltKernel, cfg: &StandaloneConfig) -> RunReport {
    run_kernel_traced(kernel, cfg, &salam_obs::SharedTrace::disabled())
}

/// [`run_kernel`] with dependency-stream recording forced on.
///
/// Returns the report together with the captured [`salam_obs::DepStream`],
/// ready for [`salam_obs::analyze`] (critical path, slack, headroom). The
/// stream is moved out of the report so the report stays serialization-sized.
///
/// Thin panicking wrapper over [`try_run_kernel_profiled`] for callers that
/// treat any simulation error as a test failure.
///
/// # Panics
///
/// Panics on any [`SimError`] (rejected config, deadlock, kernel fault).
pub fn run_kernel_profiled(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
) -> (RunReport, salam_obs::DepStream) {
    match try_run_kernel_profiled(kernel, cfg) {
        Ok(pair) => pair,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`run_kernel_profiled`]: same forced dependency-stream
/// recording, but configuration rejections, deadlocks and kernel faults
/// come back as typed [`SimError`]s — matching the rest of the `try_*`
/// API surface.
///
/// # Errors
///
/// Same taxonomy as [`try_run_kernel`].
pub fn try_run_kernel_profiled(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
) -> Result<(RunReport, salam_obs::DepStream), SimError> {
    let mut cfg = cfg.clone();
    cfg.engine.record_depstream = true;
    let mut report = try_run_kernel(kernel, &cfg)?;
    // Infallible once the run succeeded: recording was forced on above, so
    // the stats always carry a stream.
    let depstream = report
        .stats
        .depstream
        .take()
        .expect("record_depstream was set");
    Ok((report, depstream))
}

/// [`run_kernel`] with a trace sink attached to the engine: op spans and
/// scheduler events land on `engine.{kernel}` tracks, ready for
/// [`salam_obs::write_chrome_trace`].
pub fn run_kernel_traced(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
    trace: &salam_obs::SharedTrace,
) -> RunReport {
    match try_run_kernel_traced(kernel, cfg, trace, None) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`run_kernel`]: validates the configuration up front and turns
/// deadlocks and kernel faults into [`SimError`] values instead of panics.
///
/// # Errors
///
/// [`SimError::Config`] for rejected knobs, [`SimError::Deadlock`] with a
/// populated watchdog snapshot, or [`SimError::KernelFault`] for runtime
/// evaluation failures.
pub fn try_run_kernel(kernel: &BuiltKernel, cfg: &StandaloneConfig) -> Result<RunReport, SimError> {
    try_run_kernel_traced(kernel, cfg, &salam_obs::SharedTrace::disabled(), None)
}

/// [`try_run_kernel`] under a fault-injection [`FaultPlan`].
///
/// The fault layer — engine FU hooks plus a [`FaultyPort`] wrapped around
/// the SPM — is attached even when the plan's rates are all zero, so the
/// zero-rate observational-equivalence property genuinely exercises the
/// injection path rather than bypassing it. Port-side fault counters are
/// merged into the report's `fault_counts`.
///
/// # Errors
///
/// Same taxonomy as [`try_run_kernel`]; injected faults surface either as
/// an unverified report (silent data corruption), a longer run (jitter), or
/// an `Err` (deadlock from dropped responses, kernel fault from corrupted
/// control data).
pub fn try_run_kernel_faulted(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
    plan: &FaultPlan,
) -> Result<RunReport, SimError> {
    try_run_kernel_traced(kernel, cfg, &salam_obs::SharedTrace::disabled(), Some(plan))
}

/// The full-generality fallible entry point: optional trace sink, optional
/// fault plan. Everything else in this module is a special case of this —
/// and it is what a long-running server calls to host arbitrary tenant jobs
/// with typed errors instead of panics.
///
/// # Errors
///
/// Same taxonomy as [`try_run_kernel`].
pub fn try_run_kernel_traced(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
    trace: &salam_obs::SharedTrace,
    plan: Option<&FaultPlan>,
) -> Result<RunReport, SimError> {
    try_run_kernel_observed(
        kernel,
        cfg,
        trace,
        plan,
        &salam_telemetry::FlightRecorder::disabled(),
        0,
    )
}

/// The full-generality entry point: [`try_run_kernel_traced`] plus a
/// serving-layer [`salam_telemetry::FlightRecorder`] that receives engine
/// run-start/run-end/error events and liveness heartbeats tagged with the
/// request's `trace_id`. A disabled recorder (what every other entry
/// point passes) makes this identical to `try_run_kernel_traced` — the
/// recorder never feeds back into simulation state, which is what keeps
/// telemetry non-perturbing.
///
/// # Errors
///
/// Same taxonomy as [`try_run_kernel`].
pub fn try_run_kernel_observed(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
    trace: &salam_obs::SharedTrace,
    plan: Option<&FaultPlan>,
    flight: &salam_telemetry::FlightRecorder,
    trace_id: u64,
) -> Result<RunReport, SimError> {
    try_run_kernel_controlled(
        kernel,
        cfg,
        trace,
        plan,
        flight,
        trace_id,
        &salam_resilience::CancelToken::none(),
    )
}

/// [`try_run_kernel_observed`] plus a cooperative
/// [`salam_resilience::CancelToken`]. The engine polls the token at
/// cycle-batch boundaries ([`salam_runtime::CANCEL_BATCH`] cycles), so an
/// explicit cancel or an expired deadline stops the run within one batch
/// and surfaces as [`SimError::Cancelled`]. A disabled token (what every
/// other entry point passes) costs one branch per batch and never fires.
///
/// # Errors
///
/// Same taxonomy as [`try_run_kernel`], plus [`SimError::Cancelled`].
#[allow(clippy::too_many_arguments)]
pub fn try_run_kernel_controlled(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
    trace: &salam_obs::SharedTrace,
    plan: Option<&FaultPlan>,
    flight: &salam_telemetry::FlightRecorder,
    trace_id: u64,
    cancel: &salam_resilience::CancelToken,
) -> Result<RunReport, SimError> {
    cfg.validate()?;
    if cfg.verify {
        salam_verify::gate(&kernel.func).map_err(SimError::Verify)?;
    }
    let cdfg = StaticCdfg::elaborate(&kernel.func, &cfg.profile, &cfg.constraints);
    let mut mem = SimpleMem::new(cfg.spm_latency, cfg.spm_read_ports, cfg.spm_write_ports);
    kernel.load_into(mem.memory_mut());
    let mut engine = Engine::new(
        kernel.func.clone(),
        cdfg.clone(),
        cfg.profile.clone(),
        cfg.engine,
        kernel.args.clone(),
    );
    if trace.is_enabled() {
        engine.set_trace(trace.clone());
    }
    if flight.is_enabled() {
        engine.set_flight(flight.clone(), trace_id);
    }
    if cancel.is_enabled() {
        engine.set_cancel(cancel.clone());
    }
    let mut mem = if let Some(plan) = plan {
        engine.set_fault(plan);
        let mut port = FaultyPort::new(mem, plan);
        let run = engine.try_run_to_completion(&mut port);
        engine.merge_fault_counts(port.fault_counts());
        run?;
        port.into_inner()
    } else {
        engine.try_run_to_completion(&mut mem)?;
        mem
    };
    let verified = kernel.check(mem.memory_mut()).is_ok();

    // Size the SPM model to the kernel's footprint.
    let (lo, hi) = kernel.init_span();
    let footprint = (hi.saturating_sub(lo)).next_power_of_two().max(1024);
    let spm = SramSpec::new(footprint, cfg.spm_word_bytes)
        .with_ports(cfg.spm_read_ports, cfg.spm_write_ports);

    Ok(RunReport::assemble(
        &kernel.name,
        engine.stats(),
        &cdfg,
        &cfg.profile,
        Some(&spm),
        cfg.engine.clock_period_ps,
        verified,
    ))
}

/// A [`salam_runtime::MemPort`] backed by a real `memsys` hierarchy,
/// advanced in lockstep with the engine clock. This is how a standalone
/// datapath runs against a cache + DRAM instead of a private SPM.
pub struct HierarchyPort {
    sim: sim_core::Simulation<memsys::MemMsg>,
    target: sim_core::CompId,
    sink: sim_core::CompId,
    clock_period_ps: u64,
    cycle: u64,
    reads_left: u32,
    writes_left: u32,
    read_budget: u32,
    write_budget: u32,
}

impl std::fmt::Debug for HierarchyPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchyPort")
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl HierarchyPort {
    /// Wraps a prepared simulation: requests go to `target`, responses must
    /// be addressed to `sink` (a [`memsys::test_util::Collector`]).
    pub fn new(
        sim: sim_core::Simulation<memsys::MemMsg>,
        target: sim_core::CompId,
        sink: sim_core::CompId,
        clock_period_ps: u64,
        read_budget: u32,
        write_budget: u32,
    ) -> Self {
        HierarchyPort {
            sim,
            target,
            sink,
            clock_period_ps,
            cycle: 0,
            reads_left: read_budget,
            writes_left: write_budget,
            read_budget,
            write_budget,
        }
    }

    /// Builds the common hierarchy for one kernel: an L1 cache in front of
    /// DRAM, with the kernel's data staged in DRAM.
    pub fn cache_hierarchy(
        kernel: &BuiltKernel,
        cache: memsys::CacheConfig,
        clock_period_ps: u64,
        ports: u32,
    ) -> Self {
        let mut sim: sim_core::Simulation<memsys::MemMsg> = sim_core::Simulation::new();
        // Cover the kernel's whole footprint with one DRAM.
        let (lo, hi) = kernel.footprint;
        let base = lo & !0xFFF;
        let size = (hi - base + 0xFFF) & !0xFFF;
        let dram = sim.add_component(memsys::Dram::new(
            "dram",
            memsys::DramConfig::default(),
            base,
            size,
        ));
        kernel.load_with(|addr, bytes| {
            sim.component_as_mut::<memsys::Dram>(dram)
                .unwrap()
                .poke(addr, bytes);
        });
        let l1 = sim.add_component(memsys::Cache::new("l1", cache, dram));
        let sink = sim.add_component(memsys::test_util::Collector::new());
        HierarchyPort::new(sim, l1, sink, clock_period_ps, ports, ports)
    }

    /// The component requests are routed to (cache front, for verification
    /// reads through the hierarchy).
    pub fn target(&self) -> sim_core::CompId {
        self.target
    }

    /// Consumes the port, returning the underlying simulation for
    /// post-run inspection.
    pub fn into_simulation(self) -> sim_core::Simulation<memsys::MemMsg> {
        self.sim
    }
}

impl salam_runtime::MemPort for HierarchyPort {
    fn begin_cycle(&mut self) {
        self.cycle += 1;
        self.reads_left = self.read_budget;
        self.writes_left = self.write_budget;
        // Deliver everything due strictly before this engine edge.
        self.sim.run_until(self.cycle * self.clock_period_ps);
    }

    fn try_issue(
        &mut self,
        access: salam_runtime::MemAccess,
    ) -> Result<(), salam_runtime::Rejection> {
        let (budget, cause) = if access.is_write {
            (
                &mut self.writes_left,
                salam_runtime::RejectCause::WritePorts,
            )
        } else {
            (&mut self.reads_left, salam_runtime::RejectCause::ReadPorts)
        };
        if *budget == 0 {
            return Err(salam_runtime::Rejection::new(access, cause));
        }
        *budget -= 1;
        let req = if access.is_write {
            memsys::MemReq::write(
                access.token,
                access.addr,
                access.data.unwrap_or_default(),
                self.sink,
            )
        } else {
            memsys::MemReq::read(access.token, access.addr, access.size, self.sink)
        };
        self.sim.post(
            self.target,
            self.cycle * self.clock_period_ps,
            memsys::MemMsg::Req(req),
        );
        Ok(())
    }

    fn poll(&mut self) -> Vec<salam_runtime::MemCompletion> {
        let sink = self.sink;
        let col = self
            .sim
            .component_as_mut::<memsys::test_util::Collector>(sink)
            .expect("sink is a collector");
        col.resps
            .drain(..)
            .map(|r| salam_runtime::MemCompletion {
                token: r.id,
                data: r.data,
            })
            .collect()
    }
}

/// Runs `kernel` against a cache + DRAM hierarchy instead of a private SPM.
///
/// The returned report's SPM fields describe the cache's SRAM array; output
/// verification reads the memory hierarchy functionally (cache contents win
/// over stale DRAM lines).
pub fn run_kernel_cached(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
    cache: memsys::CacheConfig,
) -> RunReport {
    let cdfg = StaticCdfg::elaborate(&kernel.func, &cfg.profile, &cfg.constraints);
    let mut port = HierarchyPort::cache_hierarchy(
        kernel,
        cache,
        cfg.engine.clock_period_ps,
        cfg.spm_read_ports,
    );
    let mut engine = Engine::new(
        kernel.func.clone(),
        cdfg.clone(),
        cfg.profile.clone(),
        cfg.engine,
        kernel.args.clone(),
    );
    engine.run_to_completion(&mut port);

    // Verify by draining the hierarchy: issue functional reads through the
    // cache so dirty lines are observed.
    let l1 = port.target();
    let mut sim = port.into_simulation();
    let (lo, hi) = kernel.footprint;
    let sink = sim.add_component(memsys::test_util::Collector::new());
    let now = sim.now();
    let mut id = 1u64 << 40;
    let mut addr = lo;
    while addr < hi {
        let chunk = 64.min(hi - addr) as u32;
        sim.post(
            l1,
            now + 1,
            memsys::MemMsg::Req(memsys::MemReq::read(id, addr, chunk, sink)),
        );
        id += 1;
        addr += chunk as u64;
    }
    sim.run();
    let mut mem = salam_ir::interp::SparseMemory::new();
    {
        use salam_ir::interp::Memory as _;
        let col = sim
            .component_as::<memsys::test_util::Collector>(sink)
            .unwrap();
        for r in &col.resps {
            if let Some(d) = &r.data {
                mem.write(r.addr, d);
            }
        }
    }
    let verified = kernel.check(&mut mem).is_ok();

    let spm = SramSpec::new(cache.size_bytes.max(1024), 8).with_ports(1, 1);
    RunReport::assemble(
        &kernel.name,
        engine.stats(),
        &cdfg,
        &cfg.profile,
        Some(&spm),
        cfg.engine.clock_period_ps,
        verified,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_profile::FuKind;

    #[test]
    fn gemm_runs_verified_with_power_and_area() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
        let r = run_kernel(&k, &StandaloneConfig::default());
        assert!(r.verified, "kernel output must match golden");
        assert!(r.cycles > 0);
        assert!(r.power.total_mw() > 0.0);
        assert!(r.power.static_spm_mw > 0.0);
        assert!(r.datapath_area_um2 > 0.0);
        assert!(r.spm_area_um2 > 0.0);
    }

    #[test]
    fn more_ports_never_slower() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 4 });
        let slow = run_kernel(&k, &StandaloneConfig::default().with_ports(1));
        let fast = run_kernel(&k, &StandaloneConfig::default().with_ports(16));
        assert!(fast.cycles <= slow.cycles);
        assert!(slow.verified && fast.verified);
    }

    #[test]
    fn constraining_fus_trades_time_for_power() {
        let k = machsuite::md_knn::build(&machsuite::md_knn::Params::default());
        let free = run_kernel(&k, &StandaloneConfig::default());
        let tight = run_kernel(
            &k,
            &StandaloneConfig::default().with_constraints(
                FuConstraints::unconstrained()
                    .with_limit(FuKind::FpMulF64, 2)
                    .with_limit(FuKind::FpAddF64, 2),
            ),
        );
        assert!(tight.cycles >= free.cycles);
        assert!(
            tight.power.static_fu_mw < free.power.static_fu_mw,
            "fewer units leak less"
        );
        assert!(tight.verified);
    }

    #[test]
    fn cached_run_verifies_and_larger_cache_is_faster() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
        let big = run_kernel_cached(
            &k,
            &StandaloneConfig::default(),
            memsys::CacheConfig::default().with_size(16 * 1024),
        );
        assert!(big.verified, "cached run produced wrong results");
        let small = run_kernel_cached(
            &k,
            &StandaloneConfig::default(),
            memsys::CacheConfig::default().with_size(256),
        );
        assert!(small.verified);
        assert!(
            big.cycles < small.cycles,
            "16kB cache ({}) should beat 256B ({})",
            big.cycles,
            small.cycles
        );
    }

    #[test]
    fn cache_is_slower_than_spm_but_correct() {
        let k = machsuite::stencil2d::build(&machsuite::stencil2d::Params::default());
        let spm = run_kernel(&k, &StandaloneConfig::default());
        let cached = run_kernel_cached(
            &k,
            &StandaloneConfig::default(),
            memsys::CacheConfig::default(),
        );
        assert!(cached.verified);
        assert!(cached.cycles > spm.cycles, "cache path has longer latency");
    }

    #[test]
    fn every_benchmark_verifies_on_the_engine() {
        // The full-stack correctness sweep: every MachSuite kernel computes
        // bit-correct results through the cycle-accurate engine.
        for bench in machsuite::Bench::ALL {
            let k = bench.build_standard();
            let r = run_kernel(&k, &StandaloneConfig::default());
            assert!(r.verified, "{} failed verification", k.name);
            assert!(r.cycles > 0, "{} reported zero cycles", k.name);
        }
    }

    #[test]
    fn nonsense_standalone_configs_are_rejected() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        for (cfg, field) in [
            (
                StandaloneConfig {
                    spm_read_ports: 0,
                    ..StandaloneConfig::default()
                },
                "spm_read_ports",
            ),
            (
                StandaloneConfig {
                    spm_word_bytes: 0,
                    ..StandaloneConfig::default()
                },
                "spm_word_bytes",
            ),
        ] {
            match try_run_kernel(&k, &cfg) {
                Err(SimError::Config(c)) => assert_eq!(c.field, field),
                other => panic!("expected config error for {field}, got {other:?}"),
            }
        }
        // Engine-level knobs are validated through the same entry point.
        let cfg = StandaloneConfig {
            engine: EngineConfig {
                deadlock_cycles: 0,
                ..EngineConfig::default()
            },
            ..StandaloneConfig::default()
        };
        assert!(matches!(try_run_kernel(&k, &cfg), Err(SimError::Config(_))));
    }

    #[test]
    fn verify_gate_passes_clean_kernels_and_rejects_broken_ir() {
        use salam_ir::{FunctionBuilder, IntPredicate, Type};

        // Clean kernel with the gate on: runs and verifies as usual, and
        // the knob does not perturb the cache key.
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        let gated = StandaloneConfig::default().with_verify(true);
        let r = try_run_kernel(&k, &gated).unwrap();
        assert!(r.verified);
        assert_eq!(
            gated.canonical_repr(),
            StandaloneConfig::default().canonical_repr(),
            "verify gate must not split cache entries"
        );

        // A non-dominated use (value defined only on one branch arm, used
        // at the join) must be rejected before the engine starts.
        let mut fb = FunctionBuilder::new("broken", &[("p", Type::Ptr), ("n", Type::I64)]);
        let p = fb.arg(0);
        let n = fb.arg(1);
        let then_b = fb.add_block("then");
        let join = fb.add_block("join");
        let zero = fb.i64c(0);
        let c = fb.icmp(IntPredicate::Slt, n, zero, "c");
        fb.cond_br(c, then_b, join);
        fb.position_at(then_b);
        let a = fb.load(Type::I64, p, "a");
        fb.br(join);
        fb.position_at(join);
        fb.store(a, p); // `a` does not dominate this use
        fb.ret();
        let broken = machsuite::BuiltKernel::new(
            "broken",
            fb.finish(),
            vec![
                salam_ir::interp::RtVal::P(0x1000),
                salam_ir::interp::RtVal::I(4),
            ],
            vec![(0x1000, vec![0u8; 8])],
            Box::new(|_| Ok(())),
        );
        match try_run_kernel(&broken, &gated) {
            Err(SimError::Verify(diags)) => {
                assert!(diags.iter().any(|d| d.code == salam_verify::codes::V001));
            }
            other => panic!("expected a verify rejection, got {other:?}"),
        }
    }

    #[test]
    fn zero_rate_fault_plan_is_observationally_free() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 2 });
        let cfg = StandaloneConfig::default();
        let clean = run_kernel(&k, &cfg);
        let faulted = try_run_kernel_faulted(&k, &cfg, &FaultPlan::seeded(42)).unwrap();
        assert_eq!(clean.to_json(), faulted.to_json());
    }

    #[test]
    fn expired_deadline_cancels_within_one_cycle_batch() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        let cfg = StandaloneConfig::default();
        let token = salam_resilience::CancelToken::with_deadline_ms(0);
        match try_run_kernel_controlled(
            &k,
            &cfg,
            &salam_obs::SharedTrace::disabled(),
            None,
            &salam_telemetry::FlightRecorder::disabled(),
            0,
            &token,
        ) {
            Err(SimError::Cancelled {
                kernel,
                cycle,
                timeout,
            }) => {
                assert_eq!(kernel, "gemm_ncubed");
                assert!(timeout, "an expired deadline must classify as timeout");
                assert_eq!(
                    cycle % salam_runtime::CANCEL_BATCH,
                    0,
                    "stops land exactly on cycle-batch boundaries"
                );
                assert_eq!(cycle, 0, "an already-expired deadline stops at cycle 0");
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
        // A disabled token is observationally free.
        let clean = run_kernel(&k, &cfg);
        let controlled = try_run_kernel_controlled(
            &k,
            &cfg,
            &salam_obs::SharedTrace::disabled(),
            None,
            &salam_telemetry::FlightRecorder::disabled(),
            0,
            &salam_resilience::CancelToken::new(),
        )
        .unwrap();
        assert_eq!(clean.to_json(), controlled.to_json());
    }

    #[test]
    fn dropped_responses_surface_as_a_deadlock_error() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        let mut cfg = StandaloneConfig::default();
        cfg.engine.deadlock_cycles = 200;
        let plan = FaultPlan {
            mem_drop_rate: 1.0,
            ..FaultPlan::seeded(3)
        };
        match try_run_kernel_faulted(&k, &cfg, &plan) {
            Err(SimError::Deadlock(snap)) => {
                assert_eq!(snap.kernel, "gemm_ncubed");
                assert!(snap.mem_outstanding > 0, "reads must be stuck in flight");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
