//! # salam
//!
//! The gem5-SALAM reproduction's public API: full-system modeling of
//! LLVM-based hardware accelerators.
//!
//! This crate composes the substrates into the architecture of the paper's
//! Fig. 1:
//!
//! * [`ComputeUnit`] — wraps the dynamic LLVM runtime engine
//!   ([`salam_runtime::Engine`]) as a clocked simulation component.
//! * [`CommConfig`] / the communications interface — MMR programming
//!   (through [`memsys::MmrBlock`] doorbells), up to two master memory
//!   ports (a private/local port and a global port), and completion
//!   interrupts; interchangeable across SPM, cache and stream memories
//!   without touching the compute unit.
//! * [`AcceleratorCluster`] — the hierarchical cluster construct: a pool of
//!   accelerators with a shared DMA and scratchpad behind a local crossbar,
//!   bridged to DRAM through a global crossbar (optionally via an LLC).
//! * [`Host`] — a programmed-IO host CPU model that drives accelerators the
//!   way the paper's bare-metal drivers do: write MMRs, kick DMAs, wait for
//!   interrupts/done signals.
//! * [`standalone`] — a one-call harness for datapath+SPM simulations (the
//!   configuration validated against HLS in Fig. 10) and design-space
//!   sweeps.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` at the workspace root, or the condensed
//! version:
//!
//! ```
//! use machsuite::{gemm, BuiltKernel};
//! use salam::standalone::{run_kernel, StandaloneConfig};
//!
//! let kernel = gemm::build(&gemm::Params { n: 4, unroll: 1 });
//! let report = run_kernel(&kernel, &StandaloneConfig::default());
//! assert!(report.cycles > 0);
//! assert!(report.verified);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod cluster;
mod host;
mod report;
pub mod standalone;

pub use accel::{AcceleratorConfig, CommConfig, ComputeUnit, ACC_DONE};
pub use cluster::{
    build_system, build_system_with_llc, scratchpad_canonical_repr, AccelHandle,
    AcceleratorCluster, ClusterBuilder, ClusterConfig, MemoryStyle,
};
pub use host::{Host, HostConfig, HostOp};
pub use report::{PowerBreakdown, RunReport};
pub use salam_fault::{ConfigError, FaultPlan, SimError, WatchdogSnapshot};
pub use standalone::{
    run_kernel, run_kernel_cached, run_kernel_profiled, run_kernel_traced, try_run_kernel,
    try_run_kernel_controlled, try_run_kernel_faulted, try_run_kernel_observed,
    try_run_kernel_profiled, HierarchyPort, StandaloneConfig,
};
