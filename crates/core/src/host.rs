//! A programmed-IO host CPU model.
//!
//! Runs a driver "program" the way the paper's bare-metal host code does:
//! writes accelerator MMRs, kicks DMAs, and blocks on interrupts or
//! completion notifications. Each operation's completion tick is recorded so
//! experiments can split end-to-end time into compute and bulk-transfer
//! phases (Table III).

use memsys::{DmaCmd, MemMsg, MemReq};
use sim_core::{CompId, Component, Ctx, Tick};

use crate::accel::ACC_DONE;

/// One step of the host driver.
#[derive(Debug, Clone)]
pub enum HostOp {
    /// Write a 64-bit value to `mmr_base + 8 * index` via the fabric.
    WriteMmr {
        /// Fabric entry point (crossbar) or the MMR block itself.
        via: CompId,
        /// Register address.
        addr: u64,
        /// Value to write.
        value: u64,
    },
    /// Read a register (timing only; the value is discarded).
    ReadMmr {
        /// Fabric entry point.
        via: CompId,
        /// Register address.
        addr: u64,
    },
    /// Start an accelerator: write `1` to its control register.
    StartAccelerator {
        /// Fabric entry point.
        via: CompId,
        /// The accelerator's MMR base.
        mmr_base: u64,
    },
    /// Block until a [`MemMsg::Custom`]`(ACC_DONE, _)` arrives from `unit`.
    WaitAccDone {
        /// The compute unit to wait on.
        unit: CompId,
    },
    /// Kick a DMA engine.
    StartDma {
        /// The DMA component.
        dma: CompId,
        /// The command.
        cmd: DmaCmd,
    },
    /// Block until `DmaDone { id }` arrives.
    WaitDmaDone {
        /// Command id to wait for.
        id: u64,
    },
    /// Block until interrupt `line` is raised.
    WaitIrq {
        /// Line number.
        line: u32,
    },
    /// Poll a register until it reads `expect` — the paper's "MMRs respond
    /// with their current values when read by the host CPU" driver pattern.
    PollMmr {
        /// Fabric entry point.
        via: CompId,
        /// Register address.
        addr: u64,
        /// Value to wait for.
        expect: u64,
    },
    /// Spin for a fixed time (driver overhead modeling).
    Delay {
        /// Ticks to wait.
        ticks: Tick,
    },
}

/// Host timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Latency of one uncached MMIO access from the CPU, in picoseconds.
    pub mmio_latency_ps: Tick,
    /// Fixed per-operation driver overhead, in picoseconds.
    pub op_overhead_ps: Tick,
    /// DMA descriptor setup cost per transfer, in picoseconds.
    pub dma_setup_ps: Tick,
}

impl Default for HostConfig {
    /// ~50 ns MMIO accesses and ~20 ns of driver overhead per op — typical
    /// of an ARM host driving uncached device registers.
    fn default() -> Self {
        HostConfig {
            mmio_latency_ps: 50_000,
            op_overhead_ps: 20_000,
            dma_setup_ps: 600_000,
        }
    }
}

/// The host CPU model. Post [`MemMsg::Start`] to begin the program.
#[derive(Debug)]
pub struct Host {
    cfg: HostConfig,
    program: Vec<HostOp>,
    pc: usize,
    waiting: Option<HostOp>,
    // Completion events that arrived before their wait op became current;
    // waits consult these latches first so nothing is ever lost.
    pending_dma_dones: Vec<u64>,
    pending_irqs: Vec<u32>,
    pending_acc_dones: Vec<CompId>,
    next_req_id: u64,
    /// `(op index, completion tick)` for every completed op.
    pub timeline: Vec<(usize, Tick)>,
    finished_at: Option<Tick>,
}

impl Host {
    /// Creates a host that will run `program`.
    pub fn new(cfg: HostConfig, program: Vec<HostOp>) -> Self {
        Host {
            cfg,
            program,
            pc: 0,
            waiting: None,
            pending_dma_dones: Vec::new(),
            pending_irqs: Vec::new(),
            pending_acc_dones: Vec::new(),
            next_req_id: 1 << 32,
            timeline: Vec::new(),
            finished_at: None,
        }
    }

    /// Tick at which the program finished, if it has.
    pub fn finished_at(&self) -> Option<Tick> {
        self.finished_at
    }

    /// Completion tick of program step `index`.
    pub fn op_finished_at(&self, index: usize) -> Option<Tick> {
        self.timeline
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, t)| *t)
    }

    fn advance(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        while self.pc < self.program.len() {
            let op = self.program[self.pc].clone();
            let me = ctx.self_id();
            match op {
                HostOp::WriteMmr { via, addr, value } => {
                    let id = self.next_req_id;
                    self.next_req_id += 1;
                    ctx.send(
                        via,
                        self.cfg.mmio_latency_ps + self.cfg.op_overhead_ps,
                        MemMsg::Req(MemReq::write(id, addr, value.to_le_bytes().to_vec(), me)),
                    );
                    self.waiting = Some(op);
                    return;
                }
                HostOp::ReadMmr { via, addr } => {
                    let id = self.next_req_id;
                    self.next_req_id += 1;
                    ctx.send(
                        via,
                        self.cfg.mmio_latency_ps + self.cfg.op_overhead_ps,
                        MemMsg::Req(MemReq::read(id, addr, 8, me)),
                    );
                    self.waiting = Some(op);
                    return;
                }
                HostOp::StartAccelerator { via, mmr_base } => {
                    let id = self.next_req_id;
                    self.next_req_id += 1;
                    ctx.send(
                        via,
                        self.cfg.mmio_latency_ps + self.cfg.op_overhead_ps,
                        MemMsg::Req(MemReq::write(id, mmr_base, 1u64.to_le_bytes().to_vec(), me)),
                    );
                    self.waiting = Some(op);
                    return;
                }
                HostOp::StartDma { dma, cmd } => {
                    ctx.send(
                        dma,
                        self.cfg.op_overhead_ps + self.cfg.dma_setup_ps,
                        MemMsg::DmaStart(cmd),
                    );
                    self.timeline.push((self.pc, ctx.now()));
                    self.pc += 1;
                }
                HostOp::Delay { ticks } => {
                    self.waiting = Some(op.clone());
                    ctx.wake(ticks, MemMsg::Custom(u64::MAX, 0));
                    return;
                }
                HostOp::PollMmr { via, addr, .. } => {
                    let id = self.next_req_id;
                    self.next_req_id += 1;
                    ctx.send(
                        via,
                        self.cfg.mmio_latency_ps + self.cfg.op_overhead_ps,
                        MemMsg::Req(MemReq::read(id, addr, 8, me)),
                    );
                    self.waiting = Some(op);
                    return;
                }
                HostOp::WaitAccDone { unit } => {
                    if let Some(i) = self.pending_acc_dones.iter().position(|&u| u == unit) {
                        self.pending_acc_dones.remove(i);
                        self.timeline.push((self.pc, ctx.now()));
                        self.pc += 1;
                        continue;
                    }
                    self.waiting = Some(op);
                    return;
                }
                HostOp::WaitDmaDone { id } => {
                    if let Some(i) = self.pending_dma_dones.iter().position(|&d| d == id) {
                        self.pending_dma_dones.remove(i);
                        self.timeline.push((self.pc, ctx.now()));
                        self.pc += 1;
                        continue;
                    }
                    self.waiting = Some(op);
                    return;
                }
                HostOp::WaitIrq { line } => {
                    if let Some(i) = self.pending_irqs.iter().position(|&l| l == line) {
                        self.pending_irqs.remove(i);
                        self.timeline.push((self.pc, ctx.now()));
                        self.pc += 1;
                        continue;
                    }
                    self.waiting = Some(op);
                    return;
                }
            }
        }
        if self.finished_at.is_none() {
            self.finished_at = Some(ctx.now());
        }
    }

    fn complete_current(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        self.waiting = None;
        self.timeline.push((self.pc, ctx.now()));
        self.pc += 1;
        self.advance(ctx);
    }
}

impl Component<MemMsg> for Host {
    fn name(&self) -> &str {
        "host"
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match (&self.waiting, msg) {
            (None, MemMsg::Start) => self.advance(ctx),
            (Some(HostOp::WriteMmr { .. }), MemMsg::Resp(_))
            | (Some(HostOp::ReadMmr { .. }), MemMsg::Resp(_))
            | (Some(HostOp::StartAccelerator { .. }), MemMsg::Resp(_)) => {
                self.complete_current(ctx)
            }
            (Some(HostOp::PollMmr { via, addr, expect }), MemMsg::Resp(resp)) => {
                let got = resp
                    .data
                    .as_deref()
                    .map(|d| {
                        let mut b = [0u8; 8];
                        b[..d.len().min(8)].copy_from_slice(&d[..d.len().min(8)]);
                        u64::from_le_bytes(b)
                    })
                    .unwrap_or(0);
                if got == *expect {
                    self.complete_current(ctx);
                } else {
                    // Spin: re-read after one MMIO round trip.
                    let (via, addr) = (*via, *addr);
                    let id = self.next_req_id;
                    self.next_req_id += 1;
                    let me = ctx.self_id();
                    ctx.send(
                        via,
                        self.cfg.mmio_latency_ps,
                        MemMsg::Req(MemReq::read(id, addr, 8, me)),
                    );
                }
            }
            (Some(HostOp::WaitAccDone { unit }), MemMsg::Custom(ACC_DONE, _))
                if ctx.sender() == *unit =>
            {
                self.complete_current(ctx)
            }
            (Some(HostOp::WaitDmaDone { id }), MemMsg::DmaDone { id: got }) if got == *id => {
                self.complete_current(ctx)
            }
            (
                Some(HostOp::WaitIrq { line }),
                MemMsg::Irq {
                    line: got,
                    raised: true,
                },
            ) if got == *line => self.complete_current(ctx),
            (Some(HostOp::Delay { .. }), MemMsg::Custom(u64::MAX, _)) => self.complete_current(ctx),
            // Completion events arriving before their wait op becomes
            // current are latched, never dropped.
            (_, MemMsg::DmaDone { id }) => self.pending_dma_dones.push(id),
            (_, MemMsg::Irq { line, raised: true }) => self.pending_irqs.push(line),
            (_, MemMsg::Custom(ACC_DONE, _)) => self.pending_acc_dones.push(ctx.sender()),
            _ => {}
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![(
            "finished_at_ns".into(),
            self.finished_at.map(|t| t as f64 / 1000.0).unwrap_or(-1.0),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{MmrBlock, Scratchpad, ScratchpadConfig};
    use sim_core::Simulation;

    #[test]
    fn program_executes_in_order_with_latency() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let mmr = sim.add_component(MmrBlock::new("mmr", 0x0, 4, None));
        let host = sim.add_component(Host::new(
            HostConfig::default(),
            vec![
                HostOp::WriteMmr {
                    via: mmr,
                    addr: 0x8,
                    value: 7,
                },
                HostOp::ReadMmr {
                    via: mmr,
                    addr: 0x8,
                },
                HostOp::Delay { ticks: 100_000 },
            ],
        ));
        sim.post(host, 0, MemMsg::Start);
        sim.run();
        let h = sim.component_as::<Host>(host).unwrap();
        assert_eq!(h.timeline.len(), 3);
        assert!(h.finished_at().unwrap() >= 2 * 70_000 + 100_000);
        let m = sim.component_as::<MmrBlock>(mmr).unwrap();
        assert_eq!(m.reg(1), 7);
    }

    #[test]
    fn poll_mmr_spins_until_value_appears() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let mmr = sim.add_component(MmrBlock::new("mmr", 0x0, 4, None));
        let host = sim.add_component(Host::new(
            HostConfig::default(),
            vec![HostOp::PollMmr {
                via: mmr,
                addr: 0x0,
                expect: 2,
            }],
        ));
        sim.post(host, 0, MemMsg::Start);
        // Something else sets the status register much later.
        let col = sim.add_component(crate::host::tests::sink());
        sim.post(
            mmr,
            2_000_000,
            MemMsg::Req(MemReq::write(50, 0x0, 2u64.to_le_bytes().to_vec(), col)),
        );
        sim.run();
        let h = sim.component_as::<Host>(host).unwrap();
        assert!(
            h.finished_at().unwrap() >= 2_000_000,
            "poll must spin until the write"
        );
    }

    fn sink() -> memsys::test_util::Collector {
        memsys::test_util::Collector::new()
    }

    #[test]
    fn wait_dma_done_blocks_until_completion() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let spm = sim.add_component(Scratchpad::new(
            "spm",
            ScratchpadConfig::default().with_ports(4, 4),
            0x0,
            0x1000,
        ));
        let mut map = memsys::AddrMap::new();
        map.add(0x0, 0x1000, spm);
        let xbar = sim.add_component(memsys::Xbar::new("x", map, 1, 8));
        let dma = sim.add_component(memsys::BlockDma::new("dma", xbar, 64, 2));
        // The host id is needed inside the command, so build it in two steps.
        let host = sim.add_component(Host::new(HostConfig::default(), vec![]));
        let program = vec![
            HostOp::StartDma {
                dma,
                cmd: DmaCmd::new(5, 0x0, 0x800, 256, host),
            },
            HostOp::WaitDmaDone { id: 5 },
        ];
        *sim.component_as_mut::<Host>(host).unwrap() = Host::new(HostConfig::default(), program);
        sim.post(host, 0, MemMsg::Start);
        sim.run();
        let h = sim.component_as::<Host>(host).unwrap();
        assert_eq!(h.timeline.len(), 2);
        assert!(h.finished_at().is_some());
        // The wait completed strictly after the kick.
        assert!(h.op_finished_at(1).unwrap() > h.op_finished_at(0).unwrap());
    }
}

#[cfg(test)]
mod latch_tests {
    use super::*;
    use memsys::{MmrBlock, Scratchpad, ScratchpadConfig};
    use sim_core::Simulation;

    #[test]
    fn early_dma_done_is_latched_not_dropped() {
        // The DMA completes while the host is still blocked on an MMR write;
        // the later WaitDmaDone must still complete.
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let spm = sim.add_component(Scratchpad::new(
            "spm",
            ScratchpadConfig::default().with_ports(4, 4),
            0x0,
            0x1000,
        ));
        let mut map = memsys::AddrMap::new();
        map.add(0x0, 0x1000, spm);
        let xbar = sim.add_component(memsys::Xbar::new("x", map, 1, 8));
        let dma = sim.add_component(memsys::BlockDma::new("dma", xbar, 64, 2));
        let mmr = sim.add_component(MmrBlock::new("mmr", 0x7000_0000, 4, None));
        let host = sim.add_component(Host::new(HostConfig::default(), vec![]));
        let program = vec![
            // Tiny DMA finishes in ~1 us; the delay op holds the host for 5 us.
            HostOp::StartDma {
                dma,
                cmd: DmaCmd::new(9, 0x0, 0x800, 64, host),
            },
            HostOp::Delay { ticks: 5_000_000 },
            HostOp::WriteMmr {
                via: mmr,
                addr: 0x7000_0000,
                value: 1,
            },
            HostOp::WaitDmaDone { id: 9 },
        ];
        *sim.component_as_mut::<Host>(host).unwrap() = Host::new(HostConfig::default(), program);
        sim.post(host, 0, MemMsg::Start);
        sim.run();
        let h = sim.component_as::<Host>(host).unwrap();
        assert!(
            h.finished_at().is_some(),
            "early DmaDone must be latched so the later wait completes"
        );
        assert_eq!(h.timeline.len(), 4);
    }
}
