//! The compute unit and its communications interface.

use hw_profile::HardwareProfile;
use memsys::{MemMsg, MemReq};
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::RtVal;
use salam_ir::{Function, Type};
use salam_obs::SharedTrace;
use salam_runtime::{Engine, EngineConfig, EngineStats, MemAccess, MemCompletion, MemPort};
use sim_core::{ClockDomain, CompId, Component, Ctx, Tick};

/// `Custom` message tag announcing accelerator completion to subscribers.
pub const ACC_DONE: u64 = 0xACCD;

/// Static configuration of one accelerator.
#[derive(Debug, Clone)]
pub struct AcceleratorConfig {
    /// Instance name.
    pub name: String,
    /// Datapath constraints (functional-unit reuse limits).
    pub constraints: FuConstraints,
    /// Runtime-engine tunables.
    pub engine: EngineConfig,
    /// Accelerator clock.
    pub clock: ClockDomain,
}

impl AcceleratorConfig {
    /// Defaults at 1 GHz with an unconstrained datapath.
    pub fn new(name: &str) -> Self {
        AcceleratorConfig {
            name: name.to_string(),
            constraints: FuConstraints::unconstrained(),
            engine: EngineConfig::default(),
            clock: ClockDomain::default(),
        }
    }
}

/// Communications-interface configuration: the two master memory ports and
/// the control plumbing.
#[derive(Debug, Clone, Copy)]
pub struct CommConfig {
    /// Address range served by the local port `[lo, hi)` (private SPM or
    /// stream buffer).
    pub local_range: (u64, u64),
    /// Component behind the local port.
    pub local_target: Option<CompId>,
    /// Component behind the global port (crossbar); everything not in
    /// `local_range` goes here.
    pub global_target: Option<CompId>,
    /// Requests the local port accepts per cycle (reads, writes).
    pub local_ports: (u32, u32),
    /// Requests the global port accepts per cycle (reads, writes).
    pub global_ports: (u32, u32),
    /// Interrupt `(target, line)` raised at completion.
    pub irq: Option<(CompId, u32)>,
}

impl Default for CommConfig {
    /// No ports connected; 2R/2W budgets.
    fn default() -> Self {
        CommConfig {
            local_range: (0, 0),
            local_target: None,
            global_target: None,
            local_ports: (2, 2),
            global_ports: (2, 2),
            irq: None,
        }
    }
}

/// Buffers between the engine's [`MemPort`] and the message fabric, with
/// independent per-cycle budgets for the local and global master ports —
/// the two-port structure of the paper's communications interface.
#[derive(Debug, Default)]
struct BufferPort {
    outgoing: Vec<MemAccess>,
    completions: Vec<MemCompletion>,
    local_range: (u64, u64),
    local_left: (u32, u32),
    global_left: (u32, u32),
    local_budget: (u32, u32),
    global_budget: (u32, u32),
}

impl BufferPort {
    fn is_local(&self, addr: u64) -> bool {
        addr >= self.local_range.0 && addr < self.local_range.1
    }
}

impl MemPort for BufferPort {
    fn begin_cycle(&mut self) {
        self.local_left = self.local_budget;
        self.global_left = self.global_budget;
    }

    fn try_issue(&mut self, access: MemAccess) -> Result<(), salam_runtime::Rejection> {
        let side = if self.is_local(access.addr) {
            &mut self.local_left
        } else {
            &mut self.global_left
        };
        let (budget, cause) = if access.is_write {
            (&mut side.1, salam_runtime::RejectCause::WritePorts)
        } else {
            (&mut side.0, salam_runtime::RejectCause::ReadPorts)
        };
        if *budget == 0 {
            return Err(salam_runtime::Rejection::new(access, cause));
        }
        *budget -= 1;
        self.outgoing.push(access);
        Ok(())
    }

    fn poll(&mut self) -> Vec<MemCompletion> {
        std::mem::take(&mut self.completions)
    }
}

/// The accelerator: runtime engine + communications interface, as one
/// clocked component.
///
/// Control protocol (via the paired [`memsys::MmrBlock`], of which this
/// component is the doorbell owner):
///
/// * MMR register 0 — control/status: host writes `1` to start; the unit
///   writes `2` on completion.
/// * MMR registers 2..2+N — the kernel's N arguments as raw 64-bit values
///   (pointers and integers, as in the paper's OpenCL-like convention).
///
/// On completion the unit raises its IRQ (if configured) and sends
/// [`MemMsg::Custom`]`(ACC_DONE, _)` to every subscribed observer.
pub struct ComputeUnit {
    cfg: AcceleratorConfig,
    comm: CommConfig,
    func: Function,
    cdfg: StaticCdfg,
    profile: HardwareProfile,
    mmr: Option<(CompId, u64)>,
    subscribers: Vec<CompId>,
    // mirrored MMR argument registers (index 2..)
    arg_regs: Vec<u64>,
    engine: Option<Engine>,
    port: BufferPort,
    started_at: Option<Tick>,
    finished_at: Option<Tick>,
    final_stats: Option<EngineStats>,
    invocations: u64,
    ticking: bool,
    trace: SharedTrace,
}

impl std::fmt::Debug for ComputeUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputeUnit")
            .field("name", &self.cfg.name)
            .field("running", &self.engine.is_some())
            .finish()
    }
}

impl ComputeUnit {
    /// Creates a compute unit for `func`.
    pub fn new(
        cfg: AcceleratorConfig,
        comm: CommConfig,
        func: Function,
        profile: HardwareProfile,
    ) -> Self {
        let cdfg = StaticCdfg::elaborate(&func, &profile, &cfg.constraints);
        let nargs = func.params.len();
        ComputeUnit {
            port: BufferPort {
                local_range: comm.local_range,
                local_budget: comm.local_ports,
                global_budget: comm.global_ports,
                ..BufferPort::default()
            },
            cfg,
            comm,
            func,
            cdfg,
            profile,
            mmr: None,
            subscribers: Vec::new(),
            arg_regs: vec![0; nargs],
            engine: None,
            started_at: None,
            finished_at: None,
            final_stats: None,
            invocations: 0,
            ticking: false,
            trace: SharedTrace::disabled(),
        }
    }

    /// Attaches a trace sink: every invocation's engine records op spans and
    /// scheduler events, timestamped in simulation ticks.
    pub fn set_trace(&mut self, trace: SharedTrace) {
        self.trace = trace;
    }

    /// Binds the paired MMR block and its base address (for status
    /// write-back).
    pub fn set_mmr(&mut self, mmr: CompId, base: u64) {
        self.mmr = Some((mmr, base));
    }

    /// Adds a completion subscriber (host or controller).
    pub fn subscribe_done(&mut self, who: CompId) {
        self.subscribers.push(who);
    }

    /// Connects (or reconnects) the global master port. Interchanging the
    /// memory side without touching the compute unit is the decoupling the
    /// paper contrasts with gem5-Aladdin and PARADE.
    pub fn set_global_target(&mut self, target: CompId) {
        self.comm.global_target = Some(target);
    }

    /// Connects (or reconnects) the local master port to `target` serving
    /// `[lo, hi)` — e.g. a private SPM or a stream buffer.
    pub fn set_local_target(&mut self, target: CompId, lo: u64, hi: u64) {
        self.comm.local_target = Some(target);
        self.comm.local_range = (lo, hi);
        self.port.local_range = (lo, hi);
    }

    /// Sets the completion interrupt target and line.
    pub fn set_irq(&mut self, target: CompId, line: u32) {
        self.comm.irq = Some((target, line));
    }

    /// The static CDFG (for area/static-power reports).
    pub fn cdfg(&self) -> &StaticCdfg {
        &self.cdfg
    }

    /// Engine statistics of the last completed invocation.
    pub fn final_stats(&self) -> Option<&EngineStats> {
        self.final_stats.as_ref()
    }

    /// Start/finish ticks of the last invocation.
    pub fn span(&self) -> (Option<Tick>, Option<Tick>) {
        (self.started_at, self.finished_at)
    }

    /// Completed invocations.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    fn args_from_regs(&self) -> Vec<RtVal> {
        self.func
            .params
            .iter()
            .zip(&self.arg_regs)
            .map(|(p, &raw)| match p.ty {
                Type::Ptr => RtVal::P(raw),
                ref t if t.is_int() => RtVal::I(salam_ir::interp::sign_extend(raw, t.bits())),
                ref t => panic!("unsupported MMR argument type {t}"),
            })
            .collect()
    }

    fn start(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        assert!(
            self.engine.is_none(),
            "{}: started while running",
            self.cfg.name
        );
        let args = self.args_from_regs();
        let mut engine = Engine::new(
            self.func.clone(),
            self.cdfg.clone(),
            self.profile.clone(),
            self.cfg.engine,
            args,
        );
        if self.trace.is_enabled() {
            engine.set_trace(self.trace.clone());
            engine.set_trace_offset_ps(ctx.now());
        }
        self.engine = Some(engine);
        self.started_at = Some(ctx.now());
        self.schedule_tick(ctx);
    }

    fn schedule_tick(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        if !self.ticking {
            self.ticking = true;
            let next = self.cfg.clock.next_edge_at_or_after(ctx.now() + 1);
            ctx.wake(next - ctx.now(), MemMsg::Tick);
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        let engine = self.engine.take().expect("engine present at finish");
        self.final_stats = Some(engine.stats().clone());
        self.finished_at = Some(ctx.now());
        self.invocations += 1;
        if let Some((mmr, base)) = self.mmr {
            let me = ctx.self_id();
            ctx.send(
                mmr,
                0,
                MemMsg::Req(MemReq::write(
                    u64::MAX,
                    base,
                    2u64.to_le_bytes().to_vec(),
                    me,
                )),
            );
        }
        if let Some((target, line)) = self.comm.irq {
            ctx.send(target, 0, MemMsg::Irq { line, raised: true });
        }
        for &s in &self.subscribers {
            ctx.send(s, 0, MemMsg::Custom(ACC_DONE, self.invocations));
        }
    }
}

impl Component<MemMsg> for ComputeUnit {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match msg {
            MemMsg::Doorbell { offset, value } => {
                let index = (offset / 8) as usize;
                match index {
                    0 if value == 1 => self.start(ctx),
                    0 => {} // our own status write-back
                    1 => {} // reserved
                    n if n >= 2 && n - 2 < self.arg_regs.len() => {
                        self.arg_regs[n - 2] = value;
                    }
                    _ => {}
                }
            }
            MemMsg::Tick => {
                self.ticking = false;
                let Some(engine) = self.engine.as_mut() else {
                    return;
                };
                let done = engine.step(&mut self.port);
                // Flush memory accesses generated this cycle to the fabric.
                let me = ctx.self_id();
                for access in self.port.outgoing.drain(..) {
                    let dst = {
                        let (lo, hi) = self.comm.local_range;
                        if access.addr >= lo && access.addr < hi {
                            self.comm.local_target.expect("local port connected")
                        } else {
                            self.comm.global_target.expect("global port connected")
                        }
                    };
                    let req = if access.is_write {
                        MemReq::write(
                            access.token,
                            access.addr,
                            access.data.unwrap_or_default(),
                            me,
                        )
                    } else {
                        MemReq::read(access.token, access.addr, access.size, me)
                    };
                    ctx.send(dst, 0, MemMsg::Req(req));
                }
                if done {
                    self.finish(ctx);
                } else {
                    self.schedule_tick(ctx);
                }
            }
            MemMsg::Resp(resp) => {
                if resp.id == u64::MAX {
                    return; // ack of our own status write
                }
                self.port.completions.push(MemCompletion {
                    token: resp.id,
                    data: resp.data,
                });
                // The engine keeps ticking while running, so the completion
                // is observed on the next edge.
            }
            MemMsg::Custom(..) | MemMsg::Irq { .. } | MemMsg::Start => {}
            other => {
                debug_assert!(false, "{}: unexpected message {other:?}", self.cfg.name);
            }
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let mut out = vec![("invocations".into(), self.invocations as f64)];
        if let Some(s) = &self.final_stats {
            out.push(("cycles".into(), s.cycles as f64));
            out.push(("stall_cycles".into(), s.stall_cycles as f64));
            out.push(("loads".into(), s.loads as f64));
            out.push(("stores".into(), s.stores as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{MmrBlock, Scratchpad, ScratchpadConfig};
    use sim_core::Simulation;

    /// Builds a minimal accelerator system: MMR + compute unit + private SPM.
    fn vadd_system() -> (Simulation<MemMsg>, CompId, CompId, CompId) {
        let mut fb = salam_ir::FunctionBuilder::new(
            "vadd",
            &[("a", Type::Ptr), ("b", Type::Ptr), ("n", Type::I64)],
        );
        let (a, b, n) = (fb.arg(0), fb.arg(1), fb.arg(2));
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let pa = fb.gep1(Type::I64, a, iv, "pa");
            let pb = fb.gep1(Type::I64, b, iv, "pb");
            let x = fb.load(Type::I64, pa, "x");
            let y = fb.load(Type::I64, pb, "y");
            let s = fb.add(x, y, "s");
            fb.store(s, pb);
        });
        fb.ret();
        let func = fb.finish();

        let mut sim: Simulation<MemMsg> = Simulation::new();
        let spm = sim.add_component(Scratchpad::new(
            "spm",
            ScratchpadConfig::default().with_ports(4, 4),
            0x1000,
            0x1000,
        ));
        let comm = CommConfig {
            local_range: (0x1000, 0x2000),
            local_target: Some(spm),
            global_target: None,
            ..CommConfig::default()
        };
        let cu = ComputeUnit::new(
            AcceleratorConfig::new("vadd_acc"),
            comm,
            func,
            HardwareProfile::default_40nm(),
        );
        let cu_id = sim.add_component(cu);
        let mmr = sim.add_component(MmrBlock::new("mmr", 0x0, 8, Some(cu_id)));
        sim.component_as_mut::<ComputeUnit>(cu_id)
            .unwrap()
            .set_mmr(mmr, 0x0);
        (sim, cu_id, mmr, spm)
    }

    #[test]
    fn mmr_programmed_invocation_runs_to_completion() {
        let (mut sim, cu, mmr, spm) = vadd_system();
        sim.component_as_mut::<Scratchpad>(spm)
            .unwrap()
            .poke(0x1000, &[1i64.to_le_bytes(), 2i64.to_le_bytes()].concat());
        sim.component_as_mut::<Scratchpad>(spm)
            .unwrap()
            .poke(0x1100, &[10i64.to_le_bytes(), 20i64.to_le_bytes()].concat());
        // Program args: a=0x1000, b=0x1100, n=2; then start.
        let col = sim.add_component(memsys::test_util::Collector::new());
        for (i, v) in [(2usize, 0x1000u64), (3, 0x1100), (4, 2)] {
            sim.post(
                mmr,
                0,
                MemMsg::Req(MemReq::write(
                    i as u64,
                    (i * 8) as u64,
                    v.to_le_bytes().to_vec(),
                    col,
                )),
            );
        }
        sim.post(
            mmr,
            10_000,
            MemMsg::Req(MemReq::write(99, 0, 1u64.to_le_bytes().to_vec(), col)),
        );
        sim.run();
        let s = sim.component_as::<Scratchpad>(spm).unwrap();
        let out0 = i64::from_le_bytes(s.peek(0x1100, 8).try_into().unwrap());
        let out1 = i64::from_le_bytes(s.peek(0x1108, 8).try_into().unwrap());
        assert_eq!((out0, out1), (11, 22));
        let unit = sim.component_as::<ComputeUnit>(cu).unwrap();
        assert_eq!(unit.invocations(), 1);
        assert!(unit.final_stats().unwrap().cycles > 0);
        // Status register reads back DONE.
        let m = sim.component_as::<MmrBlock>(mmr).unwrap();
        assert_eq!(m.reg(0), 2);
    }

    #[test]
    fn second_invocation_supported() {
        let (mut sim, cu, mmr, spm) = vadd_system();
        sim.component_as_mut::<Scratchpad>(spm)
            .unwrap()
            .poke(0x1000, &1i64.to_le_bytes());
        sim.component_as_mut::<Scratchpad>(spm)
            .unwrap()
            .poke(0x1100, &5i64.to_le_bytes());
        let col = sim.add_component(memsys::test_util::Collector::new());
        for (i, v) in [(2usize, 0x1000u64), (3, 0x1100), (4, 1)] {
            sim.post(
                mmr,
                0,
                MemMsg::Req(MemReq::write(
                    i as u64,
                    (i * 8) as u64,
                    v.to_le_bytes().to_vec(),
                    col,
                )),
            );
        }
        sim.post(
            mmr,
            10_000,
            MemMsg::Req(MemReq::write(99, 0, 1u64.to_le_bytes().to_vec(), col)),
        );
        // Re-start long after the first run finishes.
        sim.post(
            mmr,
            10_000_000,
            MemMsg::Req(MemReq::write(100, 0, 1u64.to_le_bytes().to_vec(), col)),
        );
        sim.run();
        let unit = sim.component_as::<ComputeUnit>(cu).unwrap();
        assert_eq!(unit.invocations(), 2);
        let s = sim.component_as::<Scratchpad>(spm).unwrap();
        // 5 + 1 (first run) + 1 (second run) = 7.
        let out = i64::from_le_bytes(s.peek(0x1100, 8).try_into().unwrap());
        assert_eq!(out, 7);
    }
}
