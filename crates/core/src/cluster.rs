//! The hierarchical accelerator-cluster construct (paper §III-D2).

use hw_profile::HardwareProfile;
use memsys::{
    AddrMap, BlockDma, Dram, DramConfig, MemMsg, MmrBlock, Scratchpad, ScratchpadConfig, Xbar,
};
use salam_fault::SimError;
use salam_ir::Function;
use sim_core::{CompId, Simulation};

use crate::accel::{AcceleratorConfig, CommConfig, ComputeUnit};

/// How an accelerator's data memory is provided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryStyle {
    /// A private scratchpad on the local port: `(base, size, config)` —
    /// also reachable by the cluster DMA through the local crossbar.
    PrivateSpm {
        /// Base address.
        base: u64,
        /// Size in bytes.
        size: u64,
        /// SPM timing/port configuration.
        spm: ScratchpadConfig,
    },
    /// All traffic goes to the global port (shared SPM / caches / streams
    /// reached through the local crossbar).
    GlobalOnly,
}

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Shared scratchpad base address.
    pub shared_spm_base: u64,
    /// Shared scratchpad size (0 disables it).
    pub shared_spm_bytes: u64,
    /// Shared SPM timing/ports.
    pub shared_spm: ScratchpadConfig,
    /// Cluster DMA burst size in bytes.
    pub dma_burst: u32,
    /// Cluster DMA outstanding bursts.
    pub dma_inflight: u32,
    /// Local crossbar hop latency in cycles.
    pub xbar_latency: u64,
    /// Local crossbar width in bytes per cycle.
    pub xbar_width: u32,
    /// Run the static verifier over every accelerator function as a
    /// pre-build gate: error-severity diagnostics abort
    /// [`ClusterBuilder::try_build`] with [`SimError::Verify`]. Excluded
    /// from [`ClusterConfig::canonical_repr`] — gating changes whether a
    /// cluster builds, never what it simulates.
    pub verify: bool,
}

impl Default for ClusterConfig {
    /// 64 kB shared SPM at `0x2000_0000`, 64 B DMA bursts, 1-cycle 8-byte
    /// crossbar.
    fn default() -> Self {
        ClusterConfig {
            shared_spm_base: 0x2000_0000,
            shared_spm_bytes: 64 * 1024,
            shared_spm: ScratchpadConfig::default().with_ports(4, 4),
            dma_burst: 64,
            dma_inflight: 4,
            xbar_latency: 1,
            xbar_width: 8,
            verify: false,
        }
    }
}

/// Canonical `key=value` text for a [`ScratchpadConfig`] (shared with the
/// per-accelerator private-SPM style), for sweep cache keys.
pub fn scratchpad_canonical_repr(spm: &ScratchpadConfig) -> String {
    format!(
        "latency={};read_ports={};write_ports={};banks={};bank_word={};period_ps={}",
        spm.latency_cycles,
        spm.read_ports,
        spm.write_ports,
        spm.banks,
        spm.bank_word,
        spm.clock.period(),
    )
}

impl ClusterConfig {
    /// A canonical single-line-per-knob text form. Equal configs always
    /// produce equal strings — the design-space-exploration cache keys on
    /// this when sweeping cluster integration scenarios. The `verify` gate
    /// is deliberately excluded: it never changes a built cluster's
    /// behaviour.
    pub fn canonical_repr(&self) -> String {
        format!(
            "shared_spm_base={:#x};shared_spm_bytes={};shared_spm:[{}];dma_burst={};dma_inflight={};xbar_latency={};xbar_width={}",
            self.shared_spm_base,
            self.shared_spm_bytes,
            scratchpad_canonical_repr(&self.shared_spm),
            self.dma_burst,
            self.dma_inflight,
            self.xbar_latency,
            self.xbar_width,
        )
    }

    /// Rejects nonsense cluster knobs before any component is built: a
    /// zero-burst DMA or zero-width crossbar would divide by zero or hang,
    /// and a shared SPM with no ports can never be reached.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |field: &str, detail: &str| Err(SimError::config("cluster", field, detail));
        if self.dma_burst == 0 {
            return bad("dma_burst", "must be nonzero");
        }
        if self.dma_inflight == 0 {
            return bad("dma_inflight", "must be nonzero");
        }
        if self.xbar_width == 0 {
            return bad("xbar_width", "must be nonzero");
        }
        if self.shared_spm_bytes > 0
            && (self.shared_spm.read_ports == 0 || self.shared_spm.write_ports == 0)
        {
            return bad("shared_spm", "enabled with zero read or write ports");
        }
        Ok(())
    }
}

struct AccelDesc {
    cfg: AcceleratorConfig,
    func: Function,
    mem: MemoryStyle,
    mmr_base: u64,
    irq_line: Option<u32>,
}

/// Handle to one built accelerator.
#[derive(Debug, Clone, Copy)]
pub struct AccelHandle {
    /// The compute unit.
    pub unit: CompId,
    /// Its MMR block.
    pub mmr: CompId,
    /// MMR base address (for host writes through the fabric).
    pub mmr_base: u64,
    /// Private scratchpad, if any.
    pub private_spm: Option<CompId>,
}

/// Builder for an [`AcceleratorCluster`].
pub struct ClusterBuilder {
    cfg: ClusterConfig,
    profile: HardwareProfile,
    accels: Vec<AccelDesc>,
    extra_ranges: Vec<(u64, u64, CompId)>,
}

impl ClusterBuilder {
    /// Starts a cluster with the given configuration and hardware profile.
    pub fn new(cfg: ClusterConfig, profile: HardwareProfile) -> Self {
        ClusterBuilder {
            cfg,
            profile,
            accels: Vec::new(),
            extra_ranges: Vec::new(),
        }
    }

    /// Adds an accelerator; returns its index.
    pub fn add_accelerator(
        &mut self,
        cfg: AcceleratorConfig,
        func: Function,
        mem: MemoryStyle,
        mmr_base: u64,
        irq_line: Option<u32>,
    ) -> usize {
        self.accels.push(AccelDesc {
            cfg,
            func,
            mem,
            mmr_base,
            irq_line,
        });
        self.accels.len() - 1
    }

    /// Routes an extra address range (e.g. a stream buffer) through the
    /// local crossbar to `dst`.
    pub fn add_local_range(&mut self, lo: u64, hi: u64, dst: CompId) {
        self.extra_ranges.push((lo, hi, dst));
    }

    /// Static lint over the cluster as currently described, without
    /// building anything: IR verification of every accelerator function
    /// plus the cross-accelerator shared-SPM write-race check (`M004`)
    /// when a shared scratchpad is configured. Returns *all* diagnostics
    /// (infos and warnings included); [`ClusterBuilder::try_build`] with
    /// `verify = true` rejects only on errors.
    pub fn lint(&self) -> Vec<salam_verify::Diagnostic> {
        let mut diags: Vec<salam_verify::Diagnostic> = self
            .accels
            .iter()
            .flat_map(|d| salam_verify::verify_ir(&d.func))
            .collect();
        if self.cfg.shared_spm_bytes > 0 {
            let writers: Vec<(&str, &Function)> = self
                .accels
                .iter()
                .map(|d| (d.cfg.name.as_str(), &d.func))
                .collect();
            diags.extend(salam_verify::check_shared_spm(
                &writers,
                self.cfg.shared_spm_base,
                self.cfg.shared_spm_base + self.cfg.shared_spm_bytes,
            ));
        }
        diags
    }

    /// Materializes the cluster into `sim`, panicking on an invalid
    /// [`ClusterConfig`]. Thin wrapper over [`ClusterBuilder::try_build`].
    ///
    /// `upstream` is a list of `(lo, hi, component)` ranges served outside
    /// the cluster (typically DRAM behind the global crossbar).
    pub fn build(
        self,
        sim: &mut Simulation<MemMsg>,
        upstream: &[(u64, u64, CompId)],
    ) -> AcceleratorCluster {
        match self.try_build(sim, upstream) {
            Ok(cluster) => cluster,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ClusterBuilder::build`]: validates the configuration and
    /// returns a typed error instead of panicking, before any component is
    /// added to `sim`.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for rejected knobs.
    pub fn try_build(
        self,
        sim: &mut Simulation<MemMsg>,
        upstream: &[(u64, u64, CompId)],
    ) -> Result<AcceleratorCluster, SimError> {
        self.cfg.validate()?;
        if self.cfg.verify {
            let errors: Vec<salam_verify::Diagnostic> = self
                .accels
                .iter()
                .flat_map(|d| salam_verify::errors_only(salam_verify::verify_ir(&d.func)))
                .collect();
            if !errors.is_empty() {
                return Err(SimError::Verify(errors));
            }
        }
        let cfg = self.cfg;
        let mut map = AddrMap::new();

        // Shared scratchpad.
        let shared_spm = if cfg.shared_spm_bytes > 0 {
            let id = sim.add_component(Scratchpad::new(
                "cluster.shared_spm",
                cfg.shared_spm,
                cfg.shared_spm_base,
                cfg.shared_spm_bytes,
            ));
            map.add(
                cfg.shared_spm_base,
                cfg.shared_spm_base + cfg.shared_spm_bytes,
                id,
            );
            Some(id)
        } else {
            None
        };

        // Accelerators: compute units, MMRs and private SPMs.
        let mut handles = Vec::new();
        for (i, d) in self.accels.into_iter().enumerate() {
            let (private_spm, local_range, spm_cfg) = match d.mem {
                MemoryStyle::PrivateSpm { base, size, spm } => {
                    let id = sim.add_component(Scratchpad::new(
                        &format!("{}.spm", d.cfg.name),
                        spm,
                        base,
                        size,
                    ));
                    // Private SPMs remain reachable by the DMA and peers
                    // through the local crossbar.
                    map.add(base, base + size, id);
                    (Some(id), (base, base + size), Some(spm))
                }
                MemoryStyle::GlobalOnly => (None, (0, 0), None),
            };
            let _ = spm_cfg;
            let comm = CommConfig {
                local_range,
                local_target: private_spm,
                global_target: None, // wired after the crossbar exists
                local_ports: (4, 4),
                global_ports: (4, 4),
                irq: None,
            };
            let unit =
                sim.add_component(ComputeUnit::new(d.cfg, comm, d.func, self.profile.clone()));
            let mmr = sim.add_component(MmrBlock::new(
                &format!("acc{i}.mmr"),
                d.mmr_base,
                16,
                Some(unit),
            ));
            sim.component_as_mut::<ComputeUnit>(unit)
                .expect("just added")
                .set_mmr(mmr, d.mmr_base);
            map.add(d.mmr_base, d.mmr_base + 16 * 8, mmr);
            let _ = d.irq_line;
            handles.push(AccelHandle {
                unit,
                mmr,
                mmr_base: d.mmr_base,
                private_spm,
            });
        }

        for (lo, hi, dst) in self.extra_ranges {
            map.add(lo, hi, dst);
        }
        for &(lo, hi, dst) in upstream {
            map.add(lo, hi, dst);
        }

        let local_xbar = sim.add_component(Xbar::new(
            "cluster.local_xbar",
            map,
            cfg.xbar_latency,
            cfg.xbar_width,
        ));

        // Wire every compute unit's global port to the local crossbar.
        for h in &handles {
            let cu = sim
                .component_as_mut::<ComputeUnit>(h.unit)
                .expect("compute unit");
            cu.set_global_target(local_xbar);
        }

        let dma = sim.add_component(BlockDma::new(
            "cluster.dma",
            local_xbar,
            cfg.dma_burst,
            cfg.dma_inflight,
        ));

        Ok(AcceleratorCluster {
            local_xbar,
            shared_spm,
            dma,
            accels: handles,
        })
    }
}

/// A built cluster: a pool of accelerators with shared DMA and scratchpad
/// behind a local crossbar.
#[derive(Debug, Clone)]
pub struct AcceleratorCluster {
    /// The local crossbar.
    pub local_xbar: CompId,
    /// The shared scratchpad, if configured.
    pub shared_spm: Option<CompId>,
    /// The cluster block DMA.
    pub dma: CompId,
    /// Accelerators in insertion order.
    pub accels: Vec<AccelHandle>,
}

impl AcceleratorCluster {
    /// Attaches one trace sink to every traceable component of the cluster:
    /// compute units (op spans), the DMA (transfer spans), the shared SPM
    /// and the local crossbar (counters and contention instants).
    pub fn set_trace(&self, sim: &mut Simulation<MemMsg>, trace: &salam_obs::SharedTrace) {
        for h in &self.accels {
            if let Some(cu) = sim.component_as_mut::<ComputeUnit>(h.unit) {
                cu.set_trace(trace.clone());
            }
            if let Some(id) = h.private_spm {
                if let Some(spm) = sim.component_as_mut::<Scratchpad>(id) {
                    spm.set_trace(trace.clone());
                }
            }
        }
        if let Some(id) = self.shared_spm {
            if let Some(spm) = sim.component_as_mut::<Scratchpad>(id) {
                spm.set_trace(trace.clone());
            }
        }
        if let Some(dma) = sim.component_as_mut::<BlockDma>(self.dma) {
            dma.set_trace(trace.clone());
        }
        if let Some(x) = sim.component_as_mut::<Xbar>(self.local_xbar) {
            x.set_trace(trace.clone());
        }
    }

    /// Merges every component's [`sim_core::Component::stats`] into `reg`
    /// under `prefix` — one dotted path per counter, e.g.
    /// `system.cluster.dma.bytes_moved`.
    pub fn export_metrics(
        &self,
        sim: &Simulation<MemMsg>,
        reg: &mut salam_obs::MetricsRegistry,
        prefix: &str,
    ) {
        reg.merge_prefixed(prefix, sim.all_stats());
    }
}

/// A ready-made single-cluster system: DRAM behind a global crossbar plus
/// the cluster. Returns `(cluster, dram, global_xbar)`.
pub fn build_system(
    sim: &mut Simulation<MemMsg>,
    builder: ClusterBuilder,
    dram_base: u64,
    dram_bytes: u64,
) -> (AcceleratorCluster, CompId, CompId) {
    build_system_with_llc(sim, builder, dram_base, dram_bytes, None)
}

/// Like [`build_system`], optionally inserting a last-level cache between
/// the cluster and system memory — the paper's configuration "if caches are
/// enabled, a last-level cache is added between the global crossbar and
/// system memory interface".
pub fn build_system_with_llc(
    sim: &mut Simulation<MemMsg>,
    builder: ClusterBuilder,
    dram_base: u64,
    dram_bytes: u64,
    llc: Option<memsys::CacheConfig>,
) -> (AcceleratorCluster, CompId, CompId) {
    let dram = sim.add_component(Dram::new(
        "dram",
        DramConfig::default(),
        dram_base,
        dram_bytes,
    ));
    // The cluster's path to system memory goes through the LLC when enabled.
    let mem_side = match llc {
        Some(cfg) => sim.add_component(memsys::Cache::new("llc", cfg, dram)),
        None => dram,
    };
    let cluster = builder.build(sim, &[(dram_base, dram_base + dram_bytes, mem_side)]);
    // The global crossbar fronts the cluster for the host: it routes both
    // into the cluster (MMRs, SPMs) and to system memory (via the LLC when
    // enabled).
    let mut gmap = AddrMap::new();
    gmap.add(dram_base, dram_base + dram_bytes, mem_side);
    // Everything else the cluster knows about is reachable via its local
    // crossbar; expose a broad window below DRAM.
    gmap.add(0x0, dram_base, cluster.local_xbar);
    let global_xbar = sim.add_component(Xbar::new("global_xbar", gmap, 1, 8));
    (cluster, dram, global_xbar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemReq;
    use salam_ir::{FunctionBuilder, Type};

    fn incr_kernel() -> Function {
        let mut fb = FunctionBuilder::new("incr", &[("p", Type::Ptr), ("n", Type::I64)]);
        let p = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let g = fb.gep1(Type::I64, p, iv, "g");
            let x = fb.load(Type::I64, g, "x");
            let one = fb.i64c(1);
            let y = fb.add(x, one, "y");
            fb.store(y, g);
        });
        fb.ret();
        fb.finish()
    }

    #[test]
    fn cluster_accelerator_runs_on_private_spm() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let mut b = ClusterBuilder::new(ClusterConfig::default(), HardwareProfile::default_40nm());
        b.add_accelerator(
            AcceleratorConfig::new("incr0"),
            incr_kernel(),
            MemoryStyle::PrivateSpm {
                base: 0x1000_0000,
                size: 0x1000,
                spm: ScratchpadConfig::default().with_ports(2, 2),
            },
            0x4000_0000,
            None,
        );
        let (cluster, dram, _gx) = build_system(&mut sim, b, 0x8000_0000, 1 << 20);
        let _ = dram;
        let h = cluster.accels[0];
        sim.component_as_mut::<Scratchpad>(h.private_spm.unwrap())
            .unwrap()
            .poke(
                0x1000_0000,
                &[5i64.to_le_bytes(), 6i64.to_le_bytes()].concat(),
            );
        let col = sim.add_component(memsys::test_util::Collector::new());
        // Program args through the *local crossbar*, as a peer would.
        for (reg, v) in [(2u64, 0x1000_0000u64), (3, 2)] {
            sim.post(
                cluster.local_xbar,
                0,
                MemMsg::Req(MemReq::write(
                    reg,
                    h.mmr_base + reg * 8,
                    v.to_le_bytes().to_vec(),
                    col,
                )),
            );
        }
        sim.post(
            cluster.local_xbar,
            50_000,
            MemMsg::Req(MemReq::write(
                9,
                h.mmr_base,
                1u64.to_le_bytes().to_vec(),
                col,
            )),
        );
        sim.run();
        let s = sim
            .component_as::<Scratchpad>(h.private_spm.unwrap())
            .unwrap();
        let v0 = i64::from_le_bytes(s.peek(0x1000_0000, 8).try_into().unwrap());
        let v1 = i64::from_le_bytes(s.peek(0x1000_0008, 8).try_into().unwrap());
        assert_eq!((v0, v1), (6, 7));
    }

    #[test]
    fn llc_caches_cluster_dram_traffic() {
        // An accelerator working straight out of DRAM: with an LLC in the
        // path, repeated passes hit in the cache and finish faster.
        let run = |llc: Option<memsys::CacheConfig>| {
            let mut sim: Simulation<MemMsg> = Simulation::new();
            let mut b = ClusterBuilder::new(
                ClusterConfig {
                    shared_spm_bytes: 0,
                    ..ClusterConfig::default()
                },
                HardwareProfile::default_40nm(),
            );
            b.add_accelerator(
                AcceleratorConfig::new("incr0"),
                incr_kernel(),
                MemoryStyle::GlobalOnly,
                0x4000_0000,
                None,
            );
            let (cluster, dram, _gx) =
                super::build_system_with_llc(&mut sim, b, 0x8000_0000, 1 << 20, llc);
            sim.component_as_mut::<Dram>(dram)
                .unwrap()
                .poke(0x8000_0000, &[0u8; 256]);
            let h = cluster.accels[0];
            let col = sim.add_component(memsys::test_util::Collector::new());
            for (reg, v) in [(2u64, 0x8000_0000u64), (3, 32)] {
                sim.post(
                    cluster.local_xbar,
                    0,
                    MemMsg::Req(MemReq::write(
                        reg,
                        h.mmr_base + reg * 8,
                        v.to_le_bytes().to_vec(),
                        col,
                    )),
                );
            }
            sim.post(
                cluster.local_xbar,
                50_000,
                MemMsg::Req(MemReq::write(
                    9,
                    h.mmr_base,
                    1u64.to_le_bytes().to_vec(),
                    col,
                )),
            );
            sim.run();
            let cu = sim.component_as::<ComputeUnit>(h.unit).unwrap();
            assert_eq!(cu.invocations(), 1);
            let (s, e) = cu.span();
            e.unwrap() - s.unwrap()
        };
        let without = run(None);
        let with_llc = run(Some(memsys::CacheConfig::default().with_size(16 * 1024)));
        assert!(
            with_llc < without,
            "LLC ({with_llc} ps) should beat raw DRAM ({without} ps)"
        );
    }

    #[test]
    fn nonsense_cluster_configs_are_rejected_before_any_component_exists() {
        for (cfg, field) in [
            (
                ClusterConfig {
                    dma_burst: 0,
                    ..ClusterConfig::default()
                },
                "dma_burst",
            ),
            (
                ClusterConfig {
                    xbar_width: 0,
                    ..ClusterConfig::default()
                },
                "xbar_width",
            ),
            (
                // with_ports clamps to >= 1, so force the field directly.
                ClusterConfig {
                    shared_spm: ScratchpadConfig {
                        read_ports: 0,
                        ..ScratchpadConfig::default()
                    },
                    ..ClusterConfig::default()
                },
                "shared_spm",
            ),
        ] {
            let mut sim: Simulation<MemMsg> = Simulation::new();
            let b = ClusterBuilder::new(cfg, HardwareProfile::default_40nm());
            match b.try_build(&mut sim, &[]) {
                Err(SimError::Config(c)) => assert_eq!(c.field, field),
                other => panic!("expected config error for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn dma_moves_dram_to_shared_spm() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let b = ClusterBuilder::new(ClusterConfig::default(), HardwareProfile::default_40nm());
        let (cluster, dram, _gx) = build_system(&mut sim, b, 0x8000_0000, 1 << 20);
        sim.component_as_mut::<Dram>(dram)
            .unwrap()
            .poke(0x8000_0000, &[42u8; 128]);
        let col = sim.add_component(memsys::test_util::Collector::new());
        sim.post(
            cluster.dma,
            0,
            MemMsg::DmaStart(memsys::DmaCmd::new(1, 0x8000_0000, 0x2000_0000, 128, col)),
        );
        sim.run();
        let c = sim
            .component_as::<memsys::test_util::Collector>(col)
            .unwrap();
        assert_eq!(c.dma_dones.len(), 1);
        let spm = sim
            .component_as::<Scratchpad>(cluster.shared_spm.unwrap())
            .unwrap();
        assert_eq!(spm.peek(0x2000_0000, 128), &[42u8; 128][..]);
    }

    #[test]
    fn accelerator_can_work_from_shared_spm() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let mut b = ClusterBuilder::new(ClusterConfig::default(), HardwareProfile::default_40nm());
        b.add_accelerator(
            AcceleratorConfig::new("incr0"),
            incr_kernel(),
            MemoryStyle::GlobalOnly,
            0x4000_0000,
            None,
        );
        let (cluster, _dram, _gx) = build_system(&mut sim, b, 0x8000_0000, 1 << 20);
        let h = cluster.accels[0];
        let spm_id = cluster.shared_spm.unwrap();
        sim.component_as_mut::<Scratchpad>(spm_id)
            .unwrap()
            .poke(0x2000_0000, &7i64.to_le_bytes());
        let col = sim.add_component(memsys::test_util::Collector::new());
        for (reg, v) in [(2u64, 0x2000_0000u64), (3, 1)] {
            sim.post(
                cluster.local_xbar,
                0,
                MemMsg::Req(MemReq::write(
                    reg,
                    h.mmr_base + reg * 8,
                    v.to_le_bytes().to_vec(),
                    col,
                )),
            );
        }
        sim.post(
            cluster.local_xbar,
            50_000,
            MemMsg::Req(MemReq::write(
                9,
                h.mmr_base,
                1u64.to_le_bytes().to_vec(),
                col,
            )),
        );
        sim.run();
        let spm = sim.component_as::<Scratchpad>(spm_id).unwrap();
        let v = i64::from_le_bytes(spm.peek(0x2000_0000, 8).try_into().unwrap());
        assert_eq!(v, 8);
    }
}

#[cfg(test)]
mod irq_tests {
    use super::*;
    use crate::host::{Host, HostConfig, HostOp};
    use memsys::MemReq;

    #[test]
    fn interrupt_driven_synchronization() {
        // The paper's default sync path: the accelerator raises an IRQ at
        // completion and the host blocks on the line instead of polling.
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let mut b = ClusterBuilder::new(
            ClusterConfig {
                shared_spm_bytes: 0,
                ..ClusterConfig::default()
            },
            HardwareProfile::default_40nm(),
        );
        let mut fb = salam_ir::FunctionBuilder::new("noop", &[("p", salam_ir::Type::Ptr)]);
        let p = fb.arg(0);
        let one = fb.i64c(1);
        fb.store(one, p);
        fb.ret();
        b.add_accelerator(
            AcceleratorConfig::new("tiny"),
            fb.finish(),
            MemoryStyle::PrivateSpm {
                base: 0x1000_0000,
                size: 0x1000,
                spm: ScratchpadConfig::default(),
            },
            0x4000_0000,
            None,
        );
        let (cluster, _dram, gxbar) = build_system(&mut sim, b, 0x8000_0000, 1 << 20);
        let h = cluster.accels[0];
        let host = sim.add_component(Host::new(
            HostConfig::default(),
            vec![
                HostOp::WriteMmr {
                    via: gxbar,
                    addr: 0x4000_0000 + 16,
                    value: 0x1000_0000,
                },
                HostOp::StartAccelerator {
                    via: gxbar,
                    mmr_base: 0x4000_0000,
                },
                HostOp::WaitIrq { line: 3 },
                HostOp::PollMmr {
                    via: gxbar,
                    addr: 0x4000_0000,
                    expect: 2,
                },
            ],
        ));
        sim.component_as_mut::<ComputeUnit>(h.unit)
            .unwrap()
            .set_irq(host, 3);
        sim.post(host, 0, MemMsg::Start);
        sim.run();
        let hc = sim.component_as::<Host>(host).unwrap();
        assert!(
            hc.finished_at().is_some(),
            "IRQ + status poll must complete the program"
        );
        let spm = sim
            .component_as::<Scratchpad>(h.private_spm.unwrap())
            .unwrap();
        assert_eq!(spm.peek(0x1000_0000, 8), 1i64.to_le_bytes());
        let _ = MemReq::read(0, 0, 4, host); // keep the import used
    }
}
