//! Datapath reverse-engineering from the dynamic trace.

use std::collections::{BTreeMap, HashMap};

use hw_profile::{fu_for_opcode, FuKind, HardwareProfile};
use salam_ir::{Function, Opcode};

use crate::trace::Trace;

/// The memory design the trace is scheduled against. Changing this changes
/// the derived datapath — the paper's Table II observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AladdinMemModel {
    /// Multi-ported scratchpad with fixed latency.
    Spm {
        /// Access latency in cycles.
        latency: u32,
        /// Accesses per cycle.
        ports: u32,
    },
    /// A direct-mapped cache in front of a long-latency memory.
    Cache {
        /// Capacity in bytes.
        size_bytes: u64,
        /// Line size in bytes.
        line_bytes: u32,
        /// Hit latency in cycles.
        hit_latency: u32,
        /// Miss latency in cycles.
        miss_latency: u32,
    },
}

impl AladdinMemModel {
    /// The paper's default SPM assumption.
    pub fn default_spm() -> Self {
        AladdinMemModel::Spm {
            latency: 2,
            ports: 4,
        }
    }
}

/// State for hit/miss classification while walking the trace in order.
#[derive(Debug)]
struct CacheState {
    line_bytes: u64,
    tags: Vec<Option<u64>>,
}

impl CacheState {
    fn new(size: u64, line: u32) -> Self {
        let lines = (size / line as u64).max(1) as usize;
        CacheState {
            line_bytes: line as u64,
            tags: vec![None; lines],
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let idx = (line % self.tags.len() as u64) as usize;
        let hit = self.tags[idx] == Some(line);
        self.tags[idx] = Some(line);
        hit
    }
}

/// A datapath derived from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatapathReport {
    /// Functional units allocated per kind — the peak per-cycle concurrency
    /// the trace exhibited under the memory model.
    pub fu_counts: BTreeMap<FuKind, u32>,
    /// ASAP (resource-unconstrained) schedule length in cycles.
    pub asap_cycles: u64,
}

impl DatapathReport {
    /// Units of `kind`.
    pub fn fu_count(&self, kind: FuKind) -> u32 {
        self.fu_counts.get(&kind).copied().unwrap_or(0)
    }
}

/// Latency of one trace operation under a memory model.
pub(crate) fn op_latency(
    f: &Function,
    profile: &HardwareProfile,
    mem: &AladdinMemModel,
    inst: salam_ir::InstId,
    cache: &mut Option<CacheStateBox>,
    addr: Option<u64>,
) -> u64 {
    let i = f.inst(inst);
    match i.op {
        Opcode::Load | Opcode::Store => match mem {
            AladdinMemModel::Spm { latency, .. } => *latency as u64,
            AladdinMemModel::Cache {
                hit_latency,
                miss_latency,
                ..
            } => {
                let state = cache.as_mut().expect("cache state for cache model");
                let hit = addr.map(|a| state.0.access(a)).unwrap_or(true);
                if hit {
                    *hit_latency as u64
                } else {
                    *miss_latency as u64
                }
            }
        },
        _ => {
            let bits = bits_of(f, inst);
            profile.opcode_latency(&i.op, bits) as u64
        }
    }
}

pub(crate) struct CacheStateBox(CacheState);

pub(crate) fn make_cache(mem: &AladdinMemModel) -> Option<CacheStateBox> {
    match mem {
        AladdinMemModel::Cache {
            size_bytes,
            line_bytes,
            ..
        } => Some(CacheStateBox(CacheState::new(*size_bytes, *line_bytes))),
        AladdinMemModel::Spm { .. } => None,
    }
}

pub(crate) fn bits_of(f: &Function, inst: salam_ir::InstId) -> u32 {
    let i = f.inst(inst);
    if i.has_result() {
        match &i.ty {
            salam_ir::Type::Void | salam_ir::Type::Array { .. } => 32,
            t => t.bits(),
        }
    } else if let Some(&v) = i.operands.first() {
        match f.value_type(v) {
            salam_ir::Type::Void | salam_ir::Type::Array { .. } => 32,
            t => t.bits(),
        }
    } else {
        32
    }
}

/// Reverse-engineers the datapath: ASAP-schedules the trace (memory timing
/// included) and allocates one functional unit per op of a kind that runs in
/// the same cycle as another.
pub fn derive_datapath(
    f: &Function,
    trace: &Trace,
    profile: &HardwareProfile,
    mem: &AladdinMemModel,
) -> DatapathReport {
    let mut finish: Vec<u64> = Vec::with_capacity(trace.entries.len());
    // (cycle, kind) -> concurrent ops
    let mut concurrency: HashMap<(u64, FuKind), u32> = HashMap::new();
    let mut peak: BTreeMap<FuKind, u32> = BTreeMap::new();
    let mut cache = make_cache(mem);
    let mut makespan = 0u64;

    for e in &trace.entries {
        let mut start = 0u64;
        for &d in &e.deps {
            start = start.max(finish[d as usize]);
        }
        let lat = op_latency(f, profile, mem, e.inst, &mut cache, e.addr);
        let end = start + lat;
        finish.push(end.max(start));
        makespan = makespan.max(end.max(start + 1));
        let bits = bits_of(f, e.inst);
        if let Some(kind) = fu_for_opcode(&f.inst(e.inst).op, bits) {
            let c = concurrency.entry((start, kind)).or_insert(0);
            *c += 1;
            let p = peak.entry(kind).or_insert(0);
            if *c > *p {
                *p = *c;
            }
        }
    }
    DatapathReport {
        fu_counts: peak,
        asap_cycles: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::generate_trace;
    use salam_ir::interp::{RtVal, SparseMemory};

    #[test]
    fn spmv_datapath_depends_on_dataset() {
        // Table I reproduction at unit-test scale: the triggered dataset
        // executes shifts, so the derived datapath gains a shifter; the
        // quiet dataset's datapath has none, even though the kernel source
        // is identical.
        let profile = HardwareProfile::default_40nm();
        let derive_for = |trigger: bool| {
            let k = machsuite::spmv::build(&machsuite::spmv::Params {
                dataset_triggers_shift: trigger,
                ..machsuite::spmv::Params::default()
            });
            let mut mem = SparseMemory::new();
            k.load_into(&mut mem);
            let t = generate_trace(&k.func, &k.args, &mut mem);
            derive_datapath(&k.func, &t, &profile, &AladdinMemModel::default_spm())
        };
        let quiet = derive_for(false);
        let loud = derive_for(true);
        assert_eq!(
            quiet.fu_count(FuKind::Shifter),
            0,
            "quiet data hides the shifter"
        );
        assert!(
            loud.fu_count(FuKind::Shifter) >= 1,
            "triggered data exposes it"
        );
    }

    #[test]
    fn gemm_datapath_depends_on_cache_size() {
        // Table II reproduction at unit-test scale: sweeping the cache
        // changes data availability and therefore the derived FU counts.
        let profile = HardwareProfile::default_40nm();
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 4 });
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        let t = generate_trace(&k.func, &k.args, &mut mem);
        let counts: Vec<u32> = [256u64, 1024, 4096]
            .iter()
            .map(|&size| {
                let dp = derive_datapath(
                    &k.func,
                    &t,
                    &profile,
                    &AladdinMemModel::Cache {
                        size_bytes: size,
                        line_bytes: 64,
                        hit_latency: 2,
                        miss_latency: 40,
                    },
                );
                dp.fu_count(FuKind::FpMulF64)
            })
            .collect();
        assert!(
            counts.windows(2).any(|w| w[0] != w[1]),
            "FU counts should vary with cache size: {counts:?}"
        );
    }

    #[test]
    fn asap_cycles_positive_and_bounded() {
        let profile = HardwareProfile::default_40nm();
        let mut fb = salam_ir::FunctionBuilder::new("f", &[("p", salam_ir::Type::Ptr)]);
        let p = fb.arg(0);
        let x = fb.load(salam_ir::Type::F64, p, "x");
        let y = fb.fmul(x, x, "y");
        fb.store(y, p);
        fb.ret();
        let f = fb.finish();
        let mut mem = SparseMemory::new();
        let t = generate_trace(&f, &[RtVal::P(0x10)], &mut mem);
        let dp = derive_datapath(&f, &t, &profile, &AladdinMemModel::default_spm());
        // load(2) + fmul(3) + store(2) = 7.
        assert_eq!(dp.asap_cycles, 7);
        assert_eq!(dp.fu_count(FuKind::FpMulF64), 1);
    }
}
