//! # salam-aladdin
//!
//! A trace-based pre-RTL accelerator simulator in the mold of Aladdin /
//! gem5-Aladdin — the baseline the paper compares against (§II, Tables I,
//! II and IV).
//!
//! The pipeline mirrors the original:
//!
//! 1. [`trace::generate_trace`] instruments a reference execution of the
//!    kernel and records every executed instruction with its resolved
//!    dynamic data dependencies and memory address; the trace serializes to
//!    a text form ([`trace::Trace::to_text`]) like Aladdin's gzipped traces.
//! 2. [`datapath::derive_datapath`] reverse-engineers a datapath from the
//!    trace: an ASAP dataflow schedule (with memory timing folded in)
//!    determines how many functional units of each kind run concurrently —
//!    so the allocation **depends on the input data and on the memory
//!    design**, which is exactly the limitation Tables I and II demonstrate.
//! 3. [`sim::simulate_trace`] re-schedules the trace under the derived
//!    resource constraints to produce a cycle estimate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datapath;
pub mod sim;
pub mod trace;

pub use datapath::{derive_datapath, AladdinMemModel, DatapathReport};
pub use sim::simulate_trace;
pub use trace::{generate_trace, Trace, TraceEntry};
