//! Resource-constrained trace execution (Aladdin's simulation step).

use std::collections::HashMap;

use hw_profile::{fu_for_opcode, HardwareProfile};
use salam_ir::Function;

use crate::datapath::{bits_of, make_cache, op_latency, AladdinMemModel, DatapathReport};
use crate::trace::Trace;

/// Executes the trace under the derived datapath's resource constraints and
/// the memory model's port limits, returning the cycle count.
///
/// This is a list schedule over the full dynamic trace — faithful to
/// Aladdin's approach of optimizing and walking the whole dynamic data-
/// dependence graph, and correspondingly heavier than gem5-SALAM's windowed
/// runtime engine (the Table IV effect).
pub fn simulate_trace(
    f: &Function,
    trace: &Trace,
    datapath: &DatapathReport,
    profile: &HardwareProfile,
    mem: &AladdinMemModel,
) -> u64 {
    let mem_ports = match mem {
        AladdinMemModel::Spm { ports, .. } => *ports,
        AladdinMemModel::Cache { .. } => 2,
    };
    let mut finish: Vec<u64> = Vec::with_capacity(trace.entries.len());
    let mut fu_used: HashMap<(u64, hw_profile::FuKind), u32> = HashMap::new();
    let mut mem_used: HashMap<u64, u32> = HashMap::new();
    let mut cache = make_cache(mem);
    let mut makespan = 0u64;

    for e in &trace.entries {
        let inst = f.inst(e.inst);
        let mut ready = 0u64;
        for &d in &e.deps {
            ready = ready.max(finish[d as usize]);
        }
        let lat = op_latency(f, profile, mem, e.inst, &mut cache, e.addr);
        let is_mem = inst.op.is_memory();
        let kind = fu_for_opcode(&inst.op, bits_of(f, e.inst));
        let mut start = ready;
        loop {
            let ok = if is_mem {
                let u = mem_used.get(&start).copied().unwrap_or(0);
                if u < mem_ports {
                    mem_used.insert(start, u + 1);
                    true
                } else {
                    false
                }
            } else if let Some(k) = kind {
                let pool = datapath.fu_count(k).max(1);
                let u = fu_used.get(&(start, k)).copied().unwrap_or(0);
                if u < pool {
                    fu_used.insert((start, k), u + 1);
                    true
                } else {
                    false
                }
            } else {
                true
            };
            if ok {
                break;
            }
            start += 1;
        }
        let end = start + lat;
        finish.push(end);
        makespan = makespan.max(end.max(start + 1));
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::derive_datapath;
    use crate::trace::generate_trace;
    use salam_ir::interp::SparseMemory;

    fn run_gemm(mem_model: &AladdinMemModel) -> (u64, u64) {
        let profile = HardwareProfile::default_40nm();
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        let t = generate_trace(&k.func, &k.args, &mut mem);
        let dp = derive_datapath(&k.func, &t, &profile, mem_model);
        let cycles = simulate_trace(&k.func, &t, &dp, &profile, mem_model);
        (cycles, dp.asap_cycles)
    }

    #[test]
    fn constrained_schedule_at_least_asap() {
        let (cycles, asap) = run_gemm(&AladdinMemModel::default_spm());
        assert!(cycles >= asap, "resources cannot beat the ASAP bound");
        assert!(cycles > 0);
    }

    #[test]
    fn slower_memory_means_more_cycles() {
        let (fast, _) = run_gemm(&AladdinMemModel::Spm {
            latency: 1,
            ports: 8,
        });
        let (slow, _) = run_gemm(&AladdinMemModel::Cache {
            size_bytes: 256,
            line_bytes: 64,
            hit_latency: 2,
            miss_latency: 60,
        });
        assert!(
            slow > fast,
            "thrashing cache ({slow}) must be slower than fast SPM ({fast})"
        );
    }
}
