//! Dynamic trace generation and (de)serialization.

use std::collections::HashMap;

use salam_ir::interp::{run_function, Memory, Observer, RtVal, SparseMemory};
use salam_ir::{Function, InstId, Opcode, ValueKind};

/// One executed instruction in the dynamic trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The static instruction executed.
    pub inst: InstId,
    /// Memory address for loads/stores.
    pub addr: Option<u64>,
    /// Indices of earlier trace entries this one consumed values from
    /// (the dynamic data-dependence edges).
    pub deps: Vec<u32>,
}

/// A complete runtime trace of one kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Traced function name.
    pub func_name: String,
    /// Executed instructions in order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Dynamic instruction count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to the line-oriented text format (one entry per line:
    /// `inst_idx[,@addr][:dep,dep,...]`) — the analogue of Aladdin's
    /// on-disk dynamic trace, used to make preprocessing and load costs
    /// real in the Table IV comparison.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 16);
        out.push_str(&format!("trace {}\n", self.func_name));
        for e in &self.entries {
            out.push_str(&e.inst.index().to_string());
            if let Some(a) = e.addr {
                out.push_str(&format!(",@{a:x}"));
            }
            if !e.deps.is_empty() {
                out.push(':');
                for (i, d) in e.deps.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&d.to_string());
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format back (the "load trace into the simulation
    /// engine" step).
    ///
    /// # Panics
    ///
    /// Panics on malformed input; traces are machine-generated.
    pub fn parse(text: &str) -> Trace {
        let mut lines = text.lines();
        let header = lines.next().expect("trace header");
        let func_name = header
            .strip_prefix("trace ")
            .expect("trace header")
            .to_string();
        let mut entries = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (head, deps_s) = match line.split_once(':') {
                Some((h, d)) => (h, Some(d)),
                None => (line, None),
            };
            let (idx_s, addr) = match head.split_once(",@") {
                Some((i, a)) => (i, Some(u64::from_str_radix(a, 16).expect("hex addr"))),
                None => (head, None),
            };
            let inst = InstId::from_raw(idx_s.parse().expect("inst index"));
            let deps = deps_s
                .map(|d| {
                    d.split(',')
                        .map(|x| x.parse().expect("dep index"))
                        .collect()
                })
                .unwrap_or_default();
            entries.push(TraceEntry { inst, addr, deps });
        }
        Trace { func_name, entries }
    }
}

struct TraceObserver<'a> {
    f: &'a Function,
    entries: Vec<TraceEntry>,
    /// value id -> producing trace entry index.
    producer: HashMap<salam_ir::ValueId, u32>,
}

impl Observer for TraceObserver<'_> {
    fn on_inst(
        &mut self,
        f: &Function,
        id: InstId,
        _result: Option<&RtVal>,
        mem_addr: Option<u64>,
    ) {
        let inst = f.inst(id);
        let mut deps = Vec::new();
        for &v in &inst.operands {
            if let ValueKind::Inst(_) = f.value_kind(v) {
                if let Some(&p) = self.producer.get(&v) {
                    deps.push(p);
                }
            }
        }
        // Phi deps: the interpreter already resolved the incoming edge, but
        // operands list all edges; keep only producers seen (executed), which
        // over-approximates by at most the dead edge (absent for first entry).
        deps.sort_unstable();
        deps.dedup();
        let idx = self.entries.len() as u32;
        if let Some(res) = f.inst_result(id) {
            self.producer.insert(res, idx);
        }
        let addr = if matches!(inst.op, Opcode::Load | Opcode::Store) {
            mem_addr
        } else {
            None
        };
        self.entries.push(TraceEntry {
            inst: id,
            addr,
            deps,
        });
        let _ = &self.f;
    }
}

/// Executes `f` functionally and records its dynamic trace.
///
/// # Panics
///
/// Panics if the reference execution faults.
pub fn generate_trace(f: &Function, args: &[RtVal], mem: &mut SparseMemory) -> Trace {
    let mut obs = TraceObserver {
        f,
        entries: Vec::new(),
        producer: HashMap::new(),
    };
    run_function(f, args, mem, &mut obs, 500_000_000).expect("trace generation run");
    let _ = mem as &mut dyn Memory;
    Trace {
        func_name: f.name.clone(),
        entries: obs.entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::{FunctionBuilder, Type};

    fn small_kernel() -> (Function, Vec<RtVal>, SparseMemory) {
        let mut fb = FunctionBuilder::new("k", &[("p", Type::Ptr), ("n", Type::I64)]);
        let p = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let g = fb.gep1(Type::I64, p, iv, "g");
            let x = fb.load(Type::I64, g, "x");
            let two = fb.i64c(2);
            let y = fb.mul(x, two, "y");
            fb.store(y, g);
        });
        fb.ret();
        let mut mem = SparseMemory::new();
        mem.write_i64_slice(0x100, &[1, 2, 3, 4]);
        (fb.finish(), vec![RtVal::P(0x100), RtVal::I(4)], mem)
    }

    #[test]
    fn trace_length_scales_with_data() {
        let (f, args, mut mem) = small_kernel();
        let t4 = generate_trace(&f, &args, &mut mem);
        let mut mem2 = SparseMemory::new();
        mem2.write_i64_slice(0x100, &[0; 8]);
        let t8 = generate_trace(&f, &[RtVal::P(0x100), RtVal::I(8)], &mut mem2);
        assert!(t8.len() > t4.len());
    }

    #[test]
    fn loads_and_stores_carry_addresses() {
        let (f, args, mut mem) = small_kernel();
        let t = generate_trace(&f, &args, &mut mem);
        let with_addr = t.entries.iter().filter(|e| e.addr.is_some()).count();
        assert_eq!(with_addr, 8, "4 loads + 4 stores");
        assert!(t.entries.iter().any(|e| e.addr == Some(0x100)));
    }

    #[test]
    fn text_roundtrip() {
        let (f, args, mut mem) = small_kernel();
        let t = generate_trace(&f, &args, &mut mem);
        let text = t.to_text();
        let back = Trace::parse(&text);
        assert_eq!(t, back);
    }

    #[test]
    fn deps_point_backwards() {
        let (f, args, mut mem) = small_kernel();
        let t = generate_trace(&f, &args, &mut mem);
        for (i, e) in t.entries.iter().enumerate() {
            for &d in &e.deps {
                assert!((d as usize) < i, "dep must precede entry");
            }
        }
    }
}
