//! `salam-replay` — the trace-replay fast path.
//!
//! The runtime engine's dependence stream ([`salam_obs::DepStream`],
//! recorded under `record_depstream`) captures everything *dynamic* about a
//! run: which ops executed, their data dependences, which block import
//! produced them and which terminator triggered that import, and the
//! addresses memory ops touched. None of that changes when only *resource*
//! knobs change — FU counts, SPM port widths, SPM latency, outstanding-op
//! caps. So instead of re-simulating, this crate re-runs the recorded DAG
//! through a list scheduler that mirrors the engine's cycle structure
//! exactly (LightningSim's "simulate once, schedule after" idea): memory
//! completions, compute commits, block import, address publication, then
//! an in-order issue pass with the same resource checks and the same
//! per-cycle attribution priority. On replay-safe knob changes the result
//! is the schedule the engine *would* have produced, in a fraction of the
//! time — frozen stretches of the schedule are fast-forwarded in one jump.
//!
//! What replay cannot see (and why the DSE layer falls back to full
//! simulation for these axes): anything that changes the *recorded DAG
//! itself* — a different hardware profile (op latencies), a different
//! reservation-window size (changes import timing and therefore `group`
//! boundaries are still valid but occupancy differs — kept as a baseline
//! axis out of caution), value-dependent control flow under fault
//! injection, and strict register hazards (their issue-ordering deps are
//! approximated as commit deps, which is conservative).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

use hw_profile::FuKind;
use salam_obs::{Attribution, CycleClass, DepStream, OpKind};

/// Resource constraints to re-schedule the recorded stream under.
///
/// Defaults mirror the engine's defaults (128-entry window, 64+64
/// outstanding, unpipelined FUs, 1-cycle SPM with 2R/2W ports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Reservation-window capacity in dynamic instructions.
    pub reservation_entries: usize,
    /// Maximum outstanding reads.
    pub max_outstanding_reads: usize,
    /// Maximum outstanding writes.
    pub max_outstanding_writes: usize,
    /// Fully pipelined FUs (release one cycle after issue).
    pub pipelined_fus: bool,
    /// Memory latency in cycles (replaces the recorded SPM latency).
    pub mem_latency: u64,
    /// SPM read ports per cycle.
    pub spm_read_ports: u32,
    /// SPM write ports per cycle.
    pub spm_write_ports: u32,
    /// Functional-unit pool sizes. Kinds absent from the map have a pool
    /// of zero — exactly the engine's semantics — so callers must cover
    /// every FU class the stream uses.
    pub fu_pool: HashMap<FuKind, u32>,
    /// Hard cycle ceiling; exceeded ⇒ [`ReplayError::CycleLimit`].
    pub max_cycles: u64,
    /// Build the retimed stream in [`ReplayOutcome::retimed`]. Costs one
    /// pass over the ops plus a sort; sweeps that only need cycle counts
    /// and attribution turn it off.
    pub want_retimed: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            reservation_entries: 128,
            max_outstanding_reads: 64,
            max_outstanding_writes: 64,
            pipelined_fus: false,
            mem_latency: 1,
            spm_read_ports: 2,
            spm_write_ports: 2,
            fu_pool: HashMap::new(),
            max_cycles: 1_000_000_000,
            want_retimed: true,
        }
    }
}

/// What the replay scheduler produced: the re-scheduled cycle count plus
/// the per-cycle counters a [`salam_obs::Attribution`]-consuming report
/// needs, and the retimed stream for critical-path analysis.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Total cycles of the re-scheduled run.
    pub cycles: u64,
    /// Per-cycle attribution, charged with the engine's exact priority.
    pub attribution: Attribution,
    /// Busy-FU cycle integral per kind (the utilization numerator).
    pub fu_busy_cycle_sum: HashMap<FuKind, u64>,
    /// Cycles where a dependency-free op could not launch.
    pub stall_cycles: u64,
    /// Unstalled cycles with at least one issue.
    pub new_exec_cycles: u64,
    /// Cycles with at least one SPM port rejection.
    pub port_reject_cycles: u64,
    /// The input stream with issue/commit retimed to the replayed
    /// schedule (same ops, deps and metadata). `None` when the config
    /// set [`ReplayConfig::want_retimed`] to `false`.
    pub retimed: Option<DepStream>,
}

/// Why a stream could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The stream is structurally unusable (missing metadata, non-dense
    /// uids, out-of-order groups, …).
    BadStream(String),
    /// The schedule wedged: ops remain but no future event can unblock
    /// them under the given constraints.
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Ops that had committed by then.
        committed: usize,
        /// Ops in the stream.
        total: usize,
    },
    /// `max_cycles` exceeded.
    CycleLimit {
        /// The configured cycle budget.
        limit: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BadStream(m) => write!(f, "replay: bad stream: {m}"),
            ReplayError::Deadlock {
                cycle,
                committed,
                total,
            } => write!(
                f,
                "replay: deadlock at cycle {cycle} ({committed}/{total} ops committed)"
            ),
            ReplayError::CycleLimit { limit } => {
                write!(f, "replay: cycle limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// One recorded op, resolved into the scheduler's working form.
struct ROp {
    uid: u64,
    kind: OpKind,
    fu: Option<FuKind>,
    latency: u64,
    group: u32,
    ctrl: u64,
    addr_dep: u64,
    addr: u64,
    size: u32,
}

/// A block-import group: contiguous uid range plus the terminator uid that
/// fetched it (0 for the entry group).
struct Group {
    start: usize,
    len: usize,
    ctrl: u64,
}

/// A validated stream resolved into the scheduler's working form, ready to
/// be re-scheduled many times. Building this once per kernel and replaying
/// it per sweep point amortizes all per-op resolution (uid checks, FU
/// lookup, group shaping, consumer adjacency) across the whole sweep.
pub struct Prepared {
    ops: Vec<ROp>,
    groups: Vec<Group>,
    /// Per-op producer count (the initial dependence counters).
    dep_count: Vec<u32>,
    /// Consumer adjacency in CSR form, indexed by producer uid:
    /// `cons_adj[cons_off[uid]..cons_off[uid + 1]]`.
    cons_off: Vec<u32>,
    cons_adj: Vec<u32>,
    /// Ops whose issue can unlock a block import (group terminators).
    fetches_a_group: Vec<bool>,
    /// uid → position in the stream's commit-ordered op list.
    stream_pos: Vec<usize>,
    /// Per-op FU index (`FuKind as u8`), 15 = no FU.
    fuidx: Vec<u8>,
}

impl Prepared {
    /// Validates and resolves `stream`.
    ///
    /// # Errors
    ///
    /// [`ReplayError::BadStream`] when the stream lacks replay metadata or
    /// is structurally inconsistent.
    pub fn new(stream: &DepStream) -> Result<Self, ReplayError> {
        let (ops, groups) = prepare(stream)?;
        let n = ops.len();
        let at = |uid: u64| -> usize { (uid - 1) as usize };

        let mut fetches_a_group = vec![false; n];
        for g in &groups {
            if g.ctrl != 0 {
                fetches_a_group[at(g.ctrl)] = true;
            }
        }
        let mut stream_pos = vec![0usize; n];
        let mut dep_count = vec![0u32; n];
        let mut cons_off: Vec<u32> = vec![0; n + 2];
        for (i, op) in stream.ops().iter().enumerate() {
            stream_pos[at(op.uid)] = i;
            dep_count[at(op.uid)] = op.deps.len() as u32;
            for &d in &op.deps {
                cons_off[d as usize + 1] += 1;
            }
        }
        for i in 1..cons_off.len() {
            cons_off[i] += cons_off[i - 1];
        }
        let mut cons_adj: Vec<u32> = vec![0; cons_off[n + 1] as usize];
        let mut fill: Vec<u32> = cons_off[..=n].to_vec();
        for op in stream.ops() {
            for &d in &op.deps {
                cons_adj[fill[d as usize] as usize] = op.uid as u32;
                fill[d as usize] += 1;
            }
        }

        let fuidx = ops.iter().map(|o| o.fu.map_or(15u8, |k| k as u8)).collect();
        Ok(Prepared {
            ops,
            groups,
            dep_count,
            cons_off,
            cons_adj,
            fetches_a_group,
            stream_pos,
            fuidx,
        })
    }
}

/// Re-schedules `stream` under `cfg`.
///
/// # Errors
///
/// [`ReplayError::BadStream`] when the stream lacks replay metadata or is
/// structurally inconsistent; [`ReplayError::Deadlock`] /
/// [`ReplayError::CycleLimit`] when the constraints wedge the schedule.
pub fn replay(stream: &DepStream, cfg: &ReplayConfig) -> Result<ReplayOutcome, ReplayError> {
    let prep = Prepared::new(stream)?;
    run(&prep, Some(stream), cfg)
}

/// Re-schedules an already-[`Prepared`] stream under `cfg`. This is the
/// sweep fast path: the per-op resolution work was paid once in
/// [`Prepared::new`]. [`ReplayOutcome::retimed`] is always `None` here —
/// the prepared form does not keep the metadata needed to rebuild a
/// stream; use [`replay`] when the retimed stream is wanted.
///
/// # Errors
///
/// Same as [`replay`], minus the stream-shape cases caught by
/// [`Prepared::new`].
pub fn replay_prepared(prep: &Prepared, cfg: &ReplayConfig) -> Result<ReplayOutcome, ReplayError> {
    run(prep, None, cfg)
}

fn run(
    prep: &Prepared,
    retime_src: Option<&DepStream>,
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    if cfg.reservation_entries == 0
        || cfg.max_outstanding_reads == 0
        || cfg.max_outstanding_writes == 0
        || cfg.spm_read_ports == 0
        || cfg.spm_write_ports == 0
    {
        return Err(ReplayError::BadStream(
            "zero-sized resource in config".into(),
        ));
    }
    let ops = &prep.ops;
    let groups = &prep.groups;
    let (cons_off, cons_adj) = (&prep.cons_off, &prep.cons_adj);
    let fetches_a_group = &prep.fetches_a_group;
    let n = ops.len();

    // uid → op index (uids are dense from 1, so a vector suffices).
    let at = |uid: u64| -> usize { (uid - 1) as usize };

    let mut committed = vec![false; n];
    let mut issued = vec![false; n];
    // Reservation-window occupancy. Issue candidates live in `ready`
    // (imported, all deps committed, not yet issued), kept sorted by uid
    // so the pass visits them in the engine's in-order sequence without
    // touching dep-blocked entries at all.
    let mut resv_count = 0usize;
    let mut in_resv = vec![false; n];
    let mut ready: Vec<usize> = Vec::new();
    // Dependence bookkeeping in O(edges) total: each op counts its
    // uncommitted producers; a commit decrements every consumer's counter
    // through the prepared CSR adjacency (instead of re-scanning dep
    // lists every cycle).
    let mut remaining: Vec<u32> = prep.dep_count.clone();
    // (op index, commit cycle, fu release cycle, fu already released)
    let mut compute_q: Vec<(usize, u64, u64, bool)> = Vec::new();
    // (op index, commit cycle)
    let mut mem_inflight: Vec<(usize, u64)> = Vec::new();
    // Memory ordering window, decomposed for cheap scans: the uid list
    // stays sorted (groups import in uid order), spans/presence are
    // indexed by op, and each waiting mem op caches the uid that blocked
    // it last — re-checking one entry instead of re-scanning the window
    // while nothing relevant has changed.
    let mut win_uids: Vec<u64> = Vec::new();
    let mut in_win = vec![false; n];
    let mut win_span: Vec<Option<(u64, u32)>> = vec![None; n];
    // Ordering-check memo per mem op: 0 = unknown, `u64::MAX` = proven
    // ordered (monotonic — the scanned set only shrinks and spans are
    // write-once, so a pass can never regress), anything else = the uid
    // that blocked the last scan.
    const ORDER_OK: u64 = u64::MAX;
    let mut blocker = vec![0u64; n];
    // Mem ops in the reservation window whose span is not yet published.
    let mut unpublished: Vec<usize> = Vec::new();
    // FU bookkeeping on flat arrays (FuKind has 15 unit variants);
    // index 15 is the "no FU" sentinel.
    let fuidx = &prep.fuidx;
    let mut fu_pool = [0u32; 15];
    for (&k, &v) in &cfg.fu_pool {
        fu_pool[k as usize] = v;
    }
    // An FU-classed op with a zero pool could never issue; refuse up
    // front instead of deadlocking mid-replay.
    for (i, &f) in fuidx.iter().enumerate() {
        if f < 15 && fu_pool[f as usize] == 0 {
            return Err(ReplayError::BadStream(format!(
                "op uid {} needs FU kind {} but the config allocates none",
                ops[i].uid,
                FuKind::ALL[f as usize].name()
            )));
        }
    }
    let mut fu_busy = [0u32; 15];
    let mut busy_sum = [0u64; 15];
    // Ready ops whose FU is saturated are parked per kind instead of
    // being revisited every cycle: saturation can only end when a unit of
    // that kind releases, so the queue merges back into `ready` exactly
    // then. A nonzero parked count is by construction an FU-blocked
    // stall, so the per-cycle flags are unchanged.
    let mut fu_wait: [Vec<usize>; 15] = Default::default();
    let mut parked = 0usize;
    let mut outstanding_reads = 0usize;
    let mut outstanding_writes = 0usize;
    let mut next_group = 0usize;

    let mut cycle = 0u64;
    let mut attribution = Attribution::default();
    let mut stall_cycles = 0u64;
    let mut new_exec_cycles = 0u64;
    let mut port_reject_cycles = 0u64;
    let mut committed_count = 0usize;
    // (issue, commit) per op, for the retimed stream.
    let mut times: Vec<(u64, u64)> = vec![(0, 0); n];

    // Inserts an op into the ready list at its uid position. Newly ready
    // ops always carry a higher uid than the op whose commit or import
    // unblocked them, so mid-pass insertions land ahead of the cursor and
    // are visited in this same pass — exactly the old full-scan order.
    macro_rules! mark_ready {
        ($idx:expr) => {{
            let i_ = $idx;
            let pos = ready.partition_point(|&r| ops[r].uid < ops[i_].uid);
            ready.insert(pos, i_);
        }};
    }

    // Commits one op: marks it, retires its consumers' dependence
    // counters (promoting in-window consumers whose last producer this
    // was), and stamps the retimed commit cycle.
    macro_rules! commit_op {
        ($idx:expr) => {{
            let idx_ = $idx;
            committed[idx_] = true;
            committed_count += 1;
            times[idx_].1 = cycle;
            let u_ = ops[idx_].uid as usize;
            for &c in &cons_adj[cons_off[u_] as usize..cons_off[u_ + 1] as usize] {
                let r_ = (c - 1) as usize;
                remaining[r_] -= 1;
                if remaining[r_] == 0 && in_resv[r_] {
                    mark_ready!(r_);
                }
            }
        }};
    }

    // Import groups while the window has room (a group larger than the
    // whole window is admitted into an empty one), in group order, gated
    // on the fetching terminator having issued.
    macro_rules! import_ready {
        () => {{
            let mut any = false;
            while next_group < groups.len() {
                let g = &groups[next_group];
                if g.ctrl != 0 && !issued[at(g.ctrl)] {
                    break;
                }
                let used = resv_count.min(cfg.reservation_entries);
                let room = cfg.reservation_entries - used;
                if g.len > room && resv_count > 0 {
                    break;
                }
                for i in g.start..g.start + g.len {
                    if ops[i].kind != OpKind::Compute {
                        // Groups import in uid order, so the sorted uid
                        // list stays sorted by appending.
                        win_uids.push(ops[i].uid);
                        in_win[i] = true;
                        unpublished.push(i);
                    }
                    in_resv[i] = true;
                    if remaining[i] == 0 {
                        mark_ready!(i);
                    }
                }
                resv_count += g.len;
                next_group += 1;
                any = true;
            }
            any
        }};
    }

    let producer_ready = |uid: u64, committed: &[bool]| uid == 0 || committed[at(uid)];

    loop {
        if cycle > cfg.max_cycles {
            return Err(ReplayError::CycleLimit {
                limit: cfg.max_cycles,
            });
        }

        // 1. Memory completions commit first.
        let mut i = 0;
        while i < mem_inflight.len() {
            let (idx, commit_at) = mem_inflight[i];
            if commit_at <= cycle {
                mem_inflight.swap_remove(i);
                commit_op!(idx);
                if let Ok(p) = win_uids.binary_search(&ops[idx].uid) {
                    win_uids.remove(p);
                }
                in_win[idx] = false;
                if ops[idx].kind == OpKind::Store {
                    outstanding_writes -= 1;
                } else {
                    outstanding_reads -= 1;
                }
            } else {
                i += 1;
            }
        }

        // 2. Compute commits; FUs release at their release cycle (one
        //    cycle after issue when pipelined, at commit otherwise).
        let mut q = 0;
        let mut freed: u16 = 0;
        while q < compute_q.len() {
            let (idx, commit_at, fu_release_at, released) = compute_q[q];
            if fu_release_at <= cycle && !released {
                let f = fuidx[idx] as usize;
                if f < 15 {
                    fu_busy[f] -= 1;
                    freed |= 1 << f;
                }
                compute_q[q].3 = true;
            }
            if commit_at <= cycle {
                commit_op!(idx);
                compute_q.swap_remove(q);
            } else {
                q += 1;
            }
        }
        // Unpark every op whose FU kind released at least one unit.
        while freed != 0 {
            let f = freed.trailing_zeros() as usize;
            freed &= freed - 1;
            parked -= fu_wait[f].len();
            while let Some(i) = fu_wait[f].pop() {
                mark_ready!(i);
            }
        }

        // 3. Top-of-cycle block import.
        let mut imported = import_ready!();

        // 4a. Publish memory spans to the ordering window once the
        //     address producer has committed — only for ops still waiting
        //     in the reservation window, exactly like the engine. Issued
        //     ops leave the list without publishing (their window entry
        //     stays unresolved until the access commits).
        let mut u = 0;
        while u < unpublished.len() {
            let idx = unpublished[u];
            if issued[idx] {
                unpublished.swap_remove(u);
                continue;
            }
            if producer_ready(ops[idx].addr_dep, &committed) {
                win_span[idx] = Some((ops[idx].addr, ops[idx].size));
                unpublished.swap_remove(u);
                continue;
            }
            u += 1;
        }

        // 4b. In-order issue pass with the engine's resource checks.
        let mut issued_this_cycle = 0u64;
        let mut blocked_any = false;
        let mut fu_blocked = false;
        let mut mem_limit_blocked = false;
        let mut port_rejected = false;
        let mut read_budget = cfg.spm_read_ports;
        let mut write_budget = cfg.spm_write_ports;
        let mut idx_pos = 0usize;
        while idx_pos < ready.len() {
            let idx = ready[idx_pos];
            debug_assert_eq!(remaining[idx], 0);
            // FU pool availability. A saturated kind parks the op until
            // one of its units releases — nothing else can unblock it.
            let f = fuidx[idx] as usize;
            if f < 15 && fu_busy[f] >= fu_pool[f] {
                ready.remove(idx_pos);
                fu_wait[f].push(idx);
                parked += 1;
                blocked_any = true;
                fu_blocked = true;
                continue;
            }
            if ops[idx].kind != OpKind::Compute {
                let o = &ops[idx];
                let is_store = o.kind == OpKind::Store;
                // Address resolvable + memory ordering against every older
                // conflicting (or unresolved) access in the window. The
                // cached blocker is re-checked first: while it is still in
                // the window and still conflicts, the full scan would fail
                // at or before it, so the op stays blocked in O(1).
                let conflicts = |r: usize| -> bool {
                    if !(ops[r].kind == OpKind::Store || is_store) {
                        return false;
                    }
                    match win_span[r] {
                        None => true,
                        Some((a, s)) => o.addr < a + s as u64 && a < o.addr + o.size as u64,
                    }
                };
                let order_ok = producer_ready(o.addr_dep, &committed)
                    && (blocker[idx] == ORDER_OK || {
                        let b = blocker[idx];
                        if b != 0 && in_win[at(b)] && conflicts(at(b)) {
                            false
                        } else {
                            let mut hit = 0u64;
                            for &uid in &win_uids {
                                if uid >= o.uid {
                                    break;
                                }
                                if conflicts(at(uid)) {
                                    hit = uid;
                                    break;
                                }
                            }
                            blocker[idx] = if hit == 0 { ORDER_OK } else { hit };
                            hit == 0
                        }
                    });
                if !order_ok {
                    blocked_any = true;
                    idx_pos += 1;
                    continue;
                }
                let limit_ok = if is_store {
                    outstanding_writes < cfg.max_outstanding_writes
                } else {
                    outstanding_reads < cfg.max_outstanding_reads
                };
                if !limit_ok {
                    blocked_any = true;
                    mem_limit_blocked = true;
                    idx_pos += 1;
                    continue;
                }
                let budget = if is_store {
                    &mut write_budget
                } else {
                    &mut read_budget
                };
                if *budget == 0 {
                    // SPM port reject.
                    blocked_any = true;
                    mem_limit_blocked = true;
                    port_rejected = true;
                    idx_pos += 1;
                    continue;
                }
                *budget -= 1;
                ready.remove(idx_pos);
                in_resv[idx] = false;
                resv_count -= 1;
                issued[idx] = true;
                times[idx].0 = cycle;
                if is_store {
                    outstanding_writes += 1;
                } else {
                    outstanding_reads += 1;
                }
                mem_inflight.push((idx, cycle + cfg.mem_latency.max(1)));
                issued_this_cycle += 1;
                continue;
            }

            // Compute / control issue.
            ready.remove(idx_pos);
            in_resv[idx] = false;
            resv_count -= 1;
            issued[idx] = true;
            times[idx].0 = cycle;
            issued_this_cycle += 1;
            // A terminator's issue unlocks the next group's import, inline,
            // so the new block can begin issuing this same cycle. Only
            // terminators re-check the fetch gate — room freed by ordinary
            // issues is picked up at the next top-of-cycle import, exactly
            // like the engine.
            if fetches_a_group[idx] && import_ready!() {
                imported = true;
            }
            if ops[idx].latency == 0 {
                // Chained op: commits within the issue cycle; a chained FU
                // op holds its unit for this one cycle.
                if fuidx[idx] < 15 {
                    busy_sum[fuidx[idx] as usize] += 1;
                }
                commit_op!(idx);
            } else {
                if fuidx[idx] < 15 {
                    fu_busy[fuidx[idx] as usize] += 1;
                }
                let commit_at = cycle + ops[idx].latency;
                let fu_release_at = if cfg.pipelined_fus {
                    cycle + 1
                } else {
                    commit_at
                };
                compute_q.push((idx, commit_at, fu_release_at, false));
            }
        }

        // Parked ops are ready ops blocked on a saturated FU — exactly
        // what the per-visit flags used to record.
        if parked > 0 {
            blocked_any = true;
            fu_blocked = true;
        }

        // 5. Cycle bookkeeping: attribution by the engine's exact priority.
        let cycle_class = if issued_this_cycle > 0 {
            CycleClass::Compute
        } else if fu_blocked {
            CycleClass::FuLimit
        } else if port_rejected || mem_limit_blocked {
            CycleClass::MemPort
        } else if !mem_inflight.is_empty() {
            CycleClass::DmaWait
        } else if resv_count > 0 || !compute_q.is_empty() {
            CycleClass::DepStall
        } else {
            CycleClass::Control
        };
        attribution.charge(cycle_class);
        for (sum, &busy) in busy_sum.iter_mut().zip(&fu_busy) {
            *sum += busy as u64;
        }
        if blocked_any {
            stall_cycles += 1;
        } else if issued_this_cycle > 0 {
            new_exec_cycles += 1;
        }
        if port_rejected {
            port_reject_cycles += 1;
        }

        cycle += 1;
        let drained = next_group == groups.len()
            && resv_count == 0
            && compute_q.is_empty()
            && mem_inflight.is_empty();
        if drained {
            break;
        }

        // Fast-forward: with nothing issued and nothing imported this
        // cycle, the whole scheduler state is frozen until the next commit
        // or FU-release event — every intervening cycle charges the same
        // class and the same busy integral, so jump there in one step.
        if issued_this_cycle == 0 && !imported {
            let next_event = compute_q
                .iter()
                .flat_map(|&(_, c, r, released)| {
                    [Some(c), (!released).then_some(r)].into_iter().flatten()
                })
                .chain(mem_inflight.iter().map(|&(_, c)| c))
                .min();
            match next_event {
                Some(e) if e > cycle => {
                    let gap = e - cycle;
                    attribution.add(cycle_class, gap);
                    for (sum, &busy) in busy_sum.iter_mut().zip(&fu_busy) {
                        *sum += busy as u64 * gap;
                    }
                    if blocked_any {
                        stall_cycles += gap;
                    }
                    cycle = e;
                }
                Some(_) => {}
                None => {
                    return Err(ReplayError::Deadlock {
                        cycle,
                        committed: committed_count,
                        total: n,
                    })
                }
            }
        }
    }

    // Retimed stream: identical ops/deps/metadata, replayed issue/commit,
    // appended in commit order (uid-stable within a cycle) so critical-path
    // analysis works on replayed points just like on simulated ones.
    let retimed = retime_src.filter(|_| cfg.want_retimed).map(|stream| {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (times[i].1, ops[i].uid));
        let mut retimed = DepStream::new();
        for i in order {
            let src = &stream.ops()[prep.stream_pos[i]];
            retimed.record_meta(
                src.uid,
                stream.name(src.name),
                stream.class(src.class),
                times[i].0,
                times[i].1,
                src.deps.clone(),
                src.meta,
            );
        }
        retimed
    });

    let mut fu_busy_cycle_sum: HashMap<FuKind, u64> = HashMap::new();
    for k in FuKind::ALL {
        if busy_sum[k as usize] > 0 {
            fu_busy_cycle_sum.insert(k, busy_sum[k as usize]);
        }
    }

    Ok(ReplayOutcome {
        cycles: cycle,
        attribution,
        fu_busy_cycle_sum,
        stall_cycles,
        new_exec_cycles,
        port_reject_cycles,
        retimed,
    })
}

/// Validates the stream and resolves it into uid-ordered ops + groups.
fn prepare(stream: &DepStream) -> Result<(Vec<ROp>, Vec<Group>), ReplayError> {
    let bad = |m: String| Err(ReplayError::BadStream(m));
    if stream.is_empty() {
        return bad("empty stream".into());
    }
    let n = stream.len();
    let mut ops: Vec<Option<ROp>> = Vec::new();
    ops.resize_with(n, || None);
    for op in stream.ops() {
        if op.uid == 0 || op.uid > n as u64 {
            return bad(format!("uid {} outside dense range 1..={n}", op.uid));
        }
        let slot = (op.uid - 1) as usize;
        if ops[slot].is_some() {
            return bad(format!("duplicate uid {}", op.uid));
        }
        let class = stream.class(op.class);
        let fu = FuKind::from_name(class);
        // Memory ops carry their kind in the metadata; a stream recorded
        // without metadata (legacy `record`) would classify them as
        // Compute — catch that here instead of mis-replaying.
        if (class == "load" || class == "store") && op.meta.kind == OpKind::Compute {
            return bad("stream lacks replay metadata (recorded without record_meta?)".into());
        }
        for &d in &op.deps {
            if d == 0 || d > n as u64 {
                return bad(format!("dep {d} of uid {} outside dense range", op.uid));
            }
        }
        ops[slot] = Some(ROp {
            uid: op.uid,
            kind: op.meta.kind,
            fu,
            latency: op.meta.latency as u64,
            group: op.meta.group,
            ctrl: op.meta.ctrl,
            addr_dep: op.meta.addr_dep,
            addr: op.meta.addr,
            size: op.meta.size,
        });
    }
    let ops: Vec<ROp> = ops
        .into_iter()
        .enumerate()
        .map(|(i, o)| o.ok_or_else(|| ReplayError::BadStream(format!("missing uid {}", i + 1))))
        .collect::<Result<_, _>>()?;

    // Groups: contiguous, nondecreasing runs in uid order.
    let mut groups: Vec<Group> = Vec::new();
    for (i, o) in ops.iter().enumerate() {
        let count = groups.len();
        if !groups.is_empty() && o.group as usize == count - 1 {
            groups.last_mut().expect("nonempty").len += 1;
        } else if o.group as usize == count {
            groups.push(Group {
                start: i,
                len: 1,
                ctrl: 0,
            });
        } else {
            return bad(format!(
                "group {} out of order at uid {} (expected {} or {})",
                o.group,
                o.uid,
                count.saturating_sub(1),
                count
            ));
        }
    }
    for (gi, g) in groups.iter_mut().enumerate() {
        let ctrl = ops[g.start].ctrl;
        if ops[g.start..g.start + g.len].iter().any(|o| o.ctrl != ctrl) {
            return bad(format!("group {gi} has mixed ctrl uids"));
        }
        if gi == 0 && ctrl != 0 {
            return bad("entry group has a nonzero ctrl uid".into());
        }
        if ctrl as usize > g.start {
            return bad(format!("group {gi} fetched by a later/own uid {ctrl}"));
        }
        g.ctrl = ctrl;
    }
    Ok((ops, groups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_obs::DepMeta;

    fn meta(kind: OpKind, latency: u32, group: u32, ctrl: u64) -> DepMeta {
        DepMeta {
            kind,
            latency,
            group,
            ctrl,
            ..DepMeta::default()
        }
    }

    fn pool(entries: &[(FuKind, u32)]) -> HashMap<FuKind, u32> {
        entries.iter().copied().collect()
    }

    /// add(1) → add(2) → add(3), one-cycle adder each, unlimited pool.
    #[test]
    fn serial_chain_takes_latency_sum_plus_drain() {
        let mut s = DepStream::new();
        s.record_meta(
            1,
            "add",
            "int_adder",
            0,
            0,
            vec![],
            meta(OpKind::Compute, 1, 0, 0),
        );
        s.record_meta(
            2,
            "add",
            "int_adder",
            0,
            0,
            vec![1],
            meta(OpKind::Compute, 1, 0, 0),
        );
        s.record_meta(
            3,
            "ret",
            "other",
            0,
            0,
            vec![2],
            meta(OpKind::Compute, 0, 0, 0),
        );
        let cfg = ReplayConfig {
            fu_pool: pool(&[(FuKind::IntAdder, 4)]),
            ..ReplayConfig::default()
        };
        let out = replay(&s, &cfg).unwrap();
        // c0: issue add1; c1: add1 commits, issue add2; c2: add2 commits,
        // ret issues+chains. Total = 3 cycles.
        assert_eq!(out.cycles, 3);
        assert_eq!(out.attribution.total(), out.cycles);
        assert_eq!(out.attribution.get(CycleClass::Compute), 3);
    }

    /// Two independent adds on a single adder serialize; two adders don't.
    #[test]
    fn fu_pool_limit_serializes_and_charges_fu_limit() {
        let build = || {
            let mut s = DepStream::new();
            s.record_meta(
                1,
                "add",
                "int_adder",
                0,
                0,
                vec![],
                meta(OpKind::Compute, 3, 0, 0),
            );
            s.record_meta(
                2,
                "add",
                "int_adder",
                0,
                0,
                vec![],
                meta(OpKind::Compute, 3, 0, 0),
            );
            s.record_meta(
                3,
                "ret",
                "other",
                0,
                0,
                vec![1, 2],
                meta(OpKind::Compute, 0, 0, 0),
            );
            s
        };
        let wide = replay(
            &build(),
            &ReplayConfig {
                fu_pool: pool(&[(FuKind::IntAdder, 2)]),
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        let narrow = replay(
            &build(),
            &ReplayConfig {
                fu_pool: pool(&[(FuKind::IntAdder, 1)]),
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        assert!(narrow.cycles > wide.cycles);
        assert!(narrow.attribution.get(CycleClass::FuLimit) > 0);
        assert_eq!(wide.attribution.get(CycleClass::FuLimit), 0);
        assert_eq!(narrow.attribution.total(), narrow.cycles);
    }

    /// Four independent loads: 2 read ports take 2 issue cycles, 1 port 4.
    #[test]
    fn read_port_width_gates_parallel_loads() {
        let build = || {
            let mut s = DepStream::new();
            for uid in 1..=4u64 {
                s.record_meta(
                    uid,
                    "load",
                    "load",
                    0,
                    0,
                    vec![],
                    DepMeta {
                        kind: OpKind::Load,
                        latency: 1,
                        addr: uid * 8,
                        size: 8,
                        ..DepMeta::default()
                    },
                );
            }
            s.record_meta(
                5,
                "ret",
                "other",
                0,
                0,
                vec![1, 2, 3, 4],
                meta(OpKind::Compute, 0, 0, 0),
            );
            s
        };
        let two = replay(
            &build(),
            &ReplayConfig {
                spm_read_ports: 2,
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        let one = replay(
            &build(),
            &ReplayConfig {
                spm_read_ports: 1,
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        assert!(one.cycles > two.cycles);
        assert!(one.port_reject_cycles > 0);
    }

    /// One outstanding read at a time: the second load waits a full memory
    /// round-trip charged to MemPort.
    #[test]
    fn outstanding_cap_charges_mem_port() {
        let mut s = DepStream::new();
        for uid in 1..=2u64 {
            s.record_meta(
                uid,
                "load",
                "load",
                0,
                0,
                vec![],
                DepMeta {
                    kind: OpKind::Load,
                    latency: 1,
                    addr: uid * 8,
                    size: 8,
                    ..DepMeta::default()
                },
            );
        }
        s.record_meta(
            3,
            "ret",
            "other",
            0,
            0,
            vec![1, 2],
            meta(OpKind::Compute, 0, 0, 0),
        );
        let out = replay(
            &s,
            &ReplayConfig {
                max_outstanding_reads: 1,
                mem_latency: 3,
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        assert!(out.attribution.get(CycleClass::MemPort) > 0);
        assert_eq!(out.attribution.total(), out.cycles);
    }

    /// Store→load to the same address must respect memory ordering.
    #[test]
    fn store_load_conflict_orders_and_mem_latency_retimes() {
        let build = || {
            let mut s = DepStream::new();
            s.record_meta(
                1,
                "store",
                "store",
                0,
                0,
                vec![],
                DepMeta {
                    kind: OpKind::Store,
                    latency: 1,
                    addr: 64,
                    size: 8,
                    ..DepMeta::default()
                },
            );
            s.record_meta(
                2,
                "load",
                "load",
                0,
                0,
                vec![],
                DepMeta {
                    kind: OpKind::Load,
                    latency: 1,
                    addr: 64,
                    size: 8,
                    ..DepMeta::default()
                },
            );
            s.record_meta(
                3,
                "ret",
                "other",
                0,
                0,
                vec![2],
                meta(OpKind::Compute, 0, 0, 0),
            );
            s
        };
        let lat1 = replay(&build(), &ReplayConfig::default()).unwrap();
        let lat4 = replay(
            &build(),
            &ReplayConfig {
                mem_latency: 4,
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        // Load cannot issue until the store commits: latency on the
        // serialized pair is paid twice.
        assert_eq!(lat4.cycles - lat1.cycles, 2 * 3);
        assert!(lat4.attribution.get(CycleClass::DmaWait) > 0);
    }

    /// Block-import gating: group 1 cannot start before its terminator.
    #[test]
    fn group_import_waits_for_its_terminator() {
        let mut s = DepStream::new();
        s.record_meta(
            1,
            "add",
            "int_adder",
            0,
            0,
            vec![],
            meta(OpKind::Compute, 5, 0, 0),
        );
        s.record_meta(
            2,
            "br",
            "other",
            0,
            0,
            vec![1],
            meta(OpKind::Compute, 0, 0, 0),
        );
        s.record_meta(
            3,
            "add",
            "int_adder",
            0,
            0,
            vec![],
            meta(OpKind::Compute, 1, 1, 2),
        );
        s.record_meta(
            4,
            "ret",
            "other",
            0,
            0,
            vec![3],
            meta(OpKind::Compute, 0, 1, 2),
        );
        let out = replay(
            &s,
            &ReplayConfig {
                fu_pool: pool(&[(FuKind::IntAdder, 4)]),
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        // c0: add1 issues (5 cycles); c1–c4 frozen (fast-forwarded);
        // c5: add1 commits, br issues+chains, group 1 imports inline,
        // add3 issues; c6: add3 commits, ret chains. Total 7.
        assert_eq!(out.cycles, 7);
        let retimed: Vec<(u64, u64)> = out
            .retimed
            .expect("retimed is on by default")
            .ops()
            .iter()
            .map(|o| (o.uid, o.issue))
            .collect();
        assert!(retimed.contains(&(3, 5)), "{retimed:?}");
    }

    #[test]
    fn missing_metadata_is_rejected_loudly() {
        let mut s = DepStream::new();
        s.record(1, "load", "load", 0, 2, vec![]); // legacy record(): no meta
        let err = replay(&s, &ReplayConfig::default()).unwrap_err();
        assert!(matches!(err, ReplayError::BadStream(_)), "{err}");
        assert!(err.to_string().contains("metadata"), "{err}");
    }

    #[test]
    fn impossible_constraints_are_rejected_up_front() {
        let mut s = DepStream::new();
        // An FU class with no pool entry could never issue; replay refuses
        // before scheduling instead of deadlocking mid-run.
        s.record_meta(
            1,
            "fmul",
            "fp_mul_dp",
            0,
            0,
            vec![],
            meta(OpKind::Compute, 4, 0, 0),
        );
        let err = replay(&s, &ReplayConfig::default()).unwrap_err();
        assert!(matches!(err, ReplayError::BadStream(_)), "{err}");
        assert!(err.to_string().contains("fp_mul_dp"), "{err}");
    }

    #[test]
    fn retimed_stream_keeps_ops_and_attribution_totals_match() {
        let mut s = DepStream::new();
        s.record_meta(
            1,
            "add",
            "int_adder",
            0,
            0,
            vec![],
            meta(OpKind::Compute, 1, 0, 0),
        );
        s.record_meta(
            2,
            "ret",
            "other",
            0,
            0,
            vec![1],
            meta(OpKind::Compute, 0, 0, 0),
        );
        let out = replay(
            &s,
            &ReplayConfig {
                fu_pool: pool(&[(FuKind::IntAdder, 1)]),
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.retimed.as_ref().expect("on by default").len(), s.len());
        assert_eq!(out.attribution.total(), out.cycles);

        // Sweeps that only need cycles can skip building the stream.
        let mut s2 = DepStream::new();
        s2.record_meta(
            1,
            "add",
            "int_adder",
            0,
            0,
            vec![],
            meta(OpKind::Compute, 1, 0, 0),
        );
        s2.record_meta(
            2,
            "ret",
            "other",
            0,
            0,
            vec![1],
            meta(OpKind::Compute, 0, 0, 0),
        );
        let lean = replay(
            &s2,
            &ReplayConfig {
                fu_pool: pool(&[(FuKind::IntAdder, 1)]),
                want_retimed: false,
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        assert_eq!(lean.cycles, out.cycles);
        assert!(lean.retimed.is_none());
    }
}
