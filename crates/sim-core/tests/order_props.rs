//! Property tests of the event kernel's ordering guarantees.

use proptest::prelude::*;

use sim_core::{CompId, EventQueue};

proptest! {
    /// Events always pop sorted by tick, FIFO within a tick, and nothing is
    /// lost or duplicated.
    #[test]
    fn queue_is_a_stable_time_sort(ticks in prop::collection::vec(0u64..64, 1..200)) {
        let id = CompId::from_raw(0);
        let mut q: EventQueue<usize> = EventQueue::new();
        for (seq, &t) in ticks.iter().enumerate() {
            q.push(t, id, id, seq);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.tick, ev.msg));
        }
        prop_assert_eq!(popped.len(), ticks.len());
        // Sorted by tick.
        prop_assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0));
        // FIFO within equal ticks.
        prop_assert!(popped
            .windows(2)
            .all(|w| w[0].0 != w[1].0 || w[0].1 < w[1].1));
        // A permutation of the input.
        let mut seqs: Vec<usize> = popped.iter().map(|&(_, s)| s).collect();
        seqs.sort_unstable();
        prop_assert_eq!(seqs, (0..ticks.len()).collect::<Vec<_>>());
    }

    /// Interleaved push/pop never violates ordering for already-queued work.
    #[test]
    fn interleaved_pops_respect_order(
        batches in prop::collection::vec(prop::collection::vec(0u64..32, 1..10), 1..10),
    ) {
        let id = CompId::from_raw(0);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut last_popped = 0u64;
        let mut pending = 0usize;
        for batch in &batches {
            for &t in batch {
                // Keep time monotone relative to what we've already drained.
                q.push(last_popped + t, id, id, last_popped + t);
                pending += 1;
            }
            // Drain half of the queue.
            for _ in 0..(pending / 2) {
                if let Some(ev) = q.pop() {
                    prop_assert!(ev.tick >= last_popped);
                    last_popped = ev.tick;
                    pending -= 1;
                }
            }
        }
    }
}
