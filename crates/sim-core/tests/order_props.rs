//! Property tests of the event kernel's ordering guarantees, driven by the
//! in-tree seeded-case harness.

use salam_obs::det::{check_cases, SplitMix64};
use sim_core::{CompId, EventQueue};

fn gen_ticks(g: &mut SplitMix64, max_tick: u64, lo: usize, hi: usize) -> Vec<u64> {
    let n = g.range_usize(lo, hi);
    (0..n).map(|_| g.range_u64(0, max_tick)).collect()
}

/// Events always pop sorted by tick, FIFO within a tick, and nothing is
/// lost or duplicated.
#[test]
fn queue_is_a_stable_time_sort() {
    check_cases("queue_is_a_stable_time_sort", 256, 0x51, |g| {
        let ticks = gen_ticks(g, 64, 1, 200);
        let id = CompId::from_raw(0);
        let mut q: EventQueue<usize> = EventQueue::new();
        for (seq, &t) in ticks.iter().enumerate() {
            q.push(t, id, id, seq);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.tick, ev.msg));
        }
        assert_eq!(popped.len(), ticks.len());
        // Sorted by tick.
        assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0));
        // FIFO within equal ticks.
        assert!(popped
            .windows(2)
            .all(|w| w[0].0 != w[1].0 || w[0].1 < w[1].1));
        // A permutation of the input.
        let mut seqs: Vec<usize> = popped.iter().map(|&(_, s)| s).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..ticks.len()).collect::<Vec<_>>());
    });
}

/// Interleaved push/pop never violates ordering for already-queued work.
#[test]
fn interleaved_pops_respect_order() {
    check_cases("interleaved_pops_respect_order", 256, 0x52, |g| {
        let n_batches = g.range_usize(1, 10);
        let batches: Vec<Vec<u64>> = (0..n_batches).map(|_| gen_ticks(g, 32, 1, 10)).collect();
        let id = CompId::from_raw(0);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut last_popped = 0u64;
        let mut pending = 0usize;
        for batch in &batches {
            for &t in batch {
                // Keep time monotone relative to what we've already drained.
                q.push(last_popped + t, id, id, last_popped + t);
                pending += 1;
            }
            // Drain half of the queue.
            for _ in 0..(pending / 2) {
                if let Some(ev) = q.pop() {
                    assert!(ev.tick >= last_popped);
                    last_popped = ev.tick;
                    pending -= 1;
                }
            }
        }
    });
}
