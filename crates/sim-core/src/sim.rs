//! The simulation executive: component registry and run loop.

use crate::event::{CompId, EventQueue};
use crate::Tick;

/// A simulation model: anything that receives messages of type `M`.
///
/// Components interact only through messages scheduled via [`Ctx`]; they
/// never hold references to each other. This is the Rust rendering of gem5's
/// `SimObject` + port discipline that gem5-SALAM builds on.
///
/// The `Any` supertrait lets callers recover the concrete component type
/// after a run via [`Simulation::component_as`].
pub trait Component<M>: std::any::Any {
    /// Human-readable instance name, used in stats and error reporting.
    fn name(&self) -> &str;

    /// Delivers one message. `ctx` allows scheduling further messages.
    fn handle(&mut self, msg: M, ctx: &mut Ctx<'_, M>);

    /// Flat list of `(stat_name, value)` pairs exported after a run.
    fn stats(&self) -> Vec<(String, f64)> {
        Vec::new()
    }
}

/// Scheduling context handed to [`Component::handle`].
pub struct Ctx<'a, M> {
    now: Tick,
    self_id: CompId,
    sender: CompId,
    queue: &'a mut EventQueue<M>,
    stop_requested: &'a mut bool,
}

impl<M> Ctx<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The id of the component currently handling a message.
    pub fn self_id(&self) -> CompId {
        self.self_id
    }

    /// The component that scheduled the message being handled.
    pub fn sender(&self) -> CompId {
        self.sender
    }

    /// Schedules `msg` for `dst`, `delay` ticks from now.
    pub fn send(&mut self, dst: CompId, delay: Tick, msg: M) {
        self.queue.push(self.now + delay, dst, self.self_id, msg);
    }

    /// Schedules a message back to the current component.
    pub fn wake(&mut self, delay: Tick, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// Requests that the run loop stop after the current event.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// Why [`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// The event queue drained; no further activity is possible.
    Idle,
    /// A component called [`Ctx::stop`].
    Stopped,
    /// The tick limit was reached with events still pending.
    LimitReached,
}

/// Owns all components and the event queue, and advances time.
///
/// See the [crate-level example](crate) for end-to-end usage.
pub struct Simulation<M> {
    components: Vec<Box<dyn Component<M>>>,
    queue: EventQueue<M>,
    now: Tick,
    events_processed: u64,
}

impl<M: 'static> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: 'static> Simulation<M> {
    /// Creates an empty simulation at tick 0.
    pub fn new() -> Self {
        Simulation {
            components: Vec::new(),
            queue: EventQueue::new(),
            now: 0,
            events_processed: 0,
        }
    }

    /// Registers a component and returns its id.
    pub fn add_component<C: Component<M> + 'static>(&mut self, c: C) -> CompId {
        self.add_boxed(Box::new(c))
    }

    /// Registers an already-boxed component and returns its id.
    pub fn add_boxed(&mut self, c: Box<dyn Component<M>>) -> CompId {
        let id = CompId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(c);
        id
    }

    /// Schedules an initial message from "outside" the simulation.
    pub fn post(&mut self, dst: CompId, at: Tick, msg: M) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.queue.push(at, dst, dst, msg);
    }

    /// Schedules an initial message that appears to come from `src` (the
    /// receiver's [`Ctx::sender`] will report `src`).
    pub fn post_from(&mut self, src: CompId, dst: CompId, at: Tick, msg: M) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.queue.push(at, dst, src, msg);
    }

    /// Current simulated time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a component (e.g. to read results after a run).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this simulation.
    pub fn component(&self, id: CompId) -> &dyn Component<M> {
        self.components[id.index()].as_ref()
    }

    /// Mutable access to a component between runs.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this simulation.
    pub fn component_mut(&mut self, id: CompId) -> &mut dyn Component<M> {
        self.components[id.index()].as_mut()
    }

    /// Downcasts a component to its concrete type (e.g. to read results
    /// after a run).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this simulation.
    pub fn component_as<T: 'static>(&self, id: CompId) -> Option<&T> {
        let c: &dyn Component<M> = self.components[id.index()].as_ref();
        (c as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulation::component_as`].
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this simulation.
    pub fn component_as_mut<T: 'static>(&mut self, id: CompId) -> Option<&mut T> {
        let c: &mut dyn Component<M> = self.components[id.index()].as_mut();
        (c as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    /// Runs until the queue drains; returns the final tick.
    pub fn run(&mut self) -> Tick {
        self.run_until(Tick::MAX);
        self.now
    }

    /// Runs until the queue drains, a component stops the run, or the next
    /// event would be after `limit`.
    pub fn run_until(&mut self, limit: Tick) -> RunResult {
        let mut stop = false;
        loop {
            let Some(next) = self.queue.next_tick() else {
                return RunResult::Idle;
            };
            if next > limit {
                return RunResult::LimitReached;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.tick >= self.now, "time went backwards");
            self.now = ev.tick;
            self.events_processed += 1;
            let comp = self
                .components
                .get_mut(ev.dst.index())
                .unwrap_or_else(|| panic!("event for unknown component {}", ev.dst));
            let mut ctx = Ctx {
                now: ev.tick,
                self_id: ev.dst,
                sender: ev.src,
                queue: &mut self.queue,
                stop_requested: &mut stop,
            };
            comp.handle(ev.msg, &mut ctx);
            if stop {
                return RunResult::Stopped;
            }
        }
    }

    /// Collects `name.stat -> value` pairs from every component.
    pub fn all_stats(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for c in &self.components {
            for (k, v) in c.stats() {
                out.push((format!("{}.{}", c.name(), k), v));
            }
        }
        out
    }
}

impl<M> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("components", &self.components.len())
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Inc(u64),
        Stop,
    }

    struct Counter {
        total: u64,
        last_tick: Tick,
    }

    impl Component<Msg> for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            match msg {
                Msg::Inc(n) => {
                    self.total += n;
                    self.last_tick = ctx.now();
                }
                Msg::Stop => ctx.stop(),
            }
        }
        fn stats(&self) -> Vec<(String, f64)> {
            vec![("total".into(), self.total as f64)]
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulation::new();
        let c = sim.add_component(Counter {
            total: 0,
            last_tick: 0,
        });
        sim.post(c, 20, Msg::Inc(2));
        sim.post(c, 10, Msg::Inc(1));
        assert_eq!(sim.run(), 20);
        assert_eq!(sim.all_stats(), vec![("counter.total".to_string(), 3.0)]);
    }

    #[test]
    fn stop_aborts_run() {
        let mut sim = Simulation::new();
        let c = sim.add_component(Counter {
            total: 0,
            last_tick: 0,
        });
        sim.post(c, 5, Msg::Inc(1));
        sim.post(c, 6, Msg::Stop);
        sim.post(c, 7, Msg::Inc(100));
        assert_eq!(sim.run_until(Tick::MAX), RunResult::Stopped);
        assert_eq!(sim.now(), 6);
    }

    #[test]
    fn limit_leaves_events_pending() {
        let mut sim = Simulation::new();
        let c = sim.add_component(Counter {
            total: 0,
            last_tick: 0,
        });
        sim.post(c, 100, Msg::Inc(1));
        assert_eq!(sim.run_until(50), RunResult::LimitReached);
        assert_eq!(sim.run_until(200), RunResult::Idle);
        assert_eq!(sim.events_processed(), 1);
    }

    struct Relay {
        peer: Option<CompId>,
        hops_left: u32,
    }

    impl Component<Msg> for Relay {
        fn name(&self) -> &str {
            "relay"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            if self.hops_left > 0 {
                self.hops_left -= 1;
                let dst = self.peer.unwrap_or(ctx.self_id());
                ctx.send(dst, 3, msg);
            }
        }
    }

    #[test]
    fn self_wake_chain_advances_time() {
        let mut sim = Simulation::new();
        let r = sim.add_component(Relay {
            peer: None,
            hops_left: 4,
        });
        sim.post(r, 0, Msg::Inc(0));
        assert_eq!(sim.run(), 12);
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn sender_is_visible() {
        struct Echo;
        struct Probe {
            saw: Option<CompId>,
        }
        impl Component<Msg> for Echo {
            fn name(&self) -> &str {
                "echo"
            }
            fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                let from = ctx.sender();
                ctx.send(from, 1, msg);
            }
        }
        impl Component<Msg> for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                self.saw = Some(ctx.sender());
            }
        }
        let mut sim = Simulation::new();
        let echo = sim.add_component(Echo);
        let probe = sim.add_component(Probe { saw: None });
        // Post from "probe" to echo so echo replies to probe.
        sim.queue.push(0, echo, probe, Msg::Inc(1));
        sim.run();
        // probe.saw must be echo's id.
        let _ = probe;
    }
}
