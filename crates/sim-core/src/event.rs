//! The event queue: a deterministic priority queue of scheduled messages.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Tick;

/// Identifies a component registered with a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub(crate) u32);

impl CompId {
    /// The raw index of this component in its simulation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CompId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "comp#{}", self.0)
    }
}

/// A message scheduled for delivery at a particular tick.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<M> {
    /// Delivery time.
    pub tick: Tick,
    /// Receiving component.
    pub dst: CompId,
    /// Component that scheduled the event (the receiver itself for wakeups).
    pub src: CompId,
    /// The message payload.
    pub msg: M,
    seq: u64,
}

struct HeapEntry<M>(ScheduledEvent<M>);

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.0.tick == other.0.tick && self.0.seq == other.0.seq
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (tick, seq) pops
        // first. seq breaks ties FIFO for determinism.
        (other.0.tick, other.0.seq).cmp(&(self.0.tick, self.0.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events at equal ticks are delivered in scheduling order, making whole-
/// simulation behaviour a pure function of the scheduled inputs.
///
/// ```
/// use sim_core::{EventQueue, CompId};
/// let mut q: EventQueue<&str> = EventQueue::new();
/// let a = CompId::from_raw(0);
/// q.push(5, a, a, "later");
/// q.push(5, a, a, "later2");
/// q.push(1, a, a, "first");
/// assert_eq!(q.pop().unwrap().msg, "first");
/// assert_eq!(q.pop().unwrap().msg, "later");
/// assert_eq!(q.pop().unwrap().msg, "later2");
/// ```
#[derive(Default)]
pub struct EventQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `msg` for `dst` at absolute time `tick`.
    pub fn push(&mut self, tick: Tick, dst: CompId, src: CompId, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(ScheduledEvent {
            tick,
            dst,
            src,
            msg,
            seq,
        }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        self.heap.pop().map(|e| e.0)
    }

    /// The tick of the earliest pending event.
    pub fn next_tick(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.0.tick)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<M> std::fmt::Debug for EventQueue<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_tick", &self.next_tick())
            .finish()
    }
}

impl CompId {
    /// Builds a `CompId` from a raw index. Intended for tests and tools that
    /// construct queues outside a [`crate::Simulation`].
    pub fn from_raw(raw: u32) -> Self {
        CompId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> CompId {
        CompId::from_raw(n)
    }

    #[test]
    fn orders_by_tick() {
        let mut q = EventQueue::new();
        q.push(30, id(0), id(0), 'c');
        q.push(10, id(0), id(0), 'a');
        q.push(20, id(0), id(0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.msg)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_within_tick() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(7, id(i % 3), id(0), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.msg)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_tick_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_tick(), None);
        q.push(42, id(0), id(0), ());
        assert_eq!(q.next_tick(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
