//! Lightweight statistics primitives shared by all simulation models.
//!
//! gem5 exposes a rich stats framework; the models in this reproduction need
//! counters, running averages, and small histograms, all exported as flat
//! `(name, value)` pairs through [`crate::Component::stats`].

/// A monotonically increasing event counter.
///
/// ```
/// use sim_core::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Current count as `f64` for stats export.
    pub fn as_f64(&self) -> f64 {
        self.0 as f64
    }
}

/// A running mean with sample count.
///
/// ```
/// use sim_core::stats::Average;
/// let mut a = Average::new();
/// a.sample(2.0);
/// a.sample(4.0);
/// assert_eq!(a.mean(), 3.0);
/// assert_eq!(a.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Average {
    sum: f64,
    n: u64,
}

impl Average {
    /// Creates an empty average.
    pub fn new() -> Self {
        Average::default()
    }

    /// Records one sample.
    pub fn sample(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    /// Mean of all samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Total of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// ```
/// use sim_core::stats::Histogram;
/// let mut h = Histogram::with_buckets(&[10, 100]);
/// h.sample(5);
/// h.sample(50);
/// h.sample(500);
/// assert_eq!(h.bucket_counts(), &[1, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Upper bounds (inclusive) of each bucket except the last overflow one.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds, plus an
    /// implicit overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly increasing.
    pub fn with_buckets(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must increase"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn sample(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum sample seen (0 if none).
    pub fn max(&self) -> u64 {
        self.max
    }
}

/// Accumulates named stats for export.
///
/// ```
/// use sim_core::stats::StatSet;
/// let mut s = StatSet::new();
/// s.set("cycles", 100.0);
/// s.set("stalls", 40.0);
/// assert_eq!(s.get("stalls"), Some(40.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatSet {
    entries: Vec<(String, f64)>,
    // name -> position in `entries`, so `set`/`get` stay O(1) when
    // components export hundreds of stats per report.
    index: std::collections::HashMap<String, usize>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        StatSet::default()
    }

    /// Sets (or overwrites) a named value.
    pub fn set(&mut self, name: &str, value: f64) {
        match self.index.get(name) {
            Some(&i) => self.entries[i].1 = value,
            None => {
                self.index.insert(name.to_string(), self.entries.len());
                self.entries.push((name.to_string(), value));
            }
        }
    }

    /// Reads a named value.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.index.get(name).map(|&i| self.entries[i].1)
    }

    /// Merges `(name, value)` pairs, each key prefixed with `prefix.`
    /// (or unprefixed when `prefix` is empty). This is the bulk-import
    /// path used when folding per-component stats into a parent set.
    pub fn merge_prefixed<I, S>(&mut self, prefix: &str, pairs: I)
    where
        I: IntoIterator<Item = (S, f64)>,
        S: AsRef<str>,
    {
        for (name, value) in pairs {
            if prefix.is_empty() {
                self.set(name.as_ref(), value);
            } else {
                self.set(&format!("{prefix}.{}", name.as_ref()), value);
            }
        }
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Consumes the set, yielding its entries.
    pub fn into_entries(self) -> Vec<(String, f64)> {
        self.entries
    }
}

// Equality is defined by content and order, not by index layout.
impl PartialEq for StatSet {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        for _ in 0..10 {
            c.inc();
        }
        c.add(5);
        assert_eq!(c.value(), 15);
        assert_eq!(c.as_f64(), 15.0);
    }

    #[test]
    fn average_empty_is_zero() {
        assert_eq!(Average::new().mean(), 0.0);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::with_buckets(&[1, 2, 4]);
        for v in [0, 1, 2, 3, 4, 5, 100] {
            h.sample(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 2, 2]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.max(), 100);
    }

    #[test]
    #[should_panic(expected = "increase")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::with_buckets(&[5, 5]);
    }

    #[test]
    fn statset_overwrites() {
        let mut s = StatSet::new();
        s.set("x", 1.0);
        s.set("x", 2.0);
        assert_eq!(s.get("x"), Some(2.0));
        assert_eq!(s.entries().len(), 1);
    }

    #[test]
    fn statset_preserves_insertion_order() {
        let mut s = StatSet::new();
        for name in ["z", "m", "a"] {
            s.set(name, 0.0);
        }
        s.set("m", 9.0);
        let keys: Vec<_> = s.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "m", "a"]);
    }

    #[test]
    fn statset_merge_prefixed() {
        let mut s = StatSet::new();
        s.merge_prefixed("spm", vec![("reads".to_string(), 4.0)]);
        s.merge_prefixed("", vec![("cycles".to_string(), 10.0)]);
        assert_eq!(s.get("spm.reads"), Some(4.0));
        assert_eq!(s.get("cycles"), Some(10.0));
    }

    #[test]
    fn statset_eq_ignores_index_layout() {
        let mut a = StatSet::new();
        a.set("x", 1.0);
        a.set("y", 2.0);
        let mut b = StatSet::new();
        b.set("x", 0.0);
        b.set("y", 2.0);
        b.set("x", 1.0);
        assert_eq!(a, b);
    }
}
