//! Clock domains and frequency arithmetic.

use crate::{Cycle, Tick};

/// A clock frequency, stored exactly as a period in picoseconds.
///
/// gem5-SALAM lets the communications interface and compute unit run on
/// independent clocks; `Frequency` is the user-facing knob for that.
///
/// ```
/// use sim_core::Frequency;
/// let f = Frequency::mhz(100);
/// assert_eq!(f.period_ps(), 10_000);
/// assert_eq!(Frequency::ghz(1).period_ps(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Frequency {
    period_ps: Tick,
}

impl Frequency {
    /// Creates a frequency from a clock period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn from_period_ps(period_ps: Tick) -> Self {
        assert!(period_ps > 0, "clock period must be nonzero");
        Frequency { period_ps }
    }

    /// A frequency of `n` megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or does not divide 1 THz evenly.
    pub fn mhz(n: u64) -> Self {
        assert!(n > 0 && 1_000_000 % n == 0, "MHz value must divide 1e6");
        Frequency::from_period_ps(1_000_000 / n)
    }

    /// A frequency of `n` gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or does not divide 1000 evenly.
    pub fn ghz(n: u64) -> Self {
        assert!(n > 0 && 1_000 % n == 0, "GHz value must divide 1000");
        Frequency::from_period_ps(1_000 / n)
    }

    /// The clock period in picoseconds.
    pub fn period_ps(self) -> Tick {
        self.period_ps
    }

    /// The frequency in megahertz (rounded down).
    pub fn as_mhz(self) -> u64 {
        1_000_000 / self.period_ps
    }
}

impl Default for Frequency {
    /// 1 GHz, the default accelerator clock used throughout the paper's
    /// experiments.
    fn default() -> Self {
        Frequency::ghz(1)
    }
}

impl std::fmt::Display for Frequency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} MHz", self.as_mhz())
    }
}

/// A clock domain: converts between domain cycles and global ticks.
///
/// ```
/// use sim_core::{ClockDomain, Frequency};
/// let clk = ClockDomain::new(Frequency::ghz(1));
/// assert_eq!(clk.cycle_to_tick(3), 3_000);
/// assert_eq!(clk.tick_to_cycle(3_500), 3);
/// assert_eq!(clk.next_edge_at_or_after(2_500), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDomain {
    freq: Frequency,
}

impl ClockDomain {
    /// Creates a clock domain with the given frequency.
    pub fn new(freq: Frequency) -> Self {
        ClockDomain { freq }
    }

    /// The frequency of this domain.
    pub fn frequency(&self) -> Frequency {
        self.freq
    }

    /// The period of one cycle in ticks.
    pub fn period(&self) -> Tick {
        self.freq.period_ps()
    }

    /// The tick of the rising edge that begins `cycle`.
    pub fn cycle_to_tick(&self, cycle: Cycle) -> Tick {
        cycle * self.period()
    }

    /// The cycle containing `tick` (edges belong to the cycle they begin).
    pub fn tick_to_cycle(&self, tick: Tick) -> Cycle {
        tick / self.period()
    }

    /// The first clock edge at or after `tick`.
    pub fn next_edge_at_or_after(&self, tick: Tick) -> Tick {
        let p = self.period();
        tick.div_ceil(p) * p
    }

    /// Ticks elapsed by `n` cycles of this clock.
    pub fn cycles(&self, n: u64) -> Tick {
        n * self.period()
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::new(Frequency::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mhz_and_ghz_periods() {
        assert_eq!(Frequency::mhz(500).period_ps(), 2_000);
        assert_eq!(Frequency::mhz(250).period_ps(), 4_000);
        assert_eq!(Frequency::ghz(2).period_ps(), 500);
    }

    #[test]
    fn as_mhz_roundtrip() {
        for m in [1, 10, 100, 200, 500, 1000] {
            assert_eq!(Frequency::mhz(m).as_mhz(), m);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_period_panics() {
        let _ = Frequency::from_period_ps(0);
    }

    #[test]
    fn edge_alignment() {
        let clk = ClockDomain::new(Frequency::mhz(100)); // 10_000 ps
        assert_eq!(clk.next_edge_at_or_after(0), 0);
        assert_eq!(clk.next_edge_at_or_after(1), 10_000);
        assert_eq!(clk.next_edge_at_or_after(10_000), 10_000);
        assert_eq!(clk.next_edge_at_or_after(10_001), 20_000);
    }

    #[test]
    fn cycle_tick_inverse() {
        let clk = ClockDomain::new(Frequency::ghz(1));
        for c in 0..100 {
            assert_eq!(clk.tick_to_cycle(clk.cycle_to_tick(c)), c);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Frequency::ghz(1).to_string(), "1000 MHz");
    }
}
