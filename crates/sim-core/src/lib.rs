//! # sim-core
//!
//! A deterministic discrete-event simulation kernel, playing the role that
//! gem5's event queue and `SimObject`/`ClockedObject` infrastructure play for
//! gem5-SALAM.
//!
//! The kernel is organized around three ideas:
//!
//! * **Ticks** — simulated time is measured in integer picoseconds
//!   ([`Tick`]), exactly like gem5. [`ClockDomain`] converts between cycles
//!   of a particular clock and ticks, so independently-clocked components
//!   (e.g. a compute unit at 500 MHz and a bus at 1 GHz) can coexist.
//! * **Components and messages** — every model (cache, DMA, accelerator
//!   datapath, ...) implements [`Component`] for some message type `M`.
//!   Components never hold references to each other; all interaction happens
//!   by scheduling messages through the [`Ctx`] handed to
//!   [`Component::handle`]. This mirrors gem5's port/packet discipline while
//!   staying idiomatic, ownership-safe Rust.
//! * **Deterministic ordering** — events that share a tick are delivered in
//!   the order they were scheduled (FIFO per tick), so a simulation is a pure
//!   function of its inputs. Property tests rely on this.
//!
//! # Example
//!
//! ```
//! use sim_core::{Component, Ctx, Simulation, Tick};
//!
//! struct Ping { sent: u32, peer: sim_core::CompId }
//! struct Pong;
//!
//! #[derive(Debug, Clone)]
//! enum Msg { Ping, Pong }
//!
//! impl Component<Msg> for Ping {
//!     fn name(&self) -> &str { "ping" }
//!     fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
//!         if matches!(msg, Msg::Pong) && self.sent < 3 {
//!             self.sent += 1;
//!             ctx.send(self.peer, 10, Msg::Ping);
//!         }
//!     }
//! }
//! impl Component<Msg> for Pong {
//!     fn name(&self) -> &str { "pong" }
//!     fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
//!         let from = ctx.sender();
//!         ctx.send(from, 5, Msg::Pong);
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! let pong = sim.add_component(Pong);
//! let ping = sim.add_component(Ping { sent: 0, peer: pong });
//! sim.post(ping, 0, Msg::Pong);
//! let end: Tick = sim.run();
//! assert_eq!(end, 45);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod event;
mod sim;
pub mod stats;

pub use clock::{ClockDomain, Frequency};
pub use event::{CompId, EventQueue, ScheduledEvent};
pub use sim::{Component, Ctx, RunResult, Simulation};

/// Simulated time in picoseconds, following gem5's convention.
pub type Tick = u64;

/// One cycle of a clock domain, counted from simulation start.
pub type Cycle = u64;
