//! Functions, blocks and the module container.

use crate::inst::Inst;
use crate::types::Type;
use crate::value::{Constant, ValueId, ValueKind};

/// Identifies a basic block within one [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `BlockId` from a raw index (for external data structures that
    /// mirror a function's arenas).
    pub fn from_raw(raw: u32) -> Self {
        BlockId(raw)
    }
}

/// Identifies an instruction within one [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub(crate) u32);

impl InstId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `InstId` from a raw index (for external data structures
    /// that mirror a function's arenas).
    pub fn from_raw(raw: u32) -> Self {
        InstId(raw)
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (without the `%` sigil).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A basic block: a label plus an ordered list of instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Label (without the `%` sigil).
    pub name: String,
    /// Instructions in program order; the last one is the terminator.
    pub insts: Vec<InstId>,
}

/// A single SSA function.
///
/// Instructions, blocks and values live in arenas owned by the function and
/// are addressed by [`InstId`], [`BlockId`] and [`ValueId`].
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (without the `@` sigil).
    pub name: String,
    /// Parameters, in order.
    pub params: Vec<Param>,
    pub(crate) blocks: Vec<Block>,
    pub(crate) insts: Vec<Inst>,
    pub(crate) values: Vec<ValueKind>,
    pub(crate) inst_result: Vec<Option<ValueId>>,
    pub(crate) arg_values: Vec<ValueId>,
}

impl Function {
    /// Creates a function with the given name and parameters and an empty
    /// `entry` block.
    pub fn new(name: &str, params: Vec<Param>) -> Self {
        let mut f = Function {
            name: name.to_string(),
            params,
            blocks: Vec::new(),
            insts: Vec::new(),
            values: Vec::new(),
            inst_result: Vec::new(),
            arg_values: Vec::new(),
        };
        for i in 0..f.params.len() {
            let v = ValueId(f.values.len() as u32);
            f.values.push(ValueKind::Arg(i as u32));
            f.arg_values.push(v);
        }
        f.add_block("entry");
        f
    }

    /// Adds a new empty block and returns its id.
    pub fn add_block(&mut self, name: &str) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: name.to_string(),
            insts: Vec::new(),
        });
        id
    }

    /// Appends `inst` to `block`, returning its id and result value (if any).
    pub fn add_inst(&mut self, block: BlockId, inst: Inst) -> (InstId, Option<ValueId>) {
        let id = InstId(self.insts.len() as u32);
        let result = if inst.has_result() {
            let v = ValueId(self.values.len() as u32);
            self.values.push(ValueKind::Inst(id));
            Some(v)
        } else {
            None
        };
        self.insts.push(inst);
        self.inst_result.push(result);
        self.blocks[block.index()].insts.push(id);
        (id, result)
    }

    /// Interns a constant as a value.
    pub fn const_value(&mut self, c: Constant) -> ValueId {
        // Linear-scan dedup keeps value ids compact; constants per function
        // number in the tens, so this is not a hot path.
        for (i, v) in self.values.iter().enumerate() {
            if let ValueKind::Const(existing) = v {
                if existing == &c {
                    return ValueId(i as u32);
                }
            }
        }
        let v = ValueId(self.values.len() as u32);
        self.values.push(ValueKind::Const(c));
        v
    }

    /// The value for the `i`-th argument.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arg_value(&self, i: usize) -> ValueId {
        self.arg_values[i]
    }

    /// What `v` refers to.
    pub fn value_kind(&self, v: ValueId) -> &ValueKind {
        &self.values[v.index()]
    }

    /// The type of `v`.
    pub fn value_type(&self, v: ValueId) -> Type {
        match self.value_kind(v) {
            ValueKind::Arg(i) => self.params[*i as usize].ty.clone(),
            ValueKind::Inst(id) => self.inst(*id).ty.clone(),
            ValueKind::Const(c) => c.ty(),
        }
    }

    /// The instruction behind `id`.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutable access to the instruction behind `id`.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// The result value of `id`, if it produces one.
    pub fn inst_result(&self, id: InstId) -> Option<ValueId> {
        self.inst_result[id.index()]
    }

    /// The block behind `id`.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// All block ids in creation order (entry first).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// All blocks with their ids.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of instructions (including dead ones not reachable from any
    /// block after pass transformations).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of SSA values (arguments, constants and instruction results).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The terminator of `block`, if the block is non-empty and terminated.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        let last = *self.block(block).insts.last()?;
        self.inst(last).op.is_terminator().then_some(last)
    }

    /// Successor blocks of `block` in terminator order.
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block) {
            Some(t) => self.inst(t).block_refs.clone(),
            None => Vec::new(),
        }
    }

    /// Looks up a block by name.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name == name)
            .map(|i| BlockId(i as u32))
    }

    /// Removes the instructions in `dead` from all blocks.
    ///
    /// The arena entries remain (ids stay stable); only block membership is
    /// dropped, which removes them from execution and printing.
    pub fn remove_insts(&mut self, dead: &std::collections::HashSet<InstId>) {
        for b in &mut self.blocks {
            b.insts.retain(|i| !dead.contains(i));
        }
    }

    /// Rewrites every operand use of `from` to `to`.
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) {
        for inst in &mut self.insts {
            for op in &mut inst.operands {
                if *op == from {
                    *op = to;
                }
            }
        }
    }

    /// Counts live instructions by opcode mnemonic, a cheap structural
    /// fingerprint used in tests and reports.
    pub fn opcode_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut h = std::collections::BTreeMap::new();
        for b in &self.blocks {
            for &i in &b.insts {
                *h.entry(self.inst(i).op.mnemonic()).or_insert(0) += 1;
            }
        }
        h
    }

    /// Total live instruction count across all blocks.
    pub fn live_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A set of functions, mirroring an LLVM module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name (informational).
    pub name: String,
    functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: &str) -> Self {
        Module {
            name: name.to_string(),
            functions: Vec::new(),
        }
    }

    /// Adds a function.
    pub fn add_function(&mut self, f: Function) {
        self.functions.push(f);
    }

    /// All functions in insertion order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable access to all functions.
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;
    use crate::value::Constant;

    fn void_ret() -> Inst {
        Inst {
            op: Opcode::Ret,
            ty: Type::Void,
            operands: vec![],
            block_refs: vec![],
            name: String::new(),
        }
    }

    #[test]
    fn new_function_has_entry() {
        let f = Function::new("f", vec![]);
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.block(f.entry()).name, "entry");
    }

    #[test]
    fn args_get_values() {
        let f = Function::new(
            "f",
            vec![
                Param {
                    name: "a".into(),
                    ty: Type::Ptr,
                },
                Param {
                    name: "n".into(),
                    ty: Type::I32,
                },
            ],
        );
        assert_eq!(f.value_type(f.arg_value(0)), Type::Ptr);
        assert_eq!(f.value_type(f.arg_value(1)), Type::I32);
    }

    #[test]
    fn constants_dedup() {
        let mut f = Function::new("f", vec![]);
        let a = f.const_value(Constant::i32(3));
        let b = f.const_value(Constant::i32(3));
        let c = f.const_value(Constant::i32(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn terminator_and_successors() {
        let mut f = Function::new("f", vec![]);
        let next = f.add_block("next");
        let entry = f.entry();
        f.add_inst(
            entry,
            Inst {
                op: Opcode::Br,
                ty: Type::Void,
                operands: vec![],
                block_refs: vec![next],
                name: String::new(),
            },
        );
        f.add_inst(next, void_ret());
        assert_eq!(f.successors(entry), vec![next]);
        assert!(f.successors(next).is_empty());
        assert!(f.terminator(entry).is_some());
    }

    #[test]
    fn remove_insts_drops_membership() {
        let mut f = Function::new("f", vec![]);
        let entry = f.entry();
        let c = f.const_value(Constant::i32(1));
        let (add_id, _) = f.add_inst(
            entry,
            Inst {
                op: Opcode::Add,
                ty: Type::I32,
                operands: vec![c, c],
                block_refs: vec![],
                name: "x".into(),
            },
        );
        f.add_inst(entry, void_ret());
        assert_eq!(f.live_inst_count(), 2);
        let dead: std::collections::HashSet<_> = [add_id].into_iter().collect();
        f.remove_insts(&dead);
        assert_eq!(f.live_inst_count(), 1);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new("m");
        m.add_function(Function::new("a", vec![]));
        m.add_function(Function::new("b", vec![]));
        assert!(m.function("a").is_some());
        assert!(m.function("missing").is_none());
        assert_eq!(m.functions().len(), 2);
    }
}
