//! A reference interpreter for IR functions.
//!
//! The interpreter serves three roles in the reproduction:
//!
//! 1. **Golden functional results** — MachSuite kernels are checked against
//!    plain-Rust implementations.
//! 2. **Trace generation** — the Aladdin baseline observes every executed
//!    instruction through [`Observer`] to build its dynamic trace.
//! 3. **Profiling** — the HLS reference model observes block entries to
//!    obtain basic-block trip counts.

use std::collections::HashMap;

use crate::function::{BlockId, Function, InstId};
use crate::inst::{FloatPredicate, IntPredicate, Opcode};
use crate::types::Type;
use crate::value::{Constant, ValueId, ValueKind};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtVal {
    /// Integer (sign-extended to 64 bits; the static type carries the width).
    I(i64),
    /// Floating point (f32 results are rounded before storing).
    F(f64),
    /// Pointer (byte address).
    P(u64),
}

impl RtVal {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not an integer.
    pub fn as_i(&self) -> i64 {
        match self {
            RtVal::I(v) => *v,
            other => panic!("expected integer, got {other:?}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not a float.
    pub fn as_f(&self) -> f64 {
        match self {
            RtVal::F(v) => *v,
            other => panic!("expected float, got {other:?}"),
        }
    }

    /// The pointer payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not a pointer.
    pub fn as_p(&self) -> u64 {
        match self {
            RtVal::P(v) => *v,
            other => panic!("expected pointer, got {other:?}"),
        }
    }
}

/// Byte-addressable memory used by the interpreter.
pub trait Memory {
    /// Reads `buf.len()` bytes starting at `addr`.
    fn read(&mut self, addr: u64, buf: &mut [u8]);
    /// Writes `data` starting at `addr`.
    fn write(&mut self, addr: u64, data: &[u8]);

    /// Reads a scalar of type `ty` at `addr`.
    fn read_scalar(&mut self, ty: &Type, addr: u64) -> RtVal {
        let mut buf = [0u8; 8];
        let n = ty.size_bytes() as usize;
        self.read(addr, &mut buf[..n]);
        let raw = u64::from_le_bytes(buf);
        match ty {
            Type::F32 => RtVal::F(f32::from_bits(raw as u32) as f64),
            Type::F64 => RtVal::F(f64::from_bits(raw)),
            Type::Ptr => RtVal::P(raw),
            t if t.is_int() => RtVal::I(sign_extend(raw, t.bits())),
            other => panic!("cannot load {other}"),
        }
    }

    /// Writes scalar `v` of type `ty` at `addr`.
    fn write_scalar(&mut self, ty: &Type, addr: u64, v: RtVal) {
        let n = ty.size_bytes() as usize;
        let raw: u64 = match (ty, v) {
            (Type::F32, RtVal::F(f)) => (f as f32).to_bits() as u64,
            (Type::F64, RtVal::F(f)) => f.to_bits(),
            (Type::Ptr, RtVal::P(p)) => p,
            (t, RtVal::I(i)) if t.is_int() => i as u64,
            (t, v) => panic!("cannot store {v:?} as {t}"),
        };
        self.write(addr, &raw.to_le_bytes()[..n]);
    }
}

/// Sign-extends the low `bits` of `raw` into an `i64`.
pub fn sign_extend(raw: u64, bits: u32) -> i64 {
    if bits >= 64 {
        raw as i64
    } else {
        let shift = 64 - bits;
        ((raw << shift) as i64) >> shift
    }
}

/// A sparse, page-based memory, usable across the whole 64-bit space.
#[derive(Debug, Default, Clone)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE]>>,
}

const PAGE: usize = 4096;

impl SparseMemory {
    /// Creates an empty memory; all bytes read as zero.
    pub fn new() -> Self {
        SparseMemory::default()
    }

    fn page(&mut self, addr: u64) -> &mut [u8; PAGE] {
        self.pages
            .entry(addr / PAGE as u64)
            .or_insert_with(|| Box::new([0; PAGE]))
    }

    /// Copies a `u8` slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.write(addr, data);
    }

    /// Convenience: writes a slice of `f32` values at `addr`.
    pub fn write_f32_slice(&mut self, addr: u64, data: &[f32]) {
        for (i, v) in data.iter().enumerate() {
            self.write(addr + (i * 4) as u64, &v.to_le_bytes());
        }
    }

    /// Convenience: writes a slice of `f64` values at `addr`.
    pub fn write_f64_slice(&mut self, addr: u64, data: &[f64]) {
        for (i, v) in data.iter().enumerate() {
            self.write(addr + (i * 8) as u64, &v.to_le_bytes());
        }
    }

    /// Convenience: writes a slice of `i32` values at `addr`.
    pub fn write_i32_slice(&mut self, addr: u64, data: &[i32]) {
        for (i, v) in data.iter().enumerate() {
            self.write(addr + (i * 4) as u64, &v.to_le_bytes());
        }
    }

    /// Convenience: writes a slice of `i64` values at `addr`.
    pub fn write_i64_slice(&mut self, addr: u64, data: &[i64]) {
        for (i, v) in data.iter().enumerate() {
            self.write(addr + (i * 8) as u64, &v.to_le_bytes());
        }
    }

    /// Convenience: reads `n` `f32` values at `addr`.
    pub fn read_f32_slice(&mut self, addr: u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let mut b = [0u8; 4];
                self.read(addr + (i * 4) as u64, &mut b);
                f32::from_le_bytes(b)
            })
            .collect()
    }

    /// Convenience: reads `n` `f64` values at `addr`.
    pub fn read_f64_slice(&mut self, addr: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut b = [0u8; 8];
                self.read(addr + (i * 8) as u64, &mut b);
                f64::from_le_bytes(b)
            })
            .collect()
    }

    /// Convenience: reads `n` `i32` values at `addr`.
    pub fn read_i32_slice(&mut self, addr: u64, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| {
                let mut b = [0u8; 4];
                self.read(addr + (i * 4) as u64, &mut b);
                i32::from_le_bytes(b)
            })
            .collect()
    }

    /// Convenience: reads `n` `i64` values at `addr`.
    pub fn read_i64_slice(&mut self, addr: u64, n: usize) -> Vec<i64> {
        (0..n)
            .map(|i| {
                let mut b = [0u8; 8];
                self.read(addr + (i * 8) as u64, &mut b);
                i64::from_le_bytes(b)
            })
            .collect()
    }
}

impl Memory for SparseMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i as u64;
            let page = self.page(a);
            *b = page[(a % PAGE as u64) as usize];
        }
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        for (i, &d) in data.iter().enumerate() {
            let a = addr + i as u64;
            let page = self.page(a);
            page[(a % PAGE as u64) as usize] = d;
        }
    }
}

/// Observes interpreter execution (tracing, profiling).
pub trait Observer {
    /// Called when control enters a block.
    fn on_block_enter(&mut self, _f: &Function, _b: BlockId) {}
    /// Called after each executed instruction; `mem_addr` is set for
    /// loads/stores.
    fn on_inst(
        &mut self,
        _f: &Function,
        _id: InstId,
        _result: Option<&RtVal>,
        _mem_addr: Option<u64>,
    ) {
    }
}

/// An observer that does nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Counts executed instructions and per-block entries.
#[derive(Debug, Default, Clone)]
pub struct ProfileObserver {
    /// Dynamic instruction count.
    pub insts: u64,
    /// Entry count per block id index.
    pub block_entries: HashMap<BlockId, u64>,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
}

impl Observer for ProfileObserver {
    fn on_block_enter(&mut self, _f: &Function, b: BlockId) {
        *self.block_entries.entry(b).or_insert(0) += 1;
    }
    fn on_inst(
        &mut self,
        f: &Function,
        id: InstId,
        _result: Option<&RtVal>,
        _mem_addr: Option<u64>,
    ) {
        self.insts += 1;
        match f.inst(id).op {
            Opcode::Load => self.loads += 1,
            Opcode::Store => self.stores += 1,
            _ => {}
        }
    }
}

/// An interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description of the fault.
    pub message: String,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

/// Executes `f` with `args` against `mem`, reporting events to `obs`.
///
/// Returns the value passed to `ret`, if any.
///
/// # Errors
///
/// Fails on argument-count mismatch, division by zero, use of `undef`, or
/// exceeding `max_steps` dynamic instructions.
pub fn run_function(
    f: &Function,
    args: &[RtVal],
    mem: &mut dyn Memory,
    obs: &mut dyn Observer,
    max_steps: u64,
) -> Result<Option<RtVal>, InterpError> {
    if args.len() != f.params.len() {
        return Err(InterpError {
            message: format!("expected {} arguments, got {}", f.params.len(), args.len()),
        });
    }
    let mut values: Vec<Option<RtVal>> = vec![None; f.values.len()];
    for (i, a) in args.iter().enumerate() {
        values[f.arg_value(i).index()] = Some(*a);
    }

    let get = |values: &[Option<RtVal>], f: &Function, v: ValueId| -> Result<RtVal, InterpError> {
        match f.value_kind(v) {
            ValueKind::Const(c) => const_val(c),
            _ => values[v.index()].ok_or_else(|| InterpError {
                message: "read of unset SSA value".to_string(),
            }),
        }
    };

    let mut steps: u64 = 0;
    let mut block = f.entry();
    let mut prev_block: Option<BlockId> = None;
    obs.on_block_enter(f, block);
    loop {
        // Evaluate phis of the block simultaneously.
        let insts = &f.block(block).insts;
        let mut phi_updates: Vec<(ValueId, RtVal, InstId)> = Vec::new();
        for &iid in insts {
            let inst = f.inst(iid);
            if inst.op != Opcode::Phi {
                break;
            }
            let pred = prev_block.ok_or_else(|| InterpError {
                message: "phi executed with no predecessor".to_string(),
            })?;
            let k = inst
                .block_refs
                .iter()
                .position(|&b| b == pred)
                .ok_or_else(|| InterpError {
                    message: "phi missing incoming edge".to_string(),
                })?;
            let v = get(&values, f, inst.operands[k])?;
            phi_updates.push((f.inst_result(iid).expect("phi has result"), v, iid));
        }
        for (vid, v, iid) in phi_updates {
            values[vid.index()] = Some(v);
            obs.on_inst(f, iid, Some(&v), None);
            steps += 1;
        }

        let mut next_block: Option<BlockId> = None;
        for &iid in insts {
            let inst = f.inst(iid);
            if inst.op == Opcode::Phi {
                continue;
            }
            steps += 1;
            if steps > max_steps {
                return Err(InterpError {
                    message: format!("exceeded {max_steps} steps"),
                });
            }
            let ops = &inst.operands;
            match &inst.op {
                Opcode::Br => {
                    next_block = Some(inst.block_refs[0]);
                    obs.on_inst(f, iid, None, None);
                    break;
                }
                Opcode::CondBr => {
                    let c = get(&values, f, ops[0])?.as_i();
                    next_block = Some(if c != 0 {
                        inst.block_refs[0]
                    } else {
                        inst.block_refs[1]
                    });
                    obs.on_inst(f, iid, None, None);
                    break;
                }
                Opcode::Ret => {
                    let rv = match ops.first() {
                        Some(&v) => Some(get(&values, f, v)?),
                        None => None,
                    };
                    obs.on_inst(f, iid, rv.as_ref(), None);
                    return Ok(rv);
                }
                Opcode::Store => {
                    let v = get(&values, f, ops[0])?;
                    let p = get(&values, f, ops[1])?.as_p();
                    let ty = f.value_type(ops[0]);
                    mem.write_scalar(&ty, p, v);
                    obs.on_inst(f, iid, None, Some(p));
                }
                Opcode::Load => {
                    let p = get(&values, f, ops[0])?.as_p();
                    let v = mem.read_scalar(&inst.ty, p);
                    values[f.inst_result(iid).unwrap().index()] = Some(v);
                    obs.on_inst(f, iid, Some(&v), Some(p));
                }
                op => {
                    let v = eval_pure(f, op, &inst.ty, ops, |v| get(&values, f, v))?;
                    values[f.inst_result(iid).unwrap().index()] = Some(v);
                    obs.on_inst(f, iid, Some(&v), None);
                }
            }
        }
        match next_block {
            Some(nb) => {
                prev_block = Some(block);
                block = nb;
                obs.on_block_enter(f, block);
            }
            None => {
                return Err(InterpError {
                    message: "block fell through without terminator".into(),
                })
            }
        }
    }
}

fn const_val(c: &Constant) -> Result<RtVal, InterpError> {
    match c {
        Constant::Int { value, .. } => Ok(RtVal::I(*value)),
        Constant::Float { ty, value } => Ok(RtVal::F(if *ty == Type::F32 {
            *value as f32 as f64
        } else {
            *value
        })),
        Constant::NullPtr => Ok(RtVal::P(0)),
        Constant::Undef(_) => Err(InterpError {
            message: "use of undef".to_string(),
        }),
    }
}

/// Evaluates a side-effect-free opcode. Shared with the runtime engine and
/// the Aladdin baseline, so all three execution models agree on semantics.
pub fn eval_pure(
    f: &Function,
    op: &Opcode,
    result_ty: &Type,
    ops: &[ValueId],
    mut get: impl FnMut(ValueId) -> Result<RtVal, InterpError>,
) -> Result<RtVal, InterpError> {
    let wrap_int = |v: i64, ty: &Type| RtVal::I(sign_extend(v as u64, ty.bits()));
    let round_f = |v: f64, ty: &Type| RtVal::F(if *ty == Type::F32 { v as f32 as f64 } else { v });
    Ok(match op {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::UDiv
        | Opcode::SDiv
        | Opcode::URem
        | Opcode::SRem
        | Opcode::Shl
        | Opcode::LShr
        | Opcode::AShr
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor => {
            let ty = f.value_type(ops[0]);
            let bits = ty.bits();
            let a = get(ops[0])?.as_i();
            let b = get(ops[1])?.as_i();
            let ua = (a as u64) & mask(bits);
            let ub = (b as u64) & mask(bits);
            let div_check = |v: i64| -> Result<i64, InterpError> {
                if v == 0 {
                    Err(InterpError {
                        message: "division by zero".to_string(),
                    })
                } else {
                    Ok(v)
                }
            };
            let r: i64 = match op {
                Opcode::Add => a.wrapping_add(b),
                Opcode::Sub => a.wrapping_sub(b),
                Opcode::Mul => a.wrapping_mul(b),
                Opcode::SDiv => a.wrapping_div(div_check(b)?),
                Opcode::SRem => a.wrapping_rem(div_check(b)?),
                Opcode::UDiv => {
                    div_check(ub as i64)?;
                    (ua / ub) as i64
                }
                Opcode::URem => {
                    div_check(ub as i64)?;
                    (ua % ub) as i64
                }
                Opcode::Shl => ((ua << (ub % bits as u64)) & mask(bits)) as i64,
                Opcode::LShr => (ua >> (ub % bits as u64)) as i64,
                Opcode::AShr => a >> (ub % bits as u64),
                Opcode::And => a & b,
                Opcode::Or => a | b,
                Opcode::Xor => a ^ b,
                _ => unreachable!(),
            };
            wrap_int(r, &ty)
        }
        Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
            let ty = f.value_type(ops[0]);
            let a = get(ops[0])?.as_f();
            let b = get(ops[1])?.as_f();
            let r = match op {
                Opcode::FAdd => a + b,
                Opcode::FSub => a - b,
                Opcode::FMul => a * b,
                Opcode::FDiv => a / b,
                _ => unreachable!(),
            };
            round_f(r, &ty)
        }
        Opcode::FNeg => round_f(-get(ops[0])?.as_f(), &f.value_type(ops[0])),
        Opcode::ICmp(p) => {
            let ty = f.value_type(ops[0]);
            let (a, b) = if ty.is_ptr() {
                (get(ops[0])?.as_p() as i64, get(ops[1])?.as_p() as i64)
            } else {
                (get(ops[0])?.as_i(), get(ops[1])?.as_i())
            };
            let bits = if ty.is_ptr() { 64 } else { ty.bits() };
            let (ua, ub) = ((a as u64) & mask(bits), (b as u64) & mask(bits));
            let r = match p {
                IntPredicate::Eq => a == b,
                IntPredicate::Ne => a != b,
                IntPredicate::Sgt => a > b,
                IntPredicate::Sge => a >= b,
                IntPredicate::Slt => a < b,
                IntPredicate::Sle => a <= b,
                IntPredicate::Ugt => ua > ub,
                IntPredicate::Uge => ua >= ub,
                IntPredicate::Ult => ua < ub,
                IntPredicate::Ule => ua <= ub,
            };
            RtVal::I(r as i64)
        }
        Opcode::FCmp(p) => {
            let a = get(ops[0])?.as_f();
            let b = get(ops[1])?.as_f();
            let r = match p {
                FloatPredicate::Oeq => a == b,
                FloatPredicate::One => a != b && !a.is_nan() && !b.is_nan(),
                FloatPredicate::Ogt => a > b,
                FloatPredicate::Oge => a >= b,
                FloatPredicate::Olt => a < b,
                FloatPredicate::Ole => a <= b,
                FloatPredicate::Une => a != b,
            };
            RtVal::I(r as i64)
        }
        Opcode::Gep { elem } => {
            let base = get(ops[0])?.as_p();
            let mut addr = base;
            let mut cur: Type = elem.clone();
            for (k, &idx) in ops[1..].iter().enumerate() {
                let i = get(idx)?.as_i();
                if k == 0 {
                    addr = addr.wrapping_add((i as i128 * cur.size_bytes() as i128) as u64);
                } else {
                    let Type::Array { elem, .. } = cur else {
                        return Err(InterpError {
                            message: "gep index into non-array".into(),
                        });
                    };
                    cur = *elem;
                    addr = addr.wrapping_add((i as i128 * cur.size_bytes() as i128) as u64);
                }
            }
            RtVal::P(addr)
        }
        Opcode::Trunc => wrap_int(get(ops[0])?.as_i(), result_ty),
        Opcode::ZExt => {
            let from_bits = f.value_type(ops[0]).bits();
            RtVal::I(((get(ops[0])?.as_i() as u64) & mask(from_bits)) as i64)
        }
        Opcode::SExt => RtVal::I(get(ops[0])?.as_i()),
        Opcode::FPTrunc | Opcode::FPExt => round_f(get(ops[0])?.as_f(), result_ty),
        Opcode::FPToSI | Opcode::FPToUI => wrap_int(get(ops[0])?.as_f() as i64, result_ty),
        Opcode::SIToFP => round_f(get(ops[0])?.as_i() as f64, result_ty),
        Opcode::UIToFP => {
            let from_bits = f.value_type(ops[0]).bits();
            round_f(
                ((get(ops[0])?.as_i() as u64) & mask(from_bits)) as f64,
                result_ty,
            )
        }
        Opcode::BitCast => {
            let v = get(ops[0])?;
            let from_ty = f.value_type(ops[0]);
            match (from_ty.is_float(), result_ty.is_float()) {
                (true, false) => {
                    let raw = if from_ty == Type::F32 {
                        (v.as_f() as f32).to_bits() as u64
                    } else {
                        v.as_f().to_bits()
                    };
                    wrap_int(raw as i64, result_ty)
                }
                (false, true) => {
                    let raw = (v.as_i() as u64) & mask(f.value_type(ops[0]).bits());
                    if *result_ty == Type::F32 {
                        RtVal::F(f32::from_bits(raw as u32) as f64)
                    } else {
                        RtVal::F(f64::from_bits(raw))
                    }
                }
                _ => v,
            }
        }
        Opcode::PtrToInt => wrap_int(get(ops[0])?.as_p() as i64, result_ty),
        Opcode::IntToPtr => RtVal::P(get(ops[0])?.as_i() as u64),
        Opcode::Select => {
            if get(ops[0])?.as_i() != 0 {
                get(ops[1])?
            } else {
                get(ops[2])?
            }
        }
        other => {
            return Err(InterpError {
                message: format!("eval_pure on {:?}", other),
            });
        }
    })
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::IntPredicate;

    #[test]
    fn sparse_memory_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_f32_slice(0x1000, &[1.0, 2.5, -3.0]);
        assert_eq!(m.read_f32_slice(0x1000, 3), vec![1.0, 2.5, -3.0]);
        m.write_i64_slice(0xFFF, &[-7]); // straddles a page boundary
        assert_eq!(m.read_i64_slice(0xFFF, 1), vec![-7]);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xFF, 8), -1);
        assert_eq!(sign_extend(0x7F, 8), 127);
        assert_eq!(sign_extend(0xFFFF_FFFF, 32), -1);
        assert_eq!(sign_extend(5, 64), 5);
    }

    #[test]
    fn runs_vector_add() {
        let mut fb = FunctionBuilder::new(
            "vadd",
            &[
                ("a", Type::Ptr),
                ("b", Type::Ptr),
                ("c", Type::Ptr),
                ("n", Type::I64),
            ],
        );
        let (a, b, c, n) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3));
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let pa = fb.gep1(Type::F32, a, iv, "pa");
            let pb = fb.gep1(Type::F32, b, iv, "pb");
            let pc = fb.gep1(Type::F32, c, iv, "pc");
            let x = fb.load(Type::F32, pa, "x");
            let y = fb.load(Type::F32, pb, "y");
            let s = fb.fadd(x, y, "s");
            fb.store(s, pc);
        });
        fb.ret();
        let f = fb.finish();

        let mut mem = SparseMemory::new();
        mem.write_f32_slice(0x100, &[1.0, 2.0, 3.0, 4.0]);
        mem.write_f32_slice(0x200, &[10.0, 20.0, 30.0, 40.0]);
        let mut obs = ProfileObserver::default();
        run_function(
            &f,
            &[
                RtVal::P(0x100),
                RtVal::P(0x200),
                RtVal::P(0x300),
                RtVal::I(4),
            ],
            &mut mem,
            &mut obs,
            1_000_000,
        )
        .unwrap();
        assert_eq!(mem.read_f32_slice(0x300, 4), vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(obs.loads, 8);
        assert_eq!(obs.stores, 4);
        let body = f.block_by_name("i.body").unwrap();
        assert_eq!(obs.block_entries[&body], 4);
    }

    #[test]
    fn returns_value() {
        let mut fb = FunctionBuilder::new("max", &[("a", Type::I32), ("b", Type::I32)]);
        let (a, b) = (fb.arg(0), fb.arg(1));
        let c = fb.icmp(IntPredicate::Sgt, a, b, "c");
        let m = fb.select(c, a, b, "m");
        fb.ret_value(m);
        let f = fb.finish();
        let mut mem = SparseMemory::new();
        let r = run_function(
            &f,
            &[RtVal::I(3), RtVal::I(9)],
            &mut mem,
            &mut NullObserver,
            100,
        )
        .unwrap();
        assert_eq!(r, Some(RtVal::I(9)));
    }

    #[test]
    fn division_by_zero_reported() {
        let mut fb = FunctionBuilder::new("div", &[("a", Type::I32), ("b", Type::I32)]);
        let (a, b) = (fb.arg(0), fb.arg(1));
        let d = fb.sdiv(a, b, "d");
        fb.ret_value(d);
        let f = fb.finish();
        let mut mem = SparseMemory::new();
        let err = run_function(
            &f,
            &[RtVal::I(1), RtVal::I(0)],
            &mut mem,
            &mut NullObserver,
            100,
        )
        .unwrap_err();
        assert!(err.message.contains("division by zero"));
    }

    #[test]
    fn step_limit_enforced() {
        let mut fb = FunctionBuilder::new("spin", &[]);
        let loop_b = fb.add_block("loop");
        fb.br(loop_b);
        fb.position_at(loop_b);
        fb.br(loop_b);
        let f = fb.finish();
        let mut mem = SparseMemory::new();
        let err = run_function(&f, &[], &mut mem, &mut NullObserver, 50).unwrap_err();
        assert!(err.message.contains("exceeded"));
    }

    #[test]
    fn nested_gep_indexes_2d() {
        // double m[3][4]; return m[1][2]  => offset (1*4+2)*8 = 48
        let mut fb = FunctionBuilder::new("at", &[("m", Type::Ptr)]);
        let m = fb.arg(0);
        let zero = fb.i64c(0);
        let one = fb.i64c(1);
        let two = fb.i64c(2);
        let row_ty = Type::array(Type::F64, 4);
        let mat_ty = Type::array(row_ty, 3);
        let p = fb.gep(mat_ty, m, &[zero, one, two], "p");
        let v = fb.load(Type::F64, p, "v");
        fb.ret_value(v);
        let f = fb.finish();
        let mut mem = SparseMemory::new();
        let vals: Vec<f64> = (0..12).map(|i| i as f64).collect();
        mem.write_f64_slice(0, &vals);
        let r = run_function(&f, &[RtVal::P(0)], &mut mem, &mut NullObserver, 100).unwrap();
        assert_eq!(r, Some(RtVal::F(6.0)));
    }

    #[test]
    fn integer_wrapping_at_width() {
        let mut fb = FunctionBuilder::new("wrap", &[("a", Type::I8)]);
        let a = fb.arg(0);
        let one = fb.iconst(Type::I8, 1);
        let s = fb.add(a, one, "s");
        fb.ret_value(s);
        let f = fb.finish();
        let mut mem = SparseMemory::new();
        let r = run_function(&f, &[RtVal::I(127)], &mut mem, &mut NullObserver, 100).unwrap();
        assert_eq!(r, Some(RtVal::I(-128)));
    }
}
