//! IR well-formedness checks: structure, types, and SSA dominance.

use std::collections::HashMap;

use crate::analysis::{Cfg, DomTree};
use crate::function::{BlockId, Function, InstId};
use crate::inst::Opcode;
use crate::types::Type;
use crate::value::{ValueId, ValueKind};

/// An error found by [`verify_function`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The function in which the error was found.
    pub function: String,
    /// Description of the violation.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "verification of @{} failed: {}",
            self.function, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// Checks a function for structural, type, and SSA violations.
///
/// Checks performed:
/// * every reachable block ends with exactly one terminator,
/// * operand counts and types match each opcode,
/// * `phi` nodes have one incoming edge per CFG predecessor,
/// * the entry block has no phis,
/// * every use is dominated by its definition.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let fail = |msg: String| {
        Err(VerifyError {
            function: f.name.clone(),
            message: msg,
        })
    };

    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);

    // Structure: reachable blocks non-empty; terminator last and only last.
    // Unreachable blocks may be left empty by passes and are ignored.
    for (bid, b) in f.blocks() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        if b.insts.is_empty() {
            return fail(format!("block %{} is empty", b.name));
        }
        for (i, &inst_id) in b.insts.iter().enumerate() {
            let is_last = i + 1 == b.insts.len();
            let inst = f.inst(inst_id);
            if inst.op.is_terminator() != is_last {
                return fail(format!(
                    "block %{}: terminator placement violated at instruction {i}",
                    b.name
                ));
            }
            if inst.op == Opcode::Phi && i > 0 {
                let prev = f.inst(b.insts[i - 1]);
                if prev.op != Opcode::Phi {
                    return fail(format!("block %{}: phi not at block head", b.name));
                }
            }
        }
        let _ = bid;
    }

    // Entry must have no phis (it has no predecessors).
    let entry = f.entry();
    for &i in &f.block(entry).insts {
        if f.inst(i).op == Opcode::Phi {
            return fail("entry block contains a phi".to_string());
        }
    }

    // Map: defining block + index of every instruction value.
    let mut def_site: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
    for (bid, b) in f.blocks() {
        for (i, &inst_id) in b.insts.iter().enumerate() {
            if let Some(v) = f.inst_result(inst_id) {
                def_site.insert(v, (bid, i));
            }
        }
    }

    for (bid, b) in f.blocks() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        for (pos, &inst_id) in b.insts.iter().enumerate() {
            check_inst(f, inst_id, &cfg, bid)?;
            let inst = f.inst(inst_id);
            // Dominance of operands.
            for (k, &op) in inst.operands.iter().enumerate() {
                let ValueKind::Inst(_) = f.value_kind(op) else {
                    continue;
                };
                let Some(&(def_block, def_pos)) = def_site.get(&op) else {
                    return fail(format!(
                        "use of value without live definition in %{}",
                        b.name
                    ));
                };
                if inst.op == Opcode::Phi {
                    // Phi use must be dominated at the end of the incoming
                    // block.
                    let incoming = inst.block_refs[k];
                    if !dom.dominates(def_block, incoming) {
                        return fail(format!(
                            "phi in %{} uses value not dominating incoming block",
                            b.name
                        ));
                    }
                } else if def_block == bid {
                    if def_pos >= pos {
                        return fail(format!("use before def within block %{}", b.name));
                    }
                } else if !dom.dominates(def_block, bid) {
                    return fail(format!("use in %{} not dominated by definition", b.name));
                }
            }
            // Phi arity vs predecessors.
            if inst.op == Opcode::Phi {
                let mut preds: Vec<BlockId> = cfg.predecessors(bid).to_vec();
                preds.sort();
                preds.dedup();
                let mut incoming: Vec<BlockId> = inst.block_refs.clone();
                incoming.sort();
                incoming.dedup();
                if preds != incoming {
                    return fail(format!(
                        "phi in %{} incoming blocks do not match predecessors",
                        b.name
                    ));
                }
            }
        }
    }
    Ok(())
}

fn check_inst(f: &Function, inst_id: InstId, _cfg: &Cfg, bid: BlockId) -> Result<(), VerifyError> {
    let inst = f.inst(inst_id);
    let bname = &f.block(bid).name;
    let fail = |msg: String| {
        Err(VerifyError {
            function: f.name.clone(),
            message: format!("in %{bname}: {msg}"),
        })
    };
    let ops = &inst.operands;
    let opty = |i: usize| f.value_type(ops[i]);
    let want = |n: usize| -> Result<(), VerifyError> {
        if ops.len() != n {
            Err(VerifyError {
                function: f.name.clone(),
                message: format!(
                    "in %{bname}: {} expects {n} operands, has {}",
                    inst.op.mnemonic(),
                    ops.len()
                ),
            })
        } else {
            Ok(())
        }
    };

    match &inst.op {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::UDiv
        | Opcode::SDiv
        | Opcode::URem
        | Opcode::SRem
        | Opcode::Shl
        | Opcode::LShr
        | Opcode::AShr
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor => {
            want(2)?;
            if !opty(0).is_int() || opty(0) != opty(1) || inst.ty != opty(0) {
                return fail(format!(
                    "integer binary op type mismatch ({})",
                    inst.op.mnemonic()
                ));
            }
        }
        Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
            want(2)?;
            if !opty(0).is_float() || opty(0) != opty(1) || inst.ty != opty(0) {
                return fail(format!(
                    "float binary op type mismatch ({})",
                    inst.op.mnemonic()
                ));
            }
        }
        Opcode::FNeg => {
            want(1)?;
            if !opty(0).is_float() || inst.ty != opty(0) {
                return fail("fneg type mismatch".to_string());
            }
        }
        Opcode::ICmp(_) => {
            want(2)?;
            let t = opty(0);
            if !(t.is_int() || t.is_ptr()) || t != opty(1) || inst.ty != Type::I1 {
                return fail("icmp type mismatch".to_string());
            }
        }
        Opcode::FCmp(_) => {
            want(2)?;
            if !opty(0).is_float() || opty(0) != opty(1) || inst.ty != Type::I1 {
                return fail("fcmp type mismatch".to_string());
            }
        }
        Opcode::Load => {
            want(1)?;
            if !opty(0).is_ptr() {
                return fail("load from non-pointer".to_string());
            }
            if inst.ty == Type::Void {
                return fail("load of void".to_string());
            }
        }
        Opcode::Store => {
            want(2)?;
            if !opty(1).is_ptr() {
                return fail("store to non-pointer".to_string());
            }
        }
        Opcode::Gep { .. } => {
            if ops.is_empty() {
                return fail("gep needs a pointer operand".to_string());
            }
            if !opty(0).is_ptr() || inst.ty != Type::Ptr {
                return fail("gep pointer type mismatch".to_string());
            }
            for i in 1..ops.len() {
                if !opty(i).is_int() {
                    return fail("gep index not an integer".to_string());
                }
            }
        }
        Opcode::Trunc | Opcode::ZExt | Opcode::SExt => {
            want(1)?;
            if !opty(0).is_int() || !inst.ty.is_int() {
                return fail("integer cast on non-integer".to_string());
            }
            let (from, to) = (opty(0).bits(), inst.ty.bits());
            let ok = match inst.op {
                Opcode::Trunc => to < from,
                _ => to > from,
            };
            if !ok {
                return fail(format!("bad cast width {from} -> {to}"));
            }
        }
        Opcode::FPTrunc | Opcode::FPExt => {
            want(1)?;
            if !opty(0).is_float() || !inst.ty.is_float() {
                return fail("float cast on non-float".to_string());
            }
        }
        Opcode::FPToSI | Opcode::FPToUI => {
            want(1)?;
            if !opty(0).is_float() || !inst.ty.is_int() {
                return fail("fp-to-int cast type mismatch".to_string());
            }
        }
        Opcode::SIToFP | Opcode::UIToFP => {
            want(1)?;
            if !opty(0).is_int() || !inst.ty.is_float() {
                return fail("int-to-fp cast type mismatch".to_string());
            }
        }
        Opcode::BitCast => {
            want(1)?;
            if opty(0).size_bytes() != inst.ty.size_bytes() {
                return fail("bitcast width mismatch".to_string());
            }
        }
        Opcode::PtrToInt => {
            want(1)?;
            if !opty(0).is_ptr() || !inst.ty.is_int() {
                return fail("ptrtoint type mismatch".to_string());
            }
        }
        Opcode::IntToPtr => {
            want(1)?;
            if !opty(0).is_int() || !inst.ty.is_ptr() {
                return fail("inttoptr type mismatch".to_string());
            }
        }
        Opcode::Phi => {
            if ops.len() != inst.block_refs.len() || ops.is_empty() {
                return fail("phi operand/block arity mismatch".to_string());
            }
            for &v in ops {
                if f.value_type(v) != inst.ty {
                    return fail("phi incoming type mismatch".to_string());
                }
            }
        }
        Opcode::Select => {
            want(3)?;
            if opty(0) != Type::I1 || opty(1) != opty(2) || inst.ty != opty(1) {
                return fail("select type mismatch".to_string());
            }
        }
        Opcode::Br => {
            if inst.block_refs.len() != 1 || !ops.is_empty() {
                return fail("br arity mismatch".to_string());
            }
        }
        Opcode::CondBr => {
            want(1)?;
            if inst.block_refs.len() != 2 || opty(0) != Type::I1 {
                return fail("condbr arity/type mismatch".to_string());
            }
        }
        Opcode::Ret => {
            if ops.len() > 1 {
                return fail("ret with multiple values".to_string());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Inst;
    use crate::value::Constant;

    #[test]
    fn accepts_wellformed_loop() {
        let mut fb = FunctionBuilder::new("ok", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let p = fb.gep1(Type::I64, a, iv, "p");
            fb.store(iv, p);
        });
        fb.ret();
        assert!(verify_function(&fb.finish()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = Function::new("bad", vec![]);
        let entry = f.entry();
        let c = f.const_value(Constant::i32(1));
        f.add_inst(
            entry,
            Inst {
                op: Opcode::Add,
                ty: Type::I32,
                operands: vec![c, c],
                block_refs: vec![],
                name: "x".into(),
            },
        );
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("terminator"), "{err}");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut f = Function::new("bad", vec![]);
        let entry = f.entry();
        let ci = f.const_value(Constant::i32(1));
        let cf = f.const_value(Constant::f32(1.0));
        f.add_inst(
            entry,
            Inst {
                op: Opcode::Add,
                ty: Type::I32,
                operands: vec![ci, cf],
                block_refs: vec![],
                name: "x".into(),
            },
        );
        f.add_inst(
            entry,
            Inst {
                op: Opcode::Ret,
                ty: Type::Void,
                operands: vec![],
                block_refs: vec![],
                name: String::new(),
            },
        );
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("type mismatch"), "{err}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut fb = FunctionBuilder::new("bad", &[("x", Type::I32)]);
        let x = fb.arg(0);
        // Build a legitimate function first, then scramble the block order.
        let a = fb.add(x, x, "a");
        let b = fb.add(a, x, "b");
        let _ = b;
        fb.ret();
        let mut f = fb.finish();
        // Swap the two adds so `b` uses `a` before its definition.
        let entry = f.entry();
        f.blocks[entry.index()].insts.swap(0, 1);
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("use before def"), "{err}");
    }

    #[test]
    fn rejects_phi_in_entry() {
        let mut f = Function::new("bad", vec![]);
        let entry = f.entry();
        let c = f.const_value(Constant::i32(0));
        f.add_inst(
            entry,
            Inst {
                op: Opcode::Phi,
                ty: Type::I32,
                operands: vec![c],
                block_refs: vec![entry],
                name: "p".into(),
            },
        );
        f.add_inst(
            entry,
            Inst {
                op: Opcode::Ret,
                ty: Type::Void,
                operands: vec![],
                block_refs: vec![],
                name: String::new(),
            },
        );
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("entry block contains a phi"), "{err}");
    }

    #[test]
    fn rejects_bad_cast_width() {
        let mut fb = FunctionBuilder::new("bad", &[("x", Type::I32)]);
        let x = fb.arg(0);
        let t = fb.trunc(x, Type::I64, "t"); // trunc to a *wider* type
        let _ = t;
        fb.ret();
        let err = verify_function(&fb.finish()).unwrap_err();
        assert!(err.message.contains("bad cast width"), "{err}");
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut fb = FunctionBuilder::new("bad", &[("n", Type::I64)]);
        let next = fb.add_block("next");
        fb.br(next);
        fb.position_at(next);
        let (phi, _) = fb.phi(Type::I64, "p");
        let n = fb.arg(0);
        // Claim the incoming edge is from `next` itself, which is not a pred.
        fb.add_incoming(phi, n, next);
        fb.ret();
        let err = verify_function(&fb.finish()).unwrap_err();
        assert!(err.message.contains("do not match predecessors"), "{err}");
    }
}
