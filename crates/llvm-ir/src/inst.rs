//! Instructions and opcodes.

use crate::function::BlockId;
use crate::types::Type;
use crate::value::ValueId;

/// Integer comparison predicates (a subset of LLVM's `icmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntPredicate {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater or equal.
    Uge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less or equal.
    Ule,
    /// Signed greater than.
    Sgt,
    /// Signed greater or equal.
    Sge,
    /// Signed less than.
    Slt,
    /// Signed less or equal.
    Sle,
}

impl IntPredicate {
    /// The LLVM keyword for this predicate.
    pub fn keyword(self) -> &'static str {
        match self {
            IntPredicate::Eq => "eq",
            IntPredicate::Ne => "ne",
            IntPredicate::Ugt => "ugt",
            IntPredicate::Uge => "uge",
            IntPredicate::Ult => "ult",
            IntPredicate::Ule => "ule",
            IntPredicate::Sgt => "sgt",
            IntPredicate::Sge => "sge",
            IntPredicate::Slt => "slt",
            IntPredicate::Sle => "sle",
        }
    }

    /// Parses an LLVM predicate keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => IntPredicate::Eq,
            "ne" => IntPredicate::Ne,
            "ugt" => IntPredicate::Ugt,
            "uge" => IntPredicate::Uge,
            "ult" => IntPredicate::Ult,
            "ule" => IntPredicate::Ule,
            "sgt" => IntPredicate::Sgt,
            "sge" => IntPredicate::Sge,
            "slt" => IntPredicate::Slt,
            "sle" => IntPredicate::Sle,
            _ => return None,
        })
    }
}

/// Floating-point comparison predicates (ordered subset plus `une`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatPredicate {
    /// Ordered equal.
    Oeq,
    /// Ordered not-equal.
    One,
    /// Ordered greater than.
    Ogt,
    /// Ordered greater or equal.
    Oge,
    /// Ordered less than.
    Olt,
    /// Ordered less or equal.
    Ole,
    /// Unordered or not-equal.
    Une,
}

impl FloatPredicate {
    /// The LLVM keyword for this predicate.
    pub fn keyword(self) -> &'static str {
        match self {
            FloatPredicate::Oeq => "oeq",
            FloatPredicate::One => "one",
            FloatPredicate::Ogt => "ogt",
            FloatPredicate::Oge => "oge",
            FloatPredicate::Olt => "olt",
            FloatPredicate::Ole => "ole",
            FloatPredicate::Une => "une",
        }
    }

    /// Parses an LLVM predicate keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "oeq" => FloatPredicate::Oeq,
            "one" => FloatPredicate::One,
            "ogt" => FloatPredicate::Ogt,
            "oge" => FloatPredicate::Oge,
            "olt" => FloatPredicate::Olt,
            "ole" => FloatPredicate::Ole,
            "une" => FloatPredicate::Une,
            _ => return None,
        })
    }
}

/// Instruction opcodes.
///
/// Block targets of `phi`/`br`/`condbr` live in [`Inst::block_refs`], not in
/// the opcode, so opcodes stay `Copy`-friendly apart from the GEP element
/// type.
#[derive(Debug, Clone, PartialEq)]
pub enum Opcode {
    // Integer arithmetic.
    /// Wrapping integer add.
    Add,
    /// Wrapping integer subtract.
    Sub,
    /// Wrapping integer multiply.
    Mul,
    /// Unsigned division.
    UDiv,
    /// Signed division.
    SDiv,
    /// Unsigned remainder.
    URem,
    /// Signed remainder.
    SRem,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    // Floating point arithmetic.
    /// Floating add.
    FAdd,
    /// Floating subtract.
    FSub,
    /// Floating multiply.
    FMul,
    /// Floating divide.
    FDiv,
    /// Floating negate (unary).
    FNeg,
    // Comparisons.
    /// Integer compare.
    ICmp(IntPredicate),
    /// Floating compare.
    FCmp(FloatPredicate),
    // Memory.
    /// Load a scalar from the pointer operand.
    Load,
    /// Store operand 0 to pointer operand 1.
    Store,
    /// Pointer arithmetic over `elem`: `ptr + idx0*sizeof(elem) (+ nested)`.
    Gep {
        /// The element type the indices step over.
        elem: Type,
    },
    // Casts.
    /// Truncate integer.
    Trunc,
    /// Zero-extend integer.
    ZExt,
    /// Sign-extend integer.
    SExt,
    /// Float to smaller float.
    FPTrunc,
    /// Float to larger float.
    FPExt,
    /// Float to signed int.
    FPToSI,
    /// Float to unsigned int.
    FPToUI,
    /// Signed int to float.
    SIToFP,
    /// Unsigned int to float.
    UIToFP,
    /// Reinterpret bits (same width).
    BitCast,
    /// Pointer to integer.
    PtrToInt,
    /// Integer to pointer.
    IntToPtr,
    // Other.
    /// SSA phi; operands pair with [`Inst::block_refs`].
    Phi,
    /// `select i1 %c, %t, %f`.
    Select,
    // Terminators.
    /// Unconditional branch to `block_refs[0]`.
    Br,
    /// Conditional branch: true to `block_refs[0]`, false to `block_refs[1]`.
    CondBr,
    /// Return (optional value operand).
    Ret,
}

impl Opcode {
    /// Whether this opcode ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Opcode::Br | Opcode::CondBr | Opcode::Ret)
    }

    /// Whether this opcode touches memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Whether this is a floating-point compute opcode.
    pub fn is_float_arith(&self) -> bool {
        matches!(
            self,
            Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::FNeg
                | Opcode::FCmp(_)
        )
    }

    /// The LLVM mnemonic (without predicates or types).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::UDiv => "udiv",
            Opcode::SDiv => "sdiv",
            Opcode::URem => "urem",
            Opcode::SRem => "srem",
            Opcode::Shl => "shl",
            Opcode::LShr => "lshr",
            Opcode::AShr => "ashr",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::FNeg => "fneg",
            Opcode::ICmp(_) => "icmp",
            Opcode::FCmp(_) => "fcmp",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Gep { .. } => "getelementptr",
            Opcode::Trunc => "trunc",
            Opcode::ZExt => "zext",
            Opcode::SExt => "sext",
            Opcode::FPTrunc => "fptrunc",
            Opcode::FPExt => "fpext",
            Opcode::FPToSI => "fptosi",
            Opcode::FPToUI => "fptoui",
            Opcode::SIToFP => "sitofp",
            Opcode::UIToFP => "uitofp",
            Opcode::BitCast => "bitcast",
            Opcode::PtrToInt => "ptrtoint",
            Opcode::IntToPtr => "inttoptr",
            Opcode::Phi => "phi",
            Opcode::Select => "select",
            Opcode::Br => "br",
            Opcode::CondBr => "br",
            Opcode::Ret => "ret",
        }
    }
}

/// One instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Result type ([`Type::Void`] for `store`/`br`/`ret void`).
    pub ty: Type,
    /// SSA operands.
    pub operands: Vec<ValueId>,
    /// Referenced blocks: phi incoming blocks (aligned with `operands`) or
    /// branch targets.
    pub block_refs: Vec<BlockId>,
    /// Result name hint for printing (empty for unnamed).
    pub name: String,
}

impl Inst {
    /// Whether this instruction produces an SSA value.
    pub fn has_result(&self) -> bool {
        self.ty != Type::Void
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_keyword_roundtrip() {
        for p in [
            IntPredicate::Eq,
            IntPredicate::Ne,
            IntPredicate::Ugt,
            IntPredicate::Uge,
            IntPredicate::Ult,
            IntPredicate::Ule,
            IntPredicate::Sgt,
            IntPredicate::Sge,
            IntPredicate::Slt,
            IntPredicate::Sle,
        ] {
            assert_eq!(IntPredicate::from_keyword(p.keyword()), Some(p));
        }
        for p in [
            FloatPredicate::Oeq,
            FloatPredicate::One,
            FloatPredicate::Ogt,
            FloatPredicate::Oge,
            FloatPredicate::Olt,
            FloatPredicate::Ole,
            FloatPredicate::Une,
        ] {
            assert_eq!(FloatPredicate::from_keyword(p.keyword()), Some(p));
        }
        assert_eq!(IntPredicate::from_keyword("bogus"), None);
        assert_eq!(FloatPredicate::from_keyword("bogus"), None);
    }

    #[test]
    fn terminator_classification() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::CondBr.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Add.is_terminator());
    }

    #[test]
    fn memory_and_float_classification() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::Store.is_memory());
        assert!(!Opcode::Gep { elem: Type::I32 }.is_memory());
        assert!(Opcode::FMul.is_float_arith());
        assert!(!Opcode::Mul.is_float_arith());
    }
}
