//! SSA values: arguments, instruction results and constants.

use crate::types::Type;

/// Identifies an SSA value within one [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub(crate) u32);

impl ValueId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ValueId` from a raw index (for external data structures
    /// that mirror a function's arenas).
    pub fn from_raw(raw: u32) -> Self {
        ValueId(raw)
    }
}

/// What a [`ValueId`] refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueKind {
    /// The `n`-th function argument.
    Arg(u32),
    /// The result of an instruction.
    Inst(crate::function::InstId),
    /// An immediate constant.
    Const(Constant),
}

/// An immediate constant.
///
/// Integers are stored as sign-agnostic bit patterns in an `i64`; the type
/// defines the width. Floats are stored as `f64` and rounded through `f32`
/// when the type is [`Type::F32`].
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    /// An integer of the given type (bit pattern in the low `ty.bits()` bits).
    Int {
        /// Integer type (`i1`..`i64`).
        ty: Type,
        /// Value bits, sign-extended to 64.
        value: i64,
    },
    /// A floating-point value of the given type.
    Float {
        /// `float` or `double`.
        ty: Type,
        /// Value, exact for `double`, rounded on use for `float`.
        value: f64,
    },
    /// The null pointer.
    NullPtr,
    /// An undefined value of the given type.
    Undef(Type),
}

impl Constant {
    /// A boolean (`i1`) constant.
    pub fn bool(v: bool) -> Constant {
        Constant::Int {
            ty: Type::I1,
            value: v as i64,
        }
    }

    /// An `i32` constant.
    pub fn i32(v: i32) -> Constant {
        Constant::Int {
            ty: Type::I32,
            value: v as i64,
        }
    }

    /// An `i64` constant.
    pub fn i64(v: i64) -> Constant {
        Constant::Int {
            ty: Type::I64,
            value: v,
        }
    }

    /// A `float` constant.
    pub fn f32(v: f32) -> Constant {
        Constant::Float {
            ty: Type::F32,
            value: v as f64,
        }
    }

    /// A `double` constant.
    pub fn f64(v: f64) -> Constant {
        Constant::Float {
            ty: Type::F64,
            value: v,
        }
    }

    /// The type of this constant.
    pub fn ty(&self) -> Type {
        match self {
            Constant::Int { ty, .. } | Constant::Float { ty, .. } => ty.clone(),
            Constant::NullPtr => Type::Ptr,
            Constant::Undef(ty) => ty.clone(),
        }
    }

    /// The integer payload if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Constant::Int { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The float payload if this is a floating-point constant.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Constant::Float { value, .. } => Some(*value),
            _ => None,
        }
    }
}

impl std::fmt::Display for Constant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Constant::Int { value, .. } => write!(f, "{value}"),
            Constant::Float { value, .. } => {
                if value.fract() == 0.0 && value.abs() < 1e15 {
                    write!(f, "{value:.1}")
                } else {
                    write!(f, "{value:e}")
                }
            }
            Constant::NullPtr => write!(f, "null"),
            Constant::Undef(_) => write!(f, "undef"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_carry_types() {
        assert_eq!(Constant::bool(true).ty(), Type::I1);
        assert_eq!(Constant::i32(-5).ty(), Type::I32);
        assert_eq!(Constant::f32(1.5).ty(), Type::F32);
        assert_eq!(Constant::NullPtr.ty(), Type::Ptr);
    }

    #[test]
    fn payload_accessors() {
        assert_eq!(Constant::i64(7).as_int(), Some(7));
        assert_eq!(Constant::i64(7).as_float(), None);
        assert_eq!(Constant::f64(2.5).as_float(), Some(2.5));
    }

    #[test]
    fn display_values() {
        assert_eq!(Constant::i32(42).to_string(), "42");
        assert_eq!(Constant::f64(3.0).to_string(), "3.0");
        assert_eq!(Constant::NullPtr.to_string(), "null");
    }
}
