//! Constant folding and constant-branch folding.

use crate::function::Function;
use crate::inst::Opcode;
use crate::interp::{eval_pure, RtVal};
use crate::types::Type;
use crate::value::{Constant, ValueId, ValueKind};

/// Folds instructions whose operands are all constants, and rewrites
/// conditional branches on constant conditions into unconditional branches
/// (fixing up phis in the dropped successor).
///
/// Returns the number of instructions folded or branches simplified.
pub fn fold_constants(f: &mut Function) -> usize {
    let mut changed = 0;
    // Instruction-level folding.
    let inst_ids: Vec<_> = f.blocks().flat_map(|(_, b)| b.insts.clone()).collect();
    for iid in inst_ids {
        let inst = f.inst(iid).clone();
        let foldable = matches!(
            inst.op,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::UDiv
                | Opcode::SDiv
                | Opcode::URem
                | Opcode::SRem
                | Opcode::Shl
                | Opcode::LShr
                | Opcode::AShr
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::FNeg
                | Opcode::ICmp(_)
                | Opcode::FCmp(_)
                | Opcode::Trunc
                | Opcode::ZExt
                | Opcode::SExt
                | Opcode::FPTrunc
                | Opcode::FPExt
                | Opcode::FPToSI
                | Opcode::FPToUI
                | Opcode::SIToFP
                | Opcode::UIToFP
                | Opcode::Select
        );
        if !foldable {
            continue;
        }
        let all_const = inst.operands.iter().all(|&v| {
            matches!(
                f.value_kind(v),
                ValueKind::Const(Constant::Int { .. } | Constant::Float { .. } | Constant::NullPtr)
            )
        });
        if !all_const || inst.operands.is_empty() {
            continue;
        }
        let get = |v: ValueId| -> Result<RtVal, crate::interp::InterpError> {
            match f.value_kind(v) {
                ValueKind::Const(Constant::Int { value, .. }) => Ok(RtVal::I(*value)),
                ValueKind::Const(Constant::Float { ty, value }) => {
                    Ok(RtVal::F(if *ty == Type::F32 {
                        *value as f32 as f64
                    } else {
                        *value
                    }))
                }
                ValueKind::Const(Constant::NullPtr) => Ok(RtVal::P(0)),
                _ => Err(crate::interp::InterpError {
                    message: "non-const".into(),
                }),
            }
        };
        let Ok(result) = eval_pure(f, &inst.op, &inst.ty, &inst.operands, get) else {
            continue; // e.g. division by zero: leave for runtime
        };
        let Some(old) = f.inst_result(iid) else {
            continue;
        };
        let c = match (result, &inst.ty) {
            (RtVal::I(v), ty) if ty.is_int() => Constant::Int {
                ty: ty.clone(),
                value: v,
            },
            (RtVal::F(v), ty) if ty.is_float() => Constant::Float {
                ty: ty.clone(),
                value: v,
            },
            (RtVal::P(p), Type::Ptr) => {
                if p == 0 {
                    Constant::NullPtr
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        let new = f.const_value(c);
        f.replace_all_uses(old, new);
        changed += 1;
    }

    // Branch folding: condbr on a constant becomes br.
    for bid in f.block_ids().collect::<Vec<_>>() {
        let Some(term) = f.terminator(bid) else {
            continue;
        };
        let inst = f.inst(term).clone();
        if inst.op != Opcode::CondBr {
            continue;
        }
        let ValueKind::Const(Constant::Int { value, .. }) = f.value_kind(inst.operands[0]) else {
            continue;
        };
        let taken = if *value != 0 {
            inst.block_refs[0]
        } else {
            inst.block_refs[1]
        };
        let dropped = if *value != 0 {
            inst.block_refs[1]
        } else {
            inst.block_refs[0]
        };
        {
            let t = f.inst_mut(term);
            t.op = Opcode::Br;
            t.operands.clear();
            t.block_refs = vec![taken];
        }
        if dropped != taken {
            remove_phi_incoming(f, dropped, bid);
        }
        changed += 1;
    }
    changed
}

/// Drops the incoming edge from `pred` in all phis of `block`.
pub(crate) fn remove_phi_incoming(
    f: &mut Function,
    block: crate::function::BlockId,
    pred: crate::function::BlockId,
) {
    let insts = f.block(block).insts.clone();
    for iid in insts {
        let inst = f.inst_mut(iid);
        if inst.op != Opcode::Phi {
            break;
        }
        while let Some(k) = inst.block_refs.iter().position(|&b| b == pred) {
            inst.block_refs.remove(k);
            inst.operands.remove(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::verify_function;
    use crate::IntPredicate;

    #[test]
    fn folds_arithmetic_chain() {
        let mut fb = FunctionBuilder::new("f", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let two = fb.i32c(2);
        let three = fb.i32c(3);
        let six = fb.mul(two, three, "six");
        let one = fb.i32c(1);
        let seven = fb.add(six, one, "seven");
        fb.store(seven, p);
        fb.ret();
        let mut f = fb.finish();
        let n = fold_constants(&mut f);
        assert_eq!(n, 2);
        // The store's operand is now the constant 7.
        let store = f
            .blocks()
            .flat_map(|(_, b)| b.insts.clone())
            .find(|&i| f.inst(i).op == Opcode::Store)
            .unwrap();
        let v = f.inst(store).operands[0];
        assert_eq!(f.value_kind(v), &ValueKind::Const(Constant::i32(7)));
    }

    #[test]
    fn folds_float_compare_and_select() {
        let mut fb = FunctionBuilder::new("f", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let a = fb.f64c(2.0);
        let b = fb.f64c(3.0);
        let c = fb.fcmp(crate::FloatPredicate::Olt, a, b, "c");
        let s = fb.select(c, a, b, "s");
        fb.store(s, p);
        fb.ret();
        let mut f = fb.finish();
        assert!(fold_constants(&mut f) >= 2);
        verify_function(&f).unwrap();
    }

    #[test]
    fn folds_constant_branch_and_updates_phi() {
        let mut fb = FunctionBuilder::new("f", &[("p", Type::Ptr)]);
        let then_b = fb.add_block("then");
        let else_b = fb.add_block("else");
        let join = fb.add_block("join");
        let t = fb.boolc(true);
        fb.cond_br(t, then_b, else_b);
        fb.position_at(then_b);
        let one = fb.i32c(1);
        fb.br(join);
        fb.position_at(else_b);
        let two = fb.i32c(2);
        fb.br(join);
        fb.position_at(join);
        let (phi, pv) = fb.phi(Type::I32, "v");
        fb.add_incoming(phi, one, then_b);
        fb.add_incoming(phi, two, else_b);
        let p = fb.arg(0);
        fb.store(pv, p);
        fb.ret();
        let mut f = fb.finish();
        let n = fold_constants(&mut f);
        assert!(n >= 1, "branch should fold");
        verify_function(&f).unwrap();
        // The dead arm's phi edge disappears once DCE sweeps the block.
        crate::passes::eliminate_dead_code(&mut f);
        let phi_inst = f.inst(phi);
        assert_eq!(phi_inst.block_refs.len(), 1);
        verify_function(&f).unwrap();
    }

    #[test]
    fn leaves_division_by_zero_alone() {
        let mut fb = FunctionBuilder::new("f", &[]);
        let a = fb.i32c(1);
        let z = fb.i32c(0);
        let d = fb.sdiv(a, z, "d");
        fb.ret_value(d);
        let mut f = fb.finish();
        assert_eq!(fold_constants(&mut f), 0);
    }

    #[test]
    fn folds_icmp_on_constants() {
        let mut fb = FunctionBuilder::new("f", &[]);
        let a = fb.i64c(5);
        let b = fb.i64c(9);
        let c = fb.icmp(IntPredicate::Slt, a, b, "c");
        fb.ret_value(c);
        let mut f = fb.finish();
        assert_eq!(fold_constants(&mut f), 1);
    }
}
