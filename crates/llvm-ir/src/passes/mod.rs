//! IR transformation passes, standing in for the clang `-O` pipeline.
//!
//! The paper relies on clang pragmas (loop unrolling, vectorization) to shape
//! the datapath that gem5-SALAM elaborates; here the same knobs are exposed
//! as explicit passes:
//!
//! * [`fold_constants`] — constant folding plus branch folding.
//! * [`eliminate_dead_code`] — use-driven dead-code elimination, including
//!   unreachable-block sweeping.
//! * [`unroll_loops`] — full unrolling of simple constant-trip-count loops.
//! * [`run_default_pipeline`] — fold + DCE to fixpoint.

mod constfold;
mod dce;
mod unroll;

pub use constfold::fold_constants;
pub use dce::eliminate_dead_code;
pub use unroll::{unroll_loops, unroll_loops_by, UnrollReport};

use crate::function::Function;

/// Runs constant folding and DCE to a fixpoint (bounded at 10 rounds).
///
/// Returns the number of rounds that made progress.
pub fn run_default_pipeline(f: &mut Function) -> usize {
    let mut rounds = 0;
    for _ in 0..10 {
        let folded = fold_constants(f);
        let removed = eliminate_dead_code(f);
        if folded == 0 && removed == 0 {
            break;
        }
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::verify_function;

    #[test]
    fn pipeline_reaches_fixpoint() {
        let mut fb = FunctionBuilder::new("f", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let a = fb.i32c(2);
        let b = fb.i32c(3);
        let s = fb.mul(a, b, "s"); // folds to 6
        let t = fb.add(s, s, "t"); // folds to 12
        fb.store(t, p);
        fb.ret();
        let mut f = fb.finish();
        let rounds = run_default_pipeline(&mut f);
        assert!(rounds >= 1);
        verify_function(&f).unwrap();
        // Only the store and ret remain.
        assert_eq!(f.live_inst_count(), 2);
    }
}
