//! Full unrolling of simple counted loops.
//!
//! This pass stands in for `#pragma unroll` + clang's unroller: it fully
//! unrolls loops of the canonical shape emitted by
//! [`crate::FunctionBuilder::counted_loop`] — a header containing phis and
//! the exit test, and a single body/latch block — when the trip count is a
//! compile-time constant no greater than the requested bound.

use std::collections::{HashMap, HashSet};

use crate::analysis::{find_natural_loops, Cfg, DomTree};
use crate::function::{BlockId, Function, InstId};
use crate::inst::{Inst, IntPredicate, Opcode};
use crate::value::{Constant, ValueId, ValueKind};

/// Summary of what [`unroll_loops`] / [`unroll_loops_by`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnrollReport {
    /// Number of loops transformed.
    pub unrolled: usize,
    /// Total body copies emitted.
    pub iterations_emitted: u64,
    /// Loop headers already visited (avoids retrying rejected loops).
    touched: Vec<BlockId>,
}

/// Fully unrolls simple constant-trip-count loops with at most `max_trip`
/// iterations. Innermost loops unroll first; re-running the pass after DCE
/// can expose enclosing loops.
///
/// Returns what was unrolled.
pub fn unroll_loops(f: &mut Function, max_trip: u64) -> UnrollReport {
    let mut report = UnrollReport::default();
    // Unroll one loop at a time; analyses are recomputed after each change.
    loop {
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let loops = find_natural_loops(f, &cfg, &dom);
        let mut did = false;
        for l in &loops {
            if l.blocks.len() != 2 || l.header == l.latch {
                continue;
            }
            if let Some(iters) = try_unroll(f, &cfg, l.header, l.latch, max_trip) {
                report.unrolled += 1;
                report.iterations_emitted += iters;
                did = true;
                break;
            }
        }
        if !did {
            return report;
        }
    }
}

fn const_int(f: &Function, v: ValueId) -> Option<i64> {
    match f.value_kind(v) {
        ValueKind::Const(Constant::Int { value, .. }) => Some(*value),
        _ => None,
    }
}

fn try_unroll(
    f: &mut Function,
    cfg: &Cfg,
    header: BlockId,
    latch: BlockId,
    max_trip: u64,
) -> Option<u64> {
    // Exactly two predecessors: a unique preheader plus the latch.
    let preds = cfg.predecessors(header);
    if preds.len() != 2 {
        return None;
    }
    let preheader = *preds.iter().find(|&&p| p != latch)?;
    if preheader == latch || cfg.successors(preheader) != [header] {
        return None;
    }

    // Header layout: phis*, pure insts*, condbr(cond, latch, exit) — in
    // either target order.
    let header_insts = f.block(header).insts.clone();
    let term = *header_insts.last()?;
    let term_inst = f.inst(term).clone();
    if term_inst.op != Opcode::CondBr {
        return None;
    }
    let (t0, t1) = (term_inst.block_refs[0], term_inst.block_refs[1]);
    let (body_is_true, exit) = if t0 == latch {
        (true, t1)
    } else if t1 == latch {
        (false, t0)
    } else {
        return None;
    };
    if exit == header || exit == latch {
        return None;
    }

    let mut phis: Vec<InstId> = Vec::new();
    let mut header_body: Vec<InstId> = Vec::new();
    for &i in &header_insts[..header_insts.len() - 1] {
        let inst = f.inst(i);
        match inst.op {
            Opcode::Phi => {
                if !header_body.is_empty() {
                    return None;
                }
                phis.push(i);
            }
            Opcode::Load | Opcode::Store => return None, // keep memory in the body
            _ => header_body.push(i),
        }
    }

    // Latch: any instructions then `br header`.
    let latch_insts = f.block(latch).insts.clone();
    let latch_term = *latch_insts.last()?;
    if f.inst(latch_term).op != Opcode::Br {
        return None;
    }
    let latch_body: Vec<InstId> = latch_insts[..latch_insts.len() - 1].to_vec();

    // Initial and latch-incoming values per phi.
    let mut init: HashMap<ValueId, ValueId> = HashMap::new();
    let mut next_of: HashMap<ValueId, ValueId> = HashMap::new();
    for &p in &phis {
        let inst = f.inst(p);
        let res = f.inst_result(p)?;
        let mut from_pre = None;
        let mut from_latch = None;
        for (k, &b) in inst.block_refs.iter().enumerate() {
            if b == preheader {
                from_pre = Some(inst.operands[k]);
            } else if b == latch {
                from_latch = Some(inst.operands[k]);
            } else {
                return None;
            }
        }
        init.insert(res, from_pre?);
        next_of.insert(res, from_latch?);
    }

    // Find the induction variable: a phi with constant init whose latch
    // value is `add phi, cstep`, and whose header test compares the phi to a
    // constant.
    let cond = term_inst.operands[0];
    let ValueKind::Inst(cond_inst_id) = *f.value_kind(cond) else {
        return None;
    };
    let cond_inst = f.inst(cond_inst_id).clone();
    let Opcode::ICmp(pred) = cond_inst.op else {
        return None;
    };
    // Identify which side is the IV phi.
    let (iv, bound, flipped) = {
        let a = cond_inst.operands[0];
        let b = cond_inst.operands[1];
        if init.contains_key(&a) && const_int(f, b).is_some() {
            (a, const_int(f, b)?, false)
        } else if init.contains_key(&b) && const_int(f, a).is_some() {
            (b, const_int(f, a)?, true)
        } else {
            return None;
        }
    };
    let start = const_int(f, *init.get(&iv)?)?;
    let next = *next_of.get(&iv)?;
    let ValueKind::Inst(next_id) = *f.value_kind(next) else {
        return None;
    };
    let next_inst = f.inst(next_id).clone();
    if next_inst.op != Opcode::Add {
        return None;
    }
    let step = if next_inst.operands[0] == iv {
        const_int(f, next_inst.operands[1])?
    } else if next_inst.operands[1] == iv {
        const_int(f, next_inst.operands[0])?
    } else {
        return None;
    };
    if step == 0 {
        return None;
    }

    // Simulate to get the trip count.
    let holds = |v: i64| -> bool {
        let (a, b) = if flipped { (bound, v) } else { (v, bound) };
        let took = match pred {
            IntPredicate::Eq => a == b,
            IntPredicate::Ne => a != b,
            IntPredicate::Slt => a < b,
            IntPredicate::Sle => a <= b,
            IntPredicate::Sgt => a > b,
            IntPredicate::Sge => a >= b,
            IntPredicate::Ult => (a as u64) < (b as u64),
            IntPredicate::Ule => (a as u64) <= (b as u64),
            IntPredicate::Ugt => (a as u64) > (b as u64),
            IntPredicate::Uge => (a as u64) >= (b as u64),
        };
        if body_is_true {
            took
        } else {
            !took
        }
    };
    let mut v = start;
    let mut trip: u64 = 0;
    while holds(v) {
        trip += 1;
        if trip > max_trip {
            return None;
        }
        v = v.wrapping_add(step);
    }

    // ---- commit: emit `trip` copies of header-body + latch-body into the
    // preheader, then branch to the exit. -----------------------------------

    // Drop the preheader's `br header`.
    let pre_term = f.terminator(preheader).expect("preheader has terminator");
    let dead: HashSet<InstId> = [pre_term].into_iter().collect();
    f.remove_insts(&dead);

    let iv_ty = f.value_type(iv);
    let mut carried: HashMap<ValueId, ValueId> = init.clone();
    let resolve = |map: &HashMap<ValueId, ValueId>, v: ValueId| *map.get(&v).unwrap_or(&v);

    let clone_into = |f: &mut Function, ids: &[InstId], map: &mut HashMap<ValueId, ValueId>| {
        for &i in ids {
            let inst = f.inst(i).clone();
            let operands = inst.operands.iter().map(|&o| resolve(map, o)).collect();
            let (nid, res) = f.add_inst(
                preheader,
                Inst {
                    op: inst.op,
                    ty: inst.ty,
                    operands,
                    block_refs: Vec::new(),
                    name: inst.name,
                },
            );
            let _ = nid;
            if let (Some(old), Some(new)) = (f.inst_result(i), res) {
                map.insert(old, new);
            }
        }
    };

    let mut iter_v = start;
    for _ in 0..trip {
        let mut map = carried.clone();
        // The IV is a known constant this iteration; pin it so clones of the
        // compare and of address arithmetic fold later.
        let c = f.const_value(Constant::Int {
            ty: iv_ty.clone(),
            value: iter_v,
        });
        map.insert(iv, c);
        clone_into(f, &header_body, &mut map);
        clone_into(f, &latch_body, &mut map);
        let mut new_carried = HashMap::new();
        for (&phi, &nxt) in &next_of {
            new_carried.insert(phi, resolve(&map, nxt));
        }
        carried = new_carried;
        iter_v = iter_v.wrapping_add(step);
    }

    // Final header evaluation (values the exit block may use).
    let mut final_map = carried.clone();
    let c = f.const_value(Constant::Int {
        ty: iv_ty,
        value: iter_v,
    });
    final_map.insert(iv, c);
    clone_into(f, &header_body, &mut final_map);

    // Redirect out-of-loop uses of loop-defined values.
    let loop_insts: HashSet<InstId> = header_insts.iter().chain(&latch_insts).copied().collect();
    for &phi in init.keys() {
        f.replace_all_uses(phi, resolve(&final_map, phi));
    }
    for &i in header_body.iter() {
        if let Some(old) = f.inst_result(i) {
            let new = resolve(&final_map, old);
            if new != old {
                replace_uses_outside(f, old, new, &loop_insts);
            }
        }
    }
    for &i in latch_body.iter() {
        if let Some(old) = f.inst_result(i) {
            let new = resolve(&carried, old);
            if new != old {
                replace_uses_outside(f, old, new, &loop_insts);
            }
        }
    }

    // Terminate the (extended) preheader with a jump to the exit.
    f.add_inst(
        preheader,
        Inst {
            op: Opcode::Br,
            ty: crate::Type::Void,
            operands: vec![],
            block_refs: vec![exit],
            name: String::new(),
        },
    );

    // Remove the loop blocks' instructions; blocks become unreachable husks.
    let dead: HashSet<InstId> = loop_insts;
    f.remove_insts(&dead);

    // Phis in the exit block now receive control from the preheader.
    let exit_insts = f.block(exit).insts.clone();
    for i in exit_insts {
        let inst = f.inst_mut(i);
        if inst.op != Opcode::Phi {
            break;
        }
        for b in &mut inst.block_refs {
            if *b == header {
                *b = preheader;
            }
        }
    }

    Some(trip)
}

/// Rewrites uses of `from` to `to`, skipping the given instruction set.
fn replace_uses_outside(f: &mut Function, from: ValueId, to: ValueId, skip: &HashSet<InstId>) {
    let all: Vec<InstId> = f
        .blocks()
        .flat_map(|(_, b)| b.insts.clone())
        .filter(|i| !skip.contains(i))
        .collect();
    for i in all {
        for op in &mut f.inst_mut(i).operands {
            if *op == from {
                *op = to;
            }
        }
    }
}

/// Partially unrolls simple constant-trip-count loops by `factor` (the
/// `#pragma unroll N` knob): the loop structure is kept, its body is
/// replicated `factor` times with the induction variable offset per copy,
/// and the step is scaled. Loops whose trip count is not a positive multiple
/// of `factor` are left untouched.
///
/// Returns what was unrolled (`iterations_emitted` counts body copies added
/// per transformed loop, i.e. `factor` each).
pub fn unroll_loops_by(f: &mut Function, factor: u64, max_trip: u64) -> UnrollReport {
    let mut report = UnrollReport::default();
    if factor < 2 {
        return report;
    }
    loop {
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let loops = find_natural_loops(f, &cfg, &dom);
        let mut did = false;
        for l in &loops {
            if l.blocks.len() != 2 || l.header == l.latch {
                continue;
            }
            if report.touched.contains(&l.header) {
                continue;
            }
            if try_partial_unroll(f, &cfg, l.header, l.latch, factor, max_trip).is_some() {
                report.unrolled += 1;
                report.iterations_emitted += factor;
                report.touched.push(l.header);
                did = true;
                break;
            } else {
                report.touched.push(l.header);
            }
        }
        if !did {
            return report;
        }
    }
}

fn try_partial_unroll(
    f: &mut Function,
    cfg: &Cfg,
    header: BlockId,
    latch: BlockId,
    factor: u64,
    max_trip: u64,
) -> Option<()> {
    // Same canonical shape as full unrolling.
    let preds = cfg.predecessors(header);
    if preds.len() != 2 {
        return None;
    }
    let preheader = *preds.iter().find(|&&p| p != latch)?;
    if preheader == latch || cfg.successors(preheader) != [header] {
        return None;
    }
    let header_insts = f.block(header).insts.clone();
    let term = *header_insts.last()?;
    let term_inst = f.inst(term).clone();
    if term_inst.op != Opcode::CondBr {
        return None;
    }
    let (t0, t1) = (term_inst.block_refs[0], term_inst.block_refs[1]);
    let body_is_true = if t0 == latch {
        true
    } else if t1 == latch {
        false
    } else {
        return None;
    };

    let mut phis: Vec<InstId> = Vec::new();
    for &i in &header_insts[..header_insts.len() - 1] {
        let inst = f.inst(i);
        match inst.op {
            Opcode::Phi => phis.push(i),
            Opcode::Load | Opcode::Store => return None,
            _ => {}
        }
    }

    let latch_insts = f.block(latch).insts.clone();
    let latch_term = *latch_insts.last()?;
    if f.inst(latch_term).op != Opcode::Br {
        return None;
    }

    // Per-phi init / latch-incoming values.
    let mut init: HashMap<ValueId, ValueId> = HashMap::new();
    let mut next_of: HashMap<ValueId, ValueId> = HashMap::new();
    for &p in &phis {
        let inst = f.inst(p);
        let res = f.inst_result(p)?;
        let (mut from_pre, mut from_latch) = (None, None);
        for (k, &b) in inst.block_refs.iter().enumerate() {
            if b == preheader {
                from_pre = Some(inst.operands[k]);
            } else if b == latch {
                from_latch = Some(inst.operands[k]);
            } else {
                return None;
            }
        }
        init.insert(res, from_pre?);
        next_of.insert(res, from_latch?);
    }

    // Induction variable and trip count.
    let cond = term_inst.operands[0];
    let ValueKind::Inst(cond_inst_id) = *f.value_kind(cond) else {
        return None;
    };
    let cond_inst = f.inst(cond_inst_id).clone();
    let Opcode::ICmp(pred) = cond_inst.op else {
        return None;
    };
    let (iv, bound, flipped) = {
        let a = cond_inst.operands[0];
        let b = cond_inst.operands[1];
        if init.contains_key(&a) && const_int(f, b).is_some() {
            (a, const_int(f, b)?, false)
        } else if init.contains_key(&b) && const_int(f, a).is_some() {
            (b, const_int(f, a)?, true)
        } else {
            return None;
        }
    };
    let start = const_int(f, *init.get(&iv)?)?;
    let next = *next_of.get(&iv)?;
    let ValueKind::Inst(next_id) = *f.value_kind(next) else {
        return None;
    };
    let next_inst = f.inst(next_id).clone();
    if next_inst.op != Opcode::Add {
        return None;
    }
    let step = if next_inst.operands[0] == iv {
        const_int(f, next_inst.operands[1])?
    } else if next_inst.operands[1] == iv {
        const_int(f, next_inst.operands[0])?
    } else {
        return None;
    };
    if step == 0 {
        return None;
    }
    let holds = |v: i64| -> bool {
        let (a, b) = if flipped { (bound, v) } else { (v, bound) };
        let took = match pred {
            IntPredicate::Eq => a == b,
            IntPredicate::Ne => a != b,
            IntPredicate::Slt => a < b,
            IntPredicate::Sle => a <= b,
            IntPredicate::Sgt => a > b,
            IntPredicate::Sge => a >= b,
            IntPredicate::Ult => (a as u64) < (b as u64),
            IntPredicate::Ule => (a as u64) <= (b as u64),
            IntPredicate::Ugt => (a as u64) > (b as u64),
            IntPredicate::Uge => (a as u64) >= (b as u64),
        };
        if body_is_true {
            took
        } else {
            !took
        }
    };
    let mut v = start;
    let mut trip: u64 = 0;
    while holds(v) {
        trip += 1;
        if trip > max_trip {
            return None;
        }
        v = v.wrapping_add(step);
    }
    if trip == 0 || !trip.is_multiple_of(factor) || trip == factor {
        return None; // not divisible (or a full unroll would be better)
    }
    // The scaled loop must execute exactly trip/factor iterations.
    let scaled_step = step.checked_mul(factor as i64)?;
    let mut v2 = start;
    let mut trip2: u64 = 0;
    while holds(v2) {
        trip2 += 1;
        if trip2 > max_trip {
            return None;
        }
        v2 = v2.wrapping_add(scaled_step);
    }
    if trip2 * factor != trip {
        return None;
    }

    // ---- commit -----------------------------------------------------------
    let iv_ty = f.value_type(iv);
    let body: Vec<InstId> = latch_insts[..latch_insts.len() - 1]
        .iter()
        .copied()
        .filter(|&i| i != next_id)
        .collect();

    // Strip the old body from the latch (arena entries stay).
    let dead: HashSet<InstId> = latch_insts.iter().copied().collect();
    f.remove_insts(&dead);

    let resolve = |map: &HashMap<ValueId, ValueId>, v: ValueId| *map.get(&v).unwrap_or(&v);
    let mut carried: HashMap<ValueId, ValueId> = phis
        .iter()
        .filter_map(|&p| f.inst_result(p))
        .map(|r| (r, r))
        .collect();

    for k in 0..factor {
        let mut map = carried.clone();
        // iv for this copy: iv + k*step.
        let ivk = if k == 0 {
            iv
        } else {
            let off = f.const_value(Constant::Int {
                ty: iv_ty.clone(),
                value: step * k as i64,
            });
            let (_, val) = f.add_inst(
                latch,
                Inst {
                    op: Opcode::Add,
                    ty: iv_ty.clone(),
                    operands: vec![iv, off],
                    block_refs: vec![],
                    name: format!("iv.u{k}"),
                },
            );
            val.expect("add has result")
        };
        map.insert(iv, ivk);
        for &i in &body {
            let inst = f.inst(i).clone();
            let operands = inst.operands.iter().map(|&o| resolve(&map, o)).collect();
            let (_, res) = f.add_inst(
                latch,
                Inst {
                    op: inst.op,
                    ty: inst.ty,
                    operands,
                    block_refs: Vec::new(),
                    name: inst.name,
                },
            );
            if let (Some(old), Some(new)) = (f.inst_result(i), res) {
                map.insert(old, new);
            }
        }
        let mut new_carried = HashMap::new();
        for (&phi, &nxt) in &next_of {
            if phi == iv {
                continue;
            }
            new_carried.insert(phi, resolve(&map, nxt));
        }
        new_carried.insert(iv, iv);
        carried = new_carried;
    }

    // New induction update and terminator.
    let stepc = f.const_value(Constant::Int {
        ty: iv_ty,
        value: scaled_step,
    });
    let (_, new_next) = f.add_inst(
        latch,
        Inst {
            op: Opcode::Add,
            ty: f.value_type(iv),
            operands: vec![iv, stepc],
            block_refs: vec![],
            name: "iv.next".to_string(),
        },
    );
    let new_next = new_next.expect("add has result");
    f.add_inst(
        latch,
        Inst {
            op: Opcode::Br,
            ty: crate::Type::Void,
            operands: vec![],
            block_refs: vec![header],
            name: String::new(),
        },
    );

    // Rewire the phis' latch-incoming operands.
    for &p in &phis {
        let res = f.inst_result(p).expect("phi result");
        let new_in = if res == iv {
            new_next
        } else {
            resolve(&carried, res)
        };
        let inst = f.inst_mut(p);
        for (k, &b) in inst.block_refs.clone().iter().enumerate() {
            if b == latch {
                inst.operands[k] = new_in;
            }
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::{run_function, NullObserver, RtVal, SparseMemory};
    use crate::passes::{eliminate_dead_code, fold_constants, run_default_pipeline};
    use crate::types::Type;
    use crate::verify_function;

    /// Builds `for i in 0..n { a[i] = a[i] * 2 }` with a constant bound.
    fn scaled_kernel(n: i64) -> Function {
        let mut fb = FunctionBuilder::new("scale", &[("a", Type::Ptr)]);
        let a = fb.arg(0);
        let zero = fb.i64c(0);
        let bound = fb.i64c(n);
        fb.counted_loop("i", zero, bound, |fb, iv| {
            let p = fb.gep1(Type::I64, a, iv, "p");
            let x = fb.load(Type::I64, p, "x");
            let two = fb.i64c(2);
            let y = fb.mul(x, two, "y");
            fb.store(y, p);
        });
        fb.ret();
        fb.finish()
    }

    #[test]
    fn unrolls_constant_loop() {
        let mut f = scaled_kernel(4);
        let report = unroll_loops(&mut f, 64);
        assert_eq!(report.unrolled, 1);
        assert_eq!(report.iterations_emitted, 4);
        run_default_pipeline(&mut f);
        verify_function(&f).unwrap();
        // 4 iterations x (gep, load, mul, store) + ret; geps may fold away.
        let hist = f.opcode_histogram();
        assert_eq!(hist["load"], 4);
        assert_eq!(hist["store"], 4);
        assert!(!hist.contains_key("phi"));
    }

    #[test]
    fn unrolled_loop_computes_same_result() {
        let f = scaled_kernel(8);
        let mut g = f.clone();
        unroll_loops(&mut g, 64);
        run_default_pipeline(&mut g);
        verify_function(&g).unwrap();

        let data: Vec<i64> = (1..=8).collect();
        let mut m1 = SparseMemory::new();
        m1.write_i64_slice(0x1000, &data);
        run_function(&f, &[RtVal::P(0x1000)], &mut m1, &mut NullObserver, 10_000).unwrap();
        let mut m2 = SparseMemory::new();
        m2.write_i64_slice(0x1000, &data);
        run_function(&g, &[RtVal::P(0x1000)], &mut m2, &mut NullObserver, 10_000).unwrap();
        assert_eq!(m1.read_i64_slice(0x1000, 8), m2.read_i64_slice(0x1000, 8));
        let _ = f;
    }

    #[test]
    fn accumulator_phi_is_carried() {
        // sum = 0; for i in 0..5 { sum += i }; store sum
        let mut fb = FunctionBuilder::new("acc", &[("out", Type::Ptr)]);
        let out = fb.arg(0);
        let header = fb.add_block("header");
        let body = fb.add_block("body");
        let exit = fb.add_block("exit");
        let zero = fb.i64c(0);
        let five = fb.i64c(5);
        let entry = fb.entry();
        fb.br(header);
        fb.position_at(header);
        let (iv_phi, iv) = fb.phi(Type::I64, "iv");
        let (sum_phi, sum) = fb.phi(Type::I64, "sum");
        fb.add_incoming(iv_phi, zero, entry);
        fb.add_incoming(sum_phi, zero, entry);
        let c = fb.icmp(IntPredicate::Slt, iv, five, "c");
        fb.cond_br(c, body, exit);
        fb.position_at(body);
        let sum2 = fb.add(sum, iv, "sum2");
        let one = fb.i64c(1);
        let iv2 = fb.add(iv, one, "iv2");
        fb.br(header);
        fb.add_incoming(iv_phi, iv2, body);
        fb.add_incoming(sum_phi, sum2, body);
        fb.position_at(exit);
        fb.store(sum, out);
        fb.ret();
        let mut f = fb.finish();
        verify_function(&f).unwrap();

        let report = unroll_loops(&mut f, 16);
        assert_eq!(report.unrolled, 1);
        run_default_pipeline(&mut f);
        verify_function(&f).unwrap();

        let mut mem = SparseMemory::new();
        run_function(&f, &[RtVal::P(0x100)], &mut mem, &mut NullObserver, 1_000).unwrap();
        assert_eq!(mem.read_i64_slice(0x100, 1), vec![10]); // 0+1+2+3+4
    }

    #[test]
    fn refuses_runtime_bound() {
        let mut fb = FunctionBuilder::new("dyn", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let p = fb.gep1(Type::I64, a, iv, "p");
            fb.store(iv, p);
        });
        fb.ret();
        let mut f = fb.finish();
        let report = unroll_loops(&mut f, 64);
        assert_eq!(report.unrolled, 0);
        verify_function(&f).unwrap();
    }

    #[test]
    fn refuses_trip_over_budget() {
        let mut f = scaled_kernel(100);
        let report = unroll_loops(&mut f, 10);
        assert_eq!(report.unrolled, 0);
    }

    #[test]
    fn unrolls_inner_loop_of_nest() {
        // for i in 0..n (runtime): for j in 0..4 (const): a[i*4+j] += 1
        let mut fb = FunctionBuilder::new("nest", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, i| {
            let zero = fb.i64c(0);
            let four = fb.i64c(4);
            fb.counted_loop("j", zero, four, |fb, j| {
                let fourc = fb.i64c(4);
                let row = fb.mul(i, fourc, "row");
                let idx = fb.add(row, j, "idx");
                let p = fb.gep1(Type::I64, a, idx, "p");
                let x = fb.load(Type::I64, p, "x");
                let one = fb.i64c(1);
                let y = fb.add(x, one, "y");
                fb.store(y, p);
            });
        });
        fb.ret();
        let mut f = fb.finish();
        let report = unroll_loops(&mut f, 16);
        assert_eq!(report.unrolled, 1); // only the inner loop
        fold_constants(&mut f);
        eliminate_dead_code(&mut f);
        verify_function(&f).unwrap();

        // Check functional equivalence on a small input.
        let mut mem = SparseMemory::new();
        mem.write_i64_slice(0x0, &[0; 8]);
        run_function(
            &f,
            &[RtVal::P(0), RtVal::I(2)],
            &mut mem,
            &mut NullObserver,
            100_000,
        )
        .unwrap();
        assert_eq!(mem.read_i64_slice(0, 8), vec![1; 8]);
    }
}
