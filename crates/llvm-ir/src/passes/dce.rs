//! Dead-code elimination and unreachable-block sweeping.

use std::collections::HashSet;

use crate::analysis::Cfg;
use crate::function::{Function, InstId};
use crate::inst::Opcode;
use crate::value::ValueKind;

/// Removes instructions whose results are unused and that have no side
/// effects, and empties unreachable blocks (dropping their phi edges).
///
/// Returns the number of instructions removed.
pub fn eliminate_dead_code(f: &mut Function) -> usize {
    let cfg = Cfg::new(f);

    // Sweep unreachable blocks first so their uses don't keep values alive.
    let mut removed = 0;
    let unreachable: Vec<_> = f.block_ids().filter(|&b| !cfg.is_reachable(b)).collect();
    let mut dead: HashSet<InstId> = HashSet::new();
    for &b in &unreachable {
        for &i in &f.block(b).insts {
            dead.insert(i);
        }
    }
    // Phi edges from unreachable predecessors must be dropped.
    for b in f.block_ids().collect::<Vec<_>>() {
        if unreachable.contains(&b) {
            continue;
        }
        for &p in unreachable.iter() {
            super::constfold::remove_phi_incoming(f, b, p);
        }
    }
    removed += dead.len();
    f.remove_insts(&dead);

    // Liveness: roots are side-effecting / control instructions.
    let mut live: HashSet<InstId> = HashSet::new();
    let mut work: Vec<InstId> = Vec::new();
    for (_, b) in f.blocks() {
        for &i in &b.insts {
            let inst = f.inst(i);
            if matches!(
                inst.op,
                Opcode::Store | Opcode::Br | Opcode::CondBr | Opcode::Ret
            ) {
                live.insert(i);
                work.push(i);
            }
        }
    }
    while let Some(i) = work.pop() {
        let operands = f.inst(i).operands.clone();
        for v in operands {
            if let ValueKind::Inst(def) = f.value_kind(v) {
                if live.insert(*def) {
                    work.push(*def);
                }
            }
        }
    }
    let mut dead: HashSet<InstId> = HashSet::new();
    for (_, b) in f.blocks() {
        for &i in &b.insts {
            if !live.contains(&i) {
                dead.insert(i);
            }
        }
    }
    removed += dead.len();
    f.remove_insts(&dead);
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::passes::fold_constants;
    use crate::types::Type;
    use crate::verify_function;

    #[test]
    fn removes_unused_arithmetic() {
        let mut fb = FunctionBuilder::new("f", &[("x", Type::I32)]);
        let x = fb.arg(0);
        let _unused = fb.add(x, x, "unused");
        fb.ret();
        let mut f = fb.finish();
        assert_eq!(eliminate_dead_code(&mut f), 1);
        assert_eq!(f.live_inst_count(), 1);
        verify_function(&f).unwrap();
    }

    #[test]
    fn keeps_stores_and_their_inputs() {
        let mut fb = FunctionBuilder::new("f", &[("p", Type::Ptr), ("x", Type::I32)]);
        let p = fb.arg(0);
        let x = fb.arg(1);
        let y = fb.add(x, x, "y");
        fb.store(y, p);
        fb.ret();
        let mut f = fb.finish();
        assert_eq!(eliminate_dead_code(&mut f), 0);
        assert_eq!(f.live_inst_count(), 3);
    }

    #[test]
    fn removes_unused_load() {
        let mut fb = FunctionBuilder::new("f", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let _x = fb.load(Type::I32, p, "x");
        fb.ret();
        let mut f = fb.finish();
        assert_eq!(eliminate_dead_code(&mut f), 1);
    }

    #[test]
    fn sweeps_dead_branch_arm() {
        // if (true) v = 1 else v = 2; store v  — after constfold + dce the
        // else arm is gone entirely.
        let mut fb = FunctionBuilder::new("f", &[("p", Type::Ptr)]);
        let then_b = fb.add_block("then");
        let else_b = fb.add_block("else");
        let join = fb.add_block("join");
        let t = fb.boolc(true);
        fb.cond_br(t, then_b, else_b);
        fb.position_at(then_b);
        let one = fb.i32c(1);
        fb.br(join);
        fb.position_at(else_b);
        let two = fb.i32c(2);
        fb.br(join);
        fb.position_at(join);
        let (phi, pv) = fb.phi(Type::I32, "v");
        fb.add_incoming(phi, one, then_b);
        fb.add_incoming(phi, two, else_b);
        let p = fb.arg(0);
        fb.store(pv, p);
        fb.ret();
        let mut f = fb.finish();
        fold_constants(&mut f);
        let removed = eliminate_dead_code(&mut f);
        assert!(removed >= 1);
        verify_function(&f).unwrap();
        let else_id = f.block_by_name("else").unwrap();
        assert!(f.block(else_id).insts.is_empty());
    }

    #[test]
    fn chain_of_dead_values_removed_transitively() {
        let mut fb = FunctionBuilder::new("f", &[("x", Type::I64)]);
        let x = fb.arg(0);
        let a = fb.add(x, x, "a");
        let b = fb.mul(a, x, "b");
        let _c = fb.sub(b, a, "c");
        fb.ret();
        let mut f = fb.finish();
        assert_eq!(eliminate_dead_code(&mut f), 3);
    }
}
