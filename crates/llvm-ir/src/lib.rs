//! # salam-ir
//!
//! An LLVM-like SSA intermediate representation, standing in for the real
//! LLVM IR that gem5-SALAM consumes from clang.
//!
//! gem5-SALAM's front end only depends on IR *structure*: opcodes with SSA
//! operand edges, basic blocks, and terminators. This crate provides exactly
//! that surface:
//!
//! * [`Module`], [`Function`], [`Block`], [`Inst`] — an arena-based IR with
//!   LLVM's common opcodes (integer/float arithmetic, comparisons, casts,
//!   `load`/`store`/`getelementptr`, `phi`/`select`, `br`/`ret`).
//! * [`FunctionBuilder`] — an ergonomic way to construct IR in Rust, used by
//!   the `machsuite` kernels in place of running clang.
//! * [`parse_module`] — a parser for a textual `.ll`-style subset, so kernels
//!   can also be written as LLVM-like assembly.
//! * [`verify_function`] — SSA/type/terminator well-formedness checks.
//! * [`interp`] — a reference interpreter with an observation hook, used for
//!   golden-result checks, trace generation (the Aladdin baseline) and
//!   basic-block trip-count profiling (the HLS reference model).
//! * [`passes`] — dominator-based analyses plus loop unrolling, constant
//!   folding and dead-code elimination, standing in for the clang `-O`
//!   pipeline and `#pragma unroll` knobs the paper uses for design-space
//!   exploration.
//!
//! # Example
//!
//! ```
//! use salam_ir::{FunctionBuilder, Module, Type, parse_module};
//!
//! // Build `c[0] = a[0] + b[0]` for 32-bit integers.
//! let mut m = Module::new("example");
//! let mut fb = FunctionBuilder::new("vadd1", &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr)]);
//! let entry = fb.entry();
//! fb.position_at(entry);
//! let a = fb.arg(0);
//! let b = fb.arg(1);
//! let c = fb.arg(2);
//! let x = fb.load(Type::I32, a, "x");
//! let y = fb.load(Type::I32, b, "y");
//! let s = fb.add(x, y, "s");
//! fb.store(s, c);
//! fb.ret();
//! let f = fb.finish();
//! salam_ir::verify_function(&f).unwrap();
//! m.add_function(f);
//!
//! // The same function, as textual IR.
//! let text = m.to_string();
//! let reparsed = parse_module(&text).unwrap();
//! assert_eq!(reparsed.to_string(), text);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod function;
mod inst;
pub mod interp;
mod parser;
mod printer;
mod types;
mod value;
mod verify;

pub mod analysis;
pub mod passes;

pub use builder::{BuildError, FunctionBuilder};
pub use function::{Block, BlockId, Function, InstId, Module, Param};
pub use inst::{FloatPredicate, Inst, IntPredicate, Opcode};
pub use parser::{parse_module, ParseError};
pub use types::Type;
pub use value::{Constant, ValueId, ValueKind};
pub use verify::{verify_function, VerifyError};
