//! Static analyses over IR functions: CFG, dominators, natural loops.

mod cfg;
mod dom;
mod loops;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use loops::{find_natural_loops, NaturalLoop};
