//! Control-flow graph: successor/predecessor maps and orderings.

use crate::function::{BlockId, Function};

/// The control-flow graph of one function.
///
/// ```
/// use salam_ir::{FunctionBuilder, Type, analysis::Cfg};
/// let mut fb = FunctionBuilder::new("f", &[("n", Type::I64)]);
/// let n = fb.arg(0);
/// let zero = fb.i64c(0);
/// fb.counted_loop("i", zero, n, |_, _| {});
/// fb.ret();
/// let f = fb.finish();
/// let cfg = Cfg::new(&f);
/// assert_eq!(cfg.successors(f.entry()).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG for `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bid, _) in f.blocks() {
            for s in f.successors(bid) {
                succs[bid.index()].push(s);
                preds[s.index()].push(bid);
            }
        }
        // Reverse postorder from entry via iterative DFS.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        // Stack of (block, next successor index).
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
        visited[f.entry().index()] = true;
        while let Some((b, i)) = stack.pop() {
            if i < succs[b.index()].len() {
                stack.push((b, i + 1));
                let s = succs[b.index()][i];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
            }
        }
        postorder.reverse();
        Cfg {
            succs,
            preds,
            rpo: postorder,
        }
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor blocks of `b`.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks reachable from entry in reverse postorder.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;

    #[test]
    fn loop_cfg_shape() {
        let mut fb = FunctionBuilder::new("f", &[("n", Type::I64)]);
        let n = fb.arg(0);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |_, _| {});
        fb.ret();
        let f = fb.finish();
        let cfg = Cfg::new(&f);

        let header = f.block_by_name("i.header").unwrap();
        let body = f.block_by_name("i.body").unwrap();
        let exit = f.block_by_name("i.exit").unwrap();

        assert_eq!(cfg.successors(f.entry()), &[header]);
        assert_eq!(cfg.successors(header), &[body, exit]);
        assert_eq!(cfg.successors(body), &[header]);
        assert_eq!(cfg.predecessors(header), &[f.entry(), body]);
        assert_eq!(cfg.reverse_postorder().first(), Some(&f.entry()));
        assert_eq!(cfg.reverse_postorder().len(), 4);
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let mut fb = FunctionBuilder::new("f", &[]);
        let dead = fb.add_block("dead");
        fb.ret();
        fb.position_at(dead);
        fb.ret();
        let f = fb.finish();
        let cfg = Cfg::new(&f);
        assert!(cfg.is_reachable(f.entry()));
        assert!(!cfg.is_reachable(dead));
    }
}
