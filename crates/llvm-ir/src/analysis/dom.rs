//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::analysis::Cfg;
use crate::function::{BlockId, Function};

/// Immediate-dominator information for the reachable blocks of a function.
///
/// ```
/// use salam_ir::{FunctionBuilder, Type, analysis::{Cfg, DomTree}};
/// let mut fb = FunctionBuilder::new("f", &[("n", Type::I64)]);
/// let n = fb.arg(0);
/// let zero = fb.i64c(0);
/// fb.counted_loop("i", zero, n, |_, _| {});
/// fb.ret();
/// let f = fb.finish();
/// let cfg = Cfg::new(&f);
/// let dom = DomTree::new(&f, &cfg);
/// let header = f.block_by_name("i.header").unwrap();
/// assert!(dom.dominates(f.entry(), header));
/// ```
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` for each block; entry's idom is itself; unreachable blocks
    /// have `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes dominators for `f` using its `cfg`.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.num_blocks();
        let rpo = cfg.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let entry = f.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect =
            |idom: &[Option<BlockId>], rpo_index: &[usize], mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while rpo_index[a.index()] > rpo_index[b.index()] {
                        a = idom[a.index()].expect("processed block has idom");
                    }
                    while rpo_index[b.index()] > rpo_index[a.index()] {
                        b = idom[b.index()].expect("processed block has idom");
                    }
                }
                a
            };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.predecessors(b) {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, entry }
    }

    /// The immediate dominator of `b` (`None` for the entry block and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false; // b unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = match self.idom[cur.index()] {
                Some(d) => d,
                None => return false,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::IntPredicate;

    #[test]
    fn diamond_dominators() {
        // entry -> (then|else) -> join
        let mut fb = FunctionBuilder::new("f", &[("x", Type::I32)]);
        let then_b = fb.add_block("then");
        let else_b = fb.add_block("else");
        let join = fb.add_block("join");
        let x = fb.arg(0);
        let zero = fb.i32c(0);
        let c = fb.icmp(IntPredicate::Slt, x, zero, "c");
        fb.cond_br(c, then_b, else_b);
        fb.position_at(then_b);
        fb.br(join);
        fb.position_at(else_b);
        fb.br(join);
        fb.position_at(join);
        fb.ret();
        let f = fb.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);

        assert_eq!(dom.idom(then_b), Some(f.entry()));
        assert_eq!(dom.idom(else_b), Some(f.entry()));
        assert_eq!(dom.idom(join), Some(f.entry()));
        assert!(dom.dominates(f.entry(), join));
        assert!(!dom.dominates(then_b, join));
        assert!(dom.dominates(join, join));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut fb = FunctionBuilder::new("f", &[("n", Type::I64)]);
        let n = fb.arg(0);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |_, _| {});
        fb.ret();
        let f = fb.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let header = f.block_by_name("i.header").unwrap();
        let body = f.block_by_name("i.body").unwrap();
        let exit = f.block_by_name("i.exit").unwrap();
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(header, exit));
        assert!(!dom.dominates(body, exit));
        assert_eq!(dom.idom(f.entry()), None);
    }
}
