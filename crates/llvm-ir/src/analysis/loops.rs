//! Natural-loop detection from back edges.

use std::collections::HashSet;

use crate::analysis::{Cfg, DomTree};
use crate::function::{BlockId, Function};

/// A natural loop: a back edge `latch -> header` where the header dominates
/// the latch, plus the set of blocks in the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// The latch (source of the back edge).
    pub latch: BlockId,
    /// All blocks in the loop, including header and latch.
    pub blocks: HashSet<BlockId>,
}

impl NaturalLoop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Whether this is an innermost-style single-block-body loop
    /// (header + one body/latch block).
    pub fn is_simple(&self) -> bool {
        self.blocks.len() <= 2
    }
}

/// Finds all natural loops in `f`, sorted by header id for determinism.
///
/// ```
/// use salam_ir::{FunctionBuilder, Type};
/// use salam_ir::analysis::{Cfg, DomTree, find_natural_loops};
/// let mut fb = FunctionBuilder::new("f", &[("n", Type::I64)]);
/// let n = fb.arg(0);
/// let zero = fb.i64c(0);
/// fb.counted_loop("i", zero, n, |_, _| {});
/// fb.ret();
/// let f = fb.finish();
/// let cfg = Cfg::new(&f);
/// let dom = DomTree::new(&f, &cfg);
/// let loops = find_natural_loops(&f, &cfg, &dom);
/// assert_eq!(loops.len(), 1);
/// ```
pub fn find_natural_loops(f: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for (bid, _) in f.blocks() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        for &succ in cfg.successors(bid) {
            if dom.dominates(succ, bid) {
                // Back edge bid -> succ; collect the loop body by walking
                // predecessors from the latch until the header.
                let header = succ;
                let latch = bid;
                let mut blocks: HashSet<BlockId> = [header, latch].into_iter().collect();
                let mut stack = vec![latch];
                while let Some(b) = stack.pop() {
                    if b == header {
                        continue;
                    }
                    for &p in cfg.predecessors(b) {
                        if blocks.insert(p) {
                            stack.push(p);
                        }
                    }
                }
                loops.push(NaturalLoop {
                    header,
                    latch,
                    blocks,
                });
            }
        }
    }
    loops.sort_by_key(|l| (l.header, l.latch));
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;

    fn analyse(f: &Function) -> Vec<NaturalLoop> {
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        find_natural_loops(f, &cfg, &dom)
    }

    #[test]
    fn single_loop_found() {
        let mut fb = FunctionBuilder::new("f", &[("n", Type::I64)]);
        let n = fb.arg(0);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |_, _| {});
        fb.ret();
        let f = fb.finish();
        let loops = analyse(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, f.block_by_name("i.header").unwrap());
        assert_eq!(l.latch, f.block_by_name("i.body").unwrap());
        assert!(l.is_simple());
        assert!(l.contains(l.header));
        assert!(!l.contains(f.entry()));
    }

    #[test]
    fn nested_loops_found() {
        let mut fb = FunctionBuilder::new("f", &[]);
        let zero = fb.i64c(0);
        let four = fb.i64c(4);
        fb.counted_loop("i", zero, four, |fb, _| {
            let zero = fb.i64c(0);
            let four = fb.i64c(4);
            fb.counted_loop("j", zero, four, |_, _| {});
        });
        fb.ret();
        let f = fb.finish();
        let loops = analyse(&f);
        assert_eq!(loops.len(), 2);
        let outer = loops
            .iter()
            .find(|l| l.header == f.block_by_name("i.header").unwrap())
            .unwrap();
        let inner = loops
            .iter()
            .find(|l| l.header == f.block_by_name("j.header").unwrap())
            .unwrap();
        // The inner loop's blocks are all contained in the outer loop.
        assert!(inner.blocks.iter().all(|b| outer.contains(*b)));
        assert!(!inner.is_simple() || inner.blocks.len() == 2);
        assert!(outer.blocks.len() > inner.blocks.len());
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut fb = FunctionBuilder::new("f", &[]);
        fb.ret();
        let f = fb.finish();
        assert!(analyse(&f).is_empty());
    }
}
