//! First-class IR types.

/// An IR value type.
///
/// Pointers are opaque (as in modern LLVM); `getelementptr` carries the
/// element type it indexes over. Arrays appear only as GEP element types and
/// memory layouts, never as SSA value types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value (function return / `store` result).
    Void,
    /// 1-bit integer (booleans, comparison results).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// An opaque pointer.
    Ptr,
    /// A fixed-length array, used as a GEP element type.
    Array {
        /// Element type.
        elem: Box<Type>,
        /// Number of elements.
        len: u64,
    },
}

impl Type {
    /// Convenience constructor for an array type.
    pub fn array(elem: Type, len: u64) -> Type {
        Type::Array {
            elem: Box::new(elem),
            len,
        }
    }

    /// Size of a value of this type in bytes (pointers are 8 bytes).
    ///
    /// # Panics
    ///
    /// Panics for [`Type::Void`].
    pub fn size_bytes(&self) -> u64 {
        match self {
            Type::Void => panic!("void has no size"),
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
            Type::Array { elem, len } => elem.size_bytes() * len,
        }
    }

    /// Width in bits for scalar types (pointers count as 64).
    ///
    /// # Panics
    ///
    /// Panics for [`Type::Void`] and [`Type::Array`].
    pub fn bits(&self) -> u32 {
        match self {
            Type::I1 => 1,
            Type::Array { .. } => panic!("array has no scalar width"),
            other => (other.size_bytes() * 8) as u32,
        }
    }

    /// Whether this is an integer type (including `i1`).
    pub fn is_int(&self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64
        )
    }

    /// Whether this is a floating-point type.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Whether this is a pointer.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// Integer type with the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not one of 1, 8, 16, 32, 64.
    pub fn int(bits: u32) -> Type {
        match bits {
            1 => Type::I1,
            8 => Type::I8,
            16 => Type::I16,
            32 => Type::I32,
            64 => Type::I64,
            other => panic!("unsupported integer width {other}"),
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::I1 => write!(f, "i1"),
            Type::I8 => write!(f, "i8"),
            Type::I16 => write!(f, "i16"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::F32 => write!(f, "float"),
            Type::F64 => write!(f, "double"),
            Type::Ptr => write!(f, "ptr"),
            Type::Array { elem, len } => write!(f, "[{len} x {elem}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::I1.size_bytes(), 1);
        assert_eq!(Type::I32.size_bytes(), 4);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::Ptr.size_bytes(), 8);
        assert_eq!(Type::array(Type::I32, 10).size_bytes(), 40);
        assert_eq!(Type::array(Type::array(Type::F32, 4), 3).size_bytes(), 48);
    }

    #[test]
    fn bits() {
        assert_eq!(Type::I1.bits(), 1);
        assert_eq!(Type::I8.bits(), 8);
        assert_eq!(Type::F32.bits(), 32);
        assert_eq!(Type::Ptr.bits(), 64);
    }

    #[test]
    fn predicates() {
        assert!(Type::I1.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F64.is_float());
        assert!(Type::Ptr.is_ptr());
    }

    #[test]
    fn display_llvm_syntax() {
        assert_eq!(Type::F32.to_string(), "float");
        assert_eq!(Type::array(Type::I8, 16).to_string(), "[16 x i8]");
    }

    #[test]
    fn int_constructor_roundtrip() {
        for b in [1u32, 8, 16, 32, 64] {
            assert_eq!(Type::int(b).bits(), b);
        }
    }
}
