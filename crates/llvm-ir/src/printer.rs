//! Textual printing of IR in an LLVM-`.ll`-like syntax.
//!
//! Printing is stable: `parse(print(m))` prints back to the same text, which
//! round-trip tests rely on.

use std::collections::HashMap;
use std::fmt::{self, Write as _};

use crate::function::{BlockId, Function, Module};
use crate::inst::{Inst, Opcode};
use crate::types::Type;
use crate::value::{ValueId, ValueKind};

/// Assigns a unique printed name to every value-producing instruction and
/// block.
pub(crate) struct Namer {
    value_names: HashMap<ValueId, String>,
    block_names: Vec<String>,
}

impl Namer {
    pub(crate) fn new(f: &Function) -> Self {
        let mut used: HashMap<String, u32> = HashMap::new();
        let mut value_names = HashMap::new();
        for p in &f.params {
            used.insert(p.name.clone(), 1);
        }
        let fresh = |base: &str, used: &mut HashMap<String, u32>| -> String {
            let base = if base.is_empty() {
                "t".to_string()
            } else {
                base.to_string()
            };
            let n = used.entry(base.clone()).or_insert(0);
            let name = if *n == 0 {
                base.clone()
            } else {
                format!("{base}.{n}")
            };
            *n += 1;
            // Guard against an explicit name that equals a generated one.
            if used.contains_key(&name) && name != base {
                let k = used.entry(name.clone()).or_insert(0);
                *k += 1;
            }
            name
        };
        for (_, b) in f.blocks() {
            for &i in &b.insts {
                if let Some(v) = f.inst_result(i) {
                    let name = fresh(&f.inst(i).name, &mut used);
                    value_names.insert(v, name);
                }
            }
        }
        let mut block_used: HashMap<String, u32> = HashMap::new();
        let block_names = f
            .blocks()
            .map(|(_, b)| {
                let n = block_used.entry(b.name.clone()).or_insert(0);
                let name = if *n == 0 {
                    b.name.clone()
                } else {
                    format!("{}.{n}", b.name)
                };
                *n += 1;
                name
            })
            .collect();
        Namer {
            value_names,
            block_names,
        }
    }

    pub(crate) fn value(&self, f: &Function, v: ValueId) -> String {
        match f.value_kind(v) {
            ValueKind::Arg(i) => format!("%{}", f.params[*i as usize].name),
            ValueKind::Inst(_) => format!("%{}", self.value_names[&v]),
            ValueKind::Const(c) => c.to_string(),
        }
    }

    pub(crate) fn block(&self, b: BlockId) -> String {
        format!("%{}", self.block_names[b.index()])
    }

    pub(crate) fn block_label(&self, b: BlockId) -> &str {
        &self.block_names[b.index()]
    }
}

fn typed(f: &Function, namer: &Namer, v: ValueId) -> String {
    format!("{} {}", f.value_type(v), namer.value(f, v))
}

fn write_inst(
    out: &mut String,
    f: &Function,
    namer: &Namer,
    inst: &Inst,
    result: Option<ValueId>,
) -> fmt::Result {
    write!(out, "  ")?;
    if let Some(r) = result {
        write!(out, "{} = ", namer.value(f, r))?;
    }
    let ops = &inst.operands;
    match &inst.op {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::UDiv
        | Opcode::SDiv
        | Opcode::URem
        | Opcode::SRem
        | Opcode::Shl
        | Opcode::LShr
        | Opcode::AShr
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::FAdd
        | Opcode::FSub
        | Opcode::FMul
        | Opcode::FDiv => {
            write!(
                out,
                "{} {} {}, {}",
                inst.op.mnemonic(),
                inst.ty,
                namer.value(f, ops[0]),
                namer.value(f, ops[1])
            )?;
        }
        Opcode::FNeg => {
            write!(out, "fneg {} {}", inst.ty, namer.value(f, ops[0]))?;
        }
        Opcode::ICmp(p) => {
            write!(
                out,
                "icmp {} {} {}, {}",
                p.keyword(),
                f.value_type(ops[0]),
                namer.value(f, ops[0]),
                namer.value(f, ops[1])
            )?;
        }
        Opcode::FCmp(p) => {
            write!(
                out,
                "fcmp {} {} {}, {}",
                p.keyword(),
                f.value_type(ops[0]),
                namer.value(f, ops[0]),
                namer.value(f, ops[1])
            )?;
        }
        Opcode::Load => {
            write!(out, "load {}, ptr {}", inst.ty, namer.value(f, ops[0]))?;
        }
        Opcode::Store => {
            write!(
                out,
                "store {}, ptr {}",
                typed(f, namer, ops[0]),
                namer.value(f, ops[1])
            )?;
        }
        Opcode::Gep { elem } => {
            write!(out, "getelementptr {elem}, ptr {}", namer.value(f, ops[0]))?;
            for idx in &ops[1..] {
                write!(out, ", {}", typed(f, namer, *idx))?;
            }
        }
        Opcode::Trunc
        | Opcode::ZExt
        | Opcode::SExt
        | Opcode::FPTrunc
        | Opcode::FPExt
        | Opcode::FPToSI
        | Opcode::FPToUI
        | Opcode::SIToFP
        | Opcode::UIToFP
        | Opcode::BitCast
        | Opcode::PtrToInt
        | Opcode::IntToPtr => {
            write!(
                out,
                "{} {} to {}",
                inst.op.mnemonic(),
                typed(f, namer, ops[0]),
                inst.ty
            )?;
        }
        Opcode::Phi => {
            write!(out, "phi {} ", inst.ty)?;
            for (i, (v, b)) in ops.iter().zip(&inst.block_refs).enumerate() {
                if i > 0 {
                    write!(out, ", ")?;
                }
                write!(out, "[ {}, {} ]", namer.value(f, *v), namer.block(*b))?;
            }
        }
        Opcode::Select => {
            write!(
                out,
                "select {}, {}, {}",
                typed(f, namer, ops[0]),
                typed(f, namer, ops[1]),
                typed(f, namer, ops[2])
            )?;
        }
        Opcode::Br => {
            write!(out, "br label {}", namer.block(inst.block_refs[0]))?;
        }
        Opcode::CondBr => {
            write!(
                out,
                "br {}, label {}, label {}",
                typed(f, namer, ops[0]),
                namer.block(inst.block_refs[0]),
                namer.block(inst.block_refs[1])
            )?;
        }
        Opcode::Ret => {
            if ops.is_empty() {
                write!(out, "ret void")?;
            } else {
                write!(out, "ret {}", typed(f, namer, ops[0]))?;
            }
        }
    }
    writeln!(out)
}

impl fmt::Display for Function {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        let namer = Namer::new(self);
        let ret_ty = self
            .blocks()
            .find_map(|(_, b)| {
                b.insts.iter().find_map(|&i| {
                    let inst = self.inst(i);
                    (inst.op == Opcode::Ret).then(|| {
                        inst.operands
                            .first()
                            .map(|&v| self.value_type(v))
                            .unwrap_or(Type::Void)
                    })
                })
            })
            .unwrap_or(Type::Void);
        let params: Vec<String> = self
            .params
            .iter()
            .map(|p| format!("{} %{}", p.ty, p.name))
            .collect();
        writeln!(
            fm,
            "define {ret_ty} @{}({}) {{",
            self.name,
            params.join(", ")
        )?;
        let mut body = String::new();
        for (bid, b) in self.blocks() {
            writeln!(body, "{}:", namer.block_label(bid)).map_err(|_| fmt::Error)?;
            for &i in &b.insts {
                write_inst(&mut body, self, &namer, self.inst(i), self.inst_result(i))
                    .map_err(|_| fmt::Error)?;
            }
        }
        write!(fm, "{body}")?;
        writeln!(fm, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, f) in self.functions().iter().enumerate() {
            if i > 0 {
                writeln!(fm)?;
            }
            write!(fm, "{f}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::IntPredicate;

    #[test]
    fn prints_straightline() {
        let mut fb = FunctionBuilder::new("f", &[("a", Type::Ptr)]);
        let a = fb.arg(0);
        let x = fb.load(Type::I32, a, "x");
        let one = fb.i32c(1);
        let y = fb.add(x, one, "y");
        fb.store(y, a);
        fb.ret();
        let text = fb.finish().to_string();
        assert!(text.contains("define void @f(ptr %a) {"), "{text}");
        assert!(text.contains("%x = load i32, ptr %a"), "{text}");
        assert!(text.contains("%y = add i32 %x, 1"), "{text}");
        assert!(text.contains("store i32 %y, ptr %a"), "{text}");
        assert!(text.contains("ret void"), "{text}");
    }

    #[test]
    fn prints_loop_with_phi() {
        let mut fb = FunctionBuilder::new("loop", &[("n", Type::I64)]);
        let n = fb.arg(0);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |_, _| {});
        fb.ret();
        let text = fb.finish().to_string();
        assert!(
            text.contains("%i.iv = phi i64 [ 0, %entry ], [ %i.iv.next, %i.body ]"),
            "{text}"
        );
        assert!(
            text.contains("br i1 %i.cond, label %i.body, label %i.exit"),
            "{text}"
        );
    }

    #[test]
    fn duplicate_names_are_disambiguated() {
        let mut fb = FunctionBuilder::new("dup", &[("x", Type::I32)]);
        let x = fb.arg(0);
        let a = fb.add(x, x, "v");
        let b = fb.add(a, x, "v");
        let c = fb.icmp(IntPredicate::Eq, a, b, "v");
        let _ = c;
        fb.ret();
        let text = fb.finish().to_string();
        assert!(text.contains("%v = "), "{text}");
        assert!(text.contains("%v.1 = "), "{text}");
        assert!(text.contains("%v.2 = "), "{text}");
    }

    #[test]
    fn ret_value_sets_signature() {
        let mut fb = FunctionBuilder::new("id", &[("x", Type::I64)]);
        let x = fb.arg(0);
        fb.ret_value(x);
        let text = fb.finish().to_string();
        assert!(text.starts_with("define i64 @id(i64 %x) {"), "{text}");
        assert!(text.contains("ret i64 %x"), "{text}");
    }
}
